#!/usr/bin/env python3
"""Scan a slice of the Juliet-style benchmark with all four analysis tools.

This is a small-scale version of the paper's Figure 2 experiment (the full
run lives in ``benchmarks/test_bench_figure2_juliet.py``): for one test of
each undefined-behavior class it shows which tools flag the bad version and
confirms nobody flags the good control.

Run with:  python examples/juliet_scan.py
"""

from repro.analyzers.registry import default_tools
from repro.suites.juliet import ALL_CLASSES, generate_juliet_suite


def main() -> None:
    suite = generate_juliet_suite()
    tools = default_tools()
    print(f"Generated {len(suite)} tests "
          f"({len(suite.bad_cases())} undefined + {len(suite.good_cases())} control) "
          f"across {len(ALL_CLASSES)} classes.\n")

    for category in ALL_CLASSES:
        bad = next(case for case in suite.cases_in(category) if case.is_bad)
        good = next(case for case in suite.cases_in(category) if not case.is_bad)
        print("=" * 72)
        print(f"{category}   [{bad.name}]")
        for tool in tools:
            bad_result = tool.analyze(bad.source)
            good_result = tool.analyze(good.source)
            verdict = "FLAGGED " if bad_result.flagged else "missed  "
            control = "clean" if not good_result.flagged else "FALSE POSITIVE"
            print(f"  {tool.name:<14} bad: {verdict}  control: {control}")
        print()


if __name__ == "__main__":
    main()
