#!/usr/bin/env python3
"""Custom probes: instrument one execution of the semantics engine.

The engine emits a typed stream of execution events — memory traffic,
sequence points, lvalue conversions, overflow checks, calls, branches,
interleave choices, fired undefinedness checks — and any number of probes
observe a single run (``Checker.run(compiled, probes=[...])``).  This
example writes a ~30-line profiling probe from scratch, records a full
replayable JSON trace with the built-in ``TraceRecorderProbe``, and queries
the trace post-hoc.

Run with:  python examples/custom_probe.py [--no-lowering]
"""

import sys

from repro import Checker, CheckerOptions, TraceRecorderProbe
from repro.events import BranchEvent, CallEvent, ReadEvent, UBEvent, WriteEvent

PROGRAM = r"""
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int main(void) {
    int table[10];
    int i;
    for (i = 0; i < 10; i++) table[i] = fib(i);
    return table[9];   /* fib(9) == 34 */
}
"""


class HotspotProbe:
    """A custom probe: per-line memory-traffic and call profile (~30 lines).

    A probe is any object with an ``on_event(event)`` method (subclassing
    ``repro.events.Probe`` is optional).  This one never interferes with the
    verdict — it just watches.
    """

    name = "hotspots"

    def __init__(self):
        self.reads_by_line = {}
        self.writes_by_line = {}
        self.calls_by_function = {}
        self.branches = 0
        self.checks_fired = []

    def on_event(self, event):
        if isinstance(event, ReadEvent):
            self.reads_by_line[event.line] = self.reads_by_line.get(event.line, 0) + 1
        elif isinstance(event, WriteEvent):
            self.writes_by_line[event.line] = self.writes_by_line.get(event.line, 0) + 1
        elif isinstance(event, CallEvent):
            self.calls_by_function[event.function] = \
                self.calls_by_function.get(event.function, 0) + 1
        elif isinstance(event, BranchEvent):
            self.branches += 1
        elif isinstance(event, UBEvent):
            self.checks_fired.append(event.ub_kind.name)

    def finish(self, end):
        self.end_status = end.status

    def hottest_line(self):
        traffic = {}
        for line, count in self.reads_by_line.items():
            traffic[line] = traffic.get(line, 0) + count
        for line, count in self.writes_by_line.items():
            traffic[line] = traffic.get(line, 0) + count
        return max(traffic, key=traffic.get)


def main() -> int:
    options = (CheckerOptions(enable_lowering=False)
               if "--no-lowering" in sys.argv[1:] else CheckerOptions())
    checker = Checker(options)
    compiled = checker.compile(PROGRAM, filename="fib.c")

    # One execution feeds both probes; the report is the engine's own.
    hotspots = HotspotProbe()
    recorder = TraceRecorderProbe(filename="fib.c")
    report = checker.run(compiled, probes=[hotspots, recorder])

    assert report.outcome.exit_code == 34, report.outcome.describe()
    assert checker.stats.run_count == 1
    assert hotspots.end_status == "defined"
    assert not hotspots.checks_fired          # the program is defined

    print(f"verdict:            {report.outcome.describe()}")
    print(f"fib() invocations:  {hotspots.calls_by_function['fib']}")
    print(f"branches decided:   {hotspots.branches}")
    print(f"hottest line:       {hotspots.hottest_line()}")

    # The recorder's trace is replayable JSON: serialize, reload, query.
    trace = recorder.trace
    reloaded = type(trace).from_json(trace.to_json())
    assert reloaded.events == trace.events
    summary = reloaded.summary()
    print(f"trace events:       {len(reloaded)} "
          f"({summary['call']} calls, {summary['branch']} branches, "
          f"{summary['read']} reads)")
    assert summary["call"] == hotspots.calls_by_function["fib"] + \
        sum(count for name, count in hotspots.calls_by_function.items() if name != "fib")
    assert summary["branch"] == hotspots.branches
    # Post-hoc query: every recursive call site of fib.
    fib_calls = reloaded.select("call", function="fib")
    print(f"fib() trace slice:  {len(fib_calls)} call events "
          f"on lines {sorted({event['line'] for event in fib_calls})}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
