"""A fuzzing-campaign tour: generate, oracle-check, sabotage, reduce.

Runs a small deterministic campaign of ground-truth-labeled generated
programs through the differential oracle stack, scores the checker against
the generated corpus via the suite adapter, then deliberately sabotages
one case's ground truth and shows the ddmin reducer shrinking the
resulting oracle failure to a minimal program.

Usage::

    python examples/fuzz_campaign.py [--count N] [--jobs N]
"""

import argparse
import sys

from repro.api import Checker
from repro.analyzers.registry import make_tools
from repro.fuzz.generator import GeneratorConfig, generate_case
from repro.fuzz.oracles import run_oracles
from repro.fuzz.reduce import make_failure_predicate, reduce_source
from repro.suites.fuzzcorpus import generate_fuzz_suite
from repro.suites.harness import EvaluationHarness

SEED = 2026


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=30)
    parser.add_argument("--jobs", type=int, default=1)
    arguments = parser.parse_args(argv)

    # 1. A campaign: every generated program through every oracle.
    result = Checker().fuzz(seed=SEED, count=arguments.count, inject="mixed",
                            jobs=arguments.jobs)
    print(result.render())
    print()
    assert result.ok, "the oracle stack found a mismatch — a checker bug!"

    # 2. Generated ground truth through the evaluation harness.
    suite = generate_fuzz_suite(seed=SEED, count=16)
    comparison = EvaluationHarness(make_tools(["kcc"])).run_suite(suite)
    score = comparison.score_for("kcc")
    print(f"kcc vs generated ground truth: detection "
          f"{score.detection_rate():.0%}, false positives "
          f"{score.false_positive_rate():.0%}")
    print()

    # 3. Sabotage the ground truth, watch an oracle object, reduce the case.
    sabotaged = generate_case(SEED, 0, config=GeneratorConfig(sabotage="mislabel"),
                              inject=None)
    report = run_oracles(sabotaged)
    failure = report.failures[0]
    print(f"sabotaged case fails oracle {failure.oracle!r} "
          f"(signature {failure.signature!r})")
    predicate = make_failure_predicate(sabotaged, failure.signature)
    reduced = reduce_source(sabotaged.source, predicate)
    original_lines = len(sabotaged.source.splitlines())
    reduced_lines = len(reduced.splitlines())
    print(f"reducer: {original_lines} lines -> {reduced_lines} lines")
    print()
    print(reduced)
    assert predicate(reduced), "reduction must preserve the failure"
    return 0


if __name__ == "__main__":
    sys.exit(main())
