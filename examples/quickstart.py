#!/usr/bin/env python3
"""Quickstart: the staged session API — compile once, run many, batch check.

This reproduces the workflow of Section 3.2 of the paper with the staged
API: ``Checker.compile`` parses + statically checks a program into a
reusable ``CompiledUnit`` (cached by content hash and implementation
profile), ``Checker.run`` executes one — as many times as you like, with
different inputs or evaluation-order search, without re-parsing — and
``check_many`` fans a batch out over worker processes.

Run with:  python examples/quickstart.py
"""

from repro import Checker

HELLO_WORLD = r"""
#include <stdio.h>

int main(void) {
    printf("Hello world\n");
    return 0;
}
"""

# The paper's Section 3.2 example: both assignments to x are unsequenced, so
# the program is undefined even though GCC happily returns 4 for it.
UNSEQUENCED = r"""
int main(void){
    int x = 0;
    return (x = 1) + (x = 2);
}
"""

# The paper's Section 2.5.2 example: defined under left-to-right evaluation,
# but a division by zero under right-to-left — only the evaluation-order
# search sees it.
SET_DENOM = r"""
static int d = 5;
static int setDenom(int x){ return d = x; }
int main(void) { return (10/d) + setDenom(0); }
"""

# The paper's Section 2.3 example: dereferencing NULL is undefined, and real
# compilers simply delete the dereference instead of crashing.
NULL_DEREFERENCE = r"""
#include <stddef.h>

int main(void){
    *(char*)NULL;
    return 0;
}
"""

# The paper's Section 2.4 example: the division by zero makes the whole
# execution undefined, even the printf that "already happened".
LOOP_INVARIANT_DIVISION = r"""
#include <stdio.h>

int main(void){
    int r = 0, d = 0;
    for (int i = 0; i < 5; i++) {
        printf("%d\n", i);
        r += 5 / d;
    }
    return r;
}
"""


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    checker = Checker()

    banner("1. A defined program runs and produces its output")
    report = checker.check(HELLO_WORLD)
    print(report.render())

    banner("2. Unsequenced side effects (paper Section 3.2, error 00016)")
    report = checker.check(UNSEQUENCED)
    print(report.render())
    print()
    print("The same report as structured diagnostics:")
    print(report.to_json(indent=2))

    banner("3. Compile once, search evaluation orders (paper Section 2.5.2)")
    parses_before = checker.stats.parse_count
    compiled = checker.compile(SET_DENOM)
    plain = checker.run(compiled)
    searched = checker.run(compiled, search_evaluation_order=True)
    print("left-to-right run:   ", plain.outcome.describe())
    print("evaluation search:   ", searched.outcome.describe())
    print(f"(both runs shared one compile: "
          f"{checker.stats.parse_count - parses_before} parse of this program, "
          f"{checker.stats.run_count} runs this session)")

    banner("4. Dereferencing a null pointer (paper Section 2.3)")
    report = checker.check(NULL_DEREFERENCE)
    print(report.render())

    banner("5. Division by zero inside a loop (paper Section 2.4)")
    report = checker.check(LOOP_INVARIANT_DIVISION)
    print(report.render())
    print()
    print("Output produced before the undefined operation:",
          repr(report.outcome.stdout))

    banner("6. Batch checking with worker processes")
    batch = [("hello.c", HELLO_WORLD), ("unsequenced.c", UNSEQUENCED),
             ("setdenom.c", SET_DENOM), ("null.c", NULL_DEREFERENCE),
             ("loop.c", LOOP_INVARIANT_DIVISION)]
    for report in checker.check_many(batch, jobs=2):
        print(f"{report.filename:16} {report.outcome.describe()}")


if __name__ == "__main__":
    main()
