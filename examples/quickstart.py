#!/usr/bin/env python3
"""Quickstart: check a few small C programs for undefined behavior.

This reproduces the workflow of Section 3.2 of the paper: the tool behaves
like a C implementation — defined programs run to completion and produce
their output, undefined programs produce a numbered kcc-style error report.

Run with:  python examples/quickstart.py
"""

from repro import check_program

HELLO_WORLD = r"""
#include <stdio.h>

int main(void) {
    printf("Hello world\n");
    return 0;
}
"""

# The paper's Section 3.2 example: both assignments to x are unsequenced, so
# the program is undefined even though GCC happily returns 4 for it.
UNSEQUENCED = r"""
int main(void){
    int x = 0;
    return (x = 1) + (x = 2);
}
"""

# The paper's Section 2.3 example: dereferencing NULL is undefined, and real
# compilers simply delete the dereference instead of crashing.
NULL_DEREFERENCE = r"""
#include <stddef.h>

int main(void){
    *(char*)NULL;
    return 0;
}
"""

# The paper's Section 2.4 example: the division by zero makes the whole
# execution undefined, even the printf that "already happened".
LOOP_INVARIANT_DIVISION = r"""
#include <stdio.h>

int main(void){
    int r = 0, d = 0;
    for (int i = 0; i < 5; i++) {
        printf("%d\n", i);
        r += 5 / d;
    }
    return r;
}
"""


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("1. A defined program runs and produces its output")
    report = check_program(HELLO_WORLD)
    print(report.render())

    banner("2. Unsequenced side effects (paper Section 3.2, error 00016)")
    report = check_program(UNSEQUENCED)
    print(report.render())

    banner("3. Dereferencing a null pointer (paper Section 2.3)")
    report = check_program(NULL_DEREFERENCE)
    print(report.render())

    banner("4. Division by zero inside a loop (paper Section 2.4)")
    report = check_program(LOOP_INVARIANT_DIVISION)
    print(report.render())
    print()
    print("Output produced before the undefined operation:",
          repr(report.outcome.stdout))


if __name__ == "__main__":
    main()
