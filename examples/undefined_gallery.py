#!/usr/bin/env python3
"""A gallery of undefined behaviors from the paper, checked one by one.

Each entry is a pair of programs: the undefined version and its defined
control, in the style of the paper's own test suite (Section 5.2.2).  The
example prints, for every behavior, what the checker reports for both
versions — the defined control must come back clean, otherwise the checker
would get full marks just by rejecting everything.

This uses the staged session API: one :class:`repro.Checker` compiles each
program into a cached ``CompiledUnit`` and runs it, so re-checking (or
checking the same program under several configurations) never re-parses.

Run with:  python examples/undefined_gallery.py [--no-lowering]

``--no-lowering`` runs the dynamic stage on the legacy AST walker instead of
the lowered fast path; the reports are identical either way.
"""

import sys

from repro import Checker, CheckerOptions
from repro.suites.ubsuite import BEHAVIOR_TESTS

#: Behaviors highlighted in the paper's narrative.
HIGHLIGHTED = [
    "signed-addition-overflow",            # the x + 1 < x idiom of §2.3
    "relational-comparison-unrelated-pointers",   # &a < &b of §4.3.1
    "partial-pointer-copy-use",            # the byte-splitting example of §4.3.2
    "write-to-const-through-strchr",       # the strchr example of §4.2.2
    "unsequenced-writes-to-scalar",        # (x=1)+(x=2) of §2.3
    "modify-string-literal",
    "use-after-free",
    "array-of-zero-length",                # the array-length example of §3.2
]


def main() -> None:
    options = CheckerOptions(enable_lowering="--no-lowering" not in sys.argv)
    checker = Checker(options)
    by_name = {entry.behavior: entry for entry in BEHAVIOR_TESTS}
    for name in HIGHLIGHTED:
        entry = by_name[name]
        print("=" * 72)
        print(f"{entry.behavior}  (C11 {entry.section}, {entry.stage})")
        print(f"  {entry.description}")
        bad = checker.run(checker.compile(entry.bad))
        good = checker.run(checker.compile(entry.good))
        print(f"  undefined version -> {bad.outcome.describe()}")
        print(f"  defined control   -> {good.outcome.describe()}")
        print()
    # Compiled units are cached by content hash: re-compiling any of the
    # programs is a cache hit, not a parse.
    for name in HIGHLIGHTED:
        checker.compile(by_name[name].bad)
    stats = checker.stats.snapshot()
    print(f"({stats['run_count']} staged checks, {stats['parse_count']} parses, "
          f"{stats['cache_hits']} compile-cache hits)")


if __name__ == "__main__":
    main()
