#!/usr/bin/env python3
"""Implementation-defined undefinedness (paper Section 2.5.1).

Whether a program is undefined can depend on implementation-defined choices
such as ``sizeof(int)``.  The paper's example allocates four bytes and stores
an ``int`` into them: fine when ints are 4 bytes, an out-of-bounds write when
they are 8.  This example checks the same program under three implementation
profiles.

It uses the staged session API: one :class:`repro.Checker` per profile (a
compiled unit is tied to the profile it was parsed under — type sizes are
baked into its layout), each compiling the two programs once and running
them from the cache.

Run with:  python examples/implementation_profiles.py [--no-lowering]

``--no-lowering`` runs the dynamic stage on the legacy AST walker instead of
the lowered fast path; the verdicts are identical either way.
"""

import sys

from repro import Checker, CheckerOptions, PROFILES

MALLOC_FOUR = r"""
#include <stdlib.h>

int main(void){
    int* p = malloc(4);
    if (p) { *p = 1000; }
    free(p);
    return 0;
}
"""

SIZE_REPORT = r"""
#include <stdio.h>

int main(void){
    printf("sizeof(int)=%d sizeof(long)=%d sizeof(void*)=%d\n",
           (int)sizeof(int), (int)sizeof(long), (int)sizeof(void*));
    return 0;
}
"""


def main() -> None:
    lowering = "--no-lowering" not in sys.argv
    for name, profile in sorted(PROFILES.items()):
        checker = Checker(CheckerOptions(profile=profile,
                                         enable_lowering=lowering))
        print("=" * 72)
        print(f"Implementation profile: {name}")
        sizes = checker.run(checker.compile(SIZE_REPORT))
        print("  " + sizes.outcome.stdout.strip())
        verdict = checker.run(checker.compile(MALLOC_FOUR))
        print(f"  malloc(4); *p = 1000;  ->  {verdict.outcome.describe()}")
        print()


if __name__ == "__main__":
    main()
