#!/usr/bin/env python3
"""Implementation-defined undefinedness (paper Section 2.5.1).

Whether a program is undefined can depend on implementation-defined choices
such as ``sizeof(int)``.  The paper's example allocates four bytes and stores
an ``int`` into them: fine when ints are 4 bytes, an out-of-bounds write when
they are 8.  This example checks the same program under three implementation
profiles.

Run with:  python examples/implementation_profiles.py
"""

from repro import CheckerOptions, PROFILES, check_program

MALLOC_FOUR = r"""
#include <stdlib.h>

int main(void){
    int* p = malloc(4);
    if (p) { *p = 1000; }
    free(p);
    return 0;
}
"""

SIZE_REPORT = r"""
#include <stdio.h>

int main(void){
    printf("sizeof(int)=%d sizeof(long)=%d sizeof(void*)=%d\n",
           (int)sizeof(int), (int)sizeof(long), (int)sizeof(void*));
    return 0;
}
"""


def main() -> None:
    for name, profile in sorted(PROFILES.items()):
        options = CheckerOptions(profile=profile)
        print("=" * 72)
        print(f"Implementation profile: {name}")
        sizes = check_program(SIZE_REPORT, options)
        print("  " + sizes.outcome.stdout.strip())
        verdict = check_program(MALLOC_FOUR, options)
        print(f"  malloc(4); *p = 1000;  ->  {verdict.outcome.describe()}")
        print()


if __name__ == "__main__":
    main()
