#!/usr/bin/env python3
"""Searching evaluation orders for undefinedness (paper Section 2.5.2).

C leaves the evaluation order of most subexpressions unspecified, and a
program can be undefined under one order but not another.  The paper's
``setDenom`` example is the canonical case: GCC compiles it to a program with
no runtime error, while CompCert's generated code divides by zero — and both
are right, because the program has reachable undefined behavior.

This example runs the program three ways:

* left-to-right evaluation (the order most compilers use),
* right-to-left evaluation,
* exhaustive search over evaluation orders (what a sound checker needs).

Run with:  python examples/evaluation_order_search.py
"""

from repro import CheckerOptions, check_program

SET_DENOM = r"""
int d = 5;

int setDenom(int x){
    return d = x;
}

int main(void) {
    return (10/d) + setDenom(0);
}
"""

ARGUMENT_CONFLICT = r"""
int combine(int a, int b) { return a * 10 + b; }

int main(void) {
    int i = 1;
    return i + (i = 2);
}
"""


def describe(label: str, report) -> None:
    print(f"  {label:<22} -> {report.outcome.describe()}")


def explore(title: str, source: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    describe("left-to-right", check_program(source))
    describe("right-to-left",
             check_program(source, CheckerOptions(evaluation_order="right-to-left")))
    searched = check_program(source, search_evaluation_order=True)
    describe("search (all orders)", searched)
    if searched.search is not None:
        print(f"  evaluation orders explored: {searched.search.explored}")
    print()


def main() -> None:
    explore("The paper's setDenom example (division by zero on some orders)", SET_DENOM)
    explore("A write/read conflict visible only under right-to-left order", ARGUMENT_CONFLICT)


if __name__ == "__main__":
    main()
