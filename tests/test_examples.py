"""Run every example script end-to-end (they must not raise and must report)."""

import pathlib
import re
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, *args: str) -> str:
    path = EXAMPLES_DIR / name
    completed = subprocess.run([sys.executable, str(path), *args],
                               capture_output=True, text=True, timeout=600,
                               check=False)
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_examples_are_present():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "undefined_gallery.py", "evaluation_order_search.py",
            "juliet_scan.py", "implementation_profiles.py",
            "custom_probe.py", "fuzz_campaign.py"} <= names


def test_quickstart_output():
    output = run_example("quickstart.py")
    assert "Hello world" in output
    assert "Error: 00016" in output
    assert "null pointer" in output.lower()


@pytest.mark.parametrize("extra", [(), ("--no-lowering",)],
                         ids=["lowered", "legacy-walker"])
def test_undefined_gallery_output(extra):
    # The staged-API example must run clean on both dynamic-stage engines.
    output = run_example("undefined_gallery.py", *extra)
    assert "defined control   -> defined" in output
    assert "undefined version -> undefined" in output
    assert "strchr" in output
    # The stats line pins the compile-cache behavior without hardcoding the
    # gallery size: every program is parsed exactly once (checks == parses,
    # all distinct), and the re-compiles of the bad programs all hit.
    match = re.search(r"\((\d+) staged checks, (\d+) parses, "
                      r"(\d+) compile-cache hits\)", output)
    assert match is not None, output
    checks, parses, hits = (int(group) for group in match.groups())
    assert checks == parses and checks == 2 * hits and hits > 0


def test_evaluation_order_search_output():
    output = run_example("evaluation_order_search.py")
    assert "left-to-right" in output
    assert "search (all orders)" in output
    assert "DIVISION_BY_ZERO" in output


def test_juliet_scan_output():
    output = run_example("juliet_scan.py")
    assert "Division by zero" in output
    assert "FALSE POSITIVE" not in output


@pytest.mark.parametrize("extra", [(), ("--no-lowering",)],
                         ids=["lowered", "legacy-walker"])
def test_implementation_profiles_output(extra):
    output = run_example("implementation_profiles.py", *extra)
    assert "lp64" in output
    assert "wide-int" in output
    assert "BUFFER_OVERFLOW" in output or "undefined" in output


@pytest.mark.parametrize("extra", [(), ("--no-lowering",)],
                         ids=["lowered", "legacy-walker"])
def test_custom_probe_output(extra):
    output = run_example("custom_probe.py", *extra)
    assert "fib() invocations:  276" in output
    assert "trace events:" in output
    assert "defined (exit code 34)" in output


def test_fuzz_campaign_output():
    output = run_example("fuzz_campaign.py", "--count", "12")
    assert "0 oracle mismatch(es)" in output
    assert "kcc vs generated ground truth: detection 100%" in output
    assert "false positives 0%" in output
    assert "fails oracle 'ground-truth'" in output
    assert "reducer:" in output and "lines ->" in output


def test_examples_report_identically_with_and_without_lowering():
    for name in ("undefined_gallery.py", "implementation_profiles.py",
                 "custom_probe.py"):
        assert run_example(name) == run_example(name, "--no-lowering"), name
