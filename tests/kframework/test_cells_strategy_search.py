"""Unit tests for the K-style substrate: cells, strategies, and order search."""

from repro.kframework.cells import Cell, Configuration, make_configuration
from repro.kframework.search import PathOutcome, search_evaluation_orders
from repro.kframework.strategy import (
    LeftToRightStrategy,
    RightToLeftStrategy,
    ScriptedStrategy,
    strategy_for,
)


class TestCells:
    def test_find_nested_cell(self):
        root = Cell("T")
        local = root.add(Cell("local"))
        local.add(Cell("env", {"x": "sym(1)"}))
        config = Configuration(root=root)
        assert config.cell("env") is not None
        assert config.cell("missing") is None

    def test_render_contains_labels_and_content(self):
        cell = Cell("env", {"x": "sym(1)"})
        text = cell.render()
        assert "<env>" in text and "x |-> sym(1)" in text

    def test_make_configuration_structure(self):
        config = make_configuration(
            k=["main()"], genv={"g": "sym(1)"}, mem_summary={"sym(1)": "obj(4, static)"},
            locs_written={"sym(1)+0"}, not_writable=set(), call_stack=["main"],
            local_env={"x": "sym(2)"}, local_types={"x": "int"})
        assert config.cell("k").content == ["main()"]
        assert config.cell("callStack").content == ["main"]
        assert "sym(1)+0" in config.cell("locsWrittenTo").content
        assert config.cell("env").content == {"x": "sym(2)"}

    def test_render_empty_k_cell(self):
        assert ".K" in Cell("k", []).render()


class TestStrategies:
    def test_left_to_right(self):
        assert list(LeftToRightStrategy().order(3)) == [0, 1, 2]

    def test_right_to_left(self):
        assert list(RightToLeftStrategy().order(3)) == [2, 1, 0]

    def test_scripted_defaults_to_left_to_right(self):
        strategy = ScriptedStrategy()
        assert tuple(strategy.order(2)) == (0, 1)
        assert strategy.observed_arity == [2]

    def test_scripted_follows_decisions(self):
        strategy = ScriptedStrategy(decisions=[1])
        assert tuple(strategy.order(2)) == (1, 0)
        assert tuple(strategy.order(2)) == (0, 1)  # script exhausted

    def test_scripted_permutations_for_three(self):
        strategy = ScriptedStrategy(decisions=[5])
        assert tuple(strategy.order(3)) == (2, 1, 0)

    def test_strategy_for_names(self):
        assert isinstance(strategy_for("left-to-right"), LeftToRightStrategy)
        assert isinstance(strategy_for("right-to-left"), RightToLeftStrategy)
        assert isinstance(strategy_for("search"), ScriptedStrategy)

    def test_strategy_for_unknown_raises(self):
        import pytest
        with pytest.raises(ValueError):
            strategy_for("random")


class TestSearch:
    def test_single_path_program(self):
        def run(strategy):
            return PathOutcome(script=(), undefined=False)

        result = search_evaluation_orders(run)
        assert result.explored == 1
        assert not result.any_undefined
        assert result.exhausted

    def test_explores_both_orders_of_one_decision(self):
        seen = []

        def run(strategy):
            order = tuple(strategy.order(2))
            seen.append(order)
            return PathOutcome(script=(), undefined=order == (1, 0))

        result = search_evaluation_orders(run)
        assert (0, 1) in seen and (1, 0) in seen
        assert result.any_undefined
        assert result.first_undefined is not None

    def test_stop_at_first_undefined(self):
        def run(strategy):
            strategy.order(2)
            return PathOutcome(script=(), undefined=True)

        result = search_evaluation_orders(run, stop_at_first=True)
        assert result.explored == 1

    def test_max_paths_bound(self):
        def run(strategy):
            for _ in range(6):
                strategy.order(2)
            return PathOutcome(script=(), undefined=False)

        result = search_evaluation_orders(run, max_paths=5)
        assert result.explored == 5
        assert not result.exhausted

    def test_exhaustive_for_two_decisions(self):
        observed = set()

        def run(strategy):
            first = tuple(strategy.order(2))
            second = tuple(strategy.order(2))
            observed.add((first, second))
            return PathOutcome(script=(), undefined=False)

        result = search_evaluation_orders(run, max_paths=16)
        assert len(observed) == 4
        assert result.exhausted
