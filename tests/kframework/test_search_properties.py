"""Property tests: every engine variant enumerates the same verdicts.

For randomized small expression trees (unsequenced ``+`` groups over
increments of a handful of globals — sometimes conflicting, sometimes
commuting), the naive enumerating engine, the deduplicating/pruning engine,
the checkpoint (fork) engine, and the parallel sharded engine must agree on
the *set* of verdicts reachable across evaluation orders.  Deduplication
merges suffix-equivalent interleavings, so engines may record different
numbers of paths — but never different verdicts.

A second pin runs the whole undefinedness suite in search mode with
deduplication on and off and requires ``any_undefined`` to be untouched.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Checker, SearchBudget
from repro.kframework.engine import checkpoint_supported
from repro.suites.ubsuite import generate_undefinedness_suite

VARIABLES = ("ga", "gb", "gc")

#: Leaves: a pure read, an increment (side effect), or a constant.
LEAF = st.sampled_from(
    [f"{name}" for name in VARIABLES]
    + [f"({name}++)" for name in VARIABLES]
    + ["1", "2"]
)


def _pair(left: str, right: str) -> str:
    return f"({left} + {right})"


#: Expression trees up to depth 2: every ``+`` is an unsequenced group.
EXPRESSION = st.recursive(
    LEAF, lambda inner: st.builds(_pair, inner, inner), max_leaves=6
)


def render_program(expressions: list[str]) -> str:
    body = "\n".join(f"    r += {expression};" for expression in expressions)
    names = ", ".join(VARIABLES)
    header = f"int {names};\nint main(void) {{\n    int r = 0;\n"
    return header + body + "\n    return 0;\n}\n"


def verdict_set(report) -> set:
    search = report.search
    assert search is not None
    out = set()
    for path in search.paths:
        outcome = path.payload
        kinds = tuple(outcome.ub_kinds) if outcome.flagged else ()
        out.add((path.undefined, kinds))
    return out


def run_engine(checker: Checker, source: str, **kwargs) -> object:
    kwargs.setdefault("budget", SearchBudget(max_paths=2048))
    kwargs.setdefault("stop_at_first", False)
    return checker.search(source, **kwargs)


@given(expressions=st.lists(EXPRESSION, min_size=1, max_size=2))
@settings(max_examples=25, deadline=None)
def test_dedup_and_checkpoints_preserve_the_verdict_set(expressions):
    source = render_program(expressions)
    checker = Checker()
    naive = run_engine(
        checker,
        source,
        checkpoint="replay",
        dedup_states=False,
        prune_commuting=False,
    )
    assert naive.search.exhausted, "grow the budget: the naive engine was cut"
    deduped = run_engine(checker, source, checkpoint="replay")
    engines = [deduped]
    if checkpoint_supported():
        engines.append(run_engine(checker, source, checkpoint="fork"))
    for report in engines:
        assert report.search.exhausted
        assert verdict_set(report) == verdict_set(naive)
        assert report.search.any_undefined == naive.search.any_undefined
        assert report.outcome.flagged == naive.outcome.flagged


@given(expressions=st.lists(EXPRESSION, min_size=1, max_size=2))
@settings(max_examples=8, deadline=None)
def test_parallel_sharding_preserves_the_verdict_set(expressions):
    source = render_program(expressions)
    checker = Checker()
    serial = run_engine(checker, source)
    parallel = run_engine(checker, source, jobs=2)
    assert verdict_set(parallel) == verdict_set(serial)
    assert parallel.search.any_undefined == serial.search.any_undefined
    assert parallel.outcome.kind == serial.outcome.kind


def test_dedup_never_changes_any_undefined_on_the_ubsuite():
    suite = generate_undefinedness_suite()
    checker = Checker()
    for case in suite.cases:
        deduped = checker.search(case.source, filename=case.name)
        naive = checker.search(
            case.source,
            filename=case.name,
            dedup_states=False,
            prune_commuting=False,
        )
        if deduped.search is None or naive.search is None:
            # Parse failures and static errors never reach the engine.
            assert (deduped.search is None) == (naive.search is None), case.name
            continue
        assert deduped.search.any_undefined == naive.search.any_undefined, case.name
        assert deduped.outcome.flagged == naive.outcome.flagged, case.name
