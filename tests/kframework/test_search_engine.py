"""The evaluation-order search engine: checkpoints, dedup, budgets, shards.

These tests drive the engine through the public ``Checker.search`` API so
they cover the whole stack: the lowered (instrumented) IR, the engine
strategy, footprint pruning, state dedup, fork checkpoints with the replay
fallback, honest budget semantics, and parallel frontier sharding.
"""

import pytest

from repro import Checker, CheckerOptions, OutcomeKind, SearchBudget, UBKind
from repro.kframework.engine import checkpoint_supported
from repro.kframework.search import (
    STOP_EXHAUSTED,
    STOP_FIRST_UNDEFINED,
    STOP_MAX_PATHS,
    STOP_MAX_STATES,
    STOP_WALL_CLOCK,
    PathOutcome,
    search_evaluation_orders,
)
from repro.suites.ubsuite import generate_undefinedness_suite

SET_DENOM = """
int d = 5;
int setDenom(int x){ return d = x; }
int main(void) { return (10/d) + setDenom(0); }
"""

ORDER_DEPENDENT_CONFLICT = """
int main(void){ int i = 1; return i + (i = 2); }
"""

#: Eight sequential two-way decisions over disjoint objects: 256 orders,
#: every sibling provably equivalent to the default order.
COMMUTING_CHAIN = """
int u1, u2, u3, u4, u5, u6, u7, u8;
int u9, u10, u11, u12, u13, u14, u15, u16;
int main(void) {
    int r = 0;
    r += (u1++) + (u2++);
    r += (u3++) + (u4++);
    r += (u5++) + (u6++);
    r += (u7++) + (u8++);
    r += (u9++) + (u10++);
    r += (u11++) + (u12++);
    r += (u13++) + (u14++);
    r += (u15++) + (u16++);
    return r;
}
"""

#: Same shape, but sibling orders converge only *after* each statement:
#: with pruning disabled, deduplication has to do the merging.
CONVERGING_CHAIN = """
int v1, v2, v3, v4, v5, v6, v7, v8;
int main(void) {
    int r = 0;
    r += (v1++) + (v2++);
    r += (v3++) + (v4++);
    r += (v5++) + (v6++);
    r += (v7++) + (v8++);
    return r;
}
"""


def verdict(report):
    return (report.outcome.kind, tuple(report.outcome.ub_kinds))


class TestEngineVerdicts:
    @pytest.mark.parametrize("checkpoint", ["auto", "replay"])
    def test_order_dependent_division_found(self, checkpoint):
        report = Checker().search(SET_DENOM, checkpoint=checkpoint)
        assert report.outcome.kind is OutcomeKind.UNDEFINED
        assert UBKind.DIVISION_BY_ZERO in report.outcome.ub_kinds
        assert report.search is not None and report.search.explored >= 2

    @pytest.mark.parametrize("checkpoint", ["auto", "replay"])
    def test_unsequenced_conflict_found(self, checkpoint):
        report = Checker().search(ORDER_DEPENDENT_CONFLICT, checkpoint=checkpoint)
        assert UBKind.UNSEQUENCED_SIDE_EFFECT in report.outcome.ub_kinds

    @pytest.mark.parametrize("strategy", ["dfs", "bfs", "random"])
    def test_frontiers_agree_on_verdicts(self, strategy):
        checker = Checker()
        for source in (SET_DENOM, ORDER_DEPENDENT_CONFLICT, COMMUTING_CHAIN):
            report = checker.search(source, strategy=strategy, seed=7)
            baseline = checker.search(source)
            assert verdict(report) == verdict(baseline), (strategy, source)

    def test_defined_program_exhausts_cleanly(self):
        report = Checker().search(COMMUTING_CHAIN)
        assert report.outcome.kind is OutcomeKind.DEFINED
        summary = report.search
        assert summary.exhausted and summary.stop_reason == STOP_EXHAUSTED
        assert summary.coverage() == 1.0

    def test_walker_engine_agrees(self):
        lowered = Checker()
        walker = Checker(CheckerOptions(enable_lowering=False))
        for source in (SET_DENOM, ORDER_DEPENDENT_CONFLICT, CONVERGING_CHAIN):
            assert verdict(walker.search(source)) == verdict(lowered.search(source))


class TestCheckpointing:
    @pytest.mark.skipif(not checkpoint_supported(), reason="no os.fork")
    def test_siblings_resume_instead_of_rerunning(self):
        report = Checker().search(COMMUTING_CHAIN, prune_commuting=False)
        summary = report.search
        # One run from main; every other explored order resumed from a
        # forked checkpoint at its divergence point.
        assert summary.full_executions == 1
        assert summary.partial_replays == 0
        assert summary.resumed_executions == summary.explored - 1
        assert summary.explored + summary.merged_paths > 8

    @pytest.mark.skipif(not checkpoint_supported(), reason="no os.fork")
    def test_fork_and_replay_verdicts_match(self):
        checker = Checker()
        for source in (SET_DENOM, CONVERGING_CHAIN, ORDER_DEPENDENT_CONFLICT):
            forked = checker.search(source, checkpoint="fork")
            replayed = checker.search(source, checkpoint="replay")
            assert verdict(forked) == verdict(replayed)

    @pytest.mark.skipif(not checkpoint_supported(), reason="no os.fork")
    def test_fork_mode_rejects_non_dfs_frontiers(self):
        # Checkpoints resume LIFO (depth-first by construction); silently
        # ignoring a requested BFS/random frontier would be dishonest.
        with pytest.raises(ValueError):
            Checker().search(SET_DENOM, checkpoint="fork", strategy="bfs")
        report = Checker().search(SET_DENOM, checkpoint="replay", strategy="bfs")
        assert report.outcome.kind is OutcomeKind.UNDEFINED

    def test_fork_mode_rejected_without_fork(self, monkeypatch):
        monkeypatch.setattr(
            "repro.kframework.engine.checkpoint_supported", lambda: False
        )
        with pytest.raises(ValueError):
            Checker().search(SET_DENOM, checkpoint="fork")

    def test_auto_falls_back_to_replay_without_fork(self, monkeypatch):
        monkeypatch.setattr(
            "repro.kframework.engine.checkpoint_supported", lambda: False
        )
        report = Checker().search(SET_DENOM)
        assert report.outcome.kind is OutcomeKind.UNDEFINED
        assert report.search.resumed_executions == 0


class TestDedupAndPruning:
    def test_commuting_orders_are_pruned(self):
        report = Checker().search(COMMUTING_CHAIN, checkpoint="replay")
        summary = report.search
        assert summary.pruned_orders >= 8
        assert summary.explored == 1  # every sibling proved equivalent
        assert summary.exhausted

    def test_dedup_merges_converging_interleavings(self):
        checker = Checker()
        deduped = checker.search(
            CONVERGING_CHAIN, checkpoint="replay", prune_commuting=False
        ).search
        naive = checker.search(
            CONVERGING_CHAIN,
            checkpoint="replay",
            prune_commuting=False,
            dedup_states=False,
        ).search
        assert deduped.merged_paths > 0
        assert deduped.runs_from_main < naive.runs_from_main
        assert naive.explored == 16  # 2^4 distinct scripts, none merged

    def test_conflicting_footprints_are_not_pruned(self):
        report = Checker().search(ORDER_DEPENDENT_CONFLICT, checkpoint="replay")
        assert report.outcome.kind is OutcomeKind.UNDEFINED


class TestBudgets:
    def test_max_paths_reports_honest_stop(self):
        report = Checker().search(
            CONVERGING_CHAIN,
            budget=SearchBudget(max_paths=3),
            prune_commuting=False,
            dedup_states=False,
            checkpoint="replay",
        )
        summary = report.search
        assert summary.explored == 3
        assert summary.stop_reason == STOP_MAX_PATHS
        assert not summary.exhausted
        assert summary.skipped_alternatives > 0
        assert summary.coverage() < 1.0

    def test_max_paths_never_blocks_an_exhaustive_search(self):
        report = Checker().search(
            CONVERGING_CHAIN,
            budget=SearchBudget(max_paths=64),
            prune_commuting=False,
            dedup_states=False,
            checkpoint="replay",
        )
        assert report.search.explored == 16
        assert report.search.exhausted

    def test_max_states_bounds_the_dedup_table(self):
        report = Checker().search(
            CONVERGING_CHAIN,
            budget=SearchBudget(max_states=2),
            prune_commuting=False,
            checkpoint="replay",
        )
        summary = report.search
        assert summary.stop_reason == STOP_MAX_STATES
        assert summary.states_seen <= 2

    @pytest.mark.skipif(not checkpoint_supported(), reason="no os.fork")
    def test_skip_accounting_matches_across_checkpoint_modes(self):
        # A mid-run stop must not double-count walked-past siblings in
        # replay mode (once at the decision, again in the drained frontier).
        budget = SearchBudget(max_states=1)
        forked = Checker().search(
            CONVERGING_CHAIN, budget=budget, checkpoint="fork"
        ).search
        replayed = Checker().search(
            CONVERGING_CHAIN, budget=budget, checkpoint="replay"
        ).search
        assert forked.stop_reason == STOP_MAX_STATES
        assert replayed.stop_reason == STOP_MAX_STATES
        assert forked.skipped_alternatives == replayed.skipped_alternatives
        assert forked.coverage() == replayed.coverage()

    def test_parallel_search_honors_max_paths(self):
        report = Checker().search(
            CONVERGING_CHAIN,
            budget=SearchBudget(max_paths=4),
            prune_commuting=False,
            dedup_states=False,
            stop_at_first=False,
            jobs=4,
        )
        assert report.search.explored <= 4
        assert report.search.stop_reason == STOP_MAX_PATHS

    def test_wall_clock_budget_stops_the_search(self):
        report = Checker().search(
            CONVERGING_CHAIN,
            budget=SearchBudget(max_seconds=0.0),
            checkpoint="replay",
        )
        assert report.search.stop_reason == STOP_WALL_CLOCK
        assert not report.search.exhausted

    def test_budget_parse(self):
        budget = SearchBudget.parse("paths=256,states=10000,seconds=5")
        assert budget == SearchBudget(max_paths=256, max_states=10000, max_seconds=5.0)
        assert SearchBudget.parse("paths=none").max_paths is None
        with pytest.raises(ValueError):
            SearchBudget.parse("fuel=9")


class TestParallelSharding:
    def test_parallel_matches_serial_on_search_cases(self):
        suite = generate_undefinedness_suite()
        cases = suite.search_cases()
        assert cases, "the ubsuite lost its sequencing group"
        checker = Checker()
        for case in cases:
            serial = checker.search(case.source, filename=case.name)
            parallel = checker.search(case.source, filename=case.name, jobs=4)
            assert verdict(parallel) == verdict(serial), case.name
            assert parallel.search.any_undefined == serial.search.any_undefined

    def test_parallel_path_cap_never_drops_an_undefined_path(self):
        # An undefined order discovered by a late shard must survive the
        # merged max_paths truncation: the cap bounds how many path
        # outcomes are retained, never the verdict (§2.5.2 — undefined if
        # *any* order is undefined).
        source = """
int d = 0;
int setDenom(int v){ d = v; return v; }
int main(void){
    int x = (setDenom(0) + setDenom(2)) + (1/d == 0);
    return x != 0;
}
"""
        report = Checker().search(
            source,
            budget=SearchBudget(max_paths=4),
            prune_commuting=False,
            dedup_states=False,
            stop_at_first=False,
            jobs=4,
        )
        assert report.outcome.kind is OutcomeKind.UNDEFINED
        assert report.search.any_undefined
        assert report.search.explored <= 4

    def test_fork_mode_defined_report_keeps_an_execution_result(self):
        # Sibling orders run in forked children, whose ExecutionResults
        # never reach the parent; the report must still carry the result
        # of a defined order executed in this process (the root qualifies).
        if not checkpoint_supported():
            pytest.skip("fork checkpoints unsupported on this platform")
        source = """
int a = 0;
int f(int v){ a += v; return v; }
int main(void){ int x = f(1) + f(2); return x != 3; }
"""
        report = Checker().search(source, checkpoint="fork")
        assert report.outcome.kind is OutcomeKind.DEFINED
        assert report.search.resumed_executions > 0
        assert report.result is not None

    def test_parallel_covers_the_same_tree(self):
        checker = Checker()
        serial = checker.search(
            CONVERGING_CHAIN, prune_commuting=False, dedup_states=False
        ).search
        parallel = checker.search(
            CONVERGING_CHAIN, prune_commuting=False, dedup_states=False, jobs=3
        ).search
        assert {p.script for p in parallel.paths} == {p.script for p in serial.paths}


class TestLegacyDriverHonesty:
    """The seed's callback driver, kept with honest exhaustion semantics."""

    def test_stop_at_first_on_last_order_is_still_exhaustive(self):
        def run(strategy):
            order = tuple(strategy.order(2))
            return PathOutcome(script=(), undefined=order == (1, 0))

        result = search_evaluation_orders(run, stop_at_first=True)
        assert result.any_undefined
        assert result.stop_reason == STOP_EXHAUSTED
        assert result.exhausted

    def test_stop_at_first_with_pending_work_is_not_exhaustive(self):
        def run(strategy):
            strategy.order(2)
            strategy.order(2)
            return PathOutcome(script=(), undefined=True)

        result = search_evaluation_orders(run, stop_at_first=True)
        assert result.explored == 1
        assert result.stop_reason == STOP_FIRST_UNDEFINED
        assert not result.exhausted
        assert result.skipped_alternatives == 2

    def test_max_paths_cap_checked_against_pending_work(self):
        def run(strategy):
            strategy.order(2)
            return PathOutcome(script=(), undefined=False)

        capped = search_evaluation_orders(run, max_paths=1)
        assert capped.explored == 1
        assert capped.stop_reason == STOP_MAX_PATHS and not capped.exhausted
        exact = search_evaluation_orders(run, max_paths=2)
        assert exact.explored == 2
        assert exact.stop_reason == STOP_EXHAUSTED and exact.exhausted
