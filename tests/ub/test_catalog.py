"""Tests for the undefined-behavior catalog (the §5.2.1 classification)."""

from repro.errors import UBKind
from repro.ub import UB_CATALOG, count_dynamic, count_static, entries_for_kind
from repro.ub.catalog import (
    PAPER_DYNAMIC_BEHAVIORS,
    PAPER_STATIC_BEHAVIORS,
    PAPER_TOTAL_BEHAVIORS,
    coverage_summary,
    entries_for_section,
)


class TestCatalogStructure:
    def test_every_entry_has_section_and_description(self):
        for entry in UB_CATALOG:
            assert entry.section, entry.identifier
            assert entry.description, entry.identifier

    def test_every_entry_classified(self):
        assert all(entry.stage in ("static", "dynamic") for entry in UB_CATALOG)

    def test_identifiers_are_unique(self):
        identifiers = [entry.identifier for entry in UB_CATALOG]
        assert len(identifiers) == len(set(identifiers))

    def test_counts_are_consistent(self):
        assert count_static() + count_dynamic() == len(UB_CATALOG)

    def test_dynamic_behaviors_are_the_majority(self):
        # The paper: "the majority of the categories of undefined behavior in
        # C are dynamic in nature" (129 of 221).
        assert count_dynamic() > count_static()

    def test_paper_constants(self):
        assert PAPER_TOTAL_BEHAVIORS == 221
        assert PAPER_STATIC_BEHAVIORS == 92
        assert PAPER_DYNAMIC_BEHAVIORS == 129
        assert PAPER_STATIC_BEHAVIORS + PAPER_DYNAMIC_BEHAVIORS == PAPER_TOTAL_BEHAVIORS

    def test_catalog_is_substantial(self):
        assert len(UB_CATALOG) >= 90


class TestCatalogQueries:
    def test_entries_for_kind(self):
        division = entries_for_kind(UBKind.DIVISION_BY_ZERO)
        assert division
        assert all(e.kind is UBKind.DIVISION_BY_ZERO for e in division)

    def test_entries_for_section(self):
        expressions = entries_for_section("6.5")
        assert len(expressions) >= 10

    def test_coverage_summary_keys(self):
        summary = coverage_summary()
        assert summary["paper_total"] == 221
        assert summary["catalog_total"] == len(UB_CATALOG)
        assert 0 < summary["catalog_covered_by_checker"] <= summary["catalog_total"]

    def test_checker_covers_a_majority_of_catalogued_memory_behaviors(self):
        covered = [e for e in UB_CATALOG if e.covered]
        assert len(covered) >= 40

    def test_key_behaviors_present(self):
        identifiers = {e.identifier for e in UB_CATALOG}
        for expected in ("division-by-zero", "unsequenced-side-effects",
                         "string-literal-modified", "free-invalid-pointer",
                         "relational-comparison-unrelated-pointers", "data-race"):
            assert expected in identifiers
