"""Execute every ``python`` code block in README.md and docs/*.md.

Documentation that does not run is documentation that rots: each fenced
``python`` block must be a self-contained, executable program (the blocks
use ``assert`` so a drifted claim fails loudly).  Shell/console/text blocks
are not executed.
"""

import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

_FENCE = re.compile(r"^```(\w*)\s*$")


def python_blocks(path: pathlib.Path):
    """Yield (start_line, source) for each fenced python block in ``path``."""
    blocks = []
    language = None
    buffer: list[str] = []
    start = 0
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        fence = _FENCE.match(line)
        if fence is not None:
            if language is None:
                language = fence.group(1) or "text"
                buffer = []
                start = number + 1
            else:
                if language == "python":
                    blocks.append((start, "\n".join(buffer) + "\n"))
                language = None
        elif language is not None:
            buffer.append(line)
    assert language is None, f"unterminated code fence in {path}"
    return blocks


def collect_cases():
    cases = []
    for path in DOC_FILES:
        for start, source in python_blocks(path):
            cases.append(pytest.param(
                path, start, source,
                id=f"{path.relative_to(REPO_ROOT)}:{start}"))
    return cases


CASES = collect_cases()


def test_docs_have_executable_examples():
    assert len(CASES) >= 5, "the documentation lost its executable examples"
    documented = {path for path, _start, _source in
                  (case.values for case in CASES)}
    assert REPO_ROOT / "README.md" in documented
    assert REPO_ROOT / "docs" / "api.md" in documented


@pytest.mark.parametrize("path,start,source", CASES)
def test_doc_block_executes(path, start, source):
    namespace = {"__name__": f"doc_block_{path.stem}_{start}"}
    code = compile(source, f"{path.name}:{start}", "exec")
    exec(code, namespace)  # a failing assert or exception fails the doc
