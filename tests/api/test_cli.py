"""Tests for the kcc-check subcommand CLI (and ``python -m repro``)."""

import io
import json
import os
import subprocess
import sys

import pytest

from repro.api.cli import main

DEFINED = "int main(void){ return 0; }\n"
EXITS_3 = "int main(void){ return 3; }\n"
UNDEFINED = "int main(void){ int d = 0; return 5 / d; }\n"
STATIC_BAD = "int main(void){ int a[0]; return 0; }\n"
UNPARSABLE = "int main(void) { return ; \n"
ORDER_DEPENDENT = """
static int d = 5;
static int setDenom(int x){ return d = x; }
int main(void) { return (10/d) + setDenom(0); }
"""


@pytest.fixture
def cfile(tmp_path):
    def write(name, source):
        path = tmp_path / name
        path.write_text(source, encoding="utf-8")
        return str(path)
    return write


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCheckSubcommand:
    def test_defined_program_exits_zero(self, cfile):
        code, text = run_cli("check", cfile("ok.c", DEFINED))
        assert code == 0
        assert "exit code 0" in text

    def test_undefined_program_exits_one(self, cfile):
        code, text = run_cli("check", cfile("bad.c", UNDEFINED))
        assert code == 1
        assert "Error: 00001" in text

    def test_static_error_exits_one(self, cfile):
        code, _ = run_cli("check", cfile("static.c", STATIC_BAD))
        assert code == 1

    def test_unparsable_program_exits_two(self, cfile):
        code, _ = run_cli("check", cfile("broken.c", UNPARSABLE))
        assert code == 2

    def test_multiple_files_worst_verdict_wins(self, cfile):
        code, text = run_cli("check", cfile("ok.c", DEFINED),
                             cfile("bad.c", UNDEFINED), "--jobs", "2")
        assert code == 1
        assert "ok.c" in text and "bad.c" in text

    def test_json_format_is_machine_readable(self, cfile):
        code, text = run_cli("check", cfile("ok.c", DEFINED),
                             cfile("bad.c", UNDEFINED), "--format", "json")
        assert code == 1
        docs = json.loads(text)
        assert [doc["outcome"]["kind"] for doc in docs] == ["defined", "undefined"]
        assert docs[1]["outcome"]["diagnostics"][0]["code"] == "00001"

    def test_json_shape_is_a_list_even_for_one_file(self, cfile):
        _, text = run_cli("check", cfile("ok.c", DEFINED), "--format", "json")
        docs = json.loads(text)
        assert isinstance(docs, list) and len(docs) == 1

    def test_seed_style_invocation_still_works(self, cfile):
        # The seed CLI was `kcc-check prog.c [--search]`; no subcommand.
        code, text = run_cli(cfile("bad.c", UNDEFINED))
        assert code == 1
        assert "ERROR! KCC encountered an error." in text

    def test_no_static_flag(self, cfile):
        code, _ = run_cli("check", cfile("static.c", STATIC_BAD), "--no-static")
        assert code == 0  # runs dynamically; int a[0] is never touched

    def test_missing_file_is_a_clean_usage_error(self, capsys):
        code, _ = run_cli("check", "/no/such/file.c")
        assert code == 64  # EX_USAGE: distinct from the inconclusive verdict
        assert "cannot read /no/such/file.c" in capsys.readouterr().err


class TestRunSubcommand:
    def test_run_propagates_program_exit_code(self, cfile):
        code, _ = run_cli("run", cfile("three.c", EXITS_3))
        assert code == 3

    def test_run_prints_program_output(self, cfile):
        source = '#include <stdio.h>\nint main(void){ puts("hi"); return 0; }\n'
        code, text = run_cli("run", cfile("hello.c", source))
        assert code == 0
        assert text == "hi\n"

    def test_run_on_undefined_exits_one_with_report(self, cfile):
        code, text = run_cli("run", cfile("bad.c", UNDEFINED))
        assert code == 1
        assert "ERROR! KCC" in text


class TestSearchSubcommand:
    def test_search_finds_order_dependent_ub(self, cfile):
        path = cfile("order.c", ORDER_DEPENDENT)
        assert run_cli("check", path)[0] == 0          # default order: defined
        code, text = run_cli("search", path)
        assert code == 1
        assert "00001" in text                          # division by zero found


class TestBenchSubcommand:
    def test_bench_smoke_renders_tables(self):
        code, text = run_cli("bench", "--smoke")
        assert code == 0
        assert "Comparison of analysis tools" in text
        assert "kcc" in text

    def test_bench_tools_selects_the_lineup(self):
        code, text = run_cli("bench", "--smoke", "--tools", "kcc,Valgrind")
        assert code == 0
        assert "Valgrind" in text

    def test_bench_unknown_tool_is_a_clean_error(self, capsys):
        code, _ = run_cli("bench", "--smoke", "--tools", "lint9000")
        assert code == 64
        assert "lint9000" in capsys.readouterr().err


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, cfile, tmp_path):
        env = dict(os.environ)
        src_dir = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check", cfile("ok.c", DEFINED)],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
        assert "exit code 0" in proc.stdout
