"""Tests for batch checking: parallel verdicts must match the serial path."""

import pytest

from repro import Checker, check_many, iter_check_many
from repro.errors import OutcomeKind
from repro.suites.ubsuite import generate_undefinedness_suite


def verdict(report):
    """Everything observable about one verdict (AST excluded by design)."""
    return (
        report.filename,
        report.outcome.kind,
        report.outcome.flagged,
        report.outcome.exit_code,
        [k.name for k in report.outcome.ub_kinds],
        [v.message for v in report.outcome.static_violations],
    )


@pytest.fixture(scope="module")
def ubsuite_pairs():
    suite = generate_undefinedness_suite()
    return [(case.name, case.source) for case in suite.cases]


class TestCheckMany:
    def test_parallel_matches_serial_on_full_ubsuite(self, ubsuite_pairs):
        serial = check_many(ubsuite_pairs, jobs=1)
        parallel = check_many(ubsuite_pairs, jobs=2)
        assert len(serial) == len(parallel) == len(ubsuite_pairs)
        for s, p in zip(serial, parallel):
            assert verdict(s) == verdict(p)

    def test_reports_come_back_in_input_order(self):
        sources = [
            ("good.c", "int main(void){ return 0; }"),
            ("bad.c", "int main(void){ int d = 0; return 1 / d; }"),
            ("broken.c", "int main(void) { return ; "),
        ]
        reports = check_many(sources, jobs=2)
        assert [r.filename for r in reports] == ["good.c", "bad.c", "broken.c"]
        assert [r.outcome.kind for r in reports] == [
            OutcomeKind.DEFINED, OutcomeKind.UNDEFINED, OutcomeKind.INCONCLUSIVE]

    def test_plain_strings_get_indexed_filenames(self):
        reports = check_many(["int main(void){ return 1; }",
                              "int main(void){ return 2; }"])
        assert [r.filename for r in reports] == ["<input:0>", "<input:1>"]
        assert [r.outcome.exit_code for r in reports] == [1, 2]

    def test_streaming_iterator_preserves_order(self):
        sources = [f"int main(void){{ return {n}; }}" for n in range(8)]
        seen = [r.outcome.exit_code for r in iter_check_many(sources, jobs=2)]
        assert seen == list(range(8))

    def test_parallel_reports_drop_the_ast_only(self):
        source = "int main(void){ int x = 0; return (x = 1) + (x = 2); }"
        [serial] = check_many([source], jobs=1)
        [parallel] = check_many([source, source], jobs=2)[:1]
        assert serial.unit is not None
        assert parallel.unit is None
        assert parallel.outcome.error is not None
        assert parallel.outcome.error.kind == serial.outcome.error.kind
        assert parallel.outcome.error.line == serial.outcome.error.line

    def test_empty_batch(self):
        assert check_many([], jobs=4) == []

    def test_bare_string_is_rejected_not_iterated(self):
        with pytest.raises(TypeError, match="sequence of programs"):
            check_many("int main(void){ return 0; }")

    def test_serial_path_honors_explicit_flags_over_checker_config(self):
        # A cache-lending checker with search off must not override the
        # call's explicit search flag — jobs=1 and jobs>1 classify alike.
        order_dependent = """
        static int d = 5;
        static int setDenom(int x){ return d = x; }
        int main(void) { return (10/d) + setDenom(0); }
        """
        checker = Checker()
        [report] = check_many([order_dependent], search_evaluation_order=True,
                              jobs=1, checker=checker)
        assert report.outcome.flagged
        assert checker.stats.parse_count == 1  # cache still used

    def test_checker_method_uses_its_cache_serially(self):
        checker = Checker()
        sources = ["int main(void){ return 3; }"] * 3
        reports = checker.check_many(sources, jobs=1)
        assert [r.outcome.exit_code for r in reports] == [3, 3, 3]
        assert checker.stats.parse_count == 1
