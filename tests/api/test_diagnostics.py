"""Tests for structured diagnostics, JSON round-trips, and the new errors."""

import json
import pickle

import pytest

from repro import (
    Diagnostic,
    InconclusiveAnalysis,
    OutcomeKind,
    UBKind,
    check_program,
    run_program,
)
from repro.errors import UndefinedBehaviorError
from repro.reporting import format_percent
from repro.suites.harness import CaseRecord, SuiteScore, TestCase
from repro.analyzers.base import ToolResult

SOURCES_BY_KIND = {
    OutcomeKind.DEFINED: "int main(void){ return 4; }",
    OutcomeKind.UNDEFINED: "int main(void){ int d = 0; return 5 / d; }",
    OutcomeKind.STATIC_ERROR: "int main(void){ int a[0]; return 0; }",
    OutcomeKind.INCONCLUSIVE: "int main(void) { return ; ",
}


class TestReportJson:
    @pytest.mark.parametrize("kind", list(OutcomeKind))
    def test_to_json_round_trips_every_outcome_kind(self, kind):
        report = check_program(SOURCES_BY_KIND[kind])
        assert report.outcome.kind is kind
        data = json.loads(report.to_json())
        assert data["outcome"]["kind"] == kind.value
        assert data["outcome"]["flagged"] == report.flagged
        rebuilt = [Diagnostic.from_dict(d) for d in data["outcome"]["diagnostics"]]
        assert rebuilt == report.diagnostics()

    def test_undefined_diagnostic_carries_code_and_section(self):
        report = check_program(SOURCES_BY_KIND[OutcomeKind.UNDEFINED])
        [diagnostic] = report.diagnostics()
        assert diagnostic.code == UBKind.DIVISION_BY_ZERO.error_code
        assert diagnostic.section == "6.5.5:5"
        assert diagnostic.stage == "dynamic"
        assert diagnostic.line is not None

    def test_static_diagnostic_stage(self):
        report = check_program(SOURCES_BY_KIND[OutcomeKind.STATIC_ERROR])
        assert all(d.stage == "static" for d in report.diagnostics())

    def test_parse_failure_diagnostic_is_an_error_in_the_parse_stage(self):
        # The same labels the compile stage gives the identical failure.
        report = check_program(SOURCES_BY_KIND[OutcomeKind.INCONCLUSIVE])
        [diagnostic] = report.diagnostics()
        assert diagnostic.severity == "error"
        assert diagnostic.stage == "parse"

    def test_non_parse_inconclusive_stays_a_note(self):
        from repro import CheckerOptions
        looping = "int main(void){ while (1) { } return 0; }"
        report = check_program(looping, CheckerOptions(max_steps=500))
        assert report.outcome.kind is OutcomeKind.INCONCLUSIVE
        [diagnostic] = report.diagnostics()
        assert diagnostic.severity == "note"
        assert diagnostic.stage == "analysis"

    def test_from_dict_rejects_documents_missing_required_fields(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic.from_dict({"message": "x", "stage": "parse"})
        with pytest.raises(ValueError, match="message"):
            Diagnostic.from_dict({"severity": "error", "stage": "parse"})

    def test_diagnostic_render_is_one_line(self):
        report = check_program(SOURCES_BY_KIND[OutcomeKind.UNDEFINED])
        [diagnostic] = report.diagnostics()
        text = diagnostic.render()
        assert "\n" not in text
        assert diagnostic.code in text and "C11" in text

    def test_search_summary_in_json(self):
        report = check_program(
            "int main(void){ int i = 1; return i + (i = 2); }",
            search_evaluation_order=True)
        data = json.loads(report.to_json())
        assert data["search"]["explored"] >= 2
        assert data["search"]["undefined_paths"] >= 1


class TestRunProgramInconclusive:
    def test_run_program_raises_instead_of_fabricating_success(self):
        with pytest.raises(InconclusiveAnalysis) as excinfo:
            run_program("int main(void) { return ; ")
        assert "unterminated" in str(excinfo.value)

    def test_inconclusive_carries_the_outcome(self):
        try:
            run_program("int main(void) { return ; ")
        except InconclusiveAnalysis as error:
            assert error.outcome is not None
            assert error.outcome.kind is OutcomeKind.INCONCLUSIVE


class TestErrorPickling:
    def test_undefined_behavior_error_survives_pickling(self):
        error = UndefinedBehaviorError(UBKind.SIGNED_OVERFLOW, "overflow!",
                                       function="main", line=12, column=3)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.kind is UBKind.SIGNED_OVERFLOW
        assert clone.message == "overflow!"
        assert (clone.function, clone.line, clone.column) == ("main", 12, 3)


class TestEmptyDenominatorRates:
    def _score(self):
        case = TestCase(name="t", source="", is_bad=True, category="arith",
                        behavior="b", stage="dynamic")
        record = CaseRecord(case=case, result=ToolResult(tool="x", flagged=True))
        return SuiteScore(tool="x", records=[record])

    def test_rates_for_missing_categories_are_none_not_zero(self):
        score = self._score()
        assert score.detection_rate("no-such-category") is None
        assert score.false_positive_rate() is None          # no good tests at all
        assert score.per_behavior_rate("static") is None    # no static behaviors
        assert score.detection_rate("arith") == 1.0

    def test_format_percent_renders_none_as_dash(self):
        assert format_percent(None) == "—"
        assert format_percent(0.0) == "0.0"
        assert format_percent(1.0) == "100.0"

    def test_figure3_table_shows_dash_for_absent_stage(self):
        from repro.analyzers.base import KccAnalysisTool
        from repro.suites.harness import EvaluationHarness, TestSuite

        suite = TestSuite(name="tiny")
        suite.add(TestCase(name="bad", source="int main(void){ int d=0; return 1/d; }",
                           is_bad=True, category="div", behavior="div", stage="dynamic"))
        comparison = EvaluationHarness([KccAnalysisTool()]).run_suite(suite)
        table = comparison.figure3_table()
        assert "—" in table      # the static column: no static tests existed
        assert "100.0" in table  # the dynamic column: the one bad test, caught
