"""Tests for the staged session API: compile caching and unit reuse."""

from repro import Checker, CheckerOptions, CompiledUnit, ILP32, OutcomeKind, UBKind
from repro.api.session import SHARED_COMPILE_CACHE
from repro.analyzers.base import KccAnalysisTool
from repro.analyzers.value_analysis import ValueAnalysisTool

UNSEQUENCED = "int main(void){ int x = 0; return (x = 1) + (x = 2); }"
DEFINED = "int main(void){ return 7; }"


def outcome_key(report):
    """The observable verdict of a report, for equality checks."""
    return (report.outcome.kind,
            report.outcome.flagged,
            report.outcome.exit_code,
            [k.name for k in report.outcome.ub_kinds])


class TestCompiledUnitReuse:
    def test_compile_returns_unit_with_content_hash(self):
        checker = Checker()
        compiled = checker.compile(DEFINED)
        assert isinstance(compiled, CompiledUnit)
        assert compiled.ok
        assert len(compiled.hash) == 64
        assert compiled.profile_name == "lp64"

    def test_rerunning_a_unit_skips_the_parse_stage(self):
        checker = Checker()
        compiled = checker.compile(UNSEQUENCED)
        assert checker.stats.parse_count == 1
        first = checker.run(compiled)
        second = checker.run(compiled)
        third = checker.run(compiled)
        # Three runs, still exactly one parse: the parse-count hook is the
        # observable guarantee that the compile stage is reused.
        assert checker.stats.parse_count == 1
        assert checker.stats.run_count == 3
        assert outcome_key(first) == outcome_key(second) == outcome_key(third)
        assert first.outcome.kind is OutcomeKind.UNDEFINED

    def test_recompiling_same_source_hits_the_cache(self):
        checker = Checker()
        a = checker.compile(DEFINED)
        b = checker.compile(DEFINED)
        assert a is b
        assert checker.stats.parse_count == 1
        assert checker.stats.cache_hits == 1

    def test_check_twice_parses_once(self):
        checker = Checker()
        first = checker.check(DEFINED)
        second = checker.check(DEFINED)
        assert checker.stats.parse_count == 1
        assert outcome_key(first) == outcome_key(second)

    def test_cache_hit_keeps_the_callers_filename(self):
        checker = Checker()
        first = checker.check(DEFINED, filename="a.c")
        second = checker.check(DEFINED, filename="b.c")
        assert checker.stats.parse_count == 1       # parse shared
        assert first.filename == "a.c"
        assert second.filename == "b.c"             # not mislabeled "a.c"

    def test_running_a_unit_under_the_wrong_profile_is_rejected(self):
        import pytest

        ilp32 = Checker(CheckerOptions(profile=ILP32))
        compiled = ilp32.compile(DEFINED)
        lp64 = Checker()
        with pytest.raises(ValueError, match="profile"):
            lp64.run(compiled)
        with pytest.raises(ValueError, match="profile"):
            lp64.search(compiled)

    def test_different_profiles_get_different_units(self):
        lp64 = Checker()
        ilp32 = Checker(CheckerOptions(profile=ILP32))
        source = "int main(void){ return (int)sizeof(long); }"
        assert lp64.check(source).outcome.exit_code == 8
        assert ilp32.check(source).outcome.exit_code == 4

    def test_one_unit_backs_plain_run_and_search(self):
        source = """
        static int d = 5;
        static int setDenom(int x){ return d = x; }
        int main(void) { return (10/d) + setDenom(0); }
        """
        checker = Checker()
        compiled = checker.compile(source)
        plain = checker.run(compiled)
        searched = checker.run(compiled, search_evaluation_order=True)
        assert checker.stats.parse_count == 1
        assert plain.outcome.kind is OutcomeKind.DEFINED
        assert searched.outcome.flagged
        assert UBKind.DIVISION_BY_ZERO in searched.outcome.ub_kinds

    def test_static_violations_live_on_the_compiled_unit(self):
        checker = Checker()
        compiled = checker.compile("int main(void){ int a[0]; return 0; }")
        assert compiled.ok
        assert compiled.static_violations
        report = checker.run(compiled)
        assert report.outcome.kind is OutcomeKind.STATIC_ERROR

    def test_parse_failure_is_a_compiled_unit_too(self):
        checker = Checker()
        compiled = checker.compile("int main(void) { return ; ")
        assert not compiled.ok
        assert compiled.parse_error
        report = checker.run(compiled)
        assert report.outcome.kind is OutcomeKind.INCONCLUSIVE
        # Cached like any other unit: no re-parse on a second attempt.
        checker.compile("int main(void) { return ; ")
        assert checker.stats.parse_count == 1


class TestSingleFlightCompilation:
    def test_concurrent_misses_compile_once(self):
        import threading
        import time

        from repro.api.session import CompileCache
        from repro.cfront.ctypes import LP64
        from repro.core.kcc import CompiledUnit

        cache = CompileCache()
        calls = []
        barrier = threading.Barrier(4)

        def compile_fn():
            calls.append(1)
            time.sleep(0.05)    # hold the in-flight window open
            return CompiledUnit(source="s", filename="f", hash="h",
                                profile_name="lp64")

        results = []

        def worker():
            barrier.wait()
            results.append(cache.get_or_compile(
                "s", filename="f", profile=LP64, compile_fn=compile_fn))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1          # one parse, three waiters
        assert len(results) == 4
        assert all(r is results[0] for r in results)


class TestSharedCompileCache:
    def test_semantics_based_tools_share_one_parse(self):
        SHARED_COMPILE_CACHE.clear()
        source = "int main(void){ int q = 3; return 12 / q; }"
        kcc = KccAnalysisTool()
        value = ValueAnalysisTool()
        kcc.analyze(source)
        value.analyze(source)
        assert len(SHARED_COMPILE_CACHE) == 1

    def test_shared_units_give_each_tool_its_own_verdict(self):
        SHARED_COMPILE_CACHE.clear()
        source = "int main(void){ int x = 0; return (x = 1) + (x = 2); }"
        kcc = KccAnalysisTool()
        value = ValueAnalysisTool()
        assert kcc.analyze(source).flagged          # sequencing checks on
        assert not value.analyze(source).flagged    # sequencing checks off
        assert len(SHARED_COMPILE_CACHE) == 1
