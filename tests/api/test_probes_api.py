"""The instrumentation surface of the public API: Checker.run(probes=...),
check_many(probe_factory=...), and writing custom probes."""

from repro.api import Checker
from repro.core.config import CheckerOptions
from repro.errors import OutcomeKind
from repro.events import (
    BranchEvent,
    Probe,
    TraceRecorderProbe,
    UBEvent,
)

LOOP = """
int main(void){
    int i, s = 0;
    for (i = 0; i < 10; i++) { if (i % 2) s += i; }
    return s;
}
"""

DIVZERO = "int main(void){ int d = 0; return 5 / d; }"


class BranchCounter(Probe):
    """The docs' ~30-line custom probe, in test form."""

    name = "branch-counter"

    def __init__(self):
        self.taken = 0
        self.not_taken = 0

    def on_event(self, event):
        if isinstance(event, BranchEvent):
            if event.taken:
                self.taken += 1
            else:
                self.not_taken += 1


class TestCheckerRunProbes:
    def test_one_run_many_probes(self):
        checker = Checker()
        compiled = checker.compile(LOOP)
        counter = BranchCounter()
        recorder = TraceRecorderProbe()
        before = checker.stats.snapshot()["run_count"]
        report = checker.run(compiled, probes=[counter, recorder])
        assert checker.stats.snapshot()["run_count"] == before + 1
        assert report.outcome.kind is OutcomeKind.DEFINED
        # 10 loop-condition tests + 1 exit + 10 if decisions
        assert counter.taken + counter.not_taken == 21
        assert counter.taken == 15
        assert recorder.trace.count("branch") == 21

    def test_probes_do_not_change_the_verdict(self):
        checker = Checker()
        bare = checker.run(checker.compile(DIVZERO))
        probed = checker.run(checker.compile(DIVZERO), probes=[BranchCounter()])
        assert bare.outcome.describe() == probed.outcome.describe()

    def test_observed_mode_continues_past_gated_checks(self):
        class UBCollector(Probe):
            continue_past_ub = True

            def __init__(self):
                self.seen = []

            def on_event(self, event):
                if isinstance(event, UBEvent):
                    self.seen.append(event.ub_kind.name)

        source = """
        int main(void){
            int d = 0;
            int a = 5 / d;            /* gated: arithmetic */
            int x = 2147483647;
            int b = (x + 1) < x;      /* gated: arithmetic */
            return a + b;
        }
        """
        checker = Checker(run_static_checks=False)
        collector = UBCollector()
        report = checker.run(checker.compile(source), probes=[collector])
        # The engine still reports the *first* check its options would stop
        # at, but the observed run reached both sites.
        assert report.outcome.kind is OutcomeKind.UNDEFINED
        assert report.outcome.error.kind.name == "DIVISION_BY_ZERO"
        assert collector.seen == ["DIVISION_BY_ZERO", "SIGNED_OVERFLOW"]

    def test_legacy_walker_emits_the_same_events(self):
        lowered = Checker()
        walker = Checker(CheckerOptions(enable_lowering=False))
        a, b = TraceRecorderProbe(), TraceRecorderProbe()
        lowered.run(lowered.compile(LOOP), probes=[a])
        walker.run(walker.compile(LOOP), probes=[b])
        assert a.trace.events == b.trace.events


class TestBatchProbes:
    def test_check_many_probe_factory(self):
        checker = Checker()
        recorders = {}

        def factory(filename):
            recorders[filename] = TraceRecorderProbe(filename=filename)
            return [recorders[filename]]

        reports = checker.check_many(
            [("a.c", LOOP), ("b.c", DIVZERO)], probe_factory=factory)
        assert [r.outcome.kind for r in reports] == [
            OutcomeKind.DEFINED, OutcomeKind.UNDEFINED]
        assert set(recorders) == {"a.c", "b.c"}
        assert recorders["a.c"].trace.end["status"] == "defined"
        assert recorders["b.c"].trace.end["status"] == "undefined"

    def test_probes_are_finished_even_without_a_dynamic_stage(self):
        # Parse failures and static errors return before the run: no events,
        # but finish() still tells the probe how the analysis ended.
        checker = Checker()
        static_probe = TraceRecorderProbe()
        report = checker.run(checker.compile("int main(void){ return 1/0; }"),
                             probes=[static_probe])
        assert report.outcome.kind is OutcomeKind.STATIC_ERROR
        assert static_probe.trace.end["status"] == "undefined"
        assert len(static_probe.trace) == 0
        parse_probe = TraceRecorderProbe()
        report = checker.run(checker.compile("int main(void){ return ;"),
                             probes=[parse_probe])
        assert report.outcome.kind is OutcomeKind.INCONCLUSIVE
        assert parse_probe.trace.end["status"] == "inconclusive"

    def test_probe_factory_forces_serial_but_keeps_order(self):
        checker = Checker()
        seen = []

        def factory(filename):
            seen.append(filename)
            return [TraceRecorderProbe(filename=filename)]

        reports = checker.check_many(
            [("x.c", LOOP), ("y.c", LOOP), ("z.c", DIVZERO)],
            jobs=4, probe_factory=factory)
        assert seen == ["x.c", "y.c", "z.c"]
        assert len(reports) == 3
