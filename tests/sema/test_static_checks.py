"""Unit tests for the translation-time (static) undefinedness checks."""

from repro import UBKind
from repro.cfront.parser import parse
from repro.sema.static_checks import check_translation_unit
from tests.util import expect_static_error, run_ok


def violations_of(source):
    return check_translation_unit(parse(source))


def kinds_of(source):
    return [v.kind for v in violations_of(source)]


class TestArrayDeclarations:
    def test_zero_length_array(self):
        assert UBKind.ARRAY_SIZE_NOT_POSITIVE in kinds_of(
            "int main(void){ int a[0]; return 0; }")

    def test_negative_length_array(self):
        assert UBKind.ARRAY_SIZE_NOT_POSITIVE in kinds_of(
            "int main(void){ int a[-3]; return 0; }")

    def test_positive_length_array_is_fine(self):
        assert kinds_of("int main(void){ int a[3]; a[0] = 1; return a[0]; }") == []

    def test_global_zero_length_array(self):
        assert UBKind.ARRAY_SIZE_NOT_POSITIVE in kinds_of("int table[0]; int main(void){ return 0; }")


class TestFunctionsAndLabels:
    def test_qualified_function_type(self):
        source = "typedef int fn(void); const fn handler; int main(void){ return 0; }"
        assert UBKind.QUALIFIED_FUNCTION_TYPE in kinds_of(source)

    def test_duplicate_label(self):
        source = """
        int main(void){
            int x = 0;
        dup: x++;
            if (x < 2) goto dup;
        dup: return x;
        }
        """
        assert UBKind.DUPLICATE_LABEL in kinds_of(source)

    def test_goto_missing_label(self):
        source = "int main(void){ int x = 0; if (x) goto nowhere; return 0; }"
        assert UBKind.DUPLICATE_LABEL in kinds_of(source)

    def test_labels_in_different_functions_do_not_conflict(self):
        source = """
        int helper(void){ out: return 1; }
        int main(void){ out: return helper(); }
        """
        assert kinds_of(source) == []

    def test_return_with_value_in_void_function(self):
        source = """
        void report(int code) { return code; }
        int main(void){ report(1); return 0; }
        """
        assert UBKind.VOID_RETURN_WITH_VALUE in kinds_of(source)

    def test_bad_main_signature(self):
        assert UBKind.MAIN_BAD_SIGNATURE in kinds_of("float main(void){ return 0; }")
        assert UBKind.MAIN_BAD_SIGNATURE in kinds_of("int main(int only_one){ return only_one; }")

    def test_standard_main_signatures_are_fine(self):
        assert kinds_of("int main(void){ return 0; }") == []
        assert kinds_of("int main(int argc, char **argv){ return argc ? 0 : (argv != 0); }") == []


class TestDeclarations:
    def test_incompatible_redeclaration(self):
        source = "extern int shared; extern long shared; int main(void){ return 0; }"
        assert UBKind.INCOMPATIBLE_DECLARATIONS in kinds_of(source)

    def test_compatible_redeclaration_is_fine(self):
        source = "extern int shared; extern int shared; int main(void){ return 0; }"
        assert kinds_of(source) == []

    def test_incomplete_object_type(self):
        source = "struct unknown; struct unknown blob; int main(void){ return 0; }"
        assert UBKind.INCOMPLETE_TYPE_OBJECT in kinds_of(source)

    def test_reserved_identifier(self):
        assert UBKind.RESERVED_IDENTIFIER in kinds_of(
            "int __private_thing = 1; int main(void){ return 0; }")

    def test_library_headers_do_not_trigger_reserved_identifiers(self):
        assert kinds_of("#include <assert.h>\nint main(void){ assert(1); return 0; }") == []

    def test_failing_static_assert(self):
        source = '_Static_assert(1 == 2, "impossible"); int main(void){ return 0; }'
        assert len(violations_of(source)) == 1

    def test_passing_static_assert(self):
        source = '_Static_assert(sizeof(long) == 8, "lp64"); int main(void){ return 0; }'
        assert violations_of(source) == []


class TestExpressions:
    def test_constant_division_by_zero(self):
        assert UBKind.DIVISION_BY_ZERO in kinds_of("int main(void){ return 5 / 0; }")

    def test_constant_modulo_by_zero(self):
        assert UBKind.DIVISION_BY_ZERO in kinds_of("int main(void){ return 5 % 0; }")

    def test_constant_shift_too_far(self):
        assert UBKind.SHIFT_TOO_FAR in kinds_of("int main(void){ int x = 1; return x << 40; }")

    def test_reasonable_shift_is_fine(self):
        assert kinds_of("int main(void){ int x = 1; return x << 4; }") == []

    def test_assignment_to_const(self):
        assert UBKind.CONST_VIOLATION in kinds_of(
            "int main(void){ const int x = 1; x = 2; return x; }")

    def test_increment_of_const(self):
        assert UBKind.CONST_VIOLATION in kinds_of(
            "int main(void){ const int x = 1; x++; return x; }")

    def test_assignment_to_plain_variable_is_fine(self):
        assert kinds_of("int main(void){ int x = 1; x = 2; return x; }") == []

    def test_constant_index_out_of_bounds(self):
        assert UBKind.NEGATIVE_ARRAY_INDEX_CONSTANT in kinds_of(
            "int main(void){ int a[4]; a[0] = 1; return a[9]; }")

    def test_in_bounds_constant_index_is_fine(self):
        assert kinds_of("int main(void){ int a[4]; a[0] = 1; return a[3]; }") == []

    def test_void_value_conversion(self):
        assert UBKind.VOID_VALUE_USED in kinds_of(
            "int main(void){ if (0) { (int)(void)5; } return 0; }")

    def test_constant_overflow_in_expression(self):
        assert UBKind.SIGNED_OVERFLOW in kinds_of(
            "int main(void){ return (2147483647 + 1) > 0; }")


class TestIntegrationWithTheTool:
    def test_static_errors_reported_through_check_program(self):
        expect_static_error("int main(void){ int a[0]; return 0; }",
                            UBKind.ARRAY_SIZE_NOT_POSITIVE)

    def test_clean_program_has_no_violations(self):
        run_ok("""
        #include <stdio.h>
        #include <stdlib.h>
        #include <string.h>
        static int helper(int x) { return x * 2; }
        int main(void) {
            char buffer[16];
            strcpy(buffer, "ok");
            printf("%s %d\\n", buffer, helper(21));
            return 0;
        }
        """)
