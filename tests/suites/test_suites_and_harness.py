"""Tests for the test-suite generators and the evaluation harness."""

import pytest

from repro.analyzers.base import KccAnalysisTool
from repro.suites.harness import (
    CaseRecord,
    EvaluationHarness,
    SuiteScore,
    TestCase,
    TestSuite,
)
from repro.suites.juliet import ALL_CLASSES, generate_juliet_suite
from repro.suites.ubsuite import BEHAVIOR_TESTS, generate_undefinedness_suite
from repro.analyzers.base import ToolResult


@pytest.fixture(scope="module")
def juliet():
    return generate_juliet_suite()


@pytest.fixture(scope="module")
def ubsuite():
    return generate_undefinedness_suite()


class TestJulietSuiteStructure:
    def test_covers_all_six_classes(self, juliet):
        assert set(juliet.categories()) == set(ALL_CLASSES)

    def test_every_bad_test_has_a_good_counterpart(self, juliet):
        bad = {c.name.replace("_bad", "") for c in juliet.bad_cases()}
        good = {c.name.replace("_good", "") for c in juliet.good_cases()}
        assert bad == good

    def test_each_class_has_several_behaviors(self, juliet):
        for category in juliet.categories():
            behaviors = {c.behavior for c in juliet.cases_in(category)}
            assert len(behaviors) >= 3, category

    def test_flow_variants_present(self, juliet):
        names = [c.name for c in juliet.cases]
        assert any("_direct_" in n for n in names)
        assert any("_variable_" in n for n in names)
        assert any("_helper_" in n for n in names)

    def test_test_names_are_unique(self, juliet):
        names = [c.name for c in juliet.cases]
        assert len(names) == len(set(names))

    def test_sources_are_one_flaw_per_file(self, juliet):
        # Every test must contain a main function and be self-contained.
        for case in juliet.cases:
            assert "int main(void)" in case.source, case.name


class TestJulietSuiteSemantics:
    """kcc must flag every bad test and no good test (spot-checked per class)."""

    @pytest.fixture(scope="class")
    def kcc(self):
        return KccAnalysisTool()

    @pytest.mark.parametrize("category", ALL_CLASSES)
    def test_first_bad_test_of_each_class_is_flagged(self, juliet, kcc, category):
        case = next(c for c in juliet.cases_in(category) if c.is_bad)
        assert kcc.analyze(case.source).flagged, case.name

    @pytest.mark.parametrize("category", ALL_CLASSES)
    def test_first_good_test_of_each_class_is_clean(self, juliet, kcc, category):
        case = next(c for c in juliet.cases_in(category) if not c.is_bad)
        assert not kcc.analyze(case.source).flagged, case.name


class TestUndefinednessSuiteStructure:
    def test_each_behavior_has_bad_and_good(self, ubsuite):
        by_behavior = {}
        for case in ubsuite.cases:
            by_behavior.setdefault(case.behavior, set()).add(case.is_bad)
        assert all(flags == {True, False} for flags in by_behavior.values())

    def test_covers_both_static_and_dynamic_behaviors(self, ubsuite):
        assert len(ubsuite.static_behaviors()) >= 10
        assert len(ubsuite.dynamic_behaviors()) >= 40

    def test_behavior_count_is_comparable_to_the_paper(self, ubsuite):
        # The paper's suite covers 70 behaviors with 178 tests.
        assert ubsuite.behavior_count() >= 60
        assert len(ubsuite) >= 120

    def test_entries_cite_a_c11_section(self):
        assert all(entry.section for entry in BEHAVIOR_TESTS)

    def test_includes_the_paper_highlighted_behaviors(self, ubsuite):
        behaviors = set(b.behavior for b in BEHAVIOR_TESTS)
        assert "modify-string-literal" in behaviors
        assert "effective-type-violation" in behaviors
        assert "subtraction-unrelated-pointers" in behaviors
        assert "unsequenced-writes-to-scalar" in behaviors

    def test_spot_check_bad_and_good_pairs(self, ubsuite):
        kcc = KccAnalysisTool()
        for behavior in ("division-by-zero", "null-pointer-dereference",
                         "unsequenced-writes-to-scalar", "array-of-zero-length"):
            bad = next(c for c in ubsuite.cases if c.behavior == behavior and c.is_bad)
            good = next(c for c in ubsuite.cases if c.behavior == behavior and not c.is_bad)
            assert kcc.analyze(bad.source).flagged, behavior
            assert not kcc.analyze(good.source).flagged, behavior


class TestHarnessScoring:
    def _record(self, is_bad, flagged, category="cat", behavior="b", stage="dynamic"):
        case = TestCase(name="t", source="", is_bad=is_bad, category=category,
                        behavior=behavior, stage=stage)
        return CaseRecord(case=case, result=ToolResult(tool="x", flagged=flagged))

    def test_detection_rate(self):
        score = SuiteScore(tool="x", records=[
            self._record(True, True), self._record(True, False), self._record(False, False)])
        assert score.detection_rate() == 0.5

    def test_false_positive_rate(self):
        score = SuiteScore(tool="x", records=[
            self._record(False, True), self._record(False, False)])
        assert score.false_positive_rate() == 0.5

    def test_per_behavior_rate_weights_behaviors_equally(self):
        records = [
            self._record(True, True, behavior="a"),
            self._record(True, True, behavior="a"),
            self._record(True, True, behavior="a"),
            self._record(True, False, behavior="b"),
        ]
        score = SuiteScore(tool="x", records=records)
        # behavior a: 100%, behavior b: 0% -> average 50%, not 75%.
        assert score.per_behavior_rate() == 0.5

    def test_per_behavior_rate_filters_by_stage(self):
        records = [
            self._record(True, True, behavior="a", stage="static"),
            self._record(True, False, behavior="b", stage="dynamic"),
        ]
        score = SuiteScore(tool="x", records=records)
        assert score.per_behavior_rate("static") == 1.0
        assert score.per_behavior_rate("dynamic") == 0.0

    def test_harness_runs_tools_over_selected_cases(self):
        suite = TestSuite(name="tiny")
        suite.add(TestCase(name="bad", source="int main(void){ int d=0; return 1/d; }",
                           is_bad=True, category="div", behavior="div"))
        suite.add(TestCase(name="good", source="int main(void){ return 0; }",
                           is_bad=False, category="div", behavior="div"))
        harness = EvaluationHarness([KccAnalysisTool()])
        comparison = harness.run_suite(suite)
        score = comparison.score_for("kcc")
        assert score.detection_rate() == 1.0
        assert score.false_positive_rate() == 0.0
        table = comparison.figure2_table()
        assert "div" in table and "kcc" in table

    def test_figure3_table_renders(self):
        suite = TestSuite(name="tiny")
        suite.add(TestCase(name="bad", source="int main(void){ int d=0; return 1/d; }",
                           is_bad=True, category="div", behavior="div", stage="dynamic"))
        harness = EvaluationHarness([KccAnalysisTool()])
        comparison = harness.run_suite(suite)
        table = comparison.figure3_table()
        assert "Static" in table and "Dynamic" in table
