"""The soundness gate: every proof survives concrete spot-checking.

Two sweeps, both against the compiled (register-bytecode) engine — the
default production engine, so a divergence here is a real lie by the
abstract domain:

* the full ubsuite arithmetic slice, bad and good variants; and
* a 500-program fixed-seed fuzz corpus generated with a symbolic input
  hole, each program proved over the hole's declared range.

For every PROVED verdict the oracle samples at least eight points per
input range — always including both endpoints — substitutes them, runs the
concrete checker, and demands agreement.  The acceptable outcomes are
"proved and confirmed at every sample" or "inconclusive"; a single
disagreement fails the suite.
"""

from __future__ import annotations

import pytest

from repro.core.config import CheckerOptions
from repro.fuzz.generator import DOMAIN, GeneratorConfig, generate_case
from repro.suites.ubsuite import BEHAVIOR_TESTS, GROUP_ARITHMETIC
from repro.symbolic import check_proved_report, prove_source
from repro.symbolic.oracle import SAMPLES_PER_RANGE, sample_points

#: The engine the oracle runs: the compiled VM, as in production.
COMPILED = CheckerOptions(engine="compiled")

CORPUS_SEED = 20260808
CORPUS_SIZE = 500


def test_sample_points_always_include_both_endpoints():
    for lo, hi in [
        (0, 0), (0, 1), (-5, 5), (0, DOMAIN - 1), (2_147_483_000, 2_147_483_647)
    ]:
        points = sample_points(lo, hi)
        assert points[0] == lo and hi in points
        assert len(points) >= min(SAMPLES_PER_RANGE, hi - lo + 1)
        assert all(lo <= p <= hi for p in points)


def test_samples_per_range_meets_the_acceptance_floor():
    assert SAMPLES_PER_RANGE >= 8


def test_ubsuite_arith_slice_has_no_concrete_counterexamples():
    proved = 0
    for behavior in BEHAVIOR_TESTS:
        if behavior.group != GROUP_ARITHMETIC:
            continue
        for variant in (behavior.bad, behavior.good):
            report = prove_source(variant, options=COMPILED)
            if not report.proved:
                continue
            proved += 1
            mismatches = check_proved_report(variant, report, options=COMPILED)
            assert not mismatches, (
                f"{behavior.behavior}: " + "; ".join(m.describe() for m in mismatches)
            )
    assert proved >= 20  # 10 behaviors × 2 variants prove; float declines


@pytest.mark.parametrize("chunk", range(5))
def test_fuzz_hole_corpus_has_no_concrete_counterexamples(chunk):
    """500 generated programs, proved over their symbolic hole's range.

    Chunked so a failure names its index window and pytest can show
    progress; the seed is fixed, so the corpus is the same every run.
    """
    config = GeneratorConfig(symbolic_hole=DOMAIN - 1)
    per_chunk = CORPUS_SIZE // 5
    proved = inconclusive = 0
    for index in range(chunk * per_chunk, (chunk + 1) * per_chunk):
        case = generate_case(CORPUS_SEED, index, config=config, inject=None)
        assert case.hole_name is not None and case.hole_range is not None
        report = prove_source(
            case.source,
            options=COMPILED,
            inputs={case.hole_name: case.hole_range},
            filename=case.name,
        )
        if not report.proved:
            inconclusive += 1
            continue
        proved += 1
        # Clean-by-construction programs must never be proved undefined.
        assert report.verdict == "PROVED_DEFINED", (f"{case.name}: {report.render()}")
        mismatches = check_proved_report(
            case.source, report, options=COMPILED, filename=case.name
        )
        assert not mismatches, (
            f"{case.name}: " + "; ".join(m.describe() for m in mismatches)
        )
    # The corpus must exercise the prover, not just its bail paths: a
    # meaningful share of every chunk has to produce actual proofs.
    assert proved >= per_chunk // 5, (
        f"chunk {chunk}: only {proved} proofs out of {per_chunk} cases"
    )
