"""Symbolic path merging must change path counts, never verdicts.

The interval absorption layer (``SearchOptions.merge_symbolic``) folds
replayed paths whose live memories differ in a few cells into one family
once the family has demonstrated uniform outcomes.  Its correctness
contract is identity of everything observable: over the entire ubsuite
sequencing slice — the programs evaluation-order search exists for — a
merged search must report the same verdict, the same UB kinds, and the
same stop reason as an unmerged one.

The absorbing program below pins the other half: the layer must actually
fire.  Three calls to ``f`` fold a growing accumulator; the third arrival
at each post-call point lands inside the interval joined from the first
two, so two paths are absorbed and the explored count drops.
"""

from __future__ import annotations

import pytest

from repro.core.config import CheckerOptions
from repro.core.kcc import KccTool
from repro.kframework.search import SearchBudget, SearchOptions
from repro.suites.ubsuite import BEHAVIOR_TESTS, GROUP_SEQUENCING

#: The order-sensitive program the absorption demonstrably compresses.
ABSORBING = """\
int g = 0;
int f(int v) { g = g * 2 + v; return 0; }
int h(int v) { return v; }
int main(void) {
  int x = f(1) + f(3) + f(2);
  int y = h(1) + h(2);
  return 0;
}
"""


def _search(source: str, *, merge_symbolic: bool):
    options = SearchOptions(
        checkpoint="replay",
        stop_at_first=False,
        budget=SearchBudget(max_paths=None),
        merge_symbolic=merge_symbolic,
    )
    tool = KccTool(
        CheckerOptions(), search_evaluation_order=True, search_options=options
    )
    return tool.check(source)


def _sequencing_cases():
    cases = []
    for test in BEHAVIOR_TESTS:
        if test.group == GROUP_SEQUENCING:
            cases.append((f"{test.behavior}/bad", test.bad))
            cases.append((f"{test.behavior}/good", test.good))
    return cases


@pytest.mark.parametrize(
    "label,source", _sequencing_cases(), ids=[label for label, _ in _sequencing_cases()]
)
def test_merge_preserves_verdicts_on_the_sequencing_slice(label, source):
    plain = _search(source, merge_symbolic=False)
    merged = _search(source, merge_symbolic=True)
    assert merged.outcome.kind is plain.outcome.kind
    assert merged.outcome.ub_kinds == plain.outcome.ub_kinds
    assert merged.search.stop_reason == plain.search.stop_reason
    # Absorption only ever removes paths.
    assert len(merged.search.paths) <= len(plain.search.paths)


def test_absorption_fires_and_keeps_the_verdict():
    plain = _search(ABSORBING, merge_symbolic=False)
    merged = _search(ABSORBING, merge_symbolic=True)
    assert plain.outcome.kind is merged.outcome.kind
    assert plain.search.merged_symbolic == 0
    assert merged.search.merged_symbolic > 0
    assert len(merged.search.paths) < len(plain.search.paths)
    # Absorbed paths still count toward coverage.
    assert merged.search.coverage() == pytest.approx(plain.search.coverage())


def test_merge_off_by_default():
    assert SearchOptions().merge_symbolic is False
    report = _search(ABSORBING, merge_symbolic=False)
    assert report.search.merged_symbolic == 0


def test_merged_symbolic_round_trips_to_dict():
    merged = _search(ABSORBING, merge_symbolic=True)
    payload = merged.search.to_dict()
    assert payload["merged_symbolic"] == merged.search.merged_symbolic > 0
