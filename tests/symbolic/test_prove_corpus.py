"""Pinned verdicts for the prove pipeline, its API facade, and the CLI.

The regression corpus here is deliberately literal: each entry pins the
verdict (and for undefinedness, the :class:`~repro.errors.UBKind` and line)
the abstract engine must keep producing.  The full ubsuite arithmetic slice
is enumerated with exact expectations — ten behaviors prove on both their
bad and good variants, the float conversion honestly declines — so any
precision regression in the domain shows up as a named behavior, not a
count.
"""

from __future__ import annotations

import io

import pytest

from repro.api.cli import main as cli_main
from repro.api.session import Checker
from repro.errors import UBKind
from repro.suites.ubsuite import BEHAVIOR_TESTS, GROUP_ARITHMETIC
from repro.symbolic import (
    INCONCLUSIVE,
    PROVED_DEFINED,
    PROVED_UNDEFINED,
    check_proved_report,
    prove_source,
)

# ---------------------------------------------------------------------------
# Pinned single-program verdicts
# ---------------------------------------------------------------------------

PROVED_DEFINED_UNITS = [
    ("straight-line", "int main(void) { int x = 4; return x * 3 % 7; }", None),
    (
        "guarded-divide",
        "int main(void) {\n"
        "  int x = 7;\n"
        "  if (x != 0) { int r = 100 / x; return r > 0; }\n"
        "  return 0;\n"
        "}\n",
        {"x": (0, 50)},
    ),
    (
        "range-add",
        "int main(void) { int x = 0; int y = x + 1000; return y > 0; }",
        {"x": (0, 1_000_000)},
    ),
    (
        "loop-accumulate",
        "int main(void) {\n"
        "  int x = 3;\n"
        "  int s = 0;\n"
        "  int i;\n"
        "  for (i = 0; i < 10; i = i + 1) { s = s + x; }\n"
        "  return s >= 0;\n"
        "}\n",
        {"x": (0, 100)},
    ),
]

PROVED_UNDEFINED_UNITS = [
    (
        "overflow-whole-range",
        "int main(void) { int x = 2147483000; int y = x + 1000; return y > 0; }",
        {"x": (2_147_483_000, 2_147_483_647)},
        UBKind.SIGNED_OVERFLOW,
    ),
    (
        "divide-by-zero-constant",
        "int main(void) { int x = 0; return 5 / x; }",
        None,
        UBKind.DIVISION_BY_ZERO,
    ),
    (
        "shift-too-far-range",
        "int main(void) { int x = 40; return 1 << x; }",
        {"x": (35, 60)},
        UBKind.SHIFT_TOO_FAR,
    ),
]


@pytest.mark.parametrize(
    "label,source,inputs",
    PROVED_DEFINED_UNITS,
    ids=[unit[0] for unit in PROVED_DEFINED_UNITS],
)
def test_pinned_proved_defined(label, source, inputs):
    report = prove_source(source, inputs=inputs)
    assert report.verdict == PROVED_DEFINED, report.render()
    assert report.proved
    assert not check_proved_report(source, report)


@pytest.mark.parametrize(
    "label,source,inputs,kind",
    PROVED_UNDEFINED_UNITS,
    ids=[unit[0] for unit in PROVED_UNDEFINED_UNITS],
)
def test_pinned_proved_undefined(label, source, inputs, kind):
    report = prove_source(source, inputs=inputs)
    assert report.verdict == PROVED_UNDEFINED, report.render()
    assert report.kind is kind
    assert report.line > 0
    assert not check_proved_report(source, report)


def test_unguarded_symbolic_divide_is_inconclusive():
    """A range containing the bad value must not be proved either way."""
    report = prove_source(
        "int main(void) { int x = 3; return 100 / x; }", inputs={"x": (-5, 5)}
    )
    assert report.verdict == INCONCLUSIVE
    assert any(ub.kind is UBKind.DIVISION_BY_ZERO for ub in report.possible)


def test_parse_error_is_inconclusive_not_a_crash():
    report = prove_source("int main(void) { return }")
    assert report.verdict == INCONCLUSIVE
    assert report.reason


def test_witness_interval_is_reported_for_overflow():
    report = prove_source(
        "int main(void) { int x = 2147483000; int y = x + 1000; return 0; }",
        inputs={"x": (2_147_483_000, 2_147_483_647)},
    )
    assert report.witness is not None
    assert report.witness.low is not None and report.witness.low > 2**31 - 1


# ---------------------------------------------------------------------------
# The ubsuite arithmetic slice, behavior by behavior
# ---------------------------------------------------------------------------

#: behavior → (bad verdict, bad kind, good verdict).  The float conversion
#: is the one honest refusal: our abstract domain has no float layer.
ARITH_EXPECTATIONS = {
    "division-by-zero": (PROVED_UNDEFINED, UBKind.DIVISION_BY_ZERO),
    "modulo-by-zero": (PROVED_UNDEFINED, UBKind.DIVISION_BY_ZERO),
    "int-min-divided-by-minus-one": (PROVED_UNDEFINED, UBKind.SIGNED_OVERFLOW),
    "signed-addition-overflow": (PROVED_UNDEFINED, UBKind.SIGNED_OVERFLOW),
    "signed-multiplication-overflow": (PROVED_UNDEFINED, UBKind.SIGNED_OVERFLOW),
    "signed-negation-overflow": (PROVED_UNDEFINED, UBKind.SIGNED_OVERFLOW),
    "shift-amount-too-large": (PROVED_UNDEFINED, UBKind.SHIFT_TOO_FAR),
    "shift-negative-amount": (PROVED_UNDEFINED, UBKind.SHIFT_TOO_FAR),
    "left-shift-of-negative": (PROVED_UNDEFINED, UBKind.SHIFT_NEGATIVE),
    "left-shift-overflow": (PROVED_UNDEFINED, UBKind.SHIFT_OVERFLOW),
    "float-to-int-overflow": (INCONCLUSIVE, None),
}


def _arith_behaviors():
    return [test for test in BEHAVIOR_TESTS if test.group == GROUP_ARITHMETIC]


def test_expectation_table_covers_the_whole_slice():
    assert {test.behavior for test in _arith_behaviors()} == set(ARITH_EXPECTATIONS)


@pytest.mark.parametrize("behavior", sorted(ARITH_EXPECTATIONS))
def test_arith_slice_verdicts(behavior):
    test = next(t for t in _arith_behaviors() if t.behavior == behavior)
    expected_bad, expected_kind = ARITH_EXPECTATIONS[behavior]
    bad = prove_source(test.bad)
    assert bad.verdict == expected_bad, bad.render()
    if expected_kind is not None:
        assert bad.kind is expected_kind
    good = prove_source(test.good)
    if expected_bad == INCONCLUSIVE:
        assert good.verdict == INCONCLUSIVE
    else:
        assert good.verdict == PROVED_DEFINED, good.render()


# ---------------------------------------------------------------------------
# The API facade and the CLI
# ---------------------------------------------------------------------------

def test_checker_prove_uses_the_compile_cache():
    checker = Checker()
    source = "int main(void) { int x = 1; return 10 / x; }"
    first = checker.prove(source, inputs={"x": (1, 5)})
    second = checker.prove(source, inputs={"x": (1, 5)})
    assert first.verdict == second.verdict == PROVED_DEFINED
    assert checker.stats.parse_count == 1
    assert checker.stats.cache_hits == 1


def test_checker_prove_accepts_compiled_units():
    checker = Checker()
    unit = checker.compile("int main(void) { return 0; }")
    assert checker.prove(unit).verdict == PROVED_DEFINED


def _run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


def test_cli_prove_exit_codes(tmp_path):
    defined = tmp_path / "defined.c"
    defined.write_text(
        "int main(void) { int x = 1; return 10 / x; }\n", encoding="utf-8"
    )
    undefined = tmp_path / "undefined.c"
    undefined.write_text(
        "int main(void) { int x = 0; return 10 / x; }\n", encoding="utf-8"
    )
    unknown = tmp_path / "unknown.c"
    unknown.write_text(
        "int main(void) { int x = 3; return 10 / x; }\n", encoding="utf-8"
    )

    code, text = _run_cli("prove", str(defined), "--inputs", "x=1:50")
    assert code == 0 and "PROVED_DEFINED" in text
    code, text = _run_cli("prove", str(undefined))
    assert code == 1 and "PROVED_UNDEFINED" in text
    assert "DIVISION_BY_ZERO" in text
    code, text = _run_cli("prove", str(unknown), "--inputs", "x=-5:5")
    assert code == 2 and "INCONCLUSIVE" in text


def test_cli_prove_json_and_bad_inputs(tmp_path):
    path = tmp_path / "p.c"
    path.write_text("int main(void) { return 0; }\n", encoding="utf-8")
    code, text = _run_cli("prove", str(path), "--format", "json")
    assert code == 0
    assert '"verdict": "PROVED_DEFINED"' in text
    code, _ = _run_cli("prove", str(path), "--inputs", "x=oops")
    assert code == 64
    code, _ = _run_cli("prove", str(path), "--inputs", "x=5:1")
    assert code == 64
