"""Property tests: the abstract domain over-approximates the concrete engines.

The soundness contract of :func:`repro.symbolic.domain.abstract_binary` is
checked differentially against the real checker: for concrete operands drawn
from an abstract value's concretization, the concrete run must either produce
a value the abstract survivor contains, or stop at an undefined behavior
whose kind the abstract transfer reported as possible.  Hypothesis drives
the sampling, with the int-boundary values (INT_MIN, INT_MAX, wrap edges)
always in the pool.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cfront import ctypes as ct
from repro.core.config import DEFAULT_OPTIONS
from repro.core.kcc import KccTool
from repro.core.lowering import int_binary_facts, int_type_facts
from repro.errors import OutcomeKind
from repro.symbolic.domain import (
    AbstractInt,
    ConstraintStore,
    Interval,
    abstract_binary,
    abstract_convert,
)

INT = ct.IntType(kind="int")
INT_MIN = -(2**31)
INT_MAX = 2**31 - 1

#: The values every arithmetic bug hides behind.
BOUNDARY = [
    INT_MIN, INT_MIN + 1, -2, -1, 0, 1, 2, 255, 256, 65535, 65536, INT_MAX - 1, INT_MAX
]

OPS = ["+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^", "<", "<=", "==", "!="]

int_values = st.one_of(
    st.sampled_from(BOUNDARY),
    st.integers(min_value=INT_MIN, max_value=INT_MAX),
)


def _concrete(op: str, a: int, b: int):
    """Run ``a op b`` through the real checker; (value, kinds) of the run."""
    source = (
        "int main(void) {\n"
        f"  int a = {a};\n"
        f"  int b = {b};\n"
        f"  int r = a {op} b;\n"
        '  printf("%d\\n", r);\n'
        "  return 0;\n"
        "}\n"
    )
    outcome = _concrete.tool.check(source).outcome
    if outcome.kind is OutcomeKind.DEFINED:
        return int(outcome.stdout.strip()), None
    return None, set(outcome.ub_kinds)


_concrete.tool = KccTool(DEFAULT_OPTIONS)


def _assert_sound(op: str, a: int, b: int) -> None:
    facts = int_binary_facts(op, INT, INT, DEFAULT_OPTIONS, line=4)
    assert facts is not None
    survivor, ubs = abstract_binary(
        facts, AbstractInt.constant(a, INT), AbstractInt.constant(b, INT)
    )
    value, kinds = _concrete(op, a, b)
    if value is not None:
        assert survivor is not None, (
            f"{a} {op} {b}: concrete run produced {value}, abstract transfer "
            "said no execution survives"
        )
        assert survivor.contains(value), (
            f"{a} {op} {b}: concrete {value} outside abstract {survivor.lo}.."
            f"{survivor.hi} stride {survivor.stride}"
        )
    else:
        reported = {ub.kind for ub in ubs}
        assert kinds & reported, (
            f"{a} {op} {b}: concrete run stopped at {kinds}, abstract "
            f"transfer only reported {reported or 'nothing'}"
        )


@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(op=st.sampled_from(OPS), a=int_values, b=int_values)
def test_constant_operands_match_concrete_engine(op, a, b):
    """Singleton abstract operands must reproduce the concrete verdict."""
    _assert_sound(op, a, b)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    op=st.sampled_from(OPS),
    lo=int_values, span=st.integers(min_value=0, max_value=10_000),
    b=int_values,
)
def test_range_operand_covers_endpoints(op, lo, span, b):
    """An interval operand's transfer covers both endpoint concretizations."""
    hi = min(lo + span, INT_MAX)
    facts = int_binary_facts(op, INT, INT, DEFAULT_OPTIONS, line=4)
    survivor, ubs = abstract_binary(
        facts, AbstractInt.from_range(lo, hi, INT), AbstractInt.constant(b, INT)
    )
    reported = {ub.kind for ub in ubs}
    for a in {lo, hi}:
        value, kinds = _concrete(op, a, b)
        if value is not None:
            assert survivor is not None and survivor.contains(value), (
                f"[{lo},{hi}] {op} {b} at endpoint {a}: concrete {value} "
                "escapes the abstract survivor"
            )
        else:
            assert kinds & reported, (
                f"[{lo},{hi}] {op} {b} at endpoint {a}: concrete UB {kinds} "
                f"not among reported {reported or 'nothing'}"
            )


@settings(max_examples=80, deadline=None)
@given(
    value=int_values,
    lo=st.integers(min_value=INT_MIN * 4, max_value=INT_MAX * 4),
    span=st.integers(min_value=0, max_value=2**33),
)
def test_conversion_wraps_like_the_machine(value, lo, span):
    """abstract_convert of a singleton equals the concrete 2^32 wrap."""
    facts = int_type_facts(INT, DEFAULT_OPTIONS.profile)
    wide = ct.IntType(kind="long")
    converted = abstract_convert(facts, AbstractInt.constant(value, wide))
    wrapped = (value - INT_MIN) % 2**32 + INT_MIN
    assert converted.is_constant and converted.value == wrapped
    # And the range form still contains the pointwise wraps of its endpoints.
    hi = lo + span
    ranged = abstract_convert(facts, AbstractInt.from_range(lo, hi, wide))
    for end in (lo, hi):
        assert ranged.contains((end - INT_MIN) % 2**32 + INT_MIN)


# ---------------------------------------------------------------------------
# AbstractInt invariants
# ---------------------------------------------------------------------------

def test_abstract_int_normalizes_bounds_onto_congruence_class():
    value = AbstractInt(1, 20, INT, stride=4, offset=3)
    assert (value.lo, value.hi) == (3, 19)
    assert value.contains(7) and not value.contains(8)
    assert value.values() == [3, 7, 11, 15, 19]


def test_abstract_int_join_keeps_shared_congruence():
    a = AbstractInt(0, 8, INT, stride=4, offset=0)
    b = AbstractInt(12, 20, INT, stride=4, offset=0)
    joined = a.join(b)
    assert (joined.lo, joined.hi, joined.stride) == (0, 20, 4)


def test_empty_abstract_value_raises():
    with pytest.raises(ValueError):
        AbstractInt(5, 2, INT)


def test_interval_reexport_is_the_baseline_interval():
    from repro.analyzers.value_analysis import Interval as BaselineInterval

    assert BaselineInterval is Interval


# ---------------------------------------------------------------------------
# ConstraintStore: the small relational layer
# ---------------------------------------------------------------------------

def test_constraint_store_decides_offset_comparison():
    store = ConstraintStore()
    # n - i ∈ [3, 3]  (n = i + 3)
    store.relate("i", "n", 3, 3)
    assert store.compare("<", "i", "n") is True
    assert store.compare(">=", "i", "n") is False
    assert store.compare("==", "i", "n") is False


def test_constraint_store_unknown_pair_is_undecided():
    store = ConstraintStore()
    assert store.compare("<", "a", "b") is None


def test_constraint_store_forget_drops_relations():
    store = ConstraintStore()
    store.relate("i", "n", 3, 3)
    store.forget("n")
    assert store.compare("<", "i", "n") is None


def test_constraint_store_assume_then_decide():
    store = ConstraintStore()
    store.assume_compare("<", "i", "n", True)
    assert store.compare("<", "i", "n") is True
    assert store.compare(">", "i", "n") is False


def test_constraint_store_join_keeps_only_common_truth():
    left = ConstraintStore()
    left.relate("i", "n", 3, 3)
    right = ConstraintStore()
    right.relate("i", "n", 5, 5)
    joined = left.join(right)
    assert joined.compare("<", "i", "n") is True   # 3..5 still positive
    assert joined.compare("==", "i", "n") is False
    # Joining with an empty store loses the pair entirely.
    assert left.join(ConstraintStore()).compare("<", "i", "n") is None
