"""Campaign driver: parallel identity, corpus streaming, dedup, CLI."""

import json

import pytest

from repro.api import Checker
from repro.api.cli import main as cli_main
from repro.fuzz.campaign import (
    CampaignConfig,
    replay_corpus_entry,
    run_campaign,
)
from repro.fuzz.generator import GeneratorConfig

SEED = 31337


def _normalized(result) -> str:
    data = result.to_dict()
    data["config"]["jobs"] = 0  # the knob itself may differ...
    data.pop("timing")  # ...and wall-clock always does
    return json.dumps(data, sort_keys=True)


def test_parallel_campaign_is_byte_identical_to_serial():
    serial = run_campaign(CampaignConfig(seed=SEED, count=18, inject="mixed"))
    parallel = run_campaign(CampaignConfig(seed=SEED, count=18, inject="mixed",
                                           jobs=4))
    assert _normalized(serial) == _normalized(parallel)
    assert serial.ok and parallel.ok


def test_campaign_records_are_ordered_and_complete():
    result = run_campaign(CampaignConfig(seed=SEED, count=12, inject="mixed"))
    assert [record.index for record in result.records] == list(range(12))
    table = result.family_table()
    assert sum(row["cases"] for row in table.values()) == 12
    assert result.programs_per_second() > 0
    data = result.to_dict()
    assert data["timing"]["programs_per_second"] > 0
    assert data["timing"]["elapsed_seconds"] > 0
    assert data["corpus_entries"] == []


def test_mismatches_stream_to_a_deduped_corpus(tmp_path):
    corpus = tmp_path / "corpus"
    config = CampaignConfig(
        seed=SEED, count=6, inject=None,
        generator=GeneratorConfig(sabotage="wrong-stdout"),
        corpus_dir=str(corpus))
    result = run_campaign(config)
    assert len(result.mismatches) == 6
    # All six share the clean-stdout-drift signature: exactly one entry.
    entries = sorted(corpus.glob("*.json"))
    assert len(entries) == 1
    entry = json.loads(entries[0].read_text())
    assert entry["schema"] == "repro.fuzz.corpus/1"
    assert entry["signature"] == "clean-stdout-drift"
    assert entry["source"]  # replayable without regenerating
    # Replay regenerates the case from (seed, index, config) and re-fails.
    replayed = replay_corpus_entry(entries[0])
    assert not replayed.ok
    assert replayed.failures[0].signature == "clean-stdout-drift"


def test_reduce_failures_attaches_reduced_sources(tmp_path):
    config = CampaignConfig(
        seed=9, count=1, inject=None,
        generator=GeneratorConfig(sabotage="mislabel"),
        corpus_dir=str(tmp_path), reduce_failures=True)
    result = run_campaign(config)
    record = result.mismatches[0]
    assert record.reduced_source is not None
    assert len(record.reduced_source) < len(record.source)
    entry = json.loads(next(tmp_path.glob("*.json")).read_text())
    assert entry["reduced_source"] == record.reduced_source


def test_output_drift_signatures_skip_reduction(tmp_path):
    # The drift oracles compare against the original simulation; no
    # source-only predicate can preserve them, so --reduce must skip them
    # instead of silently attaching the unreduced program.
    config = CampaignConfig(
        seed=SEED, count=2, inject=None,
        generator=GeneratorConfig(sabotage="wrong-stdout"),
        corpus_dir=str(tmp_path), reduce_failures=True)
    result = run_campaign(config)
    assert result.mismatches
    assert all(record.reduced_source is None for record in result.mismatches)


def test_checker_fuzz_wires_through_the_session_options():
    checker = Checker()
    result = checker.fuzz(seed=SEED, count=5, inject="arithmetic")
    assert result.ok
    assert all(record.family == "arithmetic" for record in result.records)


def test_clean_campaign_has_no_injections():
    result = run_campaign(CampaignConfig(seed=SEED, count=5, inject=None))
    assert result.ok
    assert all(record.injected is None for record in result.records)
    assert set(result.family_table()) == {"clean"}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_fuzz_smoke_exits_zero(capsys):
    exit_code = cli_main(["fuzz", "--smoke", "--seed", "3", "--jobs", "2"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "0 oracle mismatch(es)" in output


def test_cli_fuzz_json_reports_mismatches_and_exits_one(tmp_path, capsys):
    # --inject none plus a sabotage config is not CLI-reachable; instead use
    # a tiny count with a template name to exercise the JSON shape.
    exit_code = cli_main(["fuzz", "--count", "3", "--inject", "null-deref",
                          "--format", "json"])
    data = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert data["cases"] == 3
    assert data["family_table"]["memory"]["cases"] == 3


def test_cli_fuzz_rejects_unknown_inject(capsys):
    exit_code = cli_main(["fuzz", "--count", "1", "--inject", "bogus"])
    assert exit_code == 64  # EX_USAGE


@pytest.mark.parametrize("flag", ["--corpus"])
def test_cli_fuzz_corpus_flag(tmp_path, capsys, flag):
    corpus = tmp_path / "out"
    exit_code = cli_main(["fuzz", "--count", "4", "--inject", "none",
                          flag, str(corpus), "--seed", "1"])
    assert exit_code == 0
    assert not list(corpus.glob("*.json"))  # no mismatches → no entries
