"""Catalog coverage: no dynamic UB entry may silently escape fuzzing.

Every *dynamic* entry of :data:`repro.ub.catalog.UB_CATALOG` must either be
exercised by at least one injection template (via the template's
``catalog_ids``) or appear — with a documented reason — in the
:data:`repro.fuzz.generator.UNGENERATED` allowlist.  Adding a catalog entry
without deciding which bucket it belongs to fails this test, which is the
point: fuzz coverage decisions are explicit, never accidental.
"""

from repro.events import FAMILIES
from repro.fuzz.generator import (
    GRADUATED,
    INJECTION_TEMPLATES,
    UNGENERATED,
    UNGENERATED_CATEGORIES,
    template_for,
)
from repro.ub.catalog import UB_CATALOG


def _covered_ids() -> set[str]:
    covered: set[str] = set()
    for template in INJECTION_TEMPLATES:
        covered.update(template.catalog_ids)
    return covered


def test_every_dynamic_catalog_entry_is_covered_or_allowlisted():
    covered = _covered_ids()
    unaccounted = [entry.identifier for entry in UB_CATALOG
                   if entry.is_dynamic
                   and entry.identifier not in covered
                   and entry.identifier not in UNGENERATED]
    assert not unaccounted, (
        "dynamic UB catalog entries with neither an injection template nor "
        f"an UNGENERATED reason: {unaccounted}")


def test_allowlist_entries_are_documented_and_real():
    identifiers = {entry.identifier for entry in UB_CATALOG}
    for identifier, reason in UNGENERATED.items():
        assert identifier in identifiers, (
            f"UNGENERATED names a nonexistent catalog entry: {identifier!r}")
        assert reason and len(reason) > 10, (
            f"UNGENERATED[{identifier!r}] needs a real reason, got {reason!r}")


def test_allowlist_does_not_shadow_covered_entries():
    # An entry both covered by a template and allowlisted would let the
    # template rot silently if it stopped covering the entry.
    overlap = _covered_ids() & set(UNGENERATED)
    assert not overlap, f"entries both covered and allowlisted: {sorted(overlap)}"


def test_template_catalog_ids_exist():
    identifiers = {entry.identifier for entry in UB_CATALOG}
    for template in INJECTION_TEMPLATES:
        unknown = set(template.catalog_ids) - identifiers
        assert not unknown, (
            f"template {template.name} references unknown catalog ids: {unknown}")


def test_template_families_are_real_check_families():
    for template in INJECTION_TEMPLATES:
        if template.family is not None:
            assert template.family in FAMILIES, template.name
            assert template.gated, (
                f"{template.name}: a family-tagged template must be gated")
        else:
            assert not template.gated, (
                f"{template.name}: terminal templates cannot claim ablation")


def test_every_check_family_has_a_template():
    # The ablation oracle needs at least one defect per check family.
    families_with_templates = {template.family for template in INJECTION_TEMPLATES
                               if template.family is not None}
    assert families_with_templates == set(FAMILIES)


def test_allowlist_reasons_name_a_blocker_category():
    # Free-text reasons rot; every reason must lead with a real category
    # ("<category>: <detail>") so the allowlist stays machine-auditable.
    for identifier, reason in UNGENERATED.items():
        category, separator, detail = reason.partition(":")
        assert separator and detail.strip(), (
            f"UNGENERATED[{identifier!r}] must read '<category>: <detail>', "
            f"got {reason!r}")
        assert category in UNGENERATED_CATEGORIES, (
            f"UNGENERATED[{identifier!r}] names unknown category "
            f"{category!r}; pick one of {UNGENERATED_CATEGORIES}")


def test_graduated_entries_never_return_to_the_allowlist():
    # Once an entry graduates out of UNGENERATED it stays generated: the
    # named template must still exist, still claim the entry, and the entry
    # must never be re-allowlisted.
    covered = _covered_ids()
    for identifier, template_name in GRADUATED.items():
        assert identifier not in UNGENERATED, (
            f"{identifier!r} graduated out of UNGENERATED and may not return")
        assert identifier in covered, (
            f"graduated entry {identifier!r} lost its template coverage")
        template = template_for(template_name)  # KeyError = template deleted
        assert identifier in template.catalog_ids, (
            f"template {template_name!r} no longer claims {identifier!r}")


def test_graduated_entries_include_the_issue_targets():
    # The PR that burned these down promised them generated forever.
    for identifier in (
        "division-quotient-unrepresentable",
        "abs-of-most-negative",
        "pointer-difference-unrepresentable",
        "function-pointer-wrong-type-call",
        "compound-literal-in-function-call-return",
        "assignment-overlapping-objects",
        "memcpy-overlapping",
        "printf-conversion-mismatch",
        "printf-insufficient-arguments",
    ):
        assert identifier in GRADUATED, identifier
