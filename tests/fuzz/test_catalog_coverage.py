"""Catalog coverage: no dynamic UB entry may silently escape fuzzing.

Every *dynamic* entry of :data:`repro.ub.catalog.UB_CATALOG` must either be
exercised by at least one injection template (via the template's
``catalog_ids``) or appear — with a documented reason — in the
:data:`repro.fuzz.generator.UNGENERATED` allowlist.  Adding a catalog entry
without deciding which bucket it belongs to fails this test, which is the
point: fuzz coverage decisions are explicit, never accidental.
"""

from repro.events import FAMILIES
from repro.fuzz.generator import INJECTION_TEMPLATES, UNGENERATED
from repro.ub.catalog import UB_CATALOG


def _covered_ids() -> set[str]:
    covered: set[str] = set()
    for template in INJECTION_TEMPLATES:
        covered.update(template.catalog_ids)
    return covered


def test_every_dynamic_catalog_entry_is_covered_or_allowlisted():
    covered = _covered_ids()
    unaccounted = [entry.identifier for entry in UB_CATALOG
                   if entry.is_dynamic
                   and entry.identifier not in covered
                   and entry.identifier not in UNGENERATED]
    assert not unaccounted, (
        "dynamic UB catalog entries with neither an injection template nor "
        f"an UNGENERATED reason: {unaccounted}")


def test_allowlist_entries_are_documented_and_real():
    identifiers = {entry.identifier for entry in UB_CATALOG}
    for identifier, reason in UNGENERATED.items():
        assert identifier in identifiers, (
            f"UNGENERATED names a nonexistent catalog entry: {identifier!r}")
        assert reason and len(reason) > 10, (
            f"UNGENERATED[{identifier!r}] needs a real reason, got {reason!r}")


def test_allowlist_does_not_shadow_covered_entries():
    # An entry both covered by a template and allowlisted would let the
    # template rot silently if it stopped covering the entry.
    overlap = _covered_ids() & set(UNGENERATED)
    assert not overlap, f"entries both covered and allowlisted: {sorted(overlap)}"


def test_template_catalog_ids_exist():
    identifiers = {entry.identifier for entry in UB_CATALOG}
    for template in INJECTION_TEMPLATES:
        unknown = set(template.catalog_ids) - identifiers
        assert not unknown, (
            f"template {template.name} references unknown catalog ids: {unknown}")


def test_template_families_are_real_check_families():
    for template in INJECTION_TEMPLATES:
        if template.family is not None:
            assert template.family in FAMILIES, template.name
            assert template.gated, (
                f"{template.name}: a family-tagged template must be gated")
        else:
            assert not template.gated, (
                f"{template.name}: terminal templates cannot claim ablation")


def test_every_check_family_has_a_template():
    # The ablation oracle needs at least one defect per check family.
    families_with_templates = {template.family for template in INJECTION_TEMPLATES
                               if template.family is not None}
    assert families_with_templates == set(FAMILIES)
