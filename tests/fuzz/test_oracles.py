"""The differential oracle stack: what passes, and what must not."""

import dataclasses

import pytest

from repro.fuzz.generator import GeneratorConfig, generate_case
from repro.fuzz.oracles import OracleConfig, run_oracles

SEED = 7070


@pytest.mark.parametrize("index", range(10))
def test_generated_cases_pass_every_oracle(index):
    case = generate_case(SEED, index, inject="mixed")
    report = run_oracles(case)
    assert report.ok, [failure.to_dict() for failure in report.failures]
    if case.is_bad:
        assert report.verdict in ("undefined", "static-error")
        assert report.detected_kind is not None
    else:
        assert report.verdict == "defined"


def test_search_oracle_agrees_on_generated_cases():
    config = OracleConfig(check_search=True, search_max_paths=8)
    for index in range(3):
        case = generate_case(SEED, index, inject="mixed")
        report = run_oracles(case, oracle_config=config)
        assert report.ok, [failure.to_dict() for failure in report.failures]


def test_wrong_stdout_prediction_fails_ground_truth():
    case = generate_case(SEED, 1, config=GeneratorConfig(sabotage="wrong-stdout"),
                         inject=None)
    report = run_oracles(case)
    assert not report.ok
    assert report.failures[0].oracle == "ground-truth"
    assert report.failures[0].signature == "clean-stdout-drift"


def test_mislabeled_defect_fails_ground_truth():
    case = generate_case(SEED, 0, config=GeneratorConfig(sabotage="mislabel"),
                         inject=None)
    report = run_oracles(case)
    assert not report.ok
    assert report.failures[0].oracle == "ground-truth"
    assert report.failures[0].signature.startswith("clean-flagged:")


def test_wrong_expected_kind_fails_ground_truth():
    case = generate_case(SEED, 2, inject="division-by-zero")
    from repro.errors import UBKind

    wrong = dataclasses.replace(case, expected_kinds=(UBKind.SIGNED_OVERFLOW,))
    report = run_oracles(wrong)
    assert any(failure.signature.startswith("wrong-kind:")
               for failure in report.failures)


def test_unparseable_program_is_a_generator_failure():
    case = generate_case(SEED, 0, inject=None)
    broken = dataclasses.replace(case, source="int main(void) { return 0")
    report = run_oracles(broken)
    assert report.failures[0].oracle == "generator-wellformed"
    assert report.failures[0].signature == "parse-error"


def test_oracles_can_be_selectively_disabled():
    case = generate_case(SEED, 3, inject="memory")
    config = OracleConfig(check_events=False, check_observed=False,
                          check_ablation=False)
    report = run_oracles(case, oracle_config=config)
    assert report.ok


def test_oracle_config_round_trips():
    config = OracleConfig(check_search=True, search_max_paths=4)
    assert OracleConfig.from_dict(config.to_dict()) == config


# ---------------------------------------------------------------------------
# The symbolic-differential oracle
# ---------------------------------------------------------------------------

def test_symbolic_oracle_passes_on_hole_cases():
    from repro.fuzz.generator import DOMAIN, GeneratorConfig, generate_case

    config = GeneratorConfig(symbolic_hole=DOMAIN - 1)
    oracle_config = OracleConfig(check_symbolic=True)
    for index in range(4):
        case = generate_case(99, index, config=config, inject="mixed")
        report = run_oracles(case, oracle_config=oracle_config)
        assert report.ok, [failure.detail for failure in report.failures]


def test_symbolic_oracle_skips_cases_without_a_hole():
    from repro.fuzz.generator import generate_case

    case = generate_case(99, 0, inject=None)
    report = run_oracles(case, oracle_config=OracleConfig(check_symbolic=True))
    assert report.ok


def test_symbolic_oracle_config_round_trips():
    config = OracleConfig(check_symbolic=True, symbolic_samples=3)
    rebuilt = OracleConfig.from_dict(config.to_dict())
    assert rebuilt.check_symbolic is True
    assert rebuilt.symbolic_samples == 3
