int main(void)
{
    int inj_zero_0 = 0;
    int inj_boom_0 = 19 / inj_zero_0;
    return 0;
}
