"""The ddmin reducer: shrinks, preserves the failure, stays deterministic.

The committed artifact ``data/reduced_regression.c`` is the acceptance
case: a deliberately seeded oracle failure (a mislabeled defect), shrunk by
the reducer to its minimal form and kept as a regression test — both that
the minimal program still fails the same way, and that the reducer still
produces exactly this artifact from the original generated program.
"""

import json
import pathlib

from repro.core.kcc import check_program
from repro.errors import UBKind
from repro.fuzz.generator import GeneratorConfig, generate_case
from repro.fuzz.oracles import run_oracles
from repro.fuzz.reduce import ddmin, make_failure_predicate, reduce_source

DATA = pathlib.Path(__file__).parent / "data"
ARTIFACT = DATA / "reduced_regression.c"
MANIFEST = json.loads((DATA / "reduced_regression.json").read_text())


def test_ddmin_finds_a_one_minimal_subset():
    # Classic: the test passes iff both 3 and 7 are present.
    def test_fn(items):
        return 3 in items and 7 in items

    result = ddmin(list(range(10)), test_fn)
    assert sorted(result) == [3, 7]


def test_reducer_preserves_an_undefinedness_failure():
    case = generate_case(MANIFEST["seed"], MANIFEST["index"],
                         config=GeneratorConfig(sabotage=MANIFEST["sabotage"]),
                         inject=MANIFEST["inject"])
    report = run_oracles(case)
    assert not report.ok
    signature = report.failures[0].signature
    assert signature == MANIFEST["signature"]

    predicate = make_failure_predicate(case, signature)
    reduced = reduce_source(case.source, predicate)
    assert len(reduced) < len(case.source) / 2
    assert predicate(reduced)  # the shrunk program fails the same way
    # Determinism: the committed artifact is exactly what the reducer makes.
    assert reduced == ARTIFACT.read_text()


def test_committed_regression_case_still_reproduces():
    # The minimal case must keep tripping the checker the recorded way: a
    # division by zero on what the (sabotaged) label called a clean program.
    report = check_program(ARTIFACT.read_text())
    assert report.outcome.flagged
    assert UBKind.DIVISION_BY_ZERO in report.outcome.ub_kinds
    # Minimality in the large: the defect core plus main's scaffolding.
    assert len(ARTIFACT.read_text().splitlines()) <= 8


def test_reducer_returns_input_when_predicate_never_holds():
    source = "int main(void) { return 0; }\n"
    assert reduce_source(source, lambda text: False) == source


def test_reducer_handles_non_failing_statement_interleavings():
    # A failure that depends on *two* separated statements: ddmin must keep
    # both while removing the noise between them.
    source = """
int main(void) {
    int keep_a = 0;
    int noise1 = 1;
    int noise2 = 2;
    int noise3 = noise1 + noise2;
    int keep_b = 5 / keep_a;
    int noise4 = 4;
    noise4 = noise3;
    return keep_b;
}
"""

    def still_divides_by_zero(text: str) -> bool:
        report = check_program(text)
        return UBKind.DIVISION_BY_ZERO in report.outcome.ub_kinds

    reduced = reduce_source(source, still_divides_by_zero)
    assert still_divides_by_zero(reduced)
    assert "noise1" not in reduced and "noise4" not in reduced
    assert len(reduced.splitlines()) <= 6
