"""The generator's ground-truth contract.

Clean programs must be well-defined by construction — DEFINED verdict with
exactly the simulated stdout and exit code, on both engines.  Injected
programs must carry exactly one defect, detected as one of the template's
expected kinds, on the executed path.
"""

import pytest

from repro.core.config import CheckerOptions
from repro.core.kcc import KccTool, check_program
from repro.errors import OutcomeKind
from repro.fuzz.generator import (
    GeneratorConfig,
    INJECTION_TEMPLATES,
    generate_case,
    generate_cases,
    injection_families,
    template_for,
)

SEED = 20260729


def test_generation_is_deterministic():
    first = generate_case(SEED, 5, inject="mixed")
    second = generate_case(SEED, 5, inject="mixed")
    assert first.source == second.source
    assert first.injected == second.injected
    assert first.predicted_stdout == second.predicted_stdout
    # Different indices (and seeds) give different programs.
    assert generate_case(SEED, 6, inject="mixed").source != first.source
    assert generate_case(SEED + 1, 5, inject="mixed").source != first.source


@pytest.mark.parametrize("index", range(25))
def test_clean_programs_match_their_simulation(index):
    case = generate_case(SEED, index, inject=None)
    assert case.predicted_stdout is not None and case.predicted_exit is not None
    report = check_program(case.source)
    assert report.outcome.kind is OutcomeKind.DEFINED, (
        f"{case.name}: {report.outcome.describe()}\n{case.source}")
    assert report.outcome.exit_code == case.predicted_exit
    assert report.outcome.stdout == case.predicted_stdout


@pytest.mark.parametrize("index", range(8))
def test_clean_programs_match_on_the_legacy_walker(index):
    case = generate_case(SEED, index, inject=None)
    tool = KccTool(CheckerOptions(enable_lowering=False))
    report = tool.check(case.source)
    assert report.outcome.kind is OutcomeKind.DEFINED
    assert report.outcome.exit_code == case.predicted_exit
    assert report.outcome.stdout == case.predicted_stdout


@pytest.mark.parametrize("template", INJECTION_TEMPLATES,
                         ids=lambda t: t.name)
def test_every_template_is_detected_in_context(template):
    for index in range(3):
        case = generate_case(SEED, index, inject=template.name)
        assert case.injected == template.name
        assert case.predicted_stdout is None  # injected cases carry no prediction
        report = check_program(case.source)
        assert report.outcome.flagged, (
            f"{template.name} not flagged at index {index}:\n{case.source}")
        assert any(kind in template.expected_kinds
                   for kind in report.outcome.ub_kinds), (
            f"{template.name} detected as {report.outcome.ub_kinds}")


@pytest.mark.parametrize("template",
                         [t for t in INJECTION_TEMPLATES if t.gated],
                         ids=lambda t: t.name)
def test_gated_templates_ablate(template):
    # Disabling the planted family's check must un-detect the defect.
    case = generate_case(SEED, 1, inject=template.name)
    ablated = CheckerOptions().without(**{f"check_{template.family}": False})
    report = check_program(case.source, ablated)
    assert not any(kind in template.expected_kinds
                   for kind in report.outcome.ub_kinds), (
        f"check_{template.family}=False still reports "
        f"{report.outcome.describe()}")


def test_family_injection_draws_from_that_family():
    for family in injection_families():
        case = generate_case(SEED, 2, inject=family)
        assert case.is_bad
        assert (template_for(case.injected).family or "terminal") == family


def test_mixed_mode_produces_both_labels():
    cases = generate_cases(SEED, 40, inject="mixed")
    labels = {case.is_bad for case in cases}
    assert labels == {True, False}
    # ... and clean cases still verify.
    clean = next(case for case in cases if not case.is_bad)
    report = check_program(clean.source)
    assert report.outcome.stdout == clean.predicted_stdout


def test_case_round_trips_through_dict():
    from repro.fuzz.generator import FuzzCase

    case = generate_case(SEED, 3, inject="memory")
    rebuilt = FuzzCase.from_dict(case.to_dict())
    assert rebuilt.source == case.source
    assert rebuilt.expected_kinds == case.expected_kinds
    assert rebuilt.config == case.config


def test_sabotage_mislabel_plants_an_unlabeled_defect():
    config = GeneratorConfig(sabotage="mislabel")
    case = generate_case(SEED, 0, config=config, inject=None)
    assert not case.is_bad and case.expected_kinds == ()
    assert check_program(case.source).outcome.flagged  # the defect is real


def test_sabotage_wrong_stdout_corrupts_the_prediction():
    config = GeneratorConfig(sabotage="wrong-stdout")
    case = generate_case(SEED, 0, config=config, inject=None)
    report = check_program(case.source)
    assert report.outcome.kind is OutcomeKind.DEFINED
    assert report.outcome.stdout != case.predicted_stdout


# ---------------------------------------------------------------------------
# The symbolic input hole
# ---------------------------------------------------------------------------

def test_symbolic_hole_declares_a_protected_input():
    from repro.fuzz.generator import DOMAIN

    config = GeneratorConfig(symbolic_hole=DOMAIN - 1)
    case = generate_case(SEED, 3, config=config, inject=None)
    assert case.hole_name == "sym0"
    assert case.hole_range == (0, DOMAIN - 1)
    assert 0 <= case.hole_default <= DOMAIN - 1
    body = case.source.split("int main(void) {", 1)[1]
    # Declared exactly once, with the default as initializer, never written.
    assert body.count("int sym0") == 1
    assert f"int sym0 = {case.hole_default};" in body
    assert "sym0 =" not in body.replace(f"int sym0 = {case.hole_default};", "")


def test_symbolic_hole_round_trips_through_dict():
    from repro.fuzz.generator import DOMAIN, FuzzCase

    config = GeneratorConfig(symbolic_hole=DOMAIN - 1)
    case = generate_case(SEED, 4, config=config, inject=None)
    rebuilt = FuzzCase.from_dict(case.to_dict())
    assert rebuilt.hole_name == case.hole_name
    assert rebuilt.hole_range == case.hole_range
    assert rebuilt.hole_default == case.hole_default


def test_hole_cases_stay_defined_at_substituted_values():
    """The generator's closed-bound discipline: any hole value is safe."""
    from repro.fuzz.generator import DOMAIN
    from repro.symbolic.oracle import substitute_input

    config = GeneratorConfig(symbolic_hole=DOMAIN - 1)
    case = generate_case(SEED, 6, config=config, inject=None)
    for value in (0, 1, DOMAIN // 2, DOMAIN - 1):
        text = substitute_input(case.source, case.hole_name, value)
        outcome = check_program(text).outcome
        assert outcome.kind is OutcomeKind.DEFINED, (value, outcome.describe())


def test_default_config_has_no_hole():
    case = generate_case(SEED, 3, inject=None)
    assert case.hole_name is None
    assert case.hole_range is None
