"""FuzzCorpusSuite: generated ground truth through the PR-3 harness."""

from repro.analyzers.registry import make_tools
from repro.suites.fuzzcorpus import FuzzCorpusSuite, generate_fuzz_suite
from repro.suites.harness import EvaluationHarness

SEED = 4242


def test_suite_generation_is_deterministic_and_labeled():
    suite = generate_fuzz_suite(seed=SEED, count=30)
    again = generate_fuzz_suite(seed=SEED, count=30)
    assert [case.source for case in suite.cases] == \
           [case.source for case in again.cases]
    assert isinstance(suite, FuzzCorpusSuite)
    assert len(suite) == 30
    kinds = {case.is_bad for case in suite.cases}
    assert kinds == {True, False}
    for case in suite.cases:
        assert case.category.startswith("fuzz:")
        assert case.stage == "dynamic"
        if case.is_bad:
            assert case.expected_kinds, case.name


def test_kcc_scores_perfectly_against_generated_ground_truth():
    # The acceptance bar in miniature: the full checker must detect every
    # planted defect and flag no clean program — generated ground truth
    # scores the probe-backed tools exactly like a hand-written suite does.
    suite = generate_fuzz_suite(seed=SEED, count=24)
    harness = EvaluationHarness(make_tools(["kcc"]))
    comparison = harness.run_suite(suite)
    score = comparison.score_for("kcc")
    assert score.detection_rate() == 1.0
    assert score.false_positive_rate() == 0.0


def test_restricted_tools_score_below_kcc_per_family():
    # A tool modeling only memory errors must miss non-memory families —
    # i.e. the generated labels discriminate between detection profiles.
    suite = generate_fuzz_suite(seed=SEED, count=40, inject="sequencing")
    harness = EvaluationHarness(make_tools(["kcc", "valgrind"]))
    comparison = harness.run_suite(suite)
    kcc = comparison.score_for("kcc").detection_rate()
    valgrind = comparison.score_for("Valgrind").detection_rate()
    assert kcc == 1.0
    assert valgrind is not None and valgrind < kcc


def test_families_listing():
    suite = generate_fuzz_suite(seed=SEED, count=40)
    families = suite.families()
    assert families == sorted(families)
    assert "clean" not in families
    assert families  # mixed corpora always plant something
