"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Optional

from repro import CheckerOptions, UBKind, check_program
from repro.cfront.parser import parse
from repro.core.interpreter import Interpreter
from repro.errors import OutcomeKind


def run_ok(source: str, options: Optional[CheckerOptions] = None, *,
           stdin: str = "", argv=None):
    """Check a program expected to be defined; return its Outcome."""
    report = check_program(source, options or CheckerOptions(), stdin=stdin, argv=argv)
    assert report.outcome.kind is OutcomeKind.DEFINED, (
        f"expected a defined program, got: {report.outcome.describe()}")
    return report.outcome


def exit_code_of(source: str, options: Optional[CheckerOptions] = None, *,
                 stdin: str = "", argv=None) -> int:
    return run_ok(source, options, stdin=stdin, argv=argv).exit_code


def stdout_of(source: str, options: Optional[CheckerOptions] = None, *, stdin: str = "") -> str:
    return run_ok(source, options, stdin=stdin).stdout


def expect_undefined(source: str, kind: Optional[UBKind] = None,
                     options: Optional[CheckerOptions] = None, *,
                     search: bool = False):
    """Check a program expected to be undefined (dynamically or statically)."""
    report = check_program(source, options or CheckerOptions(),
                           search_evaluation_order=search)
    assert report.outcome.flagged, (
        f"expected undefined behavior, got: {report.outcome.describe()}")
    if kind is not None:
        assert kind in report.outcome.ub_kinds, (
            f"expected {kind}, got {report.outcome.ub_kinds}: {report.outcome.describe()}")
    return report.outcome


def expect_static_error(source: str, kind: Optional[UBKind] = None):
    report = check_program(source)
    assert report.outcome.kind is OutcomeKind.STATIC_ERROR, (
        f"expected a static error, got: {report.outcome.describe()}")
    if kind is not None:
        assert kind in report.outcome.ub_kinds
    return report.outcome


def make_interpreter(source: str, options: Optional[CheckerOptions] = None) -> Interpreter:
    """Parse a program and build an interpreter without running it."""
    unit = parse(source)
    return Interpreter(unit, options or CheckerOptions())
