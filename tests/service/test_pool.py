"""Warm worker pool: identity with serial, persistence, failure recovery."""

import pytest

from repro.service.pool import (
    get_pool,
    pool_stats,
    resolve_jobs,
    run_pooled,
    run_staged,
    shutdown_pool,
)


def _square(value):
    return value * value


def _tag(header, item):
    return f"{header}:{item}"


def _boom(header, item):
    raise ValueError(f"task {item} exploded")


def _length(header, item):
    return len(header) + len(item)


def test_resolve_jobs_clamps_and_defaults():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(-3) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(None) >= 1


def test_run_pooled_serial_fallback_matches_comprehension():
    values = list(range(20))
    assert run_pooled(_square, values, jobs=1) == [v * v for v in values]


def test_run_pooled_parallel_identical_to_serial():
    values = list(range(25))
    serial = run_pooled(_square, values, jobs=1)
    parallel = run_pooled(_square, values, jobs=3)
    assert parallel == serial


def test_run_staged_preserves_order_and_ships_header_once():
    items = [str(index) for index in range(17)]
    serial = run_staged(_tag, "hdr", items, jobs=1)
    parallel = run_staged(_tag, "hdr", items, jobs=3)
    assert parallel == serial == [f"hdr:{item}" for item in items]


def test_pool_is_persistent_across_batches():
    pool = get_pool(2)
    if pool is None:
        pytest.skip("host cannot spawn worker processes")
    before = pool.batches_run
    run_staged(_tag, "a", ["1", "2", "3", "4"], jobs=2, chunksize=2)
    run_staged(_tag, "b", ["1", "2", "3", "4"], jobs=2, chunksize=2)
    assert get_pool(2) is pool
    assert pool.batches_run >= before + 2  # both batches ran on this pool
    stats = pool_stats()
    assert stats["alive"] and stats["workers"] >= 2


def test_growing_never_shrinking():
    small = get_pool(1)
    if small is None:
        pytest.skip("host cannot spawn worker processes")
    grown = get_pool(3)
    assert grown is not None and grown.workers >= 3
    # Asking for fewer workers keeps the grown pool.
    assert get_pool(1) is grown


def test_task_error_propagates_and_pool_survives():
    pool = get_pool(2)
    if pool is None:
        pytest.skip("host cannot spawn worker processes")
    with pytest.raises(ValueError, match="exploded"):
        run_staged(_boom, None, list(range(8)), jobs=2, chunksize=2)
    assert pool.alive
    assert run_staged(_tag, "ok", ["x", "y"], jobs=2) == ["ok:x", "ok:y"]


def test_large_item_lists_travel_by_file_reference():
    # ~1.5 MiB of items: well past the staging threshold, so the chunk
    # payload ships as a spool-file reference instead of inline pickles.
    items = [("x" * 1024) + str(index) for index in range(1500)]
    serial = run_staged(_length, "hh", items, jobs=1)
    parallel = run_staged(_length, "hh", items, jobs=2)
    assert parallel == serial


def test_shutdown_then_respawn():
    shutdown_pool(wait=True)
    assert pool_stats()["workers"] == 0
    values = list(range(6))
    assert run_pooled(_square, values, jobs=2) == [v * v for v in values]
