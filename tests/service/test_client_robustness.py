"""ServiceClient transport robustness against a deliberately hostile server.

A scripted TCP server plays one behavior per accepted connection — drop
after the hello, drop mid-stream after ``accepted``, answer properly, or
stall forever — so the client's two failure policies can be pinned apart:

* transport loss (dropped connection) → reconnect with capped exponential
  backoff and re-issue the whole job, up to ``max_retries`` times;
* request timeout (a frame read exceeding ``request_timeout``) → raise
  :class:`ServiceTimeout` immediately, with **no** retry (a slow job is
  not a broken one).
"""

import json
import socket
import threading

import pytest

from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    ServiceTimeout,
)

PROGRAM = "int main(void) { return 0; }"


def _send(conn, frame):
    conn.sendall((json.dumps(frame) + "\n").encode("utf-8"))


class ScriptedServer:
    """Plays one scripted behavior per accepted connection, in order.

    Behaviors: ``"drop-on-hello"`` closes right after the hello frame,
    ``"drop-mid-stream"`` accepts the job then drops before its result,
    ``"serve"`` completes the job, ``"stall"`` accepts and never answers.
    The final behavior repeats for any extra connections.
    """

    def __init__(self, behaviors):
        self.behaviors = list(behaviors)
        self.connections = 0
        self.requests = []
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.endpoint = "tcp:127.0.0.1:%d" % self._sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            index = min(self.connections, len(self.behaviors) - 1)
            behavior = self.behaviors[index]
            self.connections += 1
            try:
                self._play(conn, behavior)
            except OSError:
                pass
            finally:
                conn.close()

    def _play(self, conn, behavior):
        _send(conn, {"event": "hello", "proto": 1})
        if behavior == "drop-on-hello":
            return
        reader = conn.makefile("rb")
        line = reader.readline()
        if not line:
            return
        request = json.loads(line)
        self.requests.append(request)
        job = request["id"]
        _send(conn, {"event": "accepted", "job": job, "total": 1})
        if behavior == "drop-mid-stream":
            return
        if behavior == "stall":
            self._stop.wait(30.0)
            return
        assert behavior == "serve"
        _send(conn, {"event": "report", "job": job, "index": 0,
                     "report": {"ok": True}})
        _send(conn, {"event": "done", "job": job, "status": "ok"})

    def close(self):
        self._stop.set()
        self._sock.close()
        self._thread.join(timeout=5.0)


@pytest.fixture()
def scripted():
    servers = []

    def start(*behaviors):
        server = ScriptedServer(behaviors)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()


class TestReconnect:
    def test_mid_stream_drop_reconnects_and_completes(self, scripted):
        server = scripted("drop-mid-stream", "serve")
        with ServiceClient(server.endpoint, backoff_base=0.01) as client:
            reports = client.check([PROGRAM])
        assert reports == [{"ok": True}]
        assert client.reconnects == 1
        # The whole job was re-issued on the fresh connection.
        assert len(server.requests) == 2
        assert server.requests[0]["id"] == server.requests[1]["id"]

    def test_repeated_drops_exhaust_retries(self, scripted):
        server = scripted("drop-mid-stream")
        client = ServiceClient(
            server.endpoint, max_retries=2, backoff_base=0.01
        )
        with pytest.raises(ServiceConnectionError):
            client.check([PROGRAM])
        assert client.reconnects == 2
        assert server.connections == 3  # initial + two retries
        client.close()

    def test_drop_before_any_frame_is_retried_too(self, scripted):
        server = scripted("drop-on-hello", "serve")
        with ServiceClient(server.endpoint, backoff_base=0.01) as client:
            assert client.check([PROGRAM]) == [{"ok": True}]
        assert client.reconnects == 1

    def test_max_retries_zero_fails_fast(self, scripted):
        server = scripted("drop-mid-stream", "serve")
        client = ServiceClient(
            server.endpoint, max_retries=0, backoff_base=0.01
        )
        with pytest.raises(ServiceConnectionError):
            client.check([PROGRAM])
        assert client.reconnects == 0
        client.close()

    def test_unreachable_endpoint_raises_connection_error(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here anymore
        with pytest.raises(ServiceConnectionError):
            ServiceClient(
                f"tcp:127.0.0.1:{port}", max_retries=0, backoff_base=0.01
            )


class TestRequestTimeout:
    def test_stalled_job_raises_timeout_without_retry(self, scripted):
        server = scripted("stall")
        client = ServiceClient(
            server.endpoint, request_timeout=0.3, backoff_base=0.01
        )
        with pytest.raises(ServiceTimeout):
            client.check([PROGRAM])
        # Never retried: one connection, one request, no reconnects.
        assert client.reconnects == 0
        assert server.connections == 1
        assert len(server.requests) == 1
        client.close()

    def test_timeout_is_a_service_error_with_its_own_code(self, scripted):
        server = scripted("stall")
        client = ServiceClient(server.endpoint, request_timeout=0.2)
        with pytest.raises(ServiceError) as info:
            client.check([PROGRAM])
        assert info.value.code == "timeout"
        client.close()


def test_backoff_schedule_is_capped_exponential():
    client = ServiceClient.__new__(ServiceClient)
    client.backoff_base = 0.1
    client.backoff_cap = 2.0
    delays = [client._backoff(attempt) for attempt in range(1, 8)]
    assert delays[:3] == [0.1, 0.2, 0.4]
    assert max(delays) == 2.0
    assert delays == sorted(delays)
