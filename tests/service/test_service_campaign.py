"""The ``unit`` and ``campaign`` service ops: placement-independent results.

A campaign work unit executed over the wire must return byte-identical
payload to the same unit executed in-process — that is the contract the
distributed campaign scheduler journals against.  The whole-campaign op
additionally streams one ``campaign-progress`` snapshot per completed unit
(the live results plane).
"""

import pytest

from repro.campaign.scheduler import run_campaign_spec
from repro.campaign.workunit import CampaignSpec, campaign_units, execute_unit
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import serve_in_background

SPEC = CampaignSpec(seed=23, count=4, unit_size=2, inject="rotate")


@pytest.fixture(scope="module")
def endpoint():
    with serve_in_background(jobs=2) as running:
        yield running


def test_remote_unit_matches_inline_execution(endpoint):
    unit = campaign_units(SPEC)[0]
    local = execute_unit((SPEC.to_dict(), None), unit.to_dict())
    with ServiceClient(endpoint) as client:
        remote = client.run_unit(SPEC.to_dict(), unit.to_dict())
    assert remote["digest"] == local["digest"]
    assert remote["records"] == local["records"]
    assert remote["summary"] == local["summary"]


def test_tampered_unit_is_rejected_by_the_service(endpoint):
    unit_dict = campaign_units(SPEC)[0].to_dict()
    unit_dict["params"] = dict(unit_dict["params"], hi=999)
    with ServiceClient(endpoint) as client:
        with pytest.raises(ServiceError):
            client.run_unit(SPEC.to_dict(), unit_dict)


def test_unit_of_a_different_spec_is_rejected(endpoint):
    other = CampaignSpec(seed=99, count=4, unit_size=2)
    unit_dict = campaign_units(other)[0].to_dict()
    with ServiceClient(endpoint) as client:
        with pytest.raises(ServiceError):
            client.run_unit(SPEC.to_dict(), unit_dict)


def test_remote_campaign_matches_the_journaled_run(endpoint, tmp_path):
    local = run_campaign_spec(SPEC, tmp_path / "local.jsonl")
    events = []
    with ServiceClient(endpoint) as client:
        remote = client.campaign(SPEC.to_dict(), on_event=events.append)
    assert remote == local.to_dict()
    snapshots = [e for e in events if e["event"] == "campaign-progress"]
    assert len(snapshots) == SPEC.units_estimate()
    assert snapshots[-1]["snapshot"]["units_done"] == SPEC.units_estimate()
    # Snapshots are the live view: they carry timing the canonical omits.
    assert "elapsed_seconds" in snapshots[-1]["snapshot"]


def test_campaign_over_remote_endpoints_backend(endpoint, tmp_path):
    """The scheduler's endpoint backend journals remote results exactly."""
    from repro.campaign.scheduler import ScheduleConfig

    local = run_campaign_spec(SPEC, tmp_path / "inline.jsonl")
    remote = run_campaign_spec(
        SPEC,
        tmp_path / "remote.jsonl",
        ScheduleConfig(endpoints=(endpoint,)),
    )
    assert remote.to_dict() == local.to_dict()
    assert remote.executed == SPEC.units_estimate()
