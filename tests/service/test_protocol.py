"""Protocol layer: frame round-trips, validation, options serialization."""

import pytest

from repro.cfront import ctypes as ct
from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.service import protocol
from repro.service.protocol import ProtocolError


def _round_trip(frame):
    return protocol.decode_frame(protocol.encode_frame(frame))


def test_encode_decode_round_trip():
    frame = {"op": "ping", "nested": {"a": [1, 2, 3]}, "text": "café"}
    assert _round_trip(frame) == frame
    assert protocol.encode_frame(frame).endswith(b"\n")


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError, match="not valid JSON"):
        protocol.decode_frame(b"not json at all")
    with pytest.raises(ProtocolError, match="must be an object"):
        protocol.decode_frame(b"[1, 2, 3]")
    with pytest.raises(ProtocolError, match="not UTF-8"):
        protocol.decode_frame(b"\xff\xfe{}")


# -- request round-trips, one per job kind ----------------------------------


def test_check_request_round_trip():
    frame = protocol.check_request(
        "job-1",
        ["int main(void){return 0;}", ("a.c", "int main(void){return 1;}")],
        search=True,
        budget="paths=32",
    )
    request = protocol.validate_request(_round_trip(frame))
    assert request["op"] == "check"
    assert request["id"] == "job-1"
    assert request["sources"] == [
        ("<input:0>", "int main(void){return 0;}"),
        ("a.c", "int main(void){return 1;}"),
    ]
    assert request["search"] is True
    assert request["budget"].max_paths == 32
    assert request["options"] == DEFAULT_OPTIONS


def test_fuzz_request_round_trip():
    frame = protocol.fuzz_request("job-2", seed=7, count=50, inject="memory")
    request = protocol.validate_request(_round_trip(frame))
    assert request["op"] == "fuzz"
    assert request["seed"] == 7
    assert request["count"] == 50
    assert request["inject"] == "memory"
    none_frame = protocol.fuzz_request("job-3", inject=None)
    assert protocol.validate_request(_round_trip(none_frame))["inject"] is None


def test_search_request_round_trip():
    frame = protocol.search_request(
        "job-4",
        "int main(void){return 0;}",
        filename="prog.c",
        strategy="random",
        seed=99,
        budget="paths=8,seconds=2",
    )
    request = protocol.validate_request(_round_trip(frame))
    assert request["op"] == "search"
    assert request["filename"] == "prog.c"
    assert request["strategy"] == "random"
    assert request["seed"] == 99
    assert request["budget"].max_paths == 8
    assert request["budget"].max_seconds == 2.0


# -- options over the wire ---------------------------------------------------


def test_options_round_trip_defaults_are_compact():
    assert protocol.options_to_dict(DEFAULT_OPTIONS) == {"profile": "lp64"}
    assert protocol.options_from_dict(None) == DEFAULT_OPTIONS


def test_options_round_trip_non_default_fields():
    options = CheckerOptions(
        profile=ct.PROFILES["ilp32"],
        check_sequencing=False,
        max_steps=1234,
        evaluation_order="right-to-left",
    )
    data = protocol.options_to_dict(options)
    assert data["profile"] == "ilp32"
    assert data["check_sequencing"] is False
    assert protocol.options_from_dict(data) == options


@pytest.mark.parametrize(
    "data, match",
    [
        ({"profile": "pdp11"}, "unknown profile"),
        ({"frobnicate": True}, "unknown option field"),
        ({"check_memory": "yes"}, "must be a boolean"),
        ({"max_steps": True}, "must be an integer"),
        ({"evaluation_order": 3}, "must be a string"),
        ("not-a-dict", "must be a JSON object"),
    ],
)
def test_options_validation_errors(data, match):
    with pytest.raises(ProtocolError, match=match):
        protocol.options_from_dict(data)


# -- request validation errors ----------------------------------------------


@pytest.mark.parametrize(
    "frame, match",
    [
        ({}, "needs a string 'op'"),
        ({"op": 7}, "needs a string 'op'"),
        ({"op": "frobnicate"}, "unknown op"),
        ({"op": "check", "sources": ["x"]}, "needs 'id'"),
        ({"op": "check", "id": "j", "sources": []}, "non-empty list"),
        ({"op": "check", "id": "j", "sources": [42]}, "sources\\[0\\]"),
        ({"op": "check", "id": "j", "sources": ["x"], "search": "y"}, "boolean"),
        ({"op": "fuzz", "id": "j", "count": -1}, "non-negative integer"),
        ({"op": "fuzz", "id": "j", "seed": "zero"}, "non-negative integer"),
        ({"op": "search", "id": "j"}, "needs 'source'"),
        ({"op": "search", "id": "j", "source": "x", "strategy": "omniscient"},
         "unknown search strategy"),
        ({"op": "check", "id": "j", "sources": ["x"], "budget": "paths=lots"},
         "bad budget value"),
        ({"op": "cancel"}, "needs 'id'"),
    ],
)
def test_validate_request_rejects_bad_frames(frame, match):
    with pytest.raises(ProtocolError, match=match):
        protocol.validate_request(frame)


def test_bad_request_errors_carry_the_right_code():
    try:
        protocol.validate_request({"op": "nope"})
    except ProtocolError as error:
        assert error.code == protocol.ERROR_BAD_REQUEST
    try:
        protocol.validate_request({})
    except ProtocolError as error:
        assert error.code == protocol.ERROR_PROTOCOL


# -- response frames ---------------------------------------------------------


def test_response_frame_shapes():
    assert protocol.done_frame("j", "ok")["status"] == "ok"
    assert "elapsed_seconds" not in protocol.done_frame("j", "ok")
    assert protocol.done_frame("j", "ok", elapsed_seconds=1.5)["elapsed_seconds"] == 1.5
    error = protocol.error_frame("boom", code="internal", job="j")
    assert (error["code"], error["job"]) == ("internal", "j")
    assert "job" not in protocol.error_frame("boom")
    progress = protocol.progress_frame("j", 3, 9)
    assert (progress["done"], progress["total"]) == (3, 9)
    hello = protocol.hello_frame(version="1.0", pool={"workers": 2})
    assert hello["protocol"] == protocol.PROTOCOL
