"""The checking service end to end: identity, concurrency, cancel, errors.

One background server (module fixture) serves every test; each test talks
to it with fresh client connections, exactly as concurrent users would.
"""

import json
import socket
import threading

import pytest

from repro.api.session import Checker
from repro.core.config import CheckerOptions
from repro.cfront import ctypes as ct
from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.service.client import JobCancelled, ServiceClient, ServiceError
from repro.service.server import serve_in_background

PROGRAMS = [
    "int main(void) { return 0; }",
    "int main(void) { int x = 0; return 1 / x; }",
    "int main(void) { int i = 0; return i++ + i++; }",
    "int main(void) { int *p = 0; return *p; }",
    "int main(void) { int a[2] = {1, 2}; return a[1]; }",
]


@pytest.fixture(scope="module")
def endpoint():
    with serve_in_background(jobs=2) as running:
        yield running


@pytest.fixture(scope="module")
def expected_reports():
    return [report.to_dict() for report in Checker().check_many(PROGRAMS)]


def _raw_connection(endpoint):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(60.0)
    sock.connect(endpoint[len("unix:") :])
    reader = sock.makefile("rb")
    hello = json.loads(reader.readline())
    assert hello["event"] == "hello"
    return sock, reader


def test_check_job_identical_to_direct_checker(endpoint, expected_reports):
    with ServiceClient(endpoint) as client:
        events = []
        reports = client.check(PROGRAMS, on_event=lambda f: events.append(f))
    assert reports == expected_reports
    assert events[0]["event"] == "accepted"
    assert events[0]["total"] == len(PROGRAMS)
    assert events[-1]["event"] == "progress"
    assert events[-1]["done"] == len(PROGRAMS)


def test_check_job_honors_options_profile(endpoint):
    source = "int main(void) { return sizeof(long) == 8; }"
    options = CheckerOptions(profile=ct.PROFILES["ilp32"])
    direct = Checker(options).check_many([source])[0].to_dict()
    with ServiceClient(endpoint) as client:
        via_service = client.check([source], options=options)[0]
    assert via_service == direct
    assert via_service != Checker().check_many([source])[0].to_dict()


def test_eight_concurrent_clients_get_identical_verdicts(endpoint, expected_reports):
    results: dict[int, object] = {}

    def drive(worker: int) -> None:
        try:
            with ServiceClient(endpoint) as client:
                results[worker] = client.check(PROGRAMS)
        except Exception as error:  # surfaced through the assertion below
            results[worker] = error

    threads = [threading.Thread(target=drive, args=(w,)) for w in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    assert sorted(results) == list(range(8))
    for worker in range(8):
        assert results[worker] == expected_reports, f"client {worker} diverged"


def test_fuzz_job_matches_direct_campaign(endpoint):
    direct = run_campaign(CampaignConfig(seed=11, count=10, inject="mixed"))
    direct_dict = direct.to_dict()
    direct_dict.pop("timing")
    with ServiceClient(endpoint) as client:
        via_service = client.fuzz(seed=11, count=10, inject="mixed")
    via_service.pop("timing")
    assert via_service == direct_dict


def test_search_job_finds_order_dependent_ub(endpoint):
    source = "int main(void) { int i = 0; return (i = 1) + (i = 2); }"
    with ServiceClient(endpoint) as client:
        report = client.search(source, budget="paths=16")
    assert report["outcome"]["kind"] == "undefined"
    assert report["search"] is not None


def test_mid_job_cancellation_stops_between_chunks(endpoint):
    with ServiceClient(endpoint) as client:
        job = client.next_job_id()

        def on_event(frame):
            if frame.get("event") == "progress":
                client.cancel(job)

        with pytest.raises(JobCancelled) as caught:
            client.check(PROGRAMS * 12, job=job, on_event=on_event)
        assert len(caught.value.partial) < len(PROGRAMS) * 12
        # The connection survives a cancelled job.
        assert client.check([PROGRAMS[0]])[0]["outcome"]["kind"] == "defined"


def test_malformed_requests_get_error_frames(endpoint):
    sock, reader = _raw_connection(endpoint)
    try:
        probes = [
            (b"not json\n", "protocol", None),
            (b'{"op": "frobnicate"}\n', "bad-request", None),
            (b'{"op": "check", "id": "j1", "sources": []}\n', "bad-request", "j1"),
            (
                b'{"op": "check", "id": "j2", "sources": ["int main(void){}"], '
                b'"options": {"profile": "pdp11"}}\n',
                "bad-request",
                "j2",
            ),
            (b'{"op": "cancel", "id": "ghost"}\n', "bad-request", "ghost"),
        ]
        for line, code, job in probes:
            sock.sendall(line)
            frame = json.loads(reader.readline())
            assert frame["event"] == "error"
            assert frame["code"] == code
            assert frame.get("job") == job
        # Five bad frames later, the connection still serves good requests.
        sock.sendall(b'{"op": "ping"}\n')
        assert json.loads(reader.readline())["event"] == "pong"
    finally:
        sock.close()


def test_duplicate_job_id_is_rejected(endpoint):
    sock, reader = _raw_connection(endpoint)
    try:
        request = {"op": "check", "id": "dup", "sources": [PROGRAMS[0]] * 30}
        sock.sendall((json.dumps(request) + "\n").encode())
        sock.sendall((json.dumps(request) + "\n").encode())
        saw_duplicate_error = False
        while True:
            frame = json.loads(reader.readline())
            if frame["event"] == "error" and "already active" in frame["message"]:
                saw_duplicate_error = True
            if frame["event"] == "done":
                break
        assert saw_duplicate_error
    finally:
        sock.close()


def test_stats_and_ping(endpoint):
    with ServiceClient(endpoint) as client:
        assert client.ping() is True
        stats = client.stats()
    assert stats["connections"] >= 1
    assert stats["jobs_completed"] >= 1
    assert "workers" in stats["pool"]


def test_internal_job_failure_keeps_connection_alive(endpoint):
    # max_steps=0 is structurally valid but the engine rejects it at run
    # time — whatever the failure mode, the job must end in a clean frame
    # and leave the connection usable.
    with ServiceClient(endpoint) as client:
        options = CheckerOptions(max_steps=1)
        reports = client.check([PROGRAMS[0]], options=options)
        assert reports[0]["outcome"]["kind"] in ("inconclusive", "defined")
        assert client.check([PROGRAMS[0]])[0]["outcome"]["kind"] == "defined"


def test_client_rejects_bad_endpoint():
    with pytest.raises(ServiceError, match="bad endpoint"):
        ServiceClient("no-port-here")
    with pytest.raises(ServiceError, match="cannot connect"):
        ServiceClient("unix:/nonexistent/path.sock")
