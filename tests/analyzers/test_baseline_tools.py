"""Tests for the baseline analyzers: each tool's blind spots are part of its model."""

from repro.analyzers import (
    CheckPointerLikeTool,
    ValgrindLikeTool,
    ValueAnalysisTool,
    all_tools,
    tool_by_name,
)
from repro.analyzers.base import KccAnalysisTool
from repro.errors import UBKind

DIV_BY_ZERO = "int main(void){ int d = 0; return 5 / d; }"
SIGNED_OVERFLOW = "int main(void){ int x = 2147483647; return (x + 1) < x; }"
HEAP_OVERFLOW = """
#include <stdlib.h>
int main(void){ int *p = malloc(4 * sizeof(int)); if (!p) return 0; p[5] = 1; free(p); return 0; }
"""
STACK_OVERFLOW_WRITE = """
int main(void){ int a[4]; int i = 4; a[i] = 1; return 0; }
"""
BAD_FREE = """
#include <stdlib.h>
int main(void){ int x = 1; free(&x); return 0; }
"""
UNINIT_INT = "int main(void){ int x; return x + 1; }"
UNINIT_POINTER = "int main(void){ int *p; return *p; }"
UNSEQUENCED = "int main(void){ int x = 0; return (x = 1) + (x = 2); }"
CONST_WRITE = "int main(void){ const int x = 1; *(int*)&x = 2; return x; }"
DEFINED = "int main(void){ int x = 3; return x * 2; }"
RETURN_STACK_ADDRESS = """
static int *leak(void){ int local = 7; return &local; }
int main(void){ return *leak(); }
"""


class TestValgrindLike:
    tool = ValgrindLikeTool()

    def test_defined_program_not_flagged(self):
        assert not self.tool.analyze(DEFINED).flagged

    def test_heap_overflow_flagged(self):
        assert self.tool.analyze(HEAP_OVERFLOW).flagged

    def test_bad_free_flagged(self):
        assert self.tool.analyze(BAD_FREE).flagged

    def test_uninitialized_value_flagged(self):
        assert self.tool.analyze(UNINIT_INT).flagged

    def test_division_by_zero_not_detected(self):
        assert not self.tool.analyze(DIV_BY_ZERO).flagged

    def test_signed_overflow_not_detected(self):
        assert not self.tool.analyze(SIGNED_OVERFLOW).flagged

    def test_stack_overflow_write_missed_at_binary_level(self):
        # The write lands inside the frame's addressable slack.
        assert not self.tool.analyze(STACK_OVERFLOW_WRITE).flagged

    def test_unsequenced_side_effects_not_detected(self):
        assert not self.tool.analyze(UNSEQUENCED).flagged

    def test_const_write_not_detected(self):
        assert not self.tool.analyze(CONST_WRITE).flagged

    def test_return_stack_address_missed(self):
        assert not self.tool.analyze(RETURN_STACK_ADDRESS).flagged


class TestCheckPointerLike:
    tool = CheckPointerLikeTool()

    def test_defined_program_not_flagged(self):
        assert not self.tool.analyze(DEFINED).flagged

    def test_stack_overflow_write_detected(self):
        assert self.tool.analyze(STACK_OVERFLOW_WRITE).flagged

    def test_heap_overflow_detected(self):
        assert self.tool.analyze(HEAP_OVERFLOW).flagged

    def test_return_stack_address_detected(self):
        assert self.tool.analyze(RETURN_STACK_ADDRESS).flagged

    def test_uninitialized_pointer_detected_but_not_uninitialized_int(self):
        assert self.tool.analyze(UNINIT_POINTER).flagged
        assert not self.tool.analyze(UNINIT_INT).flagged

    def test_division_by_zero_not_detected(self):
        assert not self.tool.analyze(DIV_BY_ZERO).flagged

    def test_overflow_not_detected(self):
        assert not self.tool.analyze(SIGNED_OVERFLOW).flagged

    def test_unsequenced_not_detected(self):
        assert not self.tool.analyze(UNSEQUENCED).flagged


class TestValueAnalysisLike:
    tool = ValueAnalysisTool()

    def test_defined_program_not_flagged(self):
        assert not self.tool.analyze(DEFINED).flagged

    def test_arithmetic_alarms(self):
        assert self.tool.analyze(DIV_BY_ZERO).flagged
        assert self.tool.analyze(SIGNED_OVERFLOW).flagged

    def test_memory_alarms(self):
        assert self.tool.analyze(HEAP_OVERFLOW).flagged
        assert self.tool.analyze(STACK_OVERFLOW_WRITE).flagged

    def test_uninitialized_alarm(self):
        assert self.tool.analyze(UNINIT_INT).flagged

    def test_language_level_undefinedness_missed(self):
        assert not self.tool.analyze(UNSEQUENCED).flagged
        assert not self.tool.analyze(CONST_WRITE).flagged

    def test_reports_kind(self):
        result = self.tool.analyze(DIV_BY_ZERO)
        assert UBKind.DIVISION_BY_ZERO in result.kinds


class TestKccTool:
    tool = KccAnalysisTool()

    def test_catches_everything_the_others_catch_and_more(self):
        for source in (DIV_BY_ZERO, SIGNED_OVERFLOW, HEAP_OVERFLOW, STACK_OVERFLOW_WRITE,
                       BAD_FREE, UNINIT_INT, UNINIT_POINTER, UNSEQUENCED, CONST_WRITE,
                       RETURN_STACK_ADDRESS):
            assert self.tool.analyze(source).flagged, source

    def test_defined_program_not_flagged(self):
        assert not self.tool.analyze(DEFINED).flagged


class TestRegistry:
    def test_default_tools_order_matches_the_paper(self):
        names = [tool.name for tool in all_tools()]
        assert names == ["Valgrind", "CheckPointer", "V. Analysis", "kcc"]

    def test_tool_by_name(self):
        assert tool_by_name("kcc").name == "kcc"
        assert tool_by_name("valgrind").name == "Valgrind"

    def test_unknown_tool_raises(self):
        import pytest
        with pytest.raises(KeyError):
            tool_by_name("lint")

    def test_timed_analyze_records_runtime(self):
        result = tool_by_name("kcc").timed_analyze(DEFINED)
        assert result.runtime_seconds > 0


class TestIntervalDomain:
    def test_constant_interval(self):
        from repro.analyzers.value_analysis import Interval
        five = Interval.constant(5)
        assert five.is_constant and five.contains(5) and not five.contains(6)

    def test_join_and_meet(self):
        from repro.analyzers.value_analysis import Interval
        a = Interval.range(0, 10)
        b = Interval.range(5, 20)
        assert a.join(b) == Interval.range(0, 20)
        assert a.meet(b) == Interval.range(5, 10)

    def test_meet_disjoint_is_bottom(self):
        from repro.analyzers.value_analysis import Interval
        assert Interval.range(0, 1).meet(Interval.range(5, 6)).is_bottom

    def test_arithmetic(self):
        from repro.analyzers.value_analysis import Interval
        a = Interval.range(1, 2)
        b = Interval.range(10, 20)
        assert a.add(b) == Interval.range(11, 22)
        assert b.subtract(a) == Interval.range(8, 19)
        assert a.multiply(b) == Interval.range(10, 40)
        assert a.negate() == Interval.range(-2, -1)

    def test_widening_jumps_to_infinity(self):
        from repro.analyzers.value_analysis import Interval
        a = Interval.range(0, 10)
        b = Interval.range(0, 11)
        widened = a.widen(b)
        assert widened.high is None
        assert widened.low == 0

    def test_may_be_zero_and_exceed(self):
        from repro.analyzers.value_analysis import Interval
        assert Interval.range(-1, 1).may_be_zero()
        assert not Interval.range(1, 5).may_be_zero()
        assert Interval.range(0, 300).may_exceed(0, 255)
        assert not Interval.range(0, 255).may_exceed(0, 255)
        assert Interval.top().may_be_zero()
