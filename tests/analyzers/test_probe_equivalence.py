"""Probe-vs-legacy equivalence: one shared execution, four unchanged verdicts.

The redesign turns the comparison tools into probes over a single observed
execution.  These tests hold that path to the seed's dedicated-execution
verdicts on the exact inputs of the reproduced figures: every case of the
undefinedness suite (Figure 3) and the Juliet-style suite (Figure 2), for
all four tools.  ``analyze_isolated`` is the legacy path — own engine, own
options, the Valgrind tool's own memory model — kept precisely so this
comparison stays honest.
"""

import pytest

from repro.analyzers import default_tools
from repro.analyzers.base import probe_checker_for, merge_options, run_probe_group
from repro.suites.juliet import generate_juliet_suite
from repro.suites.ubsuite import generate_undefinedness_suite

TOOLS = default_tools()
UBSUITE = generate_undefinedness_suite()
JULIET = generate_juliet_suite()


def assert_case_equivalent(case):
    shared = run_probe_group(TOOLS, case.source, filename=case.name)
    for tool, probe_result in zip(TOOLS, shared):
        isolated = tool.analyze_isolated(case.source, filename=case.name)
        assert probe_result.flagged == isolated.flagged, (
            f"{case.name} [{tool.name}]: probe says "
            f"{probe_result.flagged} ({probe_result.detail!r}), isolated says "
            f"{isolated.flagged} ({isolated.detail!r})")
        assert probe_result.inconclusive == isolated.inconclusive, (
            case.name, tool.name, probe_result.detail, isolated.detail)


@pytest.mark.parametrize("case", UBSUITE.cases, ids=lambda c: c.name)
def test_figure3_inputs_probe_matches_isolated(case):
    assert_case_equivalent(case)


@pytest.mark.parametrize("case", JULIET.cases, ids=lambda c: c.name)
def test_figure2_inputs_probe_matches_isolated(case):
    assert_case_equivalent(case)


def test_one_run_feeds_all_tool_verdicts():
    # The acceptance observable: one Checker.stats run, N verdicts.
    source = "int main(void){ int d = 0; return 5 / d; }"
    union = merge_options([tool.options for tool in TOOLS])
    checker = probe_checker_for(union)
    before = checker.stats.snapshot()
    results = run_probe_group(TOOLS, source, filename="one-run.c")
    after = checker.stats.snapshot()
    assert after["run_count"] - before["run_count"] == 1
    assert len(results) == len(TOOLS) == 4
    by_name = {result.tool: result for result in results}
    assert not by_name["Valgrind"].flagged          # arithmetic is off-model
    assert not by_name["CheckPointer"].flagged
    assert by_name["V. Analysis"].flagged
    assert by_name["kcc"].flagged
    # All four verdicts carry the same shared dynamic-stage runtime.
    assert len({result.runtime_seconds for result in results}) == 1
    assert results[0].runtime_seconds > 0


def test_one_parse_feeds_repeat_analyses():
    source = "int main(void){ return 0; }"
    union = merge_options([tool.options for tool in TOOLS])
    checker = probe_checker_for(union)
    run_probe_group(TOOLS, source, filename="reuse.c")
    before = checker.stats.snapshot()
    run_probe_group(TOOLS, source, filename="reuse.c")
    after = checker.stats.snapshot()
    assert after["parse_count"] == before["parse_count"]  # cache hit
    assert after["run_count"] - before["run_count"] == 1


def test_mixed_resource_limits_do_not_share_an_execution():
    # A tool with different max_steps genuinely runs a different analysis:
    # the group runner refuses, and the harness groups by signature instead.
    from repro.core.config import CheckerOptions
    from repro.suites.harness import analyze_case

    looping = "int main(void){ int i, s = 0; for (i = 0; i < 1000; i++) s += i; return 0; }"
    tools = default_tools(CheckerOptions(max_steps=50))  # kcc only: tight budget
    with pytest.raises(ValueError):
        run_probe_group(tools, looping)
    results = analyze_case(tools, looping, "tight.c")
    for tool, result in zip(tools, results):
        isolated = tool.analyze_isolated(looping, filename="tight.c")
        assert (result.flagged, result.inconclusive) == \
            (isolated.flagged, isolated.inconclusive), tool.name
    assert results[3].inconclusive  # kcc ran out of its 50-step budget


def test_mixed_profiles_run_one_execution_per_signature():
    # Customizing kcc's implementation profile must not crash the harness
    # (each signature group gets its own shared run).
    from repro.cfront.ctypes import ILP32
    from repro.core.config import CheckerOptions
    from repro.suites.harness import analyze_case

    tools = default_tools(CheckerOptions(profile=ILP32))
    results = analyze_case(
        tools, "int main(void){ long x = 2147483647; return (x + 1) > 0; }", "ilp32.c")
    assert [result.tool for result in results] == [
        "Valgrind", "CheckPointer", "V. Analysis", "kcc"]
    # long is 8 bytes under LP64 (no overflow) but 4 under ILP32: kcc's
    # profile-specific verdict survives the grouping.
    assert results[3].flagged and not results[2].flagged


def test_merge_options_tracks_the_event_family_list():
    from repro.analyzers.base import _CHECK_FLAGS
    from repro.core.config import CheckerOptions
    from repro.events import FAMILIES

    assert _CHECK_FLAGS == tuple(f"check_{family}" for family in FAMILIES)
    for flag in _CHECK_FLAGS:
        assert hasattr(CheckerOptions(), flag), flag


def test_search_mode_tool_refuses_to_share():
    from repro.analyzers.base import KccAnalysisTool

    searching = KccAnalysisTool(search_evaluation_order=True)
    assert not searching.can_share_execution
    with pytest.raises(ValueError):
        run_probe_group([searching], "int main(void){ return 0; }")
    # analyze() still works: it falls back to the isolated engine.
    result = searching.analyze("int main(void){ int x = 0; return (x=1)+(x=2); }")
    assert result.flagged
