"""The decorator-based tool registry and the ToolResult plumbing fixes."""

import pytest

from repro.analyzers import (
    ToolResult,
    available_tool_names,
    make_tools,
    register_tool,
    registered_tools,
    tool_by_name,
)
from repro.analyzers.base import AnalysisTool
from repro.analyzers.registry import _ALIASES, _REGISTRY, resolve_entry
from repro.errors import UBKind


class TestRegistration:
    def test_builtins_register_in_figure_order(self):
        defaults = [e for e in registered_tools() if e.figure_order is not None]
        assert [e.key for e in defaults] == [
            "valgrind", "checkpointer", "value-analysis", "kcc"]

    def test_available_names(self):
        assert set(available_tool_names()) >= {
            "valgrind", "checkpointer", "value-analysis", "kcc"}

    def test_aliases_resolve(self):
        assert tool_by_name("memcheck").name == "Valgrind"
        assert tool_by_name("va").name == "V. Analysis"
        assert tool_by_name("V. Analysis").name == "V. Analysis"  # table name
        assert tool_by_name("KCC").name == "kcc"                  # case-blind

    def test_unknown_tools_all_reported_at_once(self):
        with pytest.raises(KeyError) as excinfo:
            make_tools(["valgrind", "lint", "kcc", "splint"])
        message = str(excinfo.value)
        assert "'lint'" in message and "'splint'" in message
        assert "valgrind" in message  # the catalogue of valid choices

    def test_custom_tool_registration(self):
        @register_tool("flags-nothing", aliases=("fn",))
        class FlagsNothingTool(AnalysisTool):
            """A do-nothing analyzer used by the registry tests."""

            name = "FlagsNothing"
            models = "nothing at all"

            def analyze(self, source, *, filename="<input>"):
                return ToolResult(tool=self.name, flagged=False, detail="n/a")

        try:
            assert tool_by_name("fn").name == "FlagsNothing"
            assert "flags-nothing" in available_tool_names()
            # Not part of the default lineup (no figure_order).
            assert all(tool.name != "FlagsNothing" for tool in make_tools(None))
            entry = resolve_entry("flags-nothing")
            assert entry.describe()["summary"].startswith("A do-nothing analyzer")
        finally:
            _REGISTRY.pop("flags-nothing", None)
            _ALIASES.pop("fn", None)
            _ALIASES.pop("flagsnothing", None)


class TestToolResultPlumbing:
    def test_to_dict(self):
        result = ToolResult(tool="kcc", flagged=True,
                            kinds=[UBKind.DIVISION_BY_ZERO],
                            detail="undefined: division", runtime_seconds=0.25,
                            overhead_seconds=0.01)
        data = result.to_dict()
        assert data == {
            "tool": "kcc", "flagged": True, "kinds": ["DIVISION_BY_ZERO"],
            "detail": "undefined: division", "inconclusive": False,
            "runtime_seconds": 0.25, "overhead_seconds": 0.01,
        }
        import json
        json.dumps(data)  # JSON-ready, like CheckReport.to_dict

    def test_timed_analyze_preserves_tool_reported_runtime(self):
        class SelfTimingTool(AnalysisTool):
            name = "self-timing"

            def analyze(self, source, *, filename="<input>"):
                return ToolResult(tool=self.name, flagged=False,
                                  runtime_seconds=0.001)

        result = SelfTimingTool().timed_analyze("int main(void){return 0;}")
        assert result.runtime_seconds == 0.001  # not overwritten
        assert result.overhead_seconds >= 0.0

    def test_timed_analyze_fills_runtime_when_unreported(self):
        class UntimedTool(AnalysisTool):
            name = "untimed"

            def analyze(self, source, *, filename="<input>"):
                return ToolResult(tool=self.name, flagged=False)

        result = UntimedTool().timed_analyze("int main(void){return 0;}")
        assert result.runtime_seconds > 0
        assert result.overhead_seconds == 0.0

    def test_probe_tools_report_shared_runtime_through_timed_analyze(self):
        # The harness path: a probe-backed tool reports the shared dynamic
        # stage as its runtime; timed_analyze keeps it and accounts its own
        # wall clock on top as overhead.
        result = tool_by_name("kcc").timed_analyze("int main(void){ return 0; }")
        assert result.runtime_seconds > 0
        assert result.overhead_seconds >= 0.0
