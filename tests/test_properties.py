"""Property-based tests (hypothesis) for the core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro import OutcomeKind, check_program
from repro.analyzers.value_analysis import Interval
from repro.cfront import ctypes as ct
from repro.cfront.lexer import TokenKind, tokenize
from repro.core.values import (
    ConcreteByte,
    PointerValue,
    decode_int,
    decode_pointer,
    encode_int,
    encode_pointer,
)

int_types = st.sampled_from([ct.SCHAR, ct.UCHAR, ct.SHORT, ct.USHORT, ct.INT, ct.UINT,
                             ct.LONG, ct.ULONG, ct.LLONG, ct.ULLONG])
profiles = st.sampled_from([ct.LP64, ct.ILP32, ct.WIDE_INT])


class TestIntegerEncodingProperties:
    @given(value=st.integers(min_value=-(2**63), max_value=2**63 - 1),
           size=st.sampled_from([1, 2, 4, 8]))
    def test_encode_decode_roundtrip_modulo_width(self, value, size):
        data = encode_int(value, size, signed=True)
        assert len(data) == size
        decoded = decode_int(data, signed=True)
        bits = size * 8
        expected = value & ((1 << bits) - 1)
        if expected >= 1 << (bits - 1):
            expected -= 1 << bits
        assert decoded == expected

    @given(value=st.integers(min_value=0, max_value=2**32 - 1))
    def test_unsigned_roundtrip_exact(self, value):
        assert decode_int(encode_int(value, 4, signed=False), signed=False) == value

    @given(value=st.integers(), ctype=int_types, profile=profiles)
    def test_wrap_unsigned_is_in_range(self, value, ctype, profile):
        wrapped = ct.wrap_unsigned(value, ctype, profile)
        assert 0 <= wrapped < (1 << ct.integer_bits(ctype, profile))

    @given(ctype=int_types, profile=profiles)
    def test_integer_range_bounds_are_consistent(self, ctype, profile):
        low, high = ct.integer_range(ctype, profile)
        assert low <= 0 <= high
        assert ct.fits_in(low, ctype, profile)
        assert ct.fits_in(high, ctype, profile)
        assert not ct.fits_in(high + 1, ctype, profile)
        assert not ct.fits_in(low - 1, ctype, profile)


class TestPointerEncodingProperties:
    @given(base=st.integers(min_value=1, max_value=10**6),
           offset=st.integers(min_value=0, max_value=10**6),
           size=st.sampled_from([4, 8]))
    def test_pointer_byte_split_roundtrip(self, base, offset, size):
        pointer = PointerValue(base=base, offset=offset,
                               type=ct.PointerType(pointee=ct.INT))
        data = encode_pointer(pointer, size)
        decoded = decode_pointer(data, ct.PointerType(pointee=ct.INT))
        assert decoded is not None
        assert decoded.base == base and decoded.offset == offset

    @given(base=st.integers(min_value=1, max_value=100),
           corrupt_index=st.integers(min_value=0, max_value=7))
    def test_corrupted_pointer_bytes_do_not_reconstruct(self, base, corrupt_index):
        pointer = PointerValue(base=base, offset=0, type=ct.PointerType(pointee=ct.INT))
        data = encode_pointer(pointer, 8)
        data[corrupt_index] = ConcreteByte(0x41)
        assert decode_pointer(data, ct.PointerType(pointee=ct.INT)) is None


class TestTypeSystemProperties:
    @given(ctype=int_types, profile=profiles)
    def test_promotion_is_idempotent(self, ctype, profile):
        once = ct.promote_integer(ctype, profile)
        twice = ct.promote_integer(once, profile)
        assert once == twice

    @given(a=int_types, b=int_types, profile=profiles)
    def test_usual_arithmetic_conversions_commute(self, a, b, profile):
        assert (ct.usual_arithmetic_conversions(a, b, profile)
                == ct.usual_arithmetic_conversions(b, a, profile))

    @given(a=int_types, b=int_types, profile=profiles)
    def test_common_type_can_hold_result_rank(self, a, b, profile):
        common = ct.usual_arithmetic_conversions(a, b, profile)
        assert ct.size_of(common, profile) >= min(ct.size_of(a, profile),
                                                  ct.size_of(b, profile))

    @given(length=st.integers(min_value=1, max_value=64), element=int_types, profile=profiles)
    def test_array_size_is_length_times_element(self, length, element, profile):
        array = ct.ArrayType(element=element, length=length)
        assert ct.size_of(array, profile) == length * ct.size_of(element, profile)

    @given(names=st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=6, unique=True),
           types=st.data(), profile=profiles)
    def test_struct_fields_are_ordered_and_do_not_overlap(self, names, types, profile):
        fields = tuple(ct.StructField(name, types.draw(int_types)) for name in names)
        record = ct.StructType(tag="generated", fields=fields)
        layout = ct.struct_layout(record, profile)
        previous_end = 0
        for field_layout in layout.fields:
            assert field_layout.offset >= previous_end
            previous_end = field_layout.offset + field_layout.size
        assert layout.size >= previous_end


class TestIntervalProperties:
    bounded = st.integers(min_value=-1000, max_value=1000)

    @given(a=bounded, b=bounded)
    def test_join_contains_both(self, a, b):
        low, high = min(a, b), max(a, b)
        joined = Interval.constant(a).join(Interval.constant(b))
        assert joined.contains(a) and joined.contains(b)
        assert joined == Interval.range(low, high)

    @given(a=bounded, b=bounded, c=bounded)
    def test_join_is_commutative_and_associative(self, a, b, c):
        x, y, z = Interval.constant(a), Interval.constant(b), Interval.constant(c)
        assert x.join(y) == y.join(x)
        assert x.join(y).join(z) == x.join(y.join(z))

    @given(a=bounded, b=bounded)
    def test_addition_is_sound(self, a, b):
        result = Interval.constant(a).add(Interval.constant(b))
        assert result.contains(a + b)

    @given(a=bounded, b=bounded, c=bounded, d=bounded)
    def test_multiplication_is_sound(self, a, b, c, d):
        left = Interval.constant(a).join(Interval.constant(b))
        right = Interval.constant(c).join(Interval.constant(d))
        product = left.multiply(right)
        for x in (a, b):
            for y in (c, d):
                assert product.contains(x * y)

    @given(a=bounded, b=bounded)
    def test_widening_is_an_upper_bound(self, a, b):
        x = Interval.constant(a)
        y = Interval.constant(b)
        widened = x.widen(x.join(y))
        assert widened.contains(a)
        assert widened.contains(b)


class TestLexerProperties:
    @given(value=st.integers(min_value=0, max_value=2**31 - 1))
    def test_decimal_constant_roundtrip(self, value):
        token = tokenize(str(value))[0]
        assert token.kind is TokenKind.INT_CONST
        assert token.value.value == value

    @given(text=st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu"),
                                               max_codepoint=127),
                        min_size=1, max_size=12))
    def test_identifiers_lex_as_single_token(self, text):
        tokens = tokenize(text)
        assert len(tokens) == 2  # identifier/keyword + EOF
        assert tokens[0].text == text


class TestSemanticsProperties:
    """End-to-end properties of the executable semantics."""

    @given(value=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_returned_constant_is_exit_code(self, value):
        report = check_program(f"int main(void) {{ return {value}; }}")
        assert report.outcome.kind is OutcomeKind.DEFINED
        assert report.outcome.exit_code == value

    @given(a=st.integers(min_value=0, max_value=1000),
           b=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_addition_matches_python(self, a, b):
        report = check_program(
            f"int main(void) {{ int a = {a}; int b = {b}; return (a + b) % 251; }}")
        assert report.outcome.exit_code == (a + b) % 251

    @given(a=st.integers(min_value=-1000, max_value=1000),
           b=st.integers(min_value=1, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_division_truncates_toward_zero(self, a, b):
        expected = abs(a) // b if a >= 0 else -(abs(a) // b)
        report = check_program(
            f"int main(void) {{ int a = {a}; int b = {b}; return (a / b) == {expected}; }}")
        assert report.outcome.kind is OutcomeKind.DEFINED
        assert report.outcome.exit_code == 1

    @given(divisor=st.integers(min_value=0, max_value=5))
    @settings(max_examples=12, deadline=None)
    def test_division_defined_iff_divisor_nonzero(self, divisor):
        report = check_program(
            f"int main(void) {{ int d = {divisor}; return (100 / d) >= 0; }}")
        if divisor == 0:
            assert report.outcome.flagged
        else:
            assert report.outcome.kind is OutcomeKind.DEFINED

    @given(length=st.integers(min_value=1, max_value=8),
           index=st.integers(min_value=0, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_array_access_defined_iff_in_bounds(self, length, index):
        source = f"""
        int main(void) {{
            int data[{length}];
            for (int i = 0; i < {length}; i++) data[i] = i;
            int j = {index};
            return data[j] >= 0;
        }}
        """
        report = check_program(source)
        if index < length:
            assert report.outcome.kind is OutcomeKind.DEFINED
        else:
            assert report.outcome.flagged
