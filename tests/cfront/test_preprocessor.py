"""Unit tests for the preprocessor."""

import pytest

from repro.cfront.preprocessor import preprocess
from repro.errors import CParseError


class TestObjectMacros:
    def test_simple_replacement(self):
        assert "5 + 5" in preprocess("#define FIVE 5\nFIVE + FIVE")

    def test_undef(self):
        out = preprocess("#define X 1\n#undef X\nX")
        assert out.strip().splitlines()[-1].strip() == "X"

    def test_macro_not_expanded_inside_string(self):
        out = preprocess('#define NAME world\nchar *s = "NAME";')
        assert '"NAME"' in out

    def test_recursive_macro_does_not_loop(self):
        out = preprocess("#define X X + 1\nX")
        assert "X + 1" in out

    def test_empty_macro(self):
        out = preprocess("#define NOTHING\nint NOTHING x;")
        assert "int" in out and "x;" in out


class TestFunctionMacros:
    def test_single_argument(self):
        out = preprocess("#define SQUARE(x) ((x) * (x))\nSQUARE(4)")
        assert "((4) * (4))" in out

    def test_multiple_arguments(self):
        out = preprocess("#define ADD(a, b) (a + b)\nADD(1, 2)")
        assert "(1 + 2)" in out

    def test_nested_call_argument(self):
        out = preprocess("#define ID(x) x\nID(f(1, 2))")
        assert "f(1, 2)" in out

    def test_name_without_parens_not_expanded(self):
        out = preprocess("#define CALL(x) x()\nint CALL;")
        assert "int CALL;" in out

    def test_wrong_argument_count_raises(self):
        with pytest.raises(CParseError):
            preprocess("#define TWO(a, b) a + b\nTWO(1)")


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("#define FLAG 1\n#ifdef FLAG\nint yes;\n#endif")
        assert "int yes;" in out

    def test_ifdef_not_taken(self):
        out = preprocess("#ifdef MISSING\nint no;\n#endif")
        assert "int no;" not in out

    def test_ifndef(self):
        out = preprocess("#ifndef MISSING\nint yes;\n#endif")
        assert "int yes;" in out

    def test_else_branch(self):
        out = preprocess("#ifdef MISSING\nint a;\n#else\nint b;\n#endif")
        assert "int b;" in out
        assert "int a;" not in out

    def test_if_with_expression(self):
        out = preprocess("#if 2 + 2 == 4\nint math_works;\n#endif")
        assert "int math_works;" in out

    def test_if_with_defined(self):
        out = preprocess("#define A 1\n#if defined(A) && !defined(B)\nint ok;\n#endif")
        assert "int ok;" in out

    def test_elif(self):
        source = "#if 0\nint a;\n#elif 1\nint b;\n#else\nint c;\n#endif"
        out = preprocess(source)
        assert "int b;" in out
        assert "int a;" not in out
        assert "int c;" not in out

    def test_nested_conditionals(self):
        source = "#if 1\n#if 0\nint a;\n#endif\nint b;\n#endif"
        out = preprocess(source)
        assert "int b;" in out
        assert "int a;" not in out

    def test_unterminated_if_raises(self):
        with pytest.raises(CParseError):
            preprocess("#if 1\nint x;")

    def test_error_directive_raises(self):
        with pytest.raises(CParseError):
            preprocess("#error something is wrong")

    def test_error_in_untaken_branch_ignored(self):
        out = preprocess("#if 0\n#error skipped\n#endif\nint ok;")
        assert "int ok;" in out


class TestIncludes:
    def test_builtin_header(self):
        out = preprocess("#include <stddef.h>\nsize_t n;")
        assert "typedef unsigned long size_t;" in out
        assert "((void*)0)" not in out  # NULL macro not used, only defined

    def test_null_macro_from_stddef(self):
        out = preprocess("#include <stddef.h>\nchar *p = NULL;")
        assert "((void*)0)" in out

    def test_unknown_header_raises(self):
        with pytest.raises(CParseError):
            preprocess("#include <nonexistent_header.h>")

    def test_extra_headers(self):
        out = preprocess('#include "mylib.h"\nMYCONST',
                         extra_headers={"mylib.h": "#define MYCONST 99\n"})
        assert "99" in out

    def test_double_include_is_idempotent(self):
        out = preprocess("#include <stdlib.h>\n#include <stdlib.h>\nint x;")
        assert out.count("void *malloc(size_t size);") == 1

    def test_limits_macros(self):
        out = preprocess("#include <limits.h>\nint m = INT_MAX;")
        assert "2147483647" in out


class TestLineContinuation:
    def test_backslash_newline_joined(self):
        out = preprocess("#define LONG 1 + \\\n2\nLONG")
        assert "1 +  2" in out
