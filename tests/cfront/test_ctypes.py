"""Unit tests for the C type model and implementation profiles."""

import pytest

from repro.cfront import ctypes as ct


class TestSizeof:
    def test_basic_sizes_lp64(self):
        assert ct.size_of(ct.CHAR, ct.LP64) == 1
        assert ct.size_of(ct.SHORT, ct.LP64) == 2
        assert ct.size_of(ct.INT, ct.LP64) == 4
        assert ct.size_of(ct.LONG, ct.LP64) == 8
        assert ct.size_of(ct.LLONG, ct.LP64) == 8
        assert ct.size_of(ct.FLOAT, ct.LP64) == 4
        assert ct.size_of(ct.DOUBLE, ct.LP64) == 8
        assert ct.size_of(ct.VOID_PTR, ct.LP64) == 8

    def test_basic_sizes_ilp32(self):
        assert ct.size_of(ct.LONG, ct.ILP32) == 4
        assert ct.size_of(ct.VOID_PTR, ct.ILP32) == 4
        assert ct.size_of(ct.LLONG, ct.ILP32) == 8

    def test_wide_int_profile(self):
        assert ct.size_of(ct.INT, ct.WIDE_INT) == 8

    def test_array_size(self):
        array = ct.ArrayType(element=ct.INT, length=10)
        assert ct.size_of(array, ct.LP64) == 40

    def test_incomplete_array_has_no_size(self):
        with pytest.raises(ct.LayoutError):
            ct.size_of(ct.ArrayType(element=ct.INT, length=None), ct.LP64)

    def test_void_has_no_size(self):
        with pytest.raises(ct.LayoutError):
            ct.size_of(ct.VOID, ct.LP64)

    def test_function_has_no_size(self):
        with pytest.raises(ct.LayoutError):
            ct.size_of(ct.FunctionType(return_type=ct.INT), ct.LP64)


class TestStructLayout:
    def test_packed_struct_of_ints(self):
        record = ct.StructType(tag="pair", fields=(
            ct.StructField("a", ct.INT), ct.StructField("b", ct.INT)))
        layout = ct.struct_layout(record, ct.LP64)
        assert layout.size == 8
        assert layout.field("a").offset == 0
        assert layout.field("b").offset == 4

    def test_padding_for_alignment(self):
        record = ct.StructType(tag="mixed", fields=(
            ct.StructField("c", ct.CHAR), ct.StructField("l", ct.LONG)))
        layout = ct.struct_layout(record, ct.LP64)
        assert layout.field("l").offset == 8
        assert layout.size == 16

    def test_trailing_padding(self):
        record = ct.StructType(tag="tail", fields=(
            ct.StructField("l", ct.LONG), ct.StructField("c", ct.CHAR)))
        layout = ct.struct_layout(record, ct.LP64)
        assert layout.size == 16

    def test_union_layout(self):
        union = ct.UnionType(tag="u", fields=(
            ct.StructField("i", ct.INT), ct.StructField("d", ct.DOUBLE)))
        layout = ct.struct_layout(union, ct.LP64)
        assert layout.size == 8
        assert all(f.offset == 0 for f in layout.fields)

    def test_field_order_is_preserved(self):
        record = ct.StructType(tag="ordered", fields=(
            ct.StructField("x", ct.INT), ct.StructField("y", ct.INT)))
        layout = ct.struct_layout(record, ct.LP64)
        assert layout.field("x").offset < layout.field("y").offset

    def test_struct_completion_in_place(self):
        record = ct.StructType(tag="node")
        assert not record.is_complete
        record.complete((ct.StructField("value", ct.INT),))
        assert record.is_complete
        assert ct.size_of(record, ct.LP64) == 4


class TestIntegerRanges:
    def test_int_range(self):
        assert ct.integer_range(ct.INT, ct.LP64) == (-2**31, 2**31 - 1)

    def test_unsigned_int_range(self):
        assert ct.integer_range(ct.UINT, ct.LP64) == (0, 2**32 - 1)

    def test_char_signedness_follows_profile(self):
        unsigned_char_profile = ct.ImplementationProfile(name="uchar", char_signed=False)
        assert ct.integer_range(ct.CHAR, ct.LP64) == (-128, 127)
        assert ct.integer_range(ct.CHAR, unsigned_char_profile) == (0, 255)

    def test_bool_range(self):
        assert ct.integer_range(ct.BOOL, ct.LP64) == (0, 1)

    def test_fits_in(self):
        assert ct.fits_in(127, ct.SCHAR, ct.LP64)
        assert not ct.fits_in(128, ct.SCHAR, ct.LP64)
        assert ct.fits_in(255, ct.UCHAR, ct.LP64)

    def test_wrap_unsigned(self):
        assert ct.wrap_unsigned(256, ct.UCHAR, ct.LP64) == 0
        assert ct.wrap_unsigned(-1, ct.UINT, ct.LP64) == 2**32 - 1


class TestConversions:
    def test_integer_promotion_of_small_types(self):
        assert ct.promote_integer(ct.CHAR, ct.LP64) == ct.INT
        assert ct.promote_integer(ct.SHORT, ct.LP64) == ct.INT
        assert ct.promote_integer(ct.USHORT, ct.LP64) == ct.INT
        assert ct.promote_integer(ct.BOOL, ct.LP64) == ct.INT

    def test_promotion_keeps_large_types(self):
        assert ct.promote_integer(ct.LONG, ct.LP64) == ct.LONG
        assert ct.promote_integer(ct.UINT, ct.LP64) == ct.UINT

    def test_usual_arithmetic_same_type(self):
        assert ct.usual_arithmetic_conversions(ct.INT, ct.INT, ct.LP64) == ct.INT

    def test_usual_arithmetic_int_and_unsigned(self):
        result = ct.usual_arithmetic_conversions(ct.INT, ct.UINT, ct.LP64)
        assert result == ct.UINT

    def test_usual_arithmetic_unsigned_int_and_long(self):
        # long can represent all unsigned int values under LP64, so the
        # common type is long.
        result = ct.usual_arithmetic_conversions(ct.UINT, ct.LONG, ct.LP64)
        assert result == ct.LONG

    def test_usual_arithmetic_with_double(self):
        result = ct.usual_arithmetic_conversions(ct.INT, ct.DOUBLE, ct.LP64)
        assert isinstance(result, ct.FloatType)
        assert result.kind == "double"

    def test_usual_arithmetic_float_and_double(self):
        result = ct.usual_arithmetic_conversions(ct.FLOAT, ct.DOUBLE, ct.LP64)
        assert result.kind == "double"


class TestCompatibilityAndAliasing:
    def test_identical_types_compatible(self):
        assert ct.types_compatible(ct.INT, ct.INT)
        assert not ct.types_compatible(ct.INT, ct.LONG)

    def test_qualifier_mismatch_not_compatible(self):
        assert not ct.types_compatible(ct.INT, ct.INT.with_qualifiers(const=True))

    def test_pointer_compatibility(self):
        assert ct.types_compatible(ct.PointerType(pointee=ct.INT),
                                   ct.PointerType(pointee=ct.INT))
        assert not ct.types_compatible(ct.PointerType(pointee=ct.INT),
                                       ct.PointerType(pointee=ct.LONG))

    def test_struct_compatibility_by_tag(self):
        a = ct.StructType(tag="s", fields=(ct.StructField("x", ct.INT),))
        b = ct.StructType(tag="s", fields=(ct.StructField("x", ct.INT),))
        c = ct.StructType(tag="t", fields=(ct.StructField("x", ct.INT),))
        assert ct.types_compatible(a, b)
        assert not ct.types_compatible(a, c)

    def test_function_type_compatibility(self):
        f1 = ct.FunctionType(return_type=ct.INT, parameters=(ct.INT,))
        f2 = ct.FunctionType(return_type=ct.INT, parameters=(ct.INT,))
        f3 = ct.FunctionType(return_type=ct.INT, parameters=(ct.INT, ct.INT))
        assert ct.types_compatible(f1, f2)
        assert not ct.types_compatible(f1, f3)

    def test_decay(self):
        assert ct.decay(ct.ArrayType(element=ct.INT, length=4)) == ct.PointerType(pointee=ct.INT)
        decayed = ct.decay(ct.FunctionType(return_type=ct.INT))
        assert isinstance(decayed, ct.PointerType)

    def test_character_lvalue_aliases_anything(self):
        assert ct.aliasing_compatible(ct.CHAR, ct.DOUBLE, ct.LP64)
        assert ct.aliasing_compatible(ct.UCHAR, ct.PointerType(pointee=ct.INT), ct.LP64)

    def test_signed_unsigned_variants_alias(self):
        assert ct.aliasing_compatible(ct.UINT, ct.INT, ct.LP64)

    def test_incompatible_aliasing(self):
        assert not ct.aliasing_compatible(ct.SHORT, ct.INT, ct.LP64)
        assert not ct.aliasing_compatible(ct.DOUBLE, ct.LONG, ct.LP64)

    def test_struct_member_aliasing(self):
        record = ct.StructType(tag="holder", fields=(ct.StructField("value", ct.INT),))
        assert ct.aliasing_compatible(ct.INT, record, ct.LP64)
