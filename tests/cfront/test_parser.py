"""Unit tests for the parser."""

import pytest

from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct
from repro.cfront.parser import fold_constant, parse
from repro.errors import CParseError


def parse_decls(source):
    return parse(source).declarations


def only_function(source, name="main"):
    unit = parse(source)
    return unit.functions()[name]


class TestDeclarations:
    def test_simple_variable(self):
        decl = parse_decls("int x;")[0]
        assert isinstance(decl, c_ast.Declaration)
        assert decl.name == "x"
        assert decl.type == ct.INT

    def test_multiple_declarators(self):
        decls = parse_decls("int x, y, z;")
        assert [d.name for d in decls] == ["x", "y", "z"]

    def test_pointer_declarator(self):
        decl = parse_decls("int *p;")[0]
        assert decl.type == ct.PointerType(pointee=ct.INT)

    def test_pointer_to_pointer(self):
        decl = parse_decls("char **argv;")[0]
        assert decl.type == ct.PointerType(pointee=ct.PointerType(pointee=ct.CHAR))

    def test_array_declarator(self):
        decl = parse_decls("int a[10];")[0]
        assert isinstance(decl.type, ct.ArrayType)
        assert decl.type.length == 10
        assert decl.type.element == ct.INT

    def test_two_dimensional_array(self):
        decl = parse_decls("int grid[2][3];")[0]
        assert decl.type.length == 2
        assert decl.type.element.length == 3

    def test_array_of_pointers(self):
        decl = parse_decls("int *table[4];")[0]
        assert isinstance(decl.type, ct.ArrayType)
        assert isinstance(decl.type.element, ct.PointerType)

    def test_pointer_to_array(self):
        decl = parse_decls("int (*p)[4];")[0]
        assert isinstance(decl.type, ct.PointerType)
        assert isinstance(decl.type.pointee, ct.ArrayType)

    def test_function_prototype(self):
        decl = parse_decls("int add(int a, int b);")[0]
        assert isinstance(decl.type, ct.FunctionType)
        assert decl.type.parameters == (ct.INT, ct.INT)
        assert decl.type.return_type == ct.INT

    def test_function_returning_pointer(self):
        decl = parse_decls("void *alloc(unsigned long n);")[0]
        assert isinstance(decl.type, ct.FunctionType)
        assert decl.type.return_type == ct.PointerType(pointee=ct.VOID)

    def test_function_pointer_declarator(self):
        decl = parse_decls("int (*callback)(int, int);")[0]
        assert isinstance(decl.type, ct.PointerType)
        assert isinstance(decl.type.pointee, ct.FunctionType)
        assert len(decl.type.pointee.parameters) == 2

    def test_variadic_prototype(self):
        decl = parse_decls("int printf(const char *fmt, ...);")[0]
        assert decl.type.variadic is True

    def test_void_parameter_list(self):
        decl = parse_decls("int get(void);")[0]
        assert decl.type.parameters == ()
        assert decl.type.has_prototype is True

    def test_const_qualifier(self):
        decl = parse_decls("const int limit = 5;")[0]
        assert decl.type.const is True

    def test_unsigned_types(self):
        assert parse_decls("unsigned int x;")[0].type == ct.UINT
        assert parse_decls("unsigned long x;")[0].type == ct.ULONG
        assert parse_decls("unsigned char x;")[0].type == ct.UCHAR
        assert parse_decls("unsigned x;")[0].type == ct.UINT

    def test_long_long(self):
        assert parse_decls("long long x;")[0].type == ct.LLONG
        assert parse_decls("unsigned long long x;")[0].type == ct.ULLONG

    def test_storage_classes(self):
        assert parse_decls("static int x;")[0].storage == "static"
        assert parse_decls("extern int x;")[0].storage == "extern"

    def test_typedef_then_use(self):
        decls = parse_decls("typedef unsigned long word; word w;")
        assert decls[0].name == "w"
        assert decls[0].type == ct.ULONG

    def test_typedef_function_pointer(self):
        decls = parse_decls("typedef int (*cmp)(int, int); cmp comparator;")
        assert isinstance(decls[0].type, ct.PointerType)
        assert isinstance(decls[0].type.pointee, ct.FunctionType)

    def test_initializer(self):
        decl = parse_decls("int x = 1 + 2;")[0]
        assert isinstance(decl.initializer, c_ast.BinaryOp)

    def test_initializer_list(self):
        decl = parse_decls("int a[3] = {1, 2, 3};")[0]
        assert isinstance(decl.initializer, c_ast.InitList)
        assert len(decl.initializer.items) == 3


class TestStructUnionEnum:
    def test_struct_definition(self):
        decl = parse_decls("struct point { int x; int y; } origin;")[0]
        assert isinstance(decl.type, ct.StructType)
        assert decl.type.tag == "point"
        assert [f.name for f in decl.type.fields] == ["x", "y"]

    def test_struct_reference_after_definition(self):
        decls = parse_decls("struct point { int x; }; struct point p;")
        assert decls[0].name == "p"
        assert decls[0].type.is_complete

    def test_self_referential_struct(self):
        decl = parse_decls("struct node { int value; struct node *next; } head;")[0]
        next_field = decl.type.field_named("next")
        assert isinstance(next_field.type, ct.PointerType)
        assert next_field.type.pointee.tag == "node"

    def test_union_definition(self):
        decl = parse_decls("union number { int i; double d; } n;")[0]
        assert isinstance(decl.type, ct.UnionType)
        assert len(decl.type.fields) == 2

    def test_enum_definition(self):
        unit = parse("enum color { RED, GREEN = 5, BLUE }; int main(void) { return BLUE; }")
        main = unit.functions()["main"]
        ret = main.body.items[0]
        assert isinstance(ret, c_ast.Return)
        assert isinstance(ret.value, c_ast.IntegerLiteral)
        assert ret.value.value == 6

    def test_anonymous_struct_typedef(self):
        decls = parse_decls("typedef struct { int a; } wrapper; wrapper w;")
        assert isinstance(decls[0].type, ct.StructType)


class TestExpressions:
    def _expr(self, text):
        unit = parse(f"int main(void) {{ return {text}; }}")
        return unit.functions()["main"].body.items[0].value

    def test_precedence_multiplication_over_addition(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_relational_over_logical(self):
        expr = self._expr("a < b && c > d")
        assert expr.op == "&&"

    def test_assignment_right_associative(self):
        unit = parse("int main(void) { int a, b; a = b = 1; return a; }")
        stmt = unit.functions()["main"].body.items[2]
        assert isinstance(stmt.expression, c_ast.Assignment)
        assert isinstance(stmt.expression.value, c_ast.Assignment)

    def test_conditional_expression(self):
        expr = self._expr("a ? b : c")
        assert isinstance(expr, c_ast.Conditional)

    def test_cast_expression(self):
        expr = self._expr("(long)x")
        assert isinstance(expr, c_ast.Cast)
        assert expr.target_type == ct.LONG

    def test_cast_vs_parenthesized_expression(self):
        expr = self._expr("(x) + 1")
        assert isinstance(expr, c_ast.BinaryOp)

    def test_sizeof_type(self):
        expr = self._expr("sizeof(int)")
        assert isinstance(expr, c_ast.SizeofType)

    def test_sizeof_expression(self):
        expr = self._expr("sizeof x")
        assert isinstance(expr, c_ast.UnaryOp)
        assert expr.op == "sizeof"

    def test_unary_operators(self):
        assert self._expr("-x").op == "-"
        assert self._expr("!x").op == "!"
        assert self._expr("~x").op == "~"
        assert self._expr("&x").op == "&"
        assert self._expr("*p").op == "*"

    def test_increment_decrement(self):
        assert self._expr("++x").op == "++pre"
        assert self._expr("x++").op == "++post"
        assert self._expr("--x").op == "--pre"
        assert self._expr("x--").op == "--post"

    def test_call_with_arguments(self):
        expr = self._expr("f(1, 2, 3)")
        assert isinstance(expr, c_ast.Call)
        assert len(expr.arguments) == 3

    def test_member_and_arrow(self):
        dot = self._expr("s.field")
        arrow = self._expr("p->field")
        assert isinstance(dot, c_ast.Member) and dot.arrow is False
        assert isinstance(arrow, c_ast.Member) and arrow.arrow is True

    def test_array_subscript(self):
        expr = self._expr("a[i]")
        assert isinstance(expr, c_ast.ArraySubscript)

    def test_chained_postfix(self):
        expr = self._expr("matrix[1][2]")
        assert isinstance(expr, c_ast.ArraySubscript)
        assert isinstance(expr.array, c_ast.ArraySubscript)

    def test_string_literal_concatenation(self):
        expr = self._expr('"foo" "bar"')
        assert isinstance(expr, c_ast.StringLiteral)
        assert expr.value == "foobar"

    def test_comma_expression(self):
        expr = self._expr("(a, b)")
        assert isinstance(expr, c_ast.Comma)

    def test_integer_constant_types(self):
        assert self._expr("5").type == ct.INT
        assert self._expr("5000000000").type == ct.LONG
        assert self._expr("5u").type == ct.UINT


class TestStatements:
    def _body(self, text):
        unit = parse(f"int main(void) {{ {text} }}")
        return unit.functions()["main"].body.items

    def test_if_else(self):
        items = self._body("if (1) return 1; else return 2;")
        assert isinstance(items[0], c_ast.If)
        assert items[0].otherwise is not None

    def test_while(self):
        items = self._body("while (1) { break; }")
        assert isinstance(items[0], c_ast.While)

    def test_do_while(self):
        items = self._body("do { } while (0);")
        assert isinstance(items[0], c_ast.DoWhile)

    def test_for_with_declaration(self):
        items = self._body("for (int i = 0; i < 10; i++) { }")
        loop = items[0]
        assert isinstance(loop, c_ast.For)
        assert isinstance(loop.init, list)
        assert isinstance(loop.init[0], c_ast.Declaration)

    def test_for_with_empty_clauses(self):
        items = self._body("for (;;) { break; }")
        loop = items[0]
        assert loop.init is None and loop.condition is None and loop.step is None

    def test_switch_with_cases(self):
        items = self._body("switch (x) { case 1: return 1; default: return 0; }")
        assert isinstance(items[0], c_ast.Switch)

    def test_goto_and_label(self):
        items = self._body("goto end; end: return 0;")
        assert isinstance(items[0], c_ast.Goto)
        assert isinstance(items[1], c_ast.Label)

    def test_nested_blocks(self):
        items = self._body("{ int x; { int y; } }")
        assert isinstance(items[0], c_ast.Compound)

    def test_empty_statement(self):
        items = self._body(";")
        assert isinstance(items[0], c_ast.ExpressionStmt)
        assert items[0].expression is None

    def test_local_declarations_mixed_with_statements(self):
        items = self._body("int x = 1; x = 2; int y = x;")
        assert isinstance(items[0], c_ast.Declaration)
        assert isinstance(items[1], c_ast.ExpressionStmt)
        assert isinstance(items[2], c_ast.Declaration)


class TestFunctionDefinitions:
    def test_parameter_names(self):
        func = only_function("int main(void) { return 0; } "
                             "int add(int first, int second) { return first + second; }",
                             name="add")
        assert func.parameter_names == ["first", "second"]

    def test_static_function(self):
        unit = parse("static int helper(void) { return 1; } int main(void) { return helper(); }")
        assert unit.functions()["helper"].storage == "static"

    def test_void_function(self):
        unit = parse("void nothing(void) { return; } int main(void) { nothing(); return 0; }")
        assert unit.functions()["nothing"].type.return_type == ct.VOID


class TestConstantFolding:
    def _fold(self, text):
        unit = parse(f"int main(void) {{ return {text}; }}")
        return fold_constant(unit.functions()["main"].body.items[0].value)

    def test_arithmetic(self):
        assert self._fold("2 + 3 * 4") == 14
        assert self._fold("(10 - 4) / 3") == 2
        assert self._fold("7 % 3") == 1

    def test_c_division_truncates_toward_zero(self):
        assert self._fold("-7 / 2") == -3
        assert self._fold("-7 % 2") == -1

    def test_shifts_and_bitwise(self):
        assert self._fold("1 << 4") == 16
        assert self._fold("0xFF & 0x0F") == 15
        assert self._fold("1 | 6") == 7

    def test_comparisons(self):
        assert self._fold("3 < 5") == 1
        assert self._fold("3 == 4") == 0

    def test_conditional(self):
        assert self._fold("1 ? 10 : 20") == 10

    def test_sizeof_folds(self):
        assert self._fold("sizeof(int)") == 4
        assert self._fold("sizeof(long)") == 8

    def test_non_constant_returns_none(self):
        unit = parse("int main(void) { int x = 1; return x + 1; }")
        expr = unit.functions()["main"].body.items[1].value
        assert fold_constant(expr) is None

    def test_division_by_zero_returns_none(self):
        assert self._fold("1 / 0") is None


class TestParseErrors:
    def test_missing_semicolon(self):
        with pytest.raises(CParseError):
            parse("int main(void) { int x = 1 return x; }")

    def test_unbalanced_braces(self):
        with pytest.raises(CParseError):
            parse("int main(void) { return 0;")

    def test_garbage_input(self):
        with pytest.raises(CParseError):
            parse("$$$")
