"""Unit tests for the C lexer."""

import pytest

from repro.cfront.lexer import IntConstant, FloatConstant, TokenKind, tokenize
from repro.errors import CParseError


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.EOF]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo while_ _bar")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENTIFIER
        assert tokens[2].kind is TokenKind.IDENTIFIER  # while_ is not a keyword
        assert tokens[3].kind is TokenKind.IDENTIFIER

    def test_all_keywords_recognized(self):
        for keyword in ("if", "else", "while", "for", "return", "struct", "union",
                        "enum", "typedef", "sizeof", "const", "volatile", "_Bool"):
            token = tokenize(keyword)[0]
            assert token.kind is TokenKind.KEYWORD, keyword

    def test_punctuators_longest_match(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("a << b") == ["a", "<<", "b"]
        assert texts("a->b") == ["a", "->", "b"]
        assert texts("a-- -b") == ["a", "--", "-", "b"]
        assert texts("x...") == ["x", "..."]

    def test_line_and_column_tracking(self):
        tokens = tokenize("int x;\nint y;")
        assert tokens[0].line == 1
        y_token = [t for t in tokens if t.text == "y"][0]
        assert y_token.line == 2

    def test_unexpected_character_raises(self):
        with pytest.raises(CParseError):
            tokenize("int x @ y;")


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("int x; // comment here\nint y;") == ["int", "x", ";", "int", "y", ";"]

    def test_block_comment_skipped(self):
        assert texts("int /* hello */ x;") == ["int", "x", ";"]

    def test_block_comment_spanning_lines(self):
        tokens = tokenize("/* line one\nline two */ int x;")
        assert tokens[0].text == "int"
        assert tokens[0].line == 2

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(CParseError):
            tokenize("/* never closed")


class TestIntegerConstants:
    def test_decimal_constant(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT_CONST
        assert isinstance(token.value, IntConstant)
        assert token.value.value == 42
        assert token.value.base == 10

    def test_hex_constant(self):
        token = tokenize("0xFF")[0]
        assert token.value.value == 255
        assert token.value.base == 16

    def test_octal_constant(self):
        token = tokenize("0777")[0]
        assert token.value.value == 511
        assert token.value.base == 8

    def test_unsigned_suffix(self):
        token = tokenize("42u")[0]
        assert token.value.unsigned is True

    def test_long_suffixes(self):
        assert tokenize("42L")[0].value.long is True
        assert tokenize("42LL")[0].value.long_long is True
        assert tokenize("42uLL")[0].value.unsigned is True

    def test_zero(self):
        assert tokenize("0")[0].value.value == 0


class TestFloatingConstants:
    def test_simple_double(self):
        token = tokenize("3.5")[0]
        assert token.kind is TokenKind.FLOAT_CONST
        assert isinstance(token.value, FloatConstant)
        assert token.value.value == 3.5

    def test_exponent(self):
        assert tokenize("1e3")[0].value.value == 1000.0
        assert tokenize("2.5e-1")[0].value.value == 0.25

    def test_float_suffix(self):
        token = tokenize("1.5f")[0]
        assert token.value.is_float is True


class TestCharAndStringConstants:
    def test_simple_char(self):
        token = tokenize("'a'")[0]
        assert token.kind is TokenKind.CHAR_CONST
        assert token.value == ord("a")

    def test_escaped_char(self):
        assert tokenize(r"'\n'")[0].value == ord("\n")
        assert tokenize(r"'\0'")[0].value == 0
        assert tokenize(r"'\x41'")[0].value == 0x41

    def test_empty_char_constant_raises(self):
        with pytest.raises(CParseError):
            tokenize("''")

    def test_string_literal_value(self):
        token = tokenize('"hello"')[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "hello"

    def test_string_with_escapes(self):
        assert tokenize(r'"a\tb\n"')[0].value == "a\tb\n"

    def test_unterminated_string_raises(self):
        with pytest.raises(CParseError):
            tokenize('"never closed')
