"""The pretty-printer round-trip guarantee: parse(print(ast)) == ast.

The fuzz generator depends on this property (the reducer re-renders ASTs
between shrink steps), so it is pinned three ways: over every program of
the hand-written undefinedness suite, over a sweep of generated programs,
and over targeted snippets exercising printer-specific corner cases
(precedence, literal suffixes, escapes, declarators).
"""

import pytest

from repro.cfront import ast_equivalent, parse, to_c_source
from repro.fuzz.generator import generate_case
from repro.suites.ubsuite import generate_undefinedness_suite

SUITE = generate_undefinedness_suite()


def round_trip(source: str) -> None:
    first = parse(source)
    printed = to_c_source(first)
    second = parse(printed)
    assert ast_equivalent(first, second), (
        f"printed form re-parses differently:\n{printed}")


@pytest.mark.parametrize("case", SUITE.cases, ids=lambda c: c.name)
def test_ubsuite_round_trips(case):
    # Every case in the parseable subset round-trips — no carve-outs
    # (anonymous record types render their definition inline).
    try:
        first = parse(case.source)
    except Exception:
        pytest.skip("program outside the parseable subset")
    assert ast_equivalent(first, parse(to_c_source(first)))


@pytest.mark.parametrize("index", range(40))
def test_generated_programs_round_trip(index):
    # Clean and injected alike; the generator's output is the contract.
    round_trip(generate_case(1234, index, inject="mixed").source)


@pytest.mark.parametrize("source", [
    # Precedence and associativity.
    "int main(void) { return 1 + 2 * 3 - (4 - 5) - 6; }",
    "int main(void) { return (1 + 2) * (3 % 2) / 3; }",
    "int main(void) { int x = 0; return x = 1 + (2, 3); }",
    "int main(void) { return 10 >> 1 << 2 & 3 | 4 ^ 5; }",
    "int main(void) { return 1 < 2 == 0 ? 3 : 4 ? 5 : 6; }",
    "int main(void) { return -(-1) + +2 - - 3; }",
    "int main(void) { int a[2] = {1, 2}; int *p = &a[1]; return *p + a[0]; }",
    # Literal suffixes and escapes must survive (they pin the literal type).
    "int main(void) { unsigned int u = 4294967295u; return u > 0u; }",
    "int main(void) { long big = 2147483648L; return big > 0; }",
    'int main(void) { printf("a\\tb\\n\\"q\\" %d\\n", 1); return 0; }',
    "int main(void) { char c = 'x'; char n = '\\n'; return c + n; }",
    "int main(void) { double d = 1.5; float f = 0.25f; return d > f; }",
    # Declarators: pointers, arrays, functions, qualifiers.
    "int add(int a, int b) { return a + b; }\nint main(void) { return add(1, 2); }",
    "int main(void) { const int c = 3; const int *pc = &c; return *pc; }",
    "int main(void) { int m[2][3] = {{1, 2, 3}, {4, 5, 6}}; return m[1][2]; }",
    "int helper(void);\nint helper(void) { return 7; }\nint main(void) { return helper(); }",
    # Statements: loops, switch, goto, labels, do-while.
    """
int main(void) {
    int total = 0;
    for (int i = 0; i < 4; i = i + 1) { if (i == 2) { continue; } total = total + i; }
    while (total > 5) { total = total - 1; break; }
    do { total = total + 1; } while (total < 3);
    switch (total) { case 1: total = 9; break; default: total = 8; }
    goto done;
done:
    return total;
}
""",
    # Structs with tags round-trip nominally.
    """
struct point { int x; int y; };
int main(void) {
    struct point p;
    p.x = 1;
    p.y = 2;
    struct point *q = &p;
    return q->x + q->y;
}
""",
    "int counter = 3;\nstatic int hidden = 4;\nint main(void) { return counter + hidden; }",
    "int main(void) { return (int)sizeof(int) + (int)sizeof 1; }",
], ids=lambda s: s.strip().splitlines()[0][:40])
def test_targeted_snippets_round_trip(source):
    round_trip(source)


def test_printed_text_is_stable():
    # Printing the re-parse of printed text reproduces the text: the printer
    # is a normal form, which the reducer relies on for determinism.
    source = generate_case(77, 0, inject=None).source
    printed = to_c_source(parse(source))
    again = to_c_source(parse(printed))
    assert printed == again


def test_single_statement_and_expression_rendering():
    unit = parse("int main(void) { int x = 1; return x; }")
    main = unit.functions()["main"]
    body_text = to_c_source(main.body)
    assert "int x = 1;" in body_text
    return_stmt = main.body.items[-1]
    assert to_c_source(return_stmt).strip() == "return x;"
