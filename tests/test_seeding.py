"""The shared seed-derivation helper: one master seed, many streams.

``search --seed`` and ``fuzz --seed`` both expand their seeds through
:mod:`repro.seeding`; these tests pin the properties both rely on —
determinism, label independence, and platform stability.
"""

import pytest

from repro.seeding import derive_rng, derive_seed, spawn_seeds


def test_derivation_is_deterministic():
    assert derive_seed(0, "fuzz", "case", 3) == derive_seed(0, "fuzz", "case", 3)
    rng_a = derive_rng(5, "x")
    rng_b = derive_rng(5, "x")
    assert [rng_a.random() for _ in range(8)] == [rng_b.random() for _ in range(8)]


def test_label_paths_are_independent():
    seen = {derive_seed(0, "case", index) for index in range(100)}
    assert len(seen) == 100
    # Length prefixing: grouping must matter.
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")
    assert derive_seed(0, "case", 12) != derive_seed(0, "case", 1, 2)
    # The label's type matters too (int 1 vs str "1").
    assert derive_seed(0, 1) != derive_seed(0, "1")


def test_derivation_is_platform_stable():
    # SHA-256-based, not hash()-based: the exact values are part of the
    # contract (a corpus entry replayed on another machine must regenerate
    # the same program).
    assert derive_seed(0) == 6912158355717386040
    assert derive_seed(42, "fuzz", "case", 0) == 16536239248686439050
    assert derive_seed(0, "search", "frontier") == 12086472096668521139


def test_spawn_seeds():
    seeds = spawn_seeds(7, "shard", 5)
    assert len(seeds) == 5 and len(set(seeds)) == 5
    assert seeds[2] == derive_seed(7, "shard", 2)


def test_labels_are_typed():
    with pytest.raises(TypeError):
        derive_seed(0, 3.14)


def test_search_random_frontier_uses_the_shared_derivation():
    # The random search strategy must be reproducible from its --seed alone.
    from repro.kframework.search import make_frontier

    def drain(frontier):
        for script in [(0,), (1,), (2,), (3,), (4,)]:
            frontier.push(script)
        out = []
        while True:
            item = frontier.pop()
            if item is None:
                return out
            out.append(item)

    assert drain(make_frontier("random", 9)) == drain(make_frontier("random", 9))
    assert drain(make_frontier("random", 9)) != drain(make_frontier("random", 10))
