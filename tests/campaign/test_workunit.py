"""Work-unit identity, partitioning, and placement-independent execution."""

import pytest

from repro.campaign.workunit import (
    DEFAULT_UNIT_SIZE,
    ROTATE,
    CampaignSpec,
    WorkUnit,
    campaign_units,
    execute_unit,
    strip_result,
    unit_result_digest,
)
from repro.fuzz.generator import injection_families


class TestCampaignSpec:
    def test_defaults_roundtrip(self):
        spec = CampaignSpec()
        assert spec.kind == "fuzz"
        assert spec.unit_size == DEFAULT_UNIT_SIZE
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_digest_is_stable_and_content_addressed(self):
        a = CampaignSpec(seed=7, count=40)
        b = CampaignSpec(seed=7, count=40)
        c = CampaignSpec(seed=8, count=40)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_default_profile_normalizes_out_of_the_options(self):
        # ``options_to_dict`` always emits the profile name; a spec built
        # with it must digest identically to one built with bare defaults.
        bare = CampaignSpec(seed=1, count=10)
        wired = CampaignSpec(seed=1, count=10, options={"profile": "lp64"})
        assert bare.options == wired.options == {}
        assert bare.digest() == wired.digest()

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign spec fields"):
            CampaignSpec.from_dict({"kind": "fuzz", "bogus": 1})

    def test_bad_kind_and_bad_sizes_are_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign kind"):
            CampaignSpec(kind="stress")
        with pytest.raises(ValueError, match="non-negative"):
            CampaignSpec(count=-1)
        with pytest.raises(ValueError, match="unit_size"):
            CampaignSpec(unit_size=0)

    def test_search_kind_requires_source(self):
        with pytest.raises(ValueError, match="source"):
            CampaignSpec(kind="search")

    def test_units_estimate_matches_partition(self):
        for count, size in [(10, 3), (10, 10), (1, 25), (9, 2)]:
            spec = CampaignSpec(seed=0, count=count, unit_size=size)
            assert spec.units_estimate() == len(campaign_units(spec))


class TestPartitioning:
    def test_fuzz_spans_cover_the_campaign_exactly(self):
        spec = CampaignSpec(seed=3, count=10, unit_size=3)
        units = campaign_units(spec)
        assert [u.index for u in units] == [0, 1, 2, 3]
        spans = [(u.params["lo"], u.params["hi"]) for u in units]
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert sum(u.cases for u in units) == 10

    def test_rotate_assigns_families_round_robin(self):
        families = injection_families()
        spec = CampaignSpec(
            seed=3, count=len(families) + 1, unit_size=1, inject=ROTATE
        )
        units = campaign_units(spec)
        assigned = [u.params["inject"] for u in units]
        assert assigned[: len(families)] == list(families)
        assert assigned[len(families)] == families[0]

    def test_unit_ids_are_distinct_and_deterministic(self):
        spec = CampaignSpec(seed=3, count=10, unit_size=3)
        first = [u.unit_id for u in campaign_units(spec)]
        second = [u.unit_id for u in campaign_units(spec)]
        assert first == second
        assert len(set(first)) == len(first)
        assert all(unit_id.startswith("wu-") for unit_id in first)

    def test_suite_partition_covers_the_suite(self):
        spec = CampaignSpec(kind="suite", suite="ubsuite", count=5, unit_size=2)
        units = campaign_units(spec)
        assert [u.kind for u in units] == ["suite"] * len(units)
        assert sum(u.cases for u in units) == 5


class TestWorkUnitSerialization:
    def test_roundtrip(self):
        spec = CampaignSpec(seed=3, count=4, unit_size=2)
        unit = campaign_units(spec)[1]
        assert WorkUnit.from_dict(unit.to_dict()) == unit

    def test_tampered_unit_is_rejected(self):
        spec = CampaignSpec(seed=3, count=4, unit_size=2)
        data = campaign_units(spec)[0].to_dict()
        data["params"] = dict(data["params"], hi=999)
        with pytest.raises(ValueError, match="altered in transit"):
            WorkUnit.from_dict(data)

    def test_malformed_unit_is_rejected(self):
        with pytest.raises(ValueError, match="malformed work unit"):
            WorkUnit.from_dict({"kind": "fuzz"})


class TestExecuteUnit:
    def test_fuzz_unit_is_deterministic(self):
        spec = CampaignSpec(seed=11, count=4, unit_size=2, inject="mixed")
        unit = campaign_units(spec)[0]
        header = (spec.to_dict(), None)
        first = execute_unit(header, unit.to_dict())
        second = execute_unit(header, unit.to_dict())
        assert first["digest"] == second["digest"]
        assert first["records"] == second["records"]
        assert first["cases"] == 2
        assert first["digest"] == unit_result_digest(first["records"])

    def test_unit_summaries_sum_to_the_monolithic_family_table(self):
        from repro.fuzz.campaign import CampaignConfig, run_campaign

        spec = CampaignSpec(seed=11, count=6, unit_size=2, inject="mixed")
        header = (spec.to_dict(), None)
        merged: dict = {}
        for unit in campaign_units(spec):
            for family, row in execute_unit(header, unit.to_dict())[
                "summary"
            ].items():
                mine = merged.setdefault(family, {"cases": 0, "correct": 0})
                mine["cases"] += row["cases"]
                mine["correct"] += row["correct"]
        result = run_campaign(CampaignConfig(seed=11, count=6, inject="mixed"))
        assert merged == {
            family: {"cases": row["cases"], "correct": row["correct"]}
            for family, row in result.family_table().items()
        }

    def test_unit_of_another_spec_is_rejected(self):
        spec = CampaignSpec(seed=11, count=4, unit_size=2)
        other = CampaignSpec(seed=12, count=4, unit_size=2)
        unit = campaign_units(other)[0]
        with pytest.raises(ValueError, match="belongs to spec"):
            execute_unit((spec.to_dict(), None), unit.to_dict())

    def test_suite_unit_executes(self):
        spec = CampaignSpec(kind="suite", suite="ubsuite", count=2, unit_size=2)
        unit = campaign_units(spec)[0]
        result = execute_unit((spec.to_dict(), None), unit.to_dict())
        assert result["cases"] == 2
        assert result["kind"] == "suite"

    def test_strip_result_keeps_summary_and_digest(self):
        spec = CampaignSpec(seed=11, count=2, unit_size=2)
        unit = campaign_units(spec)[0]
        result = execute_unit((spec.to_dict(), None), unit.to_dict())
        slim = strip_result(result)
        assert "records" not in slim
        assert slim["digest"] == result["digest"]
        assert slim["summary"] == result["summary"]
        assert "records" in result  # the original is untouched
