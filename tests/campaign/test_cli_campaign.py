"""The ``kcc-check campaign`` subcommand: run, resume, status, merge."""

import io
import json

import pytest

from repro.api.cli import EXIT_DEFINED, EXIT_USAGE, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def _run_args(journal, *extra):
    return [
        "campaign",
        "run",
        "--journal",
        str(journal),
        "--kind",
        "fuzz",
        "--seed",
        "21",
        "--count",
        "4",
        "--unit-size",
        "2",
        "--quiet",
        *extra,
    ]


class TestRun:
    def test_run_renders_the_family_table(self, tmp_path):
        code, output = run_cli(*_run_args(tmp_path / "j.jsonl"))
        assert code == EXIT_DEFINED
        assert "Campaign" in output
        assert "2/2 units" in output
        assert "result digest" in output

    def test_json_format_emits_the_canonical_view(self, tmp_path):
        code, output = run_cli(
            *_run_args(tmp_path / "j.jsonl", "--format", "json")
        )
        assert code == EXIT_DEFINED
        payload = json.loads(output)
        assert payload["units_done"] == payload["units_total"] == 2
        assert payload["cases"] == 4
        assert len(payload["result_digest"]) == 64

    def test_progress_lines_stream_unless_quiet(self, tmp_path):
        argv = _run_args(tmp_path / "j.jsonl")
        argv.remove("--quiet")
        _, output = run_cli(*argv)
        assert output.count("units,") >= 2  # one progress line per unit

    def test_run_without_journal_is_a_usage_error(self):
        code, _ = run_cli("campaign", "run", "--kind", "fuzz", "--count", "4")
        assert code == EXIT_USAGE

    def test_run_onto_an_existing_journal_is_a_usage_error(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        assert run_cli(*_run_args(journal))[0] == EXIT_DEFINED
        code, _ = run_cli(*_run_args(journal))
        assert code == EXIT_USAGE

    def test_search_kind_requires_a_file(self):
        code, _ = run_cli(
            "campaign", "run", "--journal", "x.jsonl", "--kind", "search"
        )
        assert code == EXIT_USAGE

    def test_bad_units_slice_is_a_usage_error(self, tmp_path):
        code, _ = run_cli(*_run_args(tmp_path / "j.jsonl", "--units", "3:1"))
        assert code == EXIT_USAGE


class TestResumeFrom:
    def test_resume_from_starts_then_picks_up(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        # First invocation: nothing to resume, runs fresh.
        argv = [
            "campaign",
            "run",
            "--resume-from",
            str(journal),
            "--kind",
            "fuzz",
            "--seed",
            "21",
            "--count",
            "4",
            "--unit-size",
            "2",
            "--quiet",
            "--format",
            "json",
        ]
        code, first = run_cli(*argv)
        assert code == EXIT_DEFINED
        # Second invocation resumes the complete journal: identical bytes.
        code, second = run_cli(*argv)
        assert code == EXIT_DEFINED
        assert json.loads(first) == json.loads(second)


class TestStatusAndMerge:
    @pytest.fixture()
    def halves(self, tmp_path):
        common = [
            "--kind",
            "fuzz",
            "--seed",
            "21",
            "--count",
            "8",
            "--unit-size",
            "2",
            "--quiet",
        ]
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert (
            run_cli(
                "campaign", "run", "--journal", str(a), *common,
                "--units", "0:2",
            )[0]
            == EXIT_DEFINED
        )
        assert (
            run_cli(
                "campaign", "run", "--journal", str(b), *common,
                "--units", "2:4",
            )[0]
            == EXIT_DEFINED
        )
        return a, b

    def test_status_reports_partial_progress(self, halves):
        a, _ = halves
        code, output = run_cli(
            "campaign", "status", "--journal", str(a), "--format", "json"
        )
        assert code == EXIT_DEFINED
        payload = json.loads(output)
        assert payload["units_done"] == 2
        assert payload["units_total"] == 4

    def test_merge_combines_shards(self, halves, tmp_path):
        a, b = halves
        merged = tmp_path / "merged.jsonl"
        code, output = run_cli(
            "campaign",
            "merge",
            str(a),
            str(b),
            "-o",
            str(merged),
            "--format",
            "json",
        )
        assert code == EXIT_DEFINED
        assert merged.exists()
        payload = json.loads(output[output.index("{") :])
        assert payload["units_done"] == payload["units_total"] == 4

    def test_status_of_a_missing_journal_is_a_usage_error(self, tmp_path):
        code, _ = run_cli(
            "campaign", "status", "--journal", str(tmp_path / "no.jsonl")
        )
        assert code == EXIT_USAGE
