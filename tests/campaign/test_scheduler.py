"""The drive loop: run, resume, shard+merge, retry, bias, fuzz routing."""

import shutil

import pytest

import repro.campaign.scheduler as scheduler_module
from repro.campaign.journal import load_journal
from repro.campaign.scheduler import (
    CampaignError,
    ScheduleConfig,
    backoff_delay,
    campaign_status,
    merge_campaign_journals,
    resume_campaign,
    run_campaign_spec,
)
from repro.campaign.workunit import CampaignSpec, execute_unit

SPEC = CampaignSpec(seed=17, count=6, unit_size=2, inject="rotate")


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted run of SPEC; every identity test compares to it."""
    path = tmp_path_factory.mktemp("campaign") / "reference.jsonl"
    outcome = run_campaign_spec(SPEC, path)
    assert outcome.complete
    return outcome, path


def test_backoff_delay_is_capped_exponential():
    base, cap = 0.25, 5.0
    delays = [backoff_delay(n, base=base, cap=cap) for n in range(1, 8)]
    assert delays[:4] == [0.25, 0.5, 1.0, 2.0]
    assert delays[-1] == cap
    assert delays == sorted(delays)


def test_run_refuses_to_clobber_an_existing_journal(reference):
    _, path = reference
    with pytest.raises(CampaignError, match="already exists"):
        run_campaign_spec(SPEC, path)


def test_resume_of_a_complete_campaign_executes_nothing(reference):
    outcome, path = reference
    resumed = resume_campaign(path)
    assert resumed.executed == 0
    assert resumed.skipped == outcome.state.units_total
    assert resumed.to_dict() == outcome.to_dict()
    assert resumed.state.duplicate_done == 0


def test_resume_after_a_crash_truncated_tail(reference, tmp_path):
    outcome, path = reference
    crashed = tmp_path / "crashed.jsonl"
    raw = path.read_bytes()
    crashed.write_bytes(raw[: int(len(raw) * 0.55)])  # mid-record, mid-run
    resumed = resume_campaign(crashed)
    assert resumed.recovered_bytes > 0
    assert resumed.executed > 0
    assert resumed.executed + resumed.skipped == outcome.state.units_total
    assert resumed.to_dict() == outcome.to_dict()
    assert resumed.state.duplicate_done == 0


def test_disjoint_slices_merge_to_the_uninterrupted_result(
    reference, tmp_path
):
    outcome, _ = reference
    total = outcome.state.units_total
    half = total // 2
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    part_a = run_campaign_spec(SPEC, a, ScheduleConfig(units_slice=(0, half)))
    part_b = run_campaign_spec(
        SPEC, b, ScheduleConfig(units_slice=(half, total))
    )
    assert not part_a.complete and not part_b.complete
    merged_ab = merge_campaign_journals([a, b], tmp_path / "ab.jsonl")
    merged_ba = merge_campaign_journals([b, a], tmp_path / "ba.jsonl")
    assert (tmp_path / "ab.jsonl").read_bytes() == (
        tmp_path / "ba.jsonl"
    ).read_bytes()
    assert merged_ab.to_dict() == outcome.to_dict()
    assert merged_ba.complete


def test_bias_reorders_execution_but_not_the_result(reference, tmp_path):
    outcome, _ = reference
    biased = run_campaign_spec(
        SPEC, tmp_path / "biased.jsonl", ScheduleConfig(bias=True)
    )
    assert biased.to_dict() == outcome.to_dict()


def test_store_records_false_keeps_the_canonical_result(reference, tmp_path):
    outcome, _ = reference
    slim = run_campaign_spec(
        SPEC, tmp_path / "slim.jsonl", ScheduleConfig(store_records=False)
    )
    assert slim.to_dict() == outcome.to_dict()
    state, _ = load_journal(tmp_path / "slim.jsonl")
    assert all("records" not in result for result in state.results.values())


def test_status_is_read_only(reference, tmp_path):
    outcome, path = reference
    copy = tmp_path / "status.jsonl"
    shutil.copy(path, copy)
    before = copy.read_bytes()
    status = campaign_status(copy)
    assert copy.read_bytes() == before
    assert status.to_dict() == outcome.to_dict()
    assert status.skipped == outcome.state.units_total


def test_progress_callback_sees_every_completed_unit(tmp_path):
    snapshots = []
    spec = CampaignSpec(seed=17, count=4, unit_size=2)
    run_campaign_spec(
        spec, tmp_path / "p.jsonl", ScheduleConfig(progress=snapshots.append)
    )
    assert len(snapshots) == 2
    assert snapshots[-1]["units_done"] == 2
    assert all("elapsed_seconds" in snapshot for snapshot in snapshots)
    assert all("unit" in snapshot for snapshot in snapshots)


class TestRetries:
    def test_transient_failures_retry_and_converge(
        self, reference, tmp_path, monkeypatch
    ):
        outcome, _ = reference
        seen: set[str] = set()

        def flaky(header, unit_dict):
            if unit_dict["id"] not in seen:
                seen.add(unit_dict["id"])
                raise RuntimeError("transient worker loss")
            return execute_unit(header, unit_dict)

        monkeypatch.setattr(scheduler_module, "execute_unit", flaky)
        path = tmp_path / "flaky.jsonl"
        result = run_campaign_spec(
            SPEC, path, ScheduleConfig(retries=2, backoff_base=0.0)
        )
        assert result.to_dict() == outcome.to_dict()
        state, _ = load_journal(path)
        # Every unit failed once, was journaled, and then succeeded.
        assert len(state.failures) == state.units_total
        assert all(
            errors == ["RuntimeError: transient worker loss"]
            for errors in state.failures.values()
        )

    def test_exhausted_retries_abort_but_keep_progress(
        self, tmp_path, monkeypatch
    ):
        def doomed(header, unit_dict):
            if unit_dict["index"] == 1:
                raise RuntimeError("hardware on fire")
            return execute_unit(header, unit_dict)

        monkeypatch.setattr(scheduler_module, "execute_unit", doomed)
        path = tmp_path / "doomed.jsonl"
        with pytest.raises(CampaignError, match="failed after 2 attempt"):
            run_campaign_spec(
                SPEC, path, ScheduleConfig(retries=1, backoff_base=0.0)
            )
        state, _ = load_journal(path)
        assert state.done_units >= 1  # unit 0 completed before the abort
        # The journal is resumable once the fault clears.
        monkeypatch.setattr(scheduler_module, "execute_unit", execute_unit)
        resumed = resume_campaign(path)
        assert resumed.complete
        assert resumed.state.duplicate_done == 0


def test_fuzz_run_campaign_routes_through_the_journal(reference, tmp_path):
    from repro.fuzz.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(seed=17, count=6, inject="mixed")
    direct = run_campaign(config)
    journaled = run_campaign(config, journal=str(tmp_path / "fuzz.jsonl"))
    assert [r.to_dict() for r in journaled.records] == [
        r.to_dict() for r in direct.records
    ]
    assert journaled.family_table() == direct.family_table()
    # A second call with the same journal resumes (no units re-execute)
    # and reconstructs the identical records.
    again = run_campaign(config, journal=str(tmp_path / "fuzz.jsonl"))
    assert [r.to_dict() for r in again.records] == [
        r.to_dict() for r in direct.records
    ]
