"""Journal durability: append, crash-truncated recovery, replay, merge."""

import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.journal import (
    JournalError,
    JournalWriter,
    campaign_record,
    claim_record,
    done_record,
    failed_record,
    finding_record,
    merge_journals,
    read_journal,
    recover_journal,
    replay,
    unit_record,
    write_journal,
)
from repro.campaign.workunit import (
    CampaignSpec,
    campaign_units,
    canonical_json,
    unit_result_digest,
)

SPEC = CampaignSpec(seed=5, count=6, unit_size=2)
UNITS = campaign_units(SPEC)


def _result(unit, marker):
    """A fabricated (but digest-consistent) unit result; no execution."""
    records = [{"index": unit.params["lo"], "marker": marker}]
    return {
        "schema": "repro.campaign.result/1",
        "unit": unit.unit_id,
        "index": unit.index,
        "kind": unit.kind,
        "cases": unit.cases,
        "digest": unit_result_digest(records),
        "summary": {"clean": {"cases": unit.cases, "correct": unit.cases}},
        "findings": [],
        "records": records,
    }


def _full_records():
    records = [campaign_record(SPEC, len(UNITS))]
    records.extend(unit_record(unit) for unit in UNITS)
    for unit in UNITS:
        records.append(claim_record(unit.unit_id, 1, "inline"))
        records.append(done_record(unit.unit_id, _result(unit, "x")))
    records.append(
        finding_record(
            UNITS[0].unit_id,
            {"signature": "sig:a", "case": 0, "family": "clean"},
        )
    )
    records.append(failed_record(UNITS[1].unit_id, 1, "ValueError: boom"))
    return records


class TestWriterAndReader:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        records = _full_records()
        with JournalWriter(path, fsync_every=2) as writer:
            for record in records:
                writer.append(record)
        assert read_journal(path) == records

    def test_unknown_record_type_is_refused(self, tmp_path):
        with JournalWriter(tmp_path / "j.jsonl") as writer:
            with pytest.raises(JournalError, match="unknown record type"):
                writer.append({"t": "telemetry"})

    def test_appends_survive_without_close(self, tmp_path):
        # A SIGKILL after append() returns must not lose the record: the
        # line is flushed to the kernel synchronously.  Simulate by never
        # calling close() and reading through a second handle.
        path = tmp_path / "j.jsonl"
        writer = JournalWriter(path)
        writer.append(campaign_record(SPEC, len(UNITS)))
        assert len(read_journal(path)) == 1


class TestRecovery:
    def test_partial_tail_is_dropped_and_truncated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        records = _full_records()
        write_journal(path, records)
        with open(path, "ab") as handle:
            handle.write(b'{"t":"done","unit":"wu-12')  # killed mid-write
        recovered, dropped = recover_journal(path)
        assert recovered == records
        assert dropped == len(b'{"t":"done","unit":"wu-12')
        # The file is clean again: a strict read succeeds and appends work.
        assert read_journal(path) == records
        with JournalWriter(path) as writer:
            writer.append(claim_record(UNITS[0].unit_id, 2, "inline"))
        assert len(read_journal(path)) == len(records) + 1

    def test_midfile_corruption_is_not_recovered(self, tmp_path):
        path = tmp_path / "j.jsonl"
        records = _full_records()
        lines = [canonical_json(r) + "\n" for r in records]
        lines[2] = "###garbage###\n"
        path.write_text("".join(lines))
        with pytest.raises(JournalError, match="corrupt record"):
            recover_journal(path)

    def test_recover_without_truncate_leaves_the_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, _full_records())
        with open(path, "ab") as handle:
            handle.write(b"partial")
        size = path.stat().st_size
        recover_journal(path, truncate=False)
        assert path.stat().st_size == size


# The crash-safety property the resume contract rests on: truncating the
# journal at ANY byte offset recovers a strict record prefix, and that
# prefix always replays into a valid state.
_RAW = b"".join(
    (canonical_json(record) + "\n").encode("utf-8") for record in _full_records()
)
_FULL = _full_records()


@settings(max_examples=80, deadline=None)
@given(offset=st.integers(min_value=0, max_value=len(_RAW)))
def test_truncation_at_any_offset_recovers_a_valid_prefix(offset):
    fd, name = tempfile.mkstemp(suffix=".jsonl")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(_RAW[:offset])
        records, dropped = recover_journal(name)
        # Strict prefix of the original record stream...
        assert records == _FULL[: len(records)]
        # ...accounting for every byte: complete lines kept, tail dropped.
        kept = sum(
            len((canonical_json(record) + "\n").encode("utf-8"))
            for record in records
        )
        assert kept + dropped == offset
        # ...and the prefix replays without error into consistent state.
        state = replay(records)
        assert state.done_units <= len(state.units)
        assert set(state.digests) <= set(state.units)
    finally:
        os.unlink(name)


class TestReplay:
    def test_full_replay_state(self):
        state = replay(_full_records())
        assert state.spec == SPEC
        assert state.spec_digest == SPEC.digest()
        assert state.units_total == len(UNITS)
        assert state.done_units == len(UNITS)
        assert state.complete
        assert state.pending == []
        assert list(state.findings) == ["sig:a"]
        assert state.failures[UNITS[1].unit_id] == ["ValueError: boom"]
        assert state.duplicate_done == 0

    def test_duplicate_done_with_same_digest_is_counted(self):
        records = _full_records()
        records.append(done_record(UNITS[0].unit_id, _result(UNITS[0], "x")))
        state = replay(records)
        assert state.duplicate_done == 1

    def test_conflicting_done_digest_is_a_determinism_violation(self):
        records = _full_records()
        records.append(done_record(UNITS[0].unit_id, _result(UNITS[0], "y")))
        with pytest.raises(JournalError, match="determinism violation"):
            replay(records)

    def test_records_before_the_header_are_rejected(self):
        with pytest.raises(JournalError, match="before the campaign header"):
            replay([unit_record(UNITS[0])])

    def test_unit_of_another_campaign_is_rejected(self):
        other = campaign_units(CampaignSpec(seed=6, count=6, unit_size=2))[0]
        records = [campaign_record(SPEC, len(UNITS)), unit_record(other)]
        with pytest.raises(JournalError, match="different campaign"):
            replay(records)

    def test_done_for_unknown_unit_is_rejected(self):
        records = [
            campaign_record(SPEC, len(UNITS)),
            done_record(UNITS[0].unit_id, _result(UNITS[0], "x")),
        ]
        with pytest.raises(JournalError, match="unknown unit"):
            replay(records)


class TestMerge:
    def _half(self, tmp_path, name, indices, marker="x"):
        records = [campaign_record(SPEC, len(UNITS))]
        records.extend(unit_record(unit) for unit in UNITS)
        for index in indices:
            unit = UNITS[index]
            records.append(claim_record(unit.unit_id, 1, "shard"))
            records.append(done_record(unit.unit_id, _result(unit, marker)))
        path = tmp_path / name
        write_journal(path, records)
        return path

    def test_merge_is_input_order_independent(self, tmp_path):
        a = self._half(tmp_path, "a.jsonl", [0, 1])
        b = self._half(tmp_path, "b.jsonl", [2])
        assert merge_journals([a, b]) == merge_journals([b, a])
        state = replay(merge_journals([a, b]))
        assert state.complete

    def test_overlapping_agreeing_units_merge(self, tmp_path):
        a = self._half(tmp_path, "a.jsonl", [0, 1])
        b = self._half(tmp_path, "b.jsonl", [1, 2])
        state = replay(merge_journals([a, b]))
        assert state.done_units == 3

    def test_conflicting_results_refuse_to_merge(self, tmp_path):
        a = self._half(tmp_path, "a.jsonl", [0])
        b = self._half(tmp_path, "b.jsonl", [0], marker="y")
        with pytest.raises(JournalError, match="determinism violation"):
            merge_journals([a, b])

    def test_different_campaigns_refuse_to_merge(self, tmp_path):
        a = self._half(tmp_path, "a.jsonl", [0])
        other_spec = CampaignSpec(seed=99, count=6, unit_size=2)
        other = tmp_path / "other.jsonl"
        write_journal(
            other,
            [campaign_record(other_spec, 3)]
            + [unit_record(u) for u in campaign_units(other_spec)],
        )
        with pytest.raises(JournalError, match="refusing to merge"):
            merge_journals([a, other])

    def test_merge_needs_input(self):
        with pytest.raises(JournalError, match="at least one"):
            merge_journals([])
