"""The results plane: order-independent folding, findings, deltas."""

import itertools
import json

import pytest

from repro.campaign.aggregate import CampaignAggregate, load_baseline


def _unit(index, *, family="clean", correct=2, cases=2, findings=()):
    return {
        "unit": f"wu-{index:04d}",
        "index": index,
        "kind": "fuzz",
        "cases": cases,
        "digest": f"{index:064d}",
        "summary": {family: {"cases": cases, "correct": correct}},
        "findings": list(findings),
    }


RESULTS = [
    _unit(0, family="clean"),
    _unit(
        1,
        family="div-by-zero",
        correct=1,
        findings=[{"signature": "sig:b", "case": 3, "family": "div-by-zero"}],
    ),
    _unit(
        2,
        family="div-by-zero",
        findings=[{"signature": "sig:a", "case": 5, "family": "div-by-zero"}],
    ),
]


class TestFolding:
    def test_any_arrival_order_gives_the_same_canonical_view(self):
        views = []
        for order in itertools.permutations(RESULTS):
            aggregate = CampaignAggregate("spec", 3)
            for result in order:
                aggregate.add_unit(result)
            views.append(aggregate.to_dict())
        assert all(view == views[0] for view in views)

    def test_refolding_the_same_unit_is_idempotent(self):
        aggregate = CampaignAggregate("spec", 3)
        aggregate.add_unit(RESULTS[0])
        aggregate.add_unit(RESULTS[0])
        assert aggregate.units_done == 1
        assert aggregate.cases == 2

    def test_conflicting_digests_for_one_index_raise(self):
        aggregate = CampaignAggregate("spec", 3)
        aggregate.add_unit(RESULTS[0])
        with pytest.raises(ValueError, match="different digests"):
            aggregate.add_unit(dict(RESULTS[0], digest="f" * 64))

    def test_family_table_sums_and_rates(self):
        aggregate = CampaignAggregate("spec", 3)
        for result in RESULTS:
            aggregate.add_unit(result)
        table = aggregate.family_table()
        assert list(table) == ["clean", "div-by-zero"]
        assert table["div-by-zero"] == {"cases": 4, "correct": 3, "rate": 0.75}


class TestFindings:
    def test_sorted_by_signature_with_first_sighting_kept(self):
        aggregate = CampaignAggregate("spec", 3)
        for result in RESULTS:
            aggregate.add_unit(result)
        aggregate.add_finding(
            0, {"signature": "sig:a", "case": 1, "family": "div-by-zero"}
        )
        findings = aggregate.findings()
        assert [f["signature"] for f in findings] == ["sig:a", "sig:b"]
        # The (unit 0, case 1) sighting of sig:a beats the (unit 2, case 5).
        assert findings[0]["case"] == 1

    def test_families_with_fewest_findings_orders_the_bias(self):
        aggregate = CampaignAggregate("spec", 3)
        for result in RESULTS:
            aggregate.add_unit(result)
        ranked = aggregate.families_with_fewest_findings()
        assert ranked[0] == "clean"  # zero findings
        assert ranked[-1] == "div-by-zero"  # two distinct signatures


class TestViews:
    def test_snapshot_adds_timing_the_canonical_view_omits(self):
        aggregate = CampaignAggregate("spec", 3)
        aggregate.add_unit(RESULTS[0])
        snapshot = aggregate.snapshot()
        canonical = aggregate.to_dict()
        assert "elapsed_seconds" in snapshot
        assert "throughput" in snapshot
        assert "elapsed_seconds" not in canonical
        assert canonical["units_done"] == 1
        assert canonical["units_total"] == 3
        assert len(canonical["result_digest"]) == 64

    def test_result_digest_tracks_content(self):
        a = CampaignAggregate("spec", 3)
        b = CampaignAggregate("spec", 3)
        a.add_unit(RESULTS[0])
        b.add_unit(RESULTS[1])
        assert a.result_digest() != b.result_digest()


class TestBaseline:
    def test_deltas_against_a_committed_baseline(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "families": {
                        "clean": {"rate": 1.0},
                        "div-by-zero": {"rate": 1.0},
                        "retired": {"rate": 0.5},
                    }
                }
            )
        )
        aggregate = CampaignAggregate(
            "spec", 3, baseline=load_baseline(baseline_path)
        )
        for result in RESULTS:
            aggregate.add_unit(result)
        deltas = aggregate.to_dict()["deltas"]
        assert deltas["clean"]["delta"] == 0.0
        assert deltas["div-by-zero"]["delta"] == -0.25
        # A family only the baseline knows still shows up, without a delta.
        assert deltas["retired"]["rate"] is None
        assert "delta" not in deltas["retired"]

    def test_missing_or_bad_baseline_is_silently_none(self, tmp_path):
        assert load_baseline(None) is None
        assert load_baseline(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert load_baseline(bad) is None
        assert CampaignAggregate("spec", 1).deltas() is None
