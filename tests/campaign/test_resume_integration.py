"""SIGKILL a live campaign process mid-run; resume must be byte-identical.

The in-process crash tests truncate journal files by hand; this one kills a
real ``kcc-check campaign run`` subprocess with SIGKILL (no atexit, no
flush-on-exit — the hardest stop there is) once its journal shows partial
progress, then resumes the survivor journal and holds it to the
uninterrupted run's canonical bytes.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import CampaignSpec, resume_campaign, run_campaign_spec
from repro.campaign.journal import load_journal

SEED = 20260808
COUNT = 20
UNIT_SIZE = 2


def _spawn_campaign(journal):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [env.get("PYTHONPATH"), "src"] if p
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "campaign",
            "run",
            "--journal",
            str(journal),
            "--kind",
            "fuzz",
            "--seed",
            str(SEED),
            "--count",
            str(COUNT),
            "--unit-size",
            str(UNIT_SIZE),
            "--quiet",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
    )


def _done_units(journal):
    if not journal.exists():
        return 0
    return sum(
        1
        for line in journal.read_bytes().split(b"\n")
        if line.startswith(b'{"digest"') and b'"t":"done"' in line
    )


def test_sigkill_then_resume_is_byte_identical(tmp_path):
    spec = CampaignSpec(seed=SEED, count=COUNT, unit_size=UNIT_SIZE)
    units_total = spec.units_estimate()

    reference = run_campaign_spec(spec, tmp_path / "reference.jsonl")
    canonical = reference.to_dict()

    journal = tmp_path / "killed.jsonl"
    child = _spawn_campaign(journal)
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if child.poll() is not None:
                pytest.fail("campaign finished before it could be killed")
            if _done_units(journal) >= max(1, units_total // 3):
                break
            time.sleep(0.02)
        else:
            pytest.fail("campaign never reached the kill point")
    finally:
        child.send_signal(signal.SIGKILL)
        child.wait()

    survived = _done_units(journal)
    assert 0 < survived < units_total

    resumed = resume_campaign(journal)
    assert resumed.complete
    assert resumed.to_dict() == canonical
    assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
        canonical, sort_keys=True
    )
    # Zero completed units re-executed: the journal's own counters prove it.
    state, _ = load_journal(journal)
    assert state.duplicate_done == 0
    assert resumed.skipped == survived
    assert resumed.executed == units_total - survived
