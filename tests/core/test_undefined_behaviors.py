"""The negative semantics: undefined programs must be reported, with the right kind."""

from repro import UBKind
from tests.util import exit_code_of, expect_undefined


class TestArithmeticUndefinedness:
    def test_division_by_zero(self):
        expect_undefined("int main(void){ int d = 0; return 5 / d; }", UBKind.DIVISION_BY_ZERO)

    def test_modulo_by_zero(self):
        expect_undefined("int main(void){ int d = 0; return 5 % d; }", UBKind.DIVISION_BY_ZERO)

    def test_int_min_divided_by_minus_one(self):
        source = """
        #include <limits.h>
        int main(void){ int a = INT_MIN; int b = -1; return (a / b) != 0; }
        """
        expect_undefined(source, UBKind.SIGNED_OVERFLOW)

    def test_signed_overflow_addition(self):
        source = """
        #include <limits.h>
        int main(void){ int x = INT_MAX; return x + 1 < x; }
        """
        expect_undefined(source, UBKind.SIGNED_OVERFLOW)

    def test_signed_overflow_multiplication(self):
        expect_undefined("int main(void){ int x = 100000; return x * 100000 > 0; }",
                         UBKind.SIGNED_OVERFLOW)

    def test_signed_overflow_negation(self):
        source = """
        #include <limits.h>
        int main(void){ int x = INT_MIN; return -x; }
        """
        expect_undefined(source, UBKind.SIGNED_OVERFLOW)

    def test_shift_too_far(self):
        expect_undefined("int main(void){ int n = 32; return 1 << n; }", UBKind.SHIFT_TOO_FAR)

    def test_shift_negative_amount(self):
        expect_undefined("int main(void){ int n = -1; return 4 >> n; }", UBKind.SHIFT_TOO_FAR)

    def test_left_shift_of_negative_value(self):
        expect_undefined("int main(void){ int x = -2; return x << 1; }", UBKind.SHIFT_NEGATIVE)

    def test_left_shift_overflow(self):
        expect_undefined("int main(void){ int x = 1; int n = 31; return x << n; }",
                         UBKind.SHIFT_OVERFLOW)

    def test_float_to_int_conversion_overflow(self):
        expect_undefined("int main(void){ double d = 1e20; return (int)d; }",
                         UBKind.CONVERSION_OVERFLOW)

    def test_unsigned_overflow_is_defined(self):
        assert exit_code_of(
            "int main(void){ unsigned int x = 4294967295u; return (x + 1u) == 0u; }") == 1

    def test_float_division_by_zero_is_not_flagged(self):
        # IEEE-754 semantics (Annex F): inf, not undefined behavior.
        assert exit_code_of(
            "int main(void){ double x = 1.0; double y = x / 0.0; return y > 1e30; }") == 1


class TestPointerUndefinedness:
    def test_null_dereference(self):
        expect_undefined("#include <stddef.h>\nint main(void){ int *p = NULL; return *p; }",
                         UBKind.NULL_DEREFERENCE)

    def test_write_through_null(self):
        expect_undefined("#include <stddef.h>\nint main(void){ int *p = NULL; *p = 1; return 0; }",
                         UBKind.NULL_DEREFERENCE)

    def test_void_pointer_dereference(self):
        expect_undefined("int main(void){ int x = 1; void *p = &x; *p; return 0; }",
                         UBKind.VOID_DEREFERENCE)

    def test_array_read_out_of_bounds(self):
        expect_undefined("int main(void){ int a[3] = {1,2,3}; int i = 3; return a[i]; }",
                         UBKind.OUT_OF_BOUNDS)

    def test_array_write_out_of_bounds(self):
        # One element past one-past-the-end: already the pointer arithmetic is
        # undefined, before the store is even attempted.
        expect_undefined("int main(void){ int a[3]; int i = 4; a[i] = 1; return 0; }",
                         UBKind.INVALID_POINTER_ARITHMETIC)

    def test_array_write_one_past_end(self):
        expect_undefined("int main(void){ int a[3]; int i = 3; a[i] = 1; return 0; }",
                         UBKind.BUFFER_OVERFLOW)

    def test_pointer_arithmetic_beyond_one_past_end(self):
        expect_undefined("int main(void){ int a[3]; int *p = a + 5; return p == a; }",
                         UBKind.INVALID_POINTER_ARITHMETIC)

    def test_one_past_end_is_allowed_but_not_dereferenceable(self):
        assert exit_code_of("int main(void){ int a[3]; int *p = a + 3; return p != a; }") == 1
        expect_undefined("int main(void){ int a[3]; int *p = a + 3; return *p; }",
                         UBKind.OUT_OF_BOUNDS)

    def test_negative_index(self):
        expect_undefined("int main(void){ int a[3]; int i = -1; a[i] = 1; return 0; }")

    def test_comparison_of_unrelated_pointers(self):
        expect_undefined("int main(void){ int a; int b; a = b = 0; return &a < &b; }",
                         UBKind.POINTER_COMPARE_UNRELATED)

    def test_comparison_within_struct_is_defined(self):
        source = """
        int main(void) {
            struct { int a; int b; } s;
            s.a = 0; s.b = 0;
            return &s.a < &s.b;
        }
        """
        assert exit_code_of(source) == 1

    def test_equality_of_unrelated_pointers_is_defined(self):
        assert exit_code_of("int main(void){ int a; int b; return &a == &b; }") == 0

    def test_subtraction_of_unrelated_pointers(self):
        expect_undefined("int main(void){ int a[2]; int b[2]; return (int)(&a[0] - &b[0]); }",
                         UBKind.POINTER_SUBTRACT_UNRELATED)

    def test_null_pointer_arithmetic(self):
        expect_undefined(
            "#include <stddef.h>\nint main(void){ char *p = NULL; return (p + 1) != NULL; }",
            UBKind.NULL_POINTER_ARITHMETIC)

    def test_modifying_string_literal(self):
        expect_undefined('int main(void){ char *s = "abc"; s[0] = 65; return 0; }',
                         UBKind.MODIFY_STRING_LITERAL)

    def test_misaligned_access(self):
        source = """
        int main(void) {
            char buffer[16];
            for (int i = 0; i < 16; i++) buffer[i] = (char)i;
            int *p = (int *)(buffer + 1);
            return *p;
        }
        """
        expect_undefined(source, UBKind.UNALIGNED_ACCESS)

    def test_strict_aliasing_violation(self):
        source = """
        int main(void) {
            int value = 1;
            short *p = (short *)&value;
            return p[0];
        }
        """
        expect_undefined(source, UBKind.EFFECTIVE_TYPE_VIOLATION)

    def test_char_access_is_always_allowed(self):
        source = """
        int main(void) {
            int value = 258;
            unsigned char *p = (unsigned char *)&value;
            return p[0] + p[1];
        }
        """
        assert exit_code_of(source) == 3


class TestLifetimeUndefinedness:
    def test_use_after_free(self):
        source = """
        #include <stdlib.h>
        int main(void){ int *p = malloc(4); if (!p) return 0; *p = 1; free(p); return *p; }
        """
        expect_undefined(source, UBKind.USE_AFTER_FREE)

    def test_double_free(self):
        source = """
        #include <stdlib.h>
        int main(void){ char *p = malloc(4); if (!p) return 0; free(p); free(p); return 0; }
        """
        expect_undefined(source, UBKind.DOUBLE_FREE)

    def test_free_of_stack_object(self):
        source = """
        #include <stdlib.h>
        int main(void){ int x = 1; free(&x); return 0; }
        """
        expect_undefined(source, UBKind.BAD_FREE)

    def test_free_of_interior_pointer(self):
        source = """
        #include <stdlib.h>
        int main(void){ char *p = malloc(8); if (!p) return 0; free(p + 1); return 0; }
        """
        expect_undefined(source, UBKind.BAD_FREE)

    def test_returning_address_of_local(self):
        source = """
        int *leak(void) { int local = 3; return &local; }
        int main(void){ return *leak(); }
        """
        expect_undefined(source, UBKind.DANGLING_DEREFERENCE)

    def test_pointer_into_exited_block(self):
        source = """
        int main(void) {
            int *p;
            { int inner = 1; p = &inner; }
            return *p;
        }
        """
        expect_undefined(source, UBKind.DANGLING_DEREFERENCE)

    def test_uninitialized_local_read(self):
        expect_undefined("int main(void){ int x; return x + 1; }", UBKind.UNINITIALIZED_READ)

    def test_uninitialized_heap_read(self):
        source = """
        #include <stdlib.h>
        int main(void){ int *p = malloc(8); if (!p) return 0; int v = p[1]; free(p); return v; }
        """
        expect_undefined(source, UBKind.UNINITIALIZED_READ)

    def test_uninitialized_pointer_dereference(self):
        expect_undefined("int main(void){ int *p; return *p; }", UBKind.UNINITIALIZED_READ)

    def test_uninitialized_branch_condition(self):
        expect_undefined("int main(void){ int flag; if (flag) return 1; return 0; }",
                         UBKind.UNINITIALIZED_READ)

    def test_partial_pointer_copy_then_use(self):
        source = """
        int main(void) {
            int x = 5, y = 6;
            int *p = &x, *q = &y;
            char *a = (char*)&p, *b = (char*)&q;
            a[0] = b[0]; a[1] = b[1]; a[2] = b[2];
            return *p;
        }
        """
        expect_undefined(source, UBKind.UNINITIALIZED_READ)

    def test_full_pointer_copy_is_defined(self):
        source = """
        int main(void) {
            int x = 5, y = 6;
            int *p = &x, *q = &y;
            char *a = (char*)&p, *b = (char*)&q;
            a[0]=b[0]; a[1]=b[1]; a[2]=b[2]; a[3]=b[3]; a[4]=b[4]; a[5]=b[5]; a[6]=b[6]; a[7]=b[7];
            return *p;
        }
        """
        assert exit_code_of(source) == 6


class TestSequencingAndConst:
    def test_unsequenced_assignments(self):
        expect_undefined("int main(void){ int x = 0; return (x = 1) + (x = 2); }",
                         UBKind.UNSEQUENCED_SIDE_EFFECT)

    def test_assignment_then_read_unsequenced(self):
        expect_undefined("int main(void){ int i = 1; return (i = 5) + i; }",
                         UBKind.UNSEQUENCED_SIDE_EFFECT)

    def test_i_equals_i_plus_plus(self):
        expect_undefined("int main(void){ int i = 0; i = i++; return i; }",
                         UBKind.UNSEQUENCED_SIDE_EFFECT)

    def test_double_increment_in_arguments(self):
        source = """
        int combine(int a, int b) { return a + b; }
        int main(void){ int i = 0; return combine(i++, i++); }
        """
        expect_undefined(source, UBKind.UNSEQUENCED_SIDE_EFFECT)

    def test_sequenced_operators_are_fine(self):
        assert exit_code_of(
            "int main(void){ int x = 0; return (x = 1) && (x = 2) ? x : 9; }") == 2
        assert exit_code_of(
            "int main(void){ int x = 0; return ((x = 1), (x = 2)); }") == 2

    def test_separate_statements_are_fine(self):
        assert exit_code_of("int main(void){ int x; x = 1; x = 2; return x + x; }") == 4

    def test_write_to_const_through_cast(self):
        source = """
        int main(void){ const int limit = 1; *(int*)&limit = 2; return limit; }
        """
        expect_undefined(source, UBKind.CONST_VIOLATION)

    def test_write_to_const_via_strchr(self):
        source = """
        #include <string.h>
        int main(void) {
            const char p[] = "hello";
            char *q = strchr(p, p[0]);
            *q = 'H';
            return 0;
        }
        """
        expect_undefined(source, UBKind.CONST_VIOLATION)

    def test_writing_nonconst_through_pointer_is_fine(self):
        assert exit_code_of(
            "int main(void){ int x = 1; *(int*)&x = 2; return x; }") == 2


class TestFunctionUndefinedness:
    def test_wrong_argument_count(self):
        source = """
        int add(int a, int b);
        int add(int a, int b) { return a + b; }
        int main(void){ return add(1); }
        """
        expect_undefined(source, UBKind.BAD_FUNCTION_CALL)

    def test_pointer_argument_given_integer(self):
        source = """
        static int get(int *p) { return *p; }
        int main(void){ return get(7); }
        """
        expect_undefined(source, UBKind.BAD_FUNCTION_CALL)

    def test_call_through_incompatible_function_pointer(self):
        source = """
        static int add(int a, int b) { return a + b; }
        int main(void){ int (*f)(int) = (int (*)(int))add; return f(1); }
        """
        expect_undefined(source, UBKind.BAD_FUNCTION_TYPE)

    def test_call_through_null_function_pointer(self):
        source = """
        #include <stddef.h>
        int main(void){ int (*f)(void) = NULL; return f(); }
        """
        expect_undefined(source, UBKind.NULL_DEREFERENCE)

    def test_missing_return_value_used(self):
        source = """
        static int maybe(int flag) { if (flag) return 1; }
        int main(void){ return maybe(0) + 1; }
        """
        expect_undefined(source, UBKind.UNINITIALIZED_READ)

    def test_missing_return_value_unused_is_fine(self):
        source = """
        static int maybe(int flag) { if (flag) return 1; }
        int main(void){ maybe(0); return 0; }
        """
        assert exit_code_of(source) == 0

    def test_call_to_undeclared_function(self):
        expect_undefined("int main(void){ return mystery(1); }", UBKind.BAD_FUNCTION_CALL)

    def test_printf_format_mismatch(self):
        source = """
        #include <stdio.h>
        int main(void){ printf("%s", 5); return 0; }
        """
        expect_undefined(source)

    def test_printf_missing_argument(self):
        source = """
        #include <stdio.h>
        int main(void){ printf("%d %d", 1); return 0; }
        """
        expect_undefined(source, UBKind.FORMAT_MISMATCH)


class TestLibraryUndefinedness:
    def test_strcpy_overflow(self):
        source = """
        #include <string.h>
        int main(void){ char small[2]; strcpy(small, "much too long"); return 0; }
        """
        expect_undefined(source, UBKind.BUFFER_OVERFLOW)

    def test_strlen_unterminated(self):
        source = """
        #include <string.h>
        int main(void){ char b[3]; b[0]='a'; b[1]='b'; b[2]='c'; return (int)strlen(b); }
        """
        expect_undefined(source, UBKind.UNTERMINATED_STRING_OP)

    def test_memcpy_overlap(self):
        source = """
        #include <string.h>
        int main(void){ char b[8] = "abcdefg"; memcpy(b + 1, b, 4); return b[1]; }
        """
        expect_undefined(source, UBKind.OVERLAPPING_COPY)

    def test_memmove_overlap_is_fine(self):
        source = """
        #include <string.h>
        int main(void){ char b[8] = "abcdefg"; memmove(b + 1, b, 4); return b[1]; }
        """
        assert exit_code_of(source) == ord("a")

    def test_memcpy_out_of_bounds(self):
        source = """
        #include <string.h>
        int main(void){ char src[2] = {1, 2}; char dst[8]; memcpy(dst, src, 4); return dst[0]; }
        """
        expect_undefined(source, UBKind.OUT_OF_BOUNDS)

    def test_abs_int_min(self):
        source = """
        #include <stdlib.h>
        #include <limits.h>
        int main(void){ int m = INT_MIN; return abs(m) < 0; }
        """
        expect_undefined(source, UBKind.SIGNED_OVERFLOW)
