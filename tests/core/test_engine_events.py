"""Event-stream contracts of the compiled engine (PR 7).

Three guarantees pin down the pay-per-subscription instrumentation model:

* **Stream identity** — when a probe subscribes to everything, the
  compiled-default tool must emit the *identical* event sequence the
  legacy walker emits, over the whole undefinedness suite.  (Probed runs
  route through the instrumented lowered IR, never the bytecode VM; this
  test pins the routing as much as the stream.)
* **Kind filtering** — a probe subscribing to a strict subset of kinds
  sees exactly the broadcast stream filtered to those kinds, in order,
  and an unsubscribed kind is never delivered.
* **Null subscription** — a probe subscribing to *no* kinds keeps the run
  on the uninstrumented engine: no instrumented IR is built, the bytecode
  program runs, the probe sees zero events, and only ``finish`` fires.

The hypothesis property tests at the bottom pin the arena memory store:
an :class:`~repro.core.memory.ArenaBytes` view must be observationally
byte-equal to the plain ``list[Byte]`` store under arbitrary interleaved
reads and writes, and a whole arena-backed :class:`Memory` must agree
with a dict-backed one under randomized alloc/kill/read/write.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront import ctypes as ct
from repro.core.config import CheckerOptions
from repro.core.kcc import KccTool, _probes_need_events
from repro.core.memory import ArenaBytes, Memory, StorageKind
from repro.core.values import ConcreteByte, PointerValue, UnknownByte
from repro.events import Probe, TraceRecorderProbe
from repro.suites.ubsuite import generate_undefinedness_suite

SUITE = generate_undefinedness_suite()

COMPILED = KccTool(CheckerOptions(), run_static_checks=False)
WALKER = KccTool(CheckerOptions(engine="walker"), run_static_checks=False)


class KindRecorder(Probe):
    """A minimal selective subscriber: records event dicts and the run end."""

    name = "kind-recorder"

    def __init__(self, subscribes=None):
        self.subscribes = subscribes
        self.events = []
        self.end = None

    def on_event(self, event):
        self.events.append(event.to_dict())

    def finish(self, end):
        self.end = end.status


def run_probed(tool, source, name, *probes):
    compiled = tool.compile_unit(source, filename=name)
    if not compiled.ok:
        return None, compiled
    return tool.run_unit(compiled, probes=list(probes)), compiled


# ---------------------------------------------------------------------------
# Stream identity: all-kinds subscription == walker's stream
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("case", SUITE.cases, ids=lambda c: c.name)
def test_compiled_tool_event_stream_is_walker_identical(case):
    compiled_probe = TraceRecorderProbe(filename=case.name)
    walker_probe = TraceRecorderProbe(filename=case.name)
    compiled_report, _ = run_probed(COMPILED, case.source, case.name,
                                    compiled_probe)
    walker_report, _ = run_probed(WALKER, case.source, case.name, walker_probe)
    if compiled_report is None:
        assert walker_report is None
        return
    assert compiled_report.outcome.describe() == walker_report.outcome.describe()
    assert compiled_probe.trace.events == walker_probe.trace.events


# ---------------------------------------------------------------------------
# Kind filtering
# ---------------------------------------------------------------------------

FILTER_PROGRAM = """
#include <stdio.h>
int add(int a, int b) { return a + b; }
int main(void) {
    int total = 0;
    for (int i = 0; i < 4; i++)
        total = add(total, i);
    printf("%d\\n", total);
    return 0;
}
"""


def test_selective_probe_sees_the_filtered_broadcast_stream():
    broadcast = KindRecorder()
    selective = KindRecorder(subscribes=("call", "return"))
    report, _ = run_probed(COMPILED, FILTER_PROGRAM, "filter.c",
                           broadcast, selective)
    assert report is not None
    wanted = {"call", "return"}
    assert selective.events, "program calls functions; call events expected"
    assert all(event["event"] in wanted for event in selective.events)
    assert selective.events == [event for event in broadcast.events
                                if event["event"] in wanted]
    assert selective.end == broadcast.end


def test_unsubscribed_kind_is_never_delivered():
    # The program never frees, and the probe only wants "free": it must
    # end the run having seen nothing at all — while a broadcast probe on
    # the very same run sees the full stream.
    broadcast = KindRecorder()
    selective = KindRecorder(subscribes=("free",))
    report, _ = run_probed(COMPILED, FILTER_PROGRAM, "filter.c",
                           broadcast, selective)
    assert report is not None
    assert selective.events == []
    assert selective.end is not None
    assert broadcast.events


def test_selective_streams_agree_across_engines():
    for kinds in (("call", "return"), ("read", "write"), ("branch",)):
        compiled_probe = KindRecorder(subscribes=kinds)
        walker_probe = KindRecorder(subscribes=kinds)
        run_probed(COMPILED, FILTER_PROGRAM, "filter.c", compiled_probe)
        run_probed(WALKER, FILTER_PROGRAM, "filter.c", walker_probe)
        assert compiled_probe.events == walker_probe.events


# ---------------------------------------------------------------------------
# Null subscription: the uninstrumented engine survives probing
# ---------------------------------------------------------------------------

def test_zero_subscription_probe_keeps_the_native_engine():
    probe = KindRecorder(subscribes=())
    assert not _probes_need_events([probe])
    assert _probes_need_events([KindRecorder()])
    assert _probes_need_events([KindRecorder(subscribes=("call",))])

    tool = KccTool(CheckerOptions(), run_static_checks=False)
    compiled = tool.compile_unit(FILTER_PROGRAM, filename="filter.c")
    assert compiled.ok
    unprobed = tool.run_unit(compiled)
    probed = tool.run_unit(compiled, probes=[probe])

    # The probe saw nothing but was told how the run ended.
    assert probe.events == []
    assert probe.end is not None
    assert probed.outcome.describe() == unprobed.outcome.describe()
    assert probed.outcome.stdout == unprobed.outcome.stdout

    # And the engine really stayed native: the bytecode program was built
    # and no instrumented (fold-free, event-emitting) IR ever was.
    assert compiled.compiled_for(tool.options) is not None
    assert tool.options in compiled._bytecode
    instrumented_keys = [key for key in compiled._lowered if key[2]]
    assert instrumented_keys == []


# ---------------------------------------------------------------------------
# Arena store: observational byte-equality with the dict store
# ---------------------------------------------------------------------------

concrete_bytes = st.builds(ConcreteByte, st.integers(0, 255))
any_bytes = st.one_of(concrete_bytes,
                      st.builds(UnknownByte, st.integers(1, 4)))


@settings(max_examples=120, deadline=None)
@given(initial=st.lists(any_bytes, min_size=1, max_size=16), data=st.data())
def test_arena_bytes_is_byte_equal_to_the_list_store(initial, data):
    # A shared arena with pre-existing content: the view must stay inside
    # its own window regardless of the operation mix.
    arena = bytearray(b"\xaa\xbb\xcc")
    guard = bytes(arena)
    view = ArenaBytes(arena, list(initial))
    model = list(initial)
    size = len(model)

    for _ in range(data.draw(st.integers(0, 12), label="op-count")):
        op = data.draw(st.sampled_from(
            ["set", "set-slice", "write-int", "read-int", "read-slice"]),
            label="op")
        if op == "set":
            index = data.draw(st.integers(0, size - 1), label="index")
            byte = data.draw(any_bytes, label="byte")
            view[index] = byte
            model[index] = byte
        elif op == "set-slice":
            start = data.draw(st.integers(0, size), label="start")
            stop = data.draw(st.integers(start, size), label="stop")
            payload = data.draw(st.lists(any_bytes, min_size=stop - start,
                                         max_size=stop - start),
                                label="payload")
            view[start:stop] = payload
            model[start:stop] = payload
        elif op == "write-int":
            width = data.draw(st.integers(1, min(size, 8)), label="width")
            offset = data.draw(st.integers(0, size - width), label="offset")
            value = data.draw(st.integers(0, (1 << (8 * width)) - 1),
                              label="value")
            view.write_int(offset, width, value)
            payload = value.to_bytes(width, "little")
            model[offset:offset + width] = [ConcreteByte(b) for b in payload]
        elif op == "read-int":
            width = data.draw(st.integers(1, min(size, 8)), label="width")
            offset = data.draw(st.integers(0, size - width), label="offset")
            signed = data.draw(st.booleans(), label="signed")
            window = model[offset:offset + width]
            if all(type(byte) is ConcreteByte for byte in window):
                expected = int.from_bytes(
                    bytes(byte.value for byte in window), "little",
                    signed=signed)
            else:
                expected = None
            assert view.read_int(offset, width, signed) == expected
        else:
            start = data.draw(st.integers(0, size), label="start")
            stop = data.draw(st.integers(start, size), label="stop")
            assert view[start:stop] == model[start:stop]

    assert len(view) == size
    assert list(view) == model
    assert view == model
    assert all(view[index] == model[index] for index in range(size))
    assert bytes(arena[:3]) == guard


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_arena_memory_agrees_with_dict_memory(data):
    options = CheckerOptions()
    arena_memory = Memory(options, store="arena")
    dict_memory = Memory(options, store="dict")

    sizes = data.draw(st.lists(st.integers(1, 12), min_size=1, max_size=6),
                      label="sizes")
    pairs = []
    for size in sizes:
        initial = data.draw(st.lists(any_bytes, min_size=size, max_size=size),
                            label="initial")
        kind = data.draw(st.sampled_from((StorageKind.AUTO, StorageKind.HEAP)),
                         label="kind")
        arena_obj = arena_memory.allocate(size, kind, name="o",
                                          data=list(initial))
        dict_obj = dict_memory.allocate(size, kind, name="o",
                                        data=list(initial))
        assert arena_obj.base == dict_obj.base
        pairs.append((arena_obj, dict_obj, size))

    for _ in range(data.draw(st.integers(0, 30), label="op-count")):
        arena_obj, dict_obj, size = data.draw(st.sampled_from(pairs),
                                              label="object")
        op = data.draw(st.sampled_from(["write", "read", "kill"]), label="op")
        if op == "write":
            index = data.draw(st.integers(0, size - 1), label="index")
            byte = data.draw(any_bytes, label="byte")
            arena_obj.data[index] = byte
            dict_obj.data[index] = byte
        elif op == "read":
            index = data.draw(st.integers(0, size - 1), label="index")
            assert arena_obj.data[index] == dict_obj.data[index]
        else:
            arena_memory.kill(arena_obj.base)
            dict_memory.kill(dict_obj.base)

    for arena_obj, dict_obj, _ in pairs:
        assert arena_obj.alive == dict_obj.alive
        assert list(arena_obj.data) == list(dict_obj.data)
        pointer = PointerValue(base=arena_obj.base, offset=0,
                               type=ct.PointerType(pointee=ct.CHAR))
        if arena_obj.alive:
            assert (arena_memory.read_bytes(pointer, arena_obj.size)
                    == dict_memory.read_bytes(pointer, dict_obj.size))
