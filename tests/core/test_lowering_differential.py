"""Differential tests: the lowered fast path must equal the legacy walker.

The lowering pass (:mod:`repro.core.lowering`) replaces the interpreter's
dispatch and pre-derives type facts, but it must never change a verdict: for
every program, the outcome kind *and* the full structured diagnostics must be
identical with lowering on and off.  These tests run the entire ubsuite and
the Juliet-style suite through both engines — this is the contract that lets
``--no-lowering`` be an escape hatch rather than a different tool.
"""

import pytest

from repro.core.config import CheckerOptions
from repro.core.kcc import KccTool
from repro.suites.juliet import generate_juliet_suite
from repro.suites.ubsuite import generate_undefinedness_suite

FAST = KccTool(CheckerOptions())
LEGACY = KccTool(CheckerOptions(enable_lowering=False))


def verdict(report):
    """Outcome kind + structured diagnostics, the equality the tests demand."""
    return (report.outcome.kind.name,
            [diagnostic.to_dict() for diagnostic in report.diagnostics()])


def assert_equivalent(source: str, name: str) -> None:
    fast = FAST.check(source, filename=name)
    legacy = LEGACY.check(source, filename=name)
    assert verdict(fast) == verdict(legacy), (
        f"lowered fast path and legacy walker disagree on {name}:\n"
        f"  fast:   {verdict(fast)}\n"
        f"  legacy: {verdict(legacy)}")


@pytest.fixture(scope="module")
def ubsuite():
    return generate_undefinedness_suite()


@pytest.fixture(scope="module")
def juliet():
    return generate_juliet_suite()


def test_lowering_is_actually_used(ubsuite):
    """Guard against a silent fallback: units must carry a lowered IR."""
    compiled = FAST.compile_unit("int main(void){ return 0; }")
    lowered = compiled.lowered_for(FAST.options)
    assert lowered is not None
    assert "main" in lowered.functions
    # And the ablation really disables it.
    assert LEGACY.options.enable_lowering is False


def test_every_ubsuite_case_is_verdict_equivalent(ubsuite):
    for case in ubsuite.cases:
        assert_equivalent(case.source, case.name)


def test_every_juliet_case_is_verdict_equivalent(juliet):
    for case in juliet.cases:
        assert_equivalent(case.source, case.name)


def test_search_mode_explores_identical_schedules(ubsuite):
    """Evaluation-order search over the lowered form must see the same
    decision points: identical verdicts AND identical explored path counts."""
    fast = KccTool(CheckerOptions(), search_evaluation_order=True)
    legacy = KccTool(CheckerOptions(enable_lowering=False),
                     search_evaluation_order=True)
    cases = [case for case in ubsuite.cases
             if "unsequenced" in case.name or "order" in case.name]
    assert cases, "expected sequencing-sensitive cases in the ubsuite"
    for case in cases:
        rf = fast.check(case.source, filename=case.name)
        rl = legacy.check(case.source, filename=case.name)
        assert verdict(rf) == verdict(rl), case.name
        assert rf.search is not None and rl.search is not None
        assert rf.search.explored == rl.search.explored, case.name
        assert rf.search.exhausted == rl.search.exhausted, case.name


def test_ablation_configurations_are_verdict_equivalent(ubsuite):
    """Lowering honors the check flags: with a family of checks disabled the
    two engines must *still* agree (including on the silently-defined cases)."""
    sample = ubsuite.cases[::7]
    for overrides in ({"check_arithmetic": False}, {"check_memory": False},
                      {"check_sequencing": False}, {"check_uninitialized": False}):
        fast = KccTool(CheckerOptions().without(**overrides))
        legacy = KccTool(CheckerOptions(enable_lowering=False).without(**overrides))
        for case in sample:
            rf = fast.check(case.source, filename=case.name)
            rl = legacy.check(case.source, filename=case.name)
            assert verdict(rf) == verdict(rl), (case.name, overrides)


def test_stdout_and_exit_codes_match(ubsuite):
    for case in ubsuite.good_cases()[:30]:
        rf = FAST.check(case.source, filename=case.name)
        rl = LEGACY.check(case.source, filename=case.name)
        assert rf.outcome.stdout == rl.outcome.stdout, case.name
        assert rf.outcome.exit_code == rl.outcome.exit_code, case.name


def test_step_accounting_matches_legacy_even_with_folding():
    """Folded constants charge their subtree's node count, so the two
    engines agree on step totals — and hence on max_steps verdicts."""
    source = ("int main(void){ int i, s = 0;"
              " for (i = 0; i < 40; i++) s += 2 + 3 * 4;"
              " return s > 0; }")
    fast = FAST.check(source)
    legacy = LEGACY.check(source)
    assert fast.result is not None and legacy.result is not None
    assert fast.result.steps == legacy.result.steps

    # A step budget the program exceeds must be inconclusive on both engines.
    tight = CheckerOptions(max_steps=100)
    rf = KccTool(tight).check(source)
    rl = KccTool(tight.without(enable_lowering=False)).check(source)
    assert verdict(rf) == verdict(rl)
    assert rf.outcome.kind.name == "INCONCLUSIVE"


def test_compiled_unit_caches_lowered_ir_per_options():
    tool = KccTool(CheckerOptions())
    compiled = tool.compile_unit("int main(void){ return 1 + 2; }")
    first = compiled.lowered_for(tool.options)
    assert compiled.lowered_for(tool.options) is first
    other = compiled.lowered_for(CheckerOptions().without(check_arithmetic=False))
    assert other is not first  # folding honors the flags, so the IR differs
    nofold = compiled.lowered_for(tool.options, fold=False)
    assert nofold is not first and nofold.fold is False
