"""Three-way differential matrix: walker vs lowered closures vs compiled VM.

PR 7 adds the register-bytecode engine (:mod:`repro.core.bytecode` +
:mod:`repro.core.vm`).  Like the lowered fast path before it, the compiled
engine must never change a verdict: for every program, the outcome kind,
the full structured diagnostics, stdout, and the exit code must be
identical across all three engines — over the fixed suites, a fixed-seed
fuzz corpus, and under ablated option sets (each ablation removes checks,
which shifts which fast paths the VM may take, so equality must hold per
configuration, not just for the default one).

This is the contract that lets ``--engine`` be an escape hatch rather than
three different tools.
"""

import pytest

from repro.core.config import CheckerOptions
from repro.core.kcc import KccTool
from repro.fuzz.generator import generate_cases
from repro.suites.juliet import generate_juliet_suite
from repro.suites.ubsuite import generate_undefinedness_suite

ENGINES = ("walker", "lowered", "compiled")

#: Fixed-seed fuzz corpus: 500 programs, mixed clean/injected.  Any change
#: to the seed or count is a deliberate corpus change, not noise.
FUZZ_SEED = 20260808
FUZZ_COUNT = 500

#: Ablated configurations: every check off (the paper's positive-semantics
#: starting point), and single-family ablations of the checks whose fast
#: paths the VM specializes hardest (uninitialized reads gate the register
#: file, sequencing gates the flat stores, arithmetic gates the inlined
#: plans, memory gates the array fast path).
ABLATIONS = {
    "default": CheckerOptions(),
    "all-disabled": CheckerOptions.all_disabled(),
    "no-uninitialized": CheckerOptions(check_uninitialized=False),
    "no-sequencing": CheckerOptions(check_sequencing=False),
    "no-arithmetic": CheckerOptions(check_arithmetic=False),
    "no-memory": CheckerOptions(check_memory=False),
}


def _tools(options: CheckerOptions) -> dict[str, KccTool]:
    return {engine: KccTool(options.without(engine=engine))
            for engine in ENGINES}


TOOLS = {label: _tools(options) for label, options in ABLATIONS.items()}


def facts(report):
    """What the matrix holds equal across engines."""
    outcome = report.outcome
    return (outcome.kind.name,
            [diagnostic.to_dict() for diagnostic in outcome.diagnostics()],
            outcome.stdout,
            outcome.exit_code)


def assert_matrix(source: str, name: str, tools: dict[str, KccTool],
                  label: str = "default") -> None:
    reports = {engine: tool.check(source, filename=name)
               for engine, tool in tools.items()}
    expected = facts(reports["walker"])
    for engine in ("lowered", "compiled"):
        assert facts(reports[engine]) == expected, (
            f"{engine} engine disagrees with the walker on {name} "
            f"under options {label!r}:\n"
            f"  {engine}: {facts(reports[engine])}\n"
            f"  walker:  {expected}")


@pytest.fixture(scope="module")
def ubsuite():
    return generate_undefinedness_suite()


@pytest.fixture(scope="module")
def juliet():
    return generate_juliet_suite()


@pytest.fixture(scope="module")
def fuzz_corpus():
    return generate_cases(FUZZ_SEED, FUZZ_COUNT, inject="mixed")


def test_compiled_engine_is_actually_used():
    """Guard against a silent fallback: native functions must be present
    in the bytecode program, and the compiled tool must select them."""
    tool = TOOLS["default"]["compiled"]
    unit = tool.compile_unit(
        "int main(void){ int i, s = 0; for (i = 0; i < 9; i++) s += i; "
        "return s > 0 ? 0 : 1; }")
    program = unit.compiled_for(tool.options)
    assert program is not None
    assert "main" in program.functions
    # And a function outside the native subset stays absent (per-function
    # fallback), without poisoning the rest of the program.
    mixed = tool.compile_unit(
        "int f(int *p){ return *p; }\n"
        "int g(void){ return 7; }\n"
        "int main(void){ int x = 1; return f(&x) - g() + 6; }")
    mixed_program = mixed.compiled_for(tool.options)
    assert mixed_program is not None
    assert "f" not in mixed_program.functions
    assert "g" in mixed_program.functions


def test_engine_option_validation():
    with pytest.raises(ValueError):
        CheckerOptions(engine="jit").effective_engine()
    # The historical --no-lowering ablation still forces the walker.
    assert CheckerOptions(enable_lowering=False).effective_engine() == "walker"
    assert CheckerOptions().effective_engine() == "compiled"


def test_every_ubsuite_case_is_engine_equivalent(ubsuite):
    for case in ubsuite.cases:
        assert_matrix(case.source, case.name, TOOLS["default"])


def test_every_juliet_case_is_engine_equivalent(juliet):
    for case in juliet.cases:
        assert_matrix(case.source, case.name, TOOLS["default"])


def test_fuzz_corpus_is_engine_equivalent(fuzz_corpus):
    for case in fuzz_corpus:
        assert_matrix(case.source, case.name, TOOLS["default"])


@pytest.mark.parametrize("label", [k for k in ABLATIONS if k != "default"])
def test_ubsuite_matrix_under_ablation(ubsuite, label):
    for case in ubsuite.cases:
        assert_matrix(case.source, case.name, TOOLS[label], label)


@pytest.mark.parametrize("label", [k for k in ABLATIONS if k != "default"])
def test_fuzz_sample_under_ablation(fuzz_corpus, label):
    # The full 500-case corpus runs under the default options above; each
    # ablation re-runs a fixed slice (every 5th case) to keep the matrix
    # affordable while still crossing every template family with every
    # ablated fast-path configuration.
    for case in fuzz_corpus[::5]:
        assert_matrix(case.source, case.name, TOOLS[label], label)


#: Targeted programs for the constructs PR 9 taught the generator: negative
#: signed arithmetic, function pointers, printf conversions, compound
#: literals, overlapping aggregate copies, and huge-object pointer
#: differences.  Each is run through every engine under every ablation — the
#: constructs stress exactly the paths where the VM falls back per-function
#: and the lowered engine routes through the generic interpreter.
NEW_CONSTRUCT_PROGRAMS = {
    "signed-trunc-division": """
int main(void) {
    int s = 3 - 40;
    int q = s / 7;
    int r = s % 7;
    printf("%d %d %d %d\\n", s, -s, q, r);
    return 0;
}
""",
    "division-quotient-unrepresentable": """
int main(void) {
    int lo = (-2147483647 - 1);
    int q = lo / -1;
    q = q;
    return 0;
}
""",
    "abs-of-most-negative": """
int main(void) {
    int r = abs(-2147483647 - 1);
    r = r;
    return 0;
}
""",
    "printf-format-grammar": """
int main(void) {
    int v = 48879;
    printf("x=%x X=%X o=%o u=%u c=%c\\n", v, v, v, v, 65);
    return 0;
}
""",
    "printf-pointer-for-int": """
int main(void) {
    int x = 1;
    printf("%d\\n", &x);
    return 0;
}
""",
    "printf-missing-argument": """
int main(void) {
    int x = 7;
    printf("%d %d\\n", x);
    return 0;
}
""",
    "clean-function-pointer": """
int twice(int a, int b) { return a + a + b; }
int main(void) {
    int (*fp)(int, int) = twice;
    printf("%d\\n", fp(3, 4));
    return 0;
}
""",
    "fnptr-wrong-type-call": """
int lone(int a) { return a + 1; }
int main(void) {
    int (*fn)(int, int) = (int (*)(int, int))lone;
    int r = fn(3, 4);
    r = r;
    return 0;
}
""",
    "clean-compound-literal": """
int main(void) {
    int v = (int){ 21 };
    printf("%d\\n", v + 1);
    return 0;
}
""",
    "compound-literal-escapes-scope": """
int main(void) {
    int *p;
    if (1) { p = &(int){21}; }
    int x = *p;
    x = x;
    return 0;
}
""",
    "overlapping-assignment": """
int main(void) {
    struct pair { int a; int b; };
    struct pair arr[3];
    arr[0].a = 1;
    arr[0].b = 2;
    arr[1].a = 3;
    arr[1].b = 4;
    struct pair *src = (struct pair *)((char *)arr + 4);
    arr[0] = *src;
    return 0;
}
""",
    "memcpy-overlapping": """
int main(void) {
    char buf[16];
    int i;
    for (i = 0; i < 16; i = i + 1) { buf[i] = i; }
    memcpy(buf + 2, buf, 8);
    return 0;
}
""",
    "pointer-difference-unrepresentable": """
int main(void) {
    static char vast[9223372036854775812];
    char *a = vast;
    char *b = vast + 9223372036854775810;
    long d = b - a;
    d = d;
    return 0;
}
""",
}


@pytest.mark.parametrize("label", list(ABLATIONS))
def test_new_constructs_under_every_ablation(label):
    for name, source in NEW_CONSTRUCT_PROGRAMS.items():
        assert_matrix(source, name, TOOLS[label], label)
