"""Integration tests: arrays, structs, strings, and the heap (defined programs)."""

from tests.util import exit_code_of


class TestArrays:
    def test_array_initialization_and_sum(self):
        source = """
        int main(void) {
            int numbers[5] = {1, 2, 3, 4, 5};
            int total = 0;
            for (int i = 0; i < 5; i++) total += numbers[i];
            return total;
        }
        """
        assert exit_code_of(source) == 15

    def test_partial_initializer_zero_fills(self):
        source = """
        int main(void) {
            int numbers[5] = {1, 2};
            return numbers[0] + numbers[4];
        }
        """
        assert exit_code_of(source) == 1

    def test_array_size_from_initializer(self):
        source = """
        int main(void) {
            int numbers[] = {5, 6, 7};
            return (int)(sizeof(numbers) / sizeof(numbers[0]));
        }
        """
        assert exit_code_of(source) == 3

    def test_two_dimensional_array(self):
        source = """
        int main(void) {
            int grid[3][4];
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    grid[i][j] = i * 10 + j;
            return grid[2][3];
        }
        """
        assert exit_code_of(source) == 23

    def test_array_decays_to_pointer(self):
        source = """
        int sum(int *values, int count) {
            int total = 0;
            for (int i = 0; i < count; i++) total += values[i];
            return total;
        }
        int main(void) {
            int data[4] = {1, 2, 3, 4};
            return sum(data, 4);
        }
        """
        assert exit_code_of(source) == 10

    def test_pointer_iteration(self):
        source = """
        int main(void) {
            int data[4] = {1, 2, 3, 4};
            int total = 0;
            for (int *p = data; p < data + 4; p++) total += *p;
            return total;
        }
        """
        assert exit_code_of(source) == 10

    def test_pointer_difference_within_object(self):
        source = """
        int main(void) {
            int data[8];
            data[0] = 0;
            int *first = &data[1];
            int *last = &data[6];
            return (int)(last - first);
        }
        """
        assert exit_code_of(source) == 5

    def test_char_array_from_string_literal(self):
        source = """
        int main(void) {
            char word[] = "abc";
            return (int)(sizeof(word)) + word[1];
        }
        """
        assert exit_code_of(source) == 4 + ord("b")


class TestStructsAndUnions:
    def test_struct_member_assignment(self):
        source = """
        struct point { int x; int y; };
        int main(void) {
            struct point p;
            p.x = 3; p.y = 4;
            return p.x * p.x + p.y * p.y;
        }
        """
        assert exit_code_of(source) == 25

    def test_struct_initializer(self):
        source = """
        struct point { int x; int y; };
        int main(void) {
            struct point p = { 7, 9 };
            return p.x + p.y;
        }
        """
        assert exit_code_of(source) == 16

    def test_struct_assignment_copies(self):
        source = """
        struct point { int x; int y; };
        int main(void) {
            struct point a = { 1, 2 };
            struct point b;
            b = a;
            a.x = 100;
            return b.x + b.y;
        }
        """
        assert exit_code_of(source) == 3

    def test_nested_struct(self):
        source = """
        struct inner { int value; };
        struct outer { struct inner first; struct inner second; };
        int main(void) {
            struct outer o;
            o.first.value = 5;
            o.second.value = 6;
            return o.first.value + o.second.value;
        }
        """
        assert exit_code_of(source) == 11

    def test_pointer_to_struct_arrow(self):
        source = """
        struct counter { int count; };
        void bump(struct counter *c) { c->count++; }
        int main(void) {
            struct counter c = { 0 };
            bump(&c); bump(&c);
            return c.count;
        }
        """
        assert exit_code_of(source) == 2

    def test_array_of_structs(self):
        source = """
        struct item { int id; int qty; };
        int main(void) {
            struct item cart[3] = { {1, 2}, {2, 5}, {3, 1} };
            int total = 0;
            for (int i = 0; i < 3; i++) total += cart[i].qty;
            return total;
        }
        """
        assert exit_code_of(source) == 8

    def test_union_shares_storage_via_char_view(self):
        source = """
        union view { unsigned int word; unsigned char bytes[4]; };
        int main(void) {
            union view v;
            v.word = 0x04030201u;
            return v.bytes[0];
        }
        """
        assert exit_code_of(source) == 1

    def test_struct_with_mixed_field_sizes(self):
        source = """
        struct mixed { char tag; long value; char suffix; };
        int main(void) {
            struct mixed m;
            m.tag = 1; m.value = 100; m.suffix = 2;
            return (int)(m.tag + m.value + m.suffix);
        }
        """
        assert exit_code_of(source) == 103

    def test_linked_list_on_heap(self):
        source = """
        #include <stdlib.h>
        struct node { int value; struct node *next; };
        int main(void) {
            struct node *head = NULL;
            for (int i = 1; i <= 4; i++) {
                struct node *n = malloc(sizeof(struct node));
                if (!n) return 1;
                n->value = i;
                n->next = head;
                head = n;
            }
            int total = 0;
            for (struct node *cur = head; cur != NULL; cur = cur->next) total += cur->value;
            while (head) {
                struct node *next = head->next;
                free(head);
                head = next;
            }
            return total;
        }
        """
        assert exit_code_of(source) == 10


class TestHeap:
    def test_malloc_write_read_free(self):
        source = """
        #include <stdlib.h>
        int main(void) {
            int *p = malloc(sizeof(int));
            if (!p) return 1;
            *p = 55;
            int result = *p;
            free(p);
            return result;
        }
        """
        assert exit_code_of(source) == 55

    def test_calloc_zero_initializes(self):
        source = """
        #include <stdlib.h>
        int main(void) {
            int *p = calloc(4, sizeof(int));
            if (!p) return 1;
            int total = p[0] + p[1] + p[2] + p[3];
            free(p);
            return total;
        }
        """
        assert exit_code_of(source) == 0

    def test_realloc_preserves_contents(self):
        source = """
        #include <stdlib.h>
        int main(void) {
            int *p = malloc(2 * sizeof(int));
            if (!p) return 1;
            p[0] = 3; p[1] = 4;
            p = realloc(p, 4 * sizeof(int));
            if (!p) return 1;
            p[2] = 5;
            int total = p[0] + p[1] + p[2];
            free(p);
            return total;
        }
        """
        assert exit_code_of(source) == 12

    def test_malloc_failure_returns_null(self):
        source = """
        #include <stdlib.h>
        int main(void) {
            void *p = malloc(1073741824);
            return p == NULL ? 1 : 0;
        }
        """
        assert exit_code_of(source) == 1

    def test_heap_array_of_structs(self):
        source = """
        #include <stdlib.h>
        struct slot { int key; int value; };
        int main(void) {
            struct slot *table = malloc(4 * sizeof(struct slot));
            if (!table) return 1;
            for (int i = 0; i < 4; i++) { table[i].key = i; table[i].value = i * i; }
            int result = table[3].value;
            free(table);
            return result;
        }
        """
        assert exit_code_of(source) == 9


class TestStrings:
    def test_strlen_strcpy_strcat(self):
        source = """
        #include <string.h>
        int main(void) {
            char buffer[16];
            strcpy(buffer, "abc");
            strcat(buffer, "de");
            return (int)strlen(buffer);
        }
        """
        assert exit_code_of(source) == 5

    def test_strcmp(self):
        source = """
        #include <string.h>
        int main(void) {
            return strcmp("abc", "abc") == 0
                && strcmp("abc", "abd") < 0
                && strcmp("b", "a") > 0;
        }
        """
        assert exit_code_of(source) == 1

    def test_strchr_finds_character(self):
        source = """
        #include <string.h>
        #include <stddef.h>
        int main(void) {
            char text[] = "hello world";
            char *space = strchr(text, ' ');
            if (space == NULL) return 1;
            return (int)(space - text);
        }
        """
        assert exit_code_of(source) == 5

    def test_strncpy_and_strncmp(self):
        source = """
        #include <string.h>
        int main(void) {
            char buffer[8];
            strncpy(buffer, "abcdef", 3);
            buffer[3] = 0;
            return strncmp(buffer, "abcx", 3) == 0 ? 1 : 0;
        }
        """
        assert exit_code_of(source) == 1

    def test_memcpy_and_memcmp(self):
        source = """
        #include <string.h>
        int main(void) {
            char source_buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
            char target[8];
            memcpy(target, source_buf, 8);
            return memcmp(target, source_buf, 8) == 0 ? 1 : 0;
        }
        """
        assert exit_code_of(source) == 1

    def test_memset(self):
        source = """
        #include <string.h>
        int main(void) {
            char buffer[4];
            memset(buffer, 7, 4);
            return buffer[0] + buffer[3];
        }
        """
        assert exit_code_of(source) == 14

    def test_memcpy_copies_uninitialized_struct_padding(self):
        # The §4.3.3 requirement: copying a struct byte-by-byte, including
        # uninitialized members, is defined as long as they are not used.
        source = """
        #include <string.h>
        struct record { char tag; int value; };
        int main(void) {
            struct record original;
            original.value = 5;
            struct record copy;
            memcpy(&copy, &original, sizeof(struct record));
            return copy.value;
        }
        """
        assert exit_code_of(source) == 5

    def test_sprintf(self):
        source = """
        #include <stdio.h>
        #include <string.h>
        int main(void) {
            char buffer[32];
            sprintf(buffer, "%d-%s", 7, "ok");
            return (int)strlen(buffer);
        }
        """
        assert exit_code_of(source) == 4

    def test_atoi(self):
        source = """
        #include <stdlib.h>
        int main(void) { return atoi("  42abc"); }
        """
        assert exit_code_of(source) == 42

    def test_argv_passed_to_main(self):
        source = """
        #include <string.h>
        int main(int argc, char **argv) {
            if (argc != 2) return 1;
            return (int)strlen(argv[1]);
        }
        """
        from tests.util import exit_code_of as run
        assert run(source, argv=["prog", "hello"]) == 5

    def test_scanf_reads_integers(self):
        source = """
        #include <stdio.h>
        int main(void) {
            int a, b;
            if (scanf("%d %d", &a, &b) != 2) return 1;
            return a + b;
        }
        """
        assert exit_code_of(source, stdin="20 22") == 42
