"""Tests for the kcc-style front end: reports, search mode, options, profiles."""

import pytest

from repro import (
    CheckerOptions,
    KccTool,
    OutcomeKind,
    UBKind,
    WIDE_INT,
    check_program,
    run_program,
)
from repro.errors import UndefinedBehaviorError
from tests.util import expect_undefined


UNSEQUENCED_EXAMPLE = """
int main(void){
    int x = 0;
    return (x = 1) + (x = 2);
}
"""

SET_DENOM_EXAMPLE = """
static int d = 5;
static int setDenom(int x){ return d = x; }
int main(void) { return (10/d) + setDenom(0); }
"""


class TestReports:
    def test_error_report_shape(self):
        report = check_program(UNSEQUENCED_EXAMPLE)
        text = report.render()
        assert "ERROR! KCC encountered an error." in text
        assert "Error: 00016" in text            # same number as the paper's sample
        assert "Unsequenced side effect" in text
        assert "Function: main" in text
        assert "Line:" in text

    def test_defined_report_contains_exit_code(self):
        report = check_program("int main(void){ return 4; }")
        assert report.outcome.kind is OutcomeKind.DEFINED
        assert "exit code 4" in report.render()

    def test_static_error_report(self):
        report = check_program("int main(void){ int a[0]; return 0; }")
        assert report.outcome.kind is OutcomeKind.STATIC_ERROR
        assert "translation" in report.render()

    def test_parse_error_is_inconclusive(self):
        report = check_program("int main(void) { return ; ")
        assert report.outcome.kind is OutcomeKind.INCONCLUSIVE
        assert not report.flagged

    def test_error_location_matches_source_line(self):
        source = "int main(void) {\n    int d = 0;\n    return 1 / d;\n}\n"
        report = check_program(source)
        assert report.outcome.error is not None
        assert report.outcome.error.line == 3

    def test_run_program_raises_on_undefined(self):
        with pytest.raises(UndefinedBehaviorError):
            run_program(UNSEQUENCED_EXAMPLE)

    def test_run_program_returns_result(self):
        result = run_program('#include <stdio.h>\nint main(void){ puts("hi"); return 0; }')
        assert result.exit_code == 0
        assert result.stdout == "hi\n"


class TestEvaluationOrderSearch:
    def test_default_order_misses_order_dependent_ub(self):
        report = check_program(SET_DENOM_EXAMPLE)
        assert report.outcome.kind is OutcomeKind.DEFINED

    def test_search_finds_order_dependent_ub(self):
        report = check_program(SET_DENOM_EXAMPLE, search_evaluation_order=True)
        assert report.outcome.flagged
        assert UBKind.DIVISION_BY_ZERO in report.outcome.ub_kinds
        assert report.search is not None
        assert report.search.explored >= 2

    def test_search_on_defined_program_stays_defined(self):
        report = check_program("int main(void){ int x = 1; return x + 2; }",
                               search_evaluation_order=True)
        assert report.outcome.kind is OutcomeKind.DEFINED

    def test_search_finds_write_read_conflict_on_other_order(self):
        source = "int main(void){ int i = 1; return i + (i = 2); }"
        assert check_program(source).outcome.kind is OutcomeKind.DEFINED
        expect_undefined(source, UBKind.UNSEQUENCED_SIDE_EFFECT, search=True)

    def test_right_to_left_option(self):
        options = CheckerOptions(evaluation_order="right-to-left")
        report = check_program(SET_DENOM_EXAMPLE, options)
        assert report.outcome.flagged
        assert UBKind.DIVISION_BY_ZERO in report.outcome.ub_kinds


class TestCheckerOptionAblation:
    """Disabling a technique (§4.1–4.3) silently defines the corresponding programs."""

    def test_without_arithmetic_checks_division_by_zero_is_missed(self):
        options = CheckerOptions(check_arithmetic=False)
        report = check_program("int main(void){ int d = 0; return (5 / d) == 0; }", options)
        assert report.outcome.kind is OutcomeKind.DEFINED

    def test_without_sequencing_tracking_unsequenced_writes_are_missed(self):
        options = CheckerOptions(check_sequencing=False)
        report = check_program(UNSEQUENCED_EXAMPLE, options)
        assert report.outcome.kind is OutcomeKind.DEFINED

    def test_without_const_tracking_const_writes_are_missed(self):
        options = CheckerOptions(check_const=False)
        source = "int main(void){ const int x = 1; *(int*)&x = 2; return x; }"
        report = check_program(source, options)
        assert report.outcome.kind is OutcomeKind.DEFINED
        assert report.outcome.exit_code == 2

    def test_without_provenance_pointer_comparisons_are_missed(self):
        options = CheckerOptions(check_pointer_provenance=False)
        source = "int main(void){ int a; int b; a = b = 0; return (&a < &b) < 2; }"
        report = check_program(source, options)
        assert report.outcome.kind is OutcomeKind.DEFINED

    def test_without_uninit_tracking_uninitialized_reads_are_missed(self):
        options = CheckerOptions(check_uninitialized=False)
        report = check_program("int main(void){ int x; return (x + 1) == (x + 1); }", options)
        assert report.outcome.kind is OutcomeKind.DEFINED

    def test_without_effective_types_aliasing_is_missed(self):
        options = CheckerOptions(check_effective_types=False)
        source = "int main(void){ int v = 1; short *p = (short*)&v; return p[0]; }"
        report = check_program(source, options)
        assert report.outcome.kind is OutcomeKind.DEFINED

    def test_without_function_checks_bad_calls_are_missed(self):
        options = CheckerOptions(check_functions=False)
        source = """
        int add(int a, int b) { return a + b; }
        int main(void){ return add(1, 2, 3); }
        """
        report = check_program(source, options)
        assert report.outcome.kind is OutcomeKind.DEFINED

    def test_all_disabled_still_runs_defined_programs(self):
        options = CheckerOptions.all_disabled()
        report = check_program("int main(void){ return 5; }", options)
        assert report.outcome.exit_code == 5

    def test_default_options_catch_everything_above(self):
        for source in (
            "int main(void){ int d = 0; return (5 / d) == 0; }",
            UNSEQUENCED_EXAMPLE,
            "int main(void){ const int x = 1; *(int*)&x = 2; return x; }",
            "int main(void){ int a; int b; a = b = 0; return (&a < &b) < 2; }",
            "int main(void){ int x; return (x + 1) == (x + 1); }",
        ):
            assert check_program(source).outcome.flagged, source


class TestImplementationProfiles:
    MALLOC_FOUR = """
    #include <stdlib.h>
    int main(void){
        int *p = malloc(4);
        if (p) { *p = 1000; }
        free(p);
        return 0;
    }
    """

    def test_defined_under_lp64(self):
        report = check_program(self.MALLOC_FOUR)
        assert report.outcome.kind is OutcomeKind.DEFINED

    def test_undefined_with_eight_byte_int(self):
        # The paper's §2.5.1 example: whether this is undefined depends on
        # the implementation-defined size of int.
        report = check_program(self.MALLOC_FOUR, CheckerOptions(profile=WIDE_INT))
        assert report.outcome.flagged
        assert UBKind.BUFFER_OVERFLOW in report.outcome.ub_kinds

    def test_sizeof_long_differs_between_profiles(self):
        from repro import ILP32
        source = "int main(void){ return (int)sizeof(long); }"
        assert check_program(source).outcome.exit_code == 8
        assert check_program(source, CheckerOptions(profile=ILP32)).outcome.exit_code == 4

    def test_char_signedness_profile(self):
        from repro.cfront.ctypes import ImplementationProfile
        unsigned_char = CheckerOptions(profile=ImplementationProfile(name="uc", char_signed=False))
        source = "int main(void){ char c = (char)200; return c > 0; }"
        assert check_program(source).outcome.exit_code == 0
        assert check_program(source, unsigned_char).outcome.exit_code == 1


class TestConfigurationView:
    def test_configuration_has_figure1_cells(self):
        from tests.util import make_interpreter
        interp = make_interpreter("int global_x = 1; int main(void){ return global_x; }")
        interp.run()
        config = interp.configuration()
        for label in ("k", "genv", "mem", "locsWrittenTo", "notWritable", "callStack"):
            assert config.cell(label) is not None, label
        rendered = config.render()
        assert "genv" in rendered and "mem" in rendered

    def test_configuration_tracks_globals(self):
        from tests.util import make_interpreter
        interp = make_interpreter("int counter = 3; int main(void){ return counter; }")
        interp.run()
        genv = interp.configuration().cell("genv")
        assert "counter" in genv.content

    def test_compile_reports_static_violations(self):
        tool = KccTool(CheckerOptions())
        _unit, violations, error = tool.compile("int main(void){ int bad[0]; return 0; }")
        assert error is None
        assert violations
        assert violations[0].kind is UBKind.ARRAY_SIZE_NOT_POSITIVE
