"""Execution-event stream: golden-trace equality between the two engines.

The instrumented lowered IR and the legacy walker must tell the same story:
for every program of the undefinedness suite, attaching a trace recorder to
both engines yields the *identical* event sequence.  (Instrumented lowering
never constant-folds, precisely so the comparison is exact rather than
"modulo fold-elided constant subtrees"; a separate test pins down that the
plain, folding IR is what unprobed runs execute.)
"""

import pytest

from repro.core.config import CheckerOptions
from repro.core.kcc import KccTool
from repro.events import ExecutionTrace, TraceRecorderProbe
from repro.suites.ubsuite import generate_undefinedness_suite

SUITE = generate_undefinedness_suite()


def trace_of(source: str, name: str, *, lowering: bool,
             continue_past_ub: bool = False):
    tool = KccTool(CheckerOptions(enable_lowering=lowering),
                   run_static_checks=False)
    compiled = tool.compile_unit(source, filename=name)
    if not compiled.ok:
        return None, None
    probe = TraceRecorderProbe(filename=name, continue_past_ub=continue_past_ub)
    report = tool.run_unit(compiled, probes=[probe])
    return probe.trace, report


@pytest.mark.parametrize("case", SUITE.cases, ids=lambda c: c.name)
def test_golden_trace_walker_vs_lowered(case):
    lowered_trace, lowered_report = trace_of(case.source, case.name, lowering=True)
    walker_trace, walker_report = trace_of(case.source, case.name, lowering=False)
    if lowered_trace is None:
        assert walker_trace is None
        return
    assert lowered_report.outcome.describe() == walker_report.outcome.describe()
    assert lowered_trace.events == walker_trace.events, (
        f"{case.name}: engines disagree at event "
        f"{next(i for i, (a, b) in enumerate(zip(lowered_trace.events, walker_trace.events)) if a != b) if lowered_trace.events != walker_trace.events and len(lowered_trace.events) == len(walker_trace.events) else 'length'}")


@pytest.mark.parametrize("case", SUITE.cases[:20], ids=lambda c: c.name)
def test_golden_trace_in_observed_mode(case):
    # With continuation past gated checks the engines must *still* agree —
    # this exercises the observed-mode fallbacks on both engines.
    lowered_trace, _ = trace_of(case.source, case.name, lowering=True,
                                continue_past_ub=True)
    walker_trace, _ = trace_of(case.source, case.name, lowering=False,
                               continue_past_ub=True)
    if lowered_trace is None:
        assert walker_trace is None
        return
    assert lowered_trace.events == walker_trace.events


def test_unprobed_lowered_ir_is_the_plain_fast_path():
    # The compile-time null-probe specialization: an unprobed run uses the
    # folding, uninstrumented IR; a probed run the fold-free instrumented one.
    tool = KccTool(CheckerOptions())
    compiled = tool.compile_unit("int main(void){ return 1 + 2; }")
    tool.run_unit(compiled)
    tool.run_unit(compiled, probes=[TraceRecorderProbe()])
    keys = set(compiled._lowered)
    assert (tool.options, True, False) in keys    # plain: folded, no events
    assert (tool.options, False, True) in keys    # instrumented: fold-free
    plain = compiled._lowered[(tool.options, True, False)]
    instrumented = compiled._lowered[(tool.options, False, True)]
    assert plain.fold and not plain.instrument
    assert instrumented.instrument and not instrumented.fold


def test_passive_probe_leaves_the_report_identical():
    source = "int main(void){ int d = 0; return 5 / d; }"
    tool = KccTool(CheckerOptions(), run_static_checks=False)
    bare = tool.run_unit(tool.compile_unit(source))
    probe = TraceRecorderProbe()
    probed = tool.run_unit(tool.compile_unit(source), probes=[probe])
    assert bare.outcome.describe() == probed.outcome.describe()
    assert bare.outcome.error.line == probed.outcome.error.line
    # The trace ends where the run ends: at the division.
    assert probe.trace.end["status"] == "undefined"
    assert probe.trace.end["error"]["kind"] == "DIVISION_BY_ZERO"


def test_trace_vocabulary_and_queries():
    source = (
        "int add(int a, int b){ return a + b; }\n"
        "int main(void){ int i, s = 0;\n"
        "  for (i = 0; i < 3; i++) { if (i > 1) s += add(s, i); }\n"
        "  return s; }\n")
    tool = KccTool(CheckerOptions())
    probe = TraceRecorderProbe(filename="trace.c")
    tool.run_unit(tool.compile_unit(source, filename="trace.c"), probes=[probe])
    trace = probe.trace
    summary = trace.summary()
    # Every family of the vocabulary shows up in this tiny program...
    for kind in ("alloc", "read", "write", "seq-point", "lvalue-convert",
                 "arith-check", "call", "return", "branch", "choice"):
        assert summary.get(kind, 0) > 0, (kind, summary)
    # ... and the queries slice it.
    assert trace.count("call") == trace.count("return")
    calls = trace.select("call", function="add")
    assert len(calls) == 1  # i in {2}
    assert trace.select("branch", taken=False)  # each loop's exit test
    assert 3 in trace.lines_touched()


def test_trace_json_round_trip(tmp_path):
    source = "int main(void){ int x = 1; return x + 1; }"
    tool = KccTool(CheckerOptions())
    probe = TraceRecorderProbe(filename="rt.c")
    tool.run_unit(tool.compile_unit(source, filename="rt.c"), probes=[probe])
    trace = probe.trace
    path = tmp_path / "trace.json"
    path.write_text(trace.to_json(indent=2), encoding="utf-8")
    reloaded = ExecutionTrace.from_json(path.read_text(encoding="utf-8"))
    assert reloaded.events == trace.events
    assert reloaded.end == trace.end
    assert reloaded.filename == "rt.c"
    assert reloaded.summary() == trace.summary()
