"""Integration tests: executing defined C programs on the dynamic semantics."""

from tests.util import exit_code_of, stdout_of


class TestArithmetic:
    def test_return_constant(self):
        assert exit_code_of("int main(void) { return 7; }") == 7

    def test_integer_arithmetic(self):
        assert exit_code_of("int main(void) { return 2 + 3 * 4; }") == 14

    def test_division_and_modulus(self):
        assert exit_code_of("int main(void) { return 17 / 5 + 17 % 5; }") == 5

    def test_negative_division_truncates_toward_zero(self):
        assert exit_code_of("int main(void) { int a = -7; return (a / 2) == -3 ? 1 : 0; }") == 1

    def test_unsigned_wraparound_is_defined(self):
        source = """
        int main(void) {
            unsigned int x = 4294967295u;
            x = x + 1u;
            return x == 0u ? 1 : 0;
        }
        """
        assert exit_code_of(source) == 1

    def test_bitwise_operators(self):
        assert exit_code_of("int main(void) { return (0xF0 & 0x3C) | (1 << 0); }") == 0x31

    def test_shift_operators(self):
        assert exit_code_of("int main(void) { return (1 << 5) >> 2; }") == 8

    def test_relational_and_equality(self):
        assert exit_code_of("int main(void) { return (3 < 5) + (5 <= 5) + (7 == 7) + (1 != 2); }") == 4

    def test_logical_operators_short_circuit(self):
        source = """
        int main(void) {
            int x = 0;
            int r = (x != 0) && (10 / x > 1);
            return r;
        }
        """
        assert exit_code_of(source) == 0

    def test_logical_or_short_circuit(self):
        source = """
        int main(void) {
            int x = 0;
            return (x == 0) || (10 / x > 1);
        }
        """
        assert exit_code_of(source) == 1

    def test_conditional_expression(self):
        assert exit_code_of("int main(void) { int x = 3; return x > 2 ? 10 : 20; }") == 10

    def test_comma_expression(self):
        assert exit_code_of("int main(void) { int x = (1, 2, 3); return x; }") == 3

    def test_compound_assignment(self):
        source = """
        int main(void) {
            int x = 10;
            x += 5; x -= 3; x *= 2; x /= 4; x %= 5; x <<= 2; x |= 1; x &= 7; x ^= 2;
            return x;
        }
        """
        assert exit_code_of(source) == 7

    def test_increment_decrement(self):
        source = """
        int main(void) {
            int x = 5;
            int a = x++;
            int b = ++x;
            int c = x--;
            int d = --x;
            return a + b * 2 + c * 3 + d * 4;
        }
        """
        assert exit_code_of(source) == 5 + 7 * 2 + 7 * 3 + 5 * 4

    def test_floating_point_arithmetic(self):
        source = """
        int main(void) {
            double x = 1.5;
            double y = x * 4.0 - 2.0;
            return (int)y;
        }
        """
        assert exit_code_of(source) == 4

    def test_mixed_int_float_promotes(self):
        assert exit_code_of("int main(void) { return (int)(7 / 2.0 * 2.0); }") == 7

    def test_char_arithmetic(self):
        assert exit_code_of("int main(void) { char c = 'A'; return c + 1; }") == 66

    def test_sizeof_values(self):
        source = """
        int main(void) {
            int x = 0;
            int a[10];
            a[0] = x;
            return (int)(sizeof(char) + sizeof(int) + sizeof(long) + sizeof x + sizeof a);
        }
        """
        assert exit_code_of(source) == 1 + 4 + 8 + 4 + 40

    def test_casts(self):
        source = """
        int main(void) {
            long big = 300;
            char truncated = (char)big;
            unsigned char u = (unsigned char)300;
            return truncated == 44 && u == 44;
        }
        """
        assert exit_code_of(source) == 1


class TestControlFlow:
    def test_if_else_chains(self):
        source = """
        int classify(int x) {
            if (x < 0) return -1;
            else if (x == 0) return 0;
            else return 1;
        }
        int main(void) { return classify(-5) + classify(0) * 10 + classify(7) * 100; }
        """
        assert exit_code_of(source) == 99

    def test_while_loop(self):
        source = """
        int main(void) {
            int i = 0, total = 0;
            while (i < 10) { total += i; i++; }
            return total;
        }
        """
        assert exit_code_of(source) == 45

    def test_do_while_runs_at_least_once(self):
        source = """
        int main(void) {
            int count = 0;
            do { count++; } while (0);
            return count;
        }
        """
        assert exit_code_of(source) == 1

    def test_for_loop_with_break_and_continue(self):
        source = """
        int main(void) {
            int total = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                total += i;
            }
            return total;
        }
        """
        assert exit_code_of(source) == 1 + 3 + 5 + 7 + 9

    def test_nested_loops(self):
        source = """
        int main(void) {
            int total = 0;
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    total += i * j;
            return total;
        }
        """
        assert exit_code_of(source) == 18

    def test_switch_with_fallthrough(self):
        source = """
        int describe(int x) {
            int result = 0;
            switch (x) {
                case 1:
                    result += 1;
                case 2:
                    result += 2;
                    break;
                case 3:
                    result += 100;
                    break;
                default:
                    result = 42;
            }
            return result;
        }
        int main(void) { return describe(1) + describe(2) * 10 + describe(9); }
        """
        assert exit_code_of(source) == 3 + 20 + 42

    def test_goto_forward(self):
        source = """
        int main(void) {
            int x = 1;
            goto skip;
            x = 100;
        skip:
            return x;
        }
        """
        assert exit_code_of(source) == 1

    def test_goto_backward_loop(self):
        source = """
        int main(void) {
            int count = 0;
        again:
            count++;
            if (count < 5) goto again;
            return count;
        }
        """
        assert exit_code_of(source) == 5

    def test_early_return(self):
        source = """
        int find(int needle) {
            for (int i = 0; i < 10; i++) {
                if (i == needle) return i * 2;
            }
            return -1;
        }
        int main(void) { return find(4); }
        """
        assert exit_code_of(source) == 8


class TestFunctions:
    def test_simple_call(self):
        source = """
        int add(int a, int b) { return a + b; }
        int main(void) { return add(2, 3); }
        """
        assert exit_code_of(source) == 5

    def test_recursion(self):
        source = """
        int factorial(int n) { return n <= 1 ? 1 : n * factorial(n - 1); }
        int main(void) { return factorial(5); }
        """
        assert exit_code_of(source) == 120

    def test_mutual_recursion(self):
        source = """
        int is_odd(int n);
        int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
        int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
        int main(void) { return is_even(10) + is_odd(7) * 10; }
        """
        assert exit_code_of(source) == 11

    def test_void_function_side_effect(self):
        source = """
        int counter = 0;
        void bump(void) { counter++; }
        int main(void) { bump(); bump(); bump(); return counter; }
        """
        assert exit_code_of(source) == 3

    def test_pass_by_value(self):
        source = """
        void try_to_change(int x) { x = 100; }
        int main(void) { int x = 5; try_to_change(x); return x; }
        """
        assert exit_code_of(source) == 5

    def test_pass_pointer_to_modify(self):
        source = """
        void change(int *x) { *x = 100; }
        int main(void) { int x = 5; change(&x); return x; }
        """
        assert exit_code_of(source) == 100

    def test_function_pointer_call(self):
        source = """
        int twice(int x) { return 2 * x; }
        int thrice(int x) { return 3 * x; }
        int main(void) {
            int (*f)(int) = twice;
            int a = f(4);
            f = thrice;
            return a + f(4);
        }
        """
        assert exit_code_of(source) == 20

    def test_function_pointer_in_array(self):
        source = """
        int add(int a, int b) { return a + b; }
        int sub(int a, int b) { return a - b; }
        int main(void) {
            int (*ops[2])(int, int) = { add, sub };
            return ops[0](10, 3) + ops[1](10, 3);
        }
        """
        assert exit_code_of(source) == 20

    def test_static_local_persists(self):
        source = """
        int next_id(void) { static int id = 0; return ++id; }
        int main(void) { next_id(); next_id(); return next_id(); }
        """
        assert exit_code_of(source) == 3

    def test_main_without_return_yields_zero(self):
        assert exit_code_of("int main(void) { int x = 1; x++; }") == 0

    def test_struct_passed_by_value(self):
        source = """
        struct pair { int a; int b; };
        int total(struct pair p) { p.a = 0; return p.a + p.b; }
        int main(void) {
            struct pair p = { 3, 4 };
            int t = total(p);
            return t * 10 + p.a;
        }
        """
        assert exit_code_of(source) == 43

    def test_struct_returned_by_value(self):
        source = """
        struct pair { int a; int b; };
        struct pair make(int a, int b) { struct pair p = { a, b }; return p; }
        int main(void) {
            struct pair p = make(4, 5);
            return p.a * 10 + p.b;
        }
        """
        assert exit_code_of(source) == 45


class TestGlobalsAndScope:
    def test_global_initialization(self):
        source = """
        int global_value = 42;
        int main(void) { return global_value; }
        """
        assert exit_code_of(source) == 42

    def test_uninitialized_global_is_zero(self):
        source = """
        int zero_by_default;
        int main(void) { return zero_by_default; }
        """
        assert exit_code_of(source) == 0

    def test_global_array_initializer(self):
        source = """
        int table[4] = { 10, 20, 30 };
        int main(void) { return table[0] + table[2] + table[3]; }
        """
        assert exit_code_of(source) == 40

    def test_global_pointer_to_global(self):
        source = """
        int target = 9;
        int *pointer = &target;
        int main(void) { return *pointer; }
        """
        assert exit_code_of(source) == 9

    def test_block_scope_shadowing(self):
        source = """
        int main(void) {
            int x = 1;
            {
                int x = 2;
                x++;
            }
            return x;
        }
        """
        assert exit_code_of(source) == 1

    def test_enum_constants(self):
        source = """
        enum state { IDLE, RUNNING = 10, DONE };
        int main(void) { return IDLE + RUNNING + DONE; }
        """
        assert exit_code_of(source) == 21


class TestOutput:
    def test_printf_integers(self):
        source = """
        #include <stdio.h>
        int main(void) { printf("%d %d %u\\n", -3, 42, 7u); return 0; }
        """
        assert stdout_of(source) == "-3 42 7\n"

    def test_printf_strings_and_chars(self):
        source = """
        #include <stdio.h>
        int main(void) { printf("%s|%c|%%\\n", "hi", 'x'); return 0; }
        """
        assert stdout_of(source) == "hi|x|%\n"

    def test_printf_float(self):
        source = """
        #include <stdio.h>
        int main(void) { printf("%f\\n", 2.5); return 0; }
        """
        assert stdout_of(source) == "2.500000\n"

    def test_puts_and_putchar(self):
        source = """
        #include <stdio.h>
        int main(void) { puts("line"); putchar('A'); putchar('\\n'); return 0; }
        """
        assert stdout_of(source) == "line\nA\n"

    def test_exit_stops_program(self):
        source = """
        #include <stdlib.h>
        #include <stdio.h>
        int main(void) {
            puts("before");
            exit(3);
            puts("after");
            return 0;
        }
        """
        from tests.util import run_ok
        outcome = run_ok(source)
        assert outcome.exit_code == 3
        assert outcome.stdout == "before\n"
