"""Unit tests for value conversions (§6.3) and their undefinedness side conditions."""

import pytest

from repro.cfront import ctypes as ct
from repro.core.config import CheckerOptions
from repro.core.conversions import (
    convert,
    integer_to_pointer,
    pointer_to_integer,
    to_boolean,
)
from repro.core.values import (
    FloatValue,
    IndeterminateValue,
    IntValue,
    PointerValue,
    VoidValue,
)
from repro.errors import UBKind, UndefinedBehaviorError

OPTIONS = CheckerOptions()


class TestIntegerConversions:
    def test_identity(self):
        value = convert(IntValue(5, ct.INT), ct.INT, OPTIONS)
        assert isinstance(value, IntValue) and value.value == 5

    def test_widening_preserves_value(self):
        value = convert(IntValue(-3, ct.INT), ct.LONG, OPTIONS)
        assert value.value == -3 and value.type == ct.LONG

    def test_narrowing_to_unsigned_wraps(self):
        value = convert(IntValue(300, ct.INT), ct.UCHAR, OPTIONS)
        assert value.value == 44

    def test_narrowing_to_signed_is_implementation_defined_not_ub(self):
        value = convert(IntValue(200, ct.INT), ct.SCHAR, OPTIONS)
        assert value.value == 200 - 256

    def test_conversion_to_bool_is_zero_or_one(self):
        assert convert(IntValue(42, ct.INT), ct.BOOL, OPTIONS).value == 1
        assert convert(IntValue(0, ct.INT), ct.BOOL, OPTIONS).value == 0

    def test_negative_to_unsigned_wraps(self):
        value = convert(IntValue(-1, ct.INT), ct.UINT, OPTIONS)
        assert value.value == 2**32 - 1


class TestFloatConversions:
    def test_int_to_float(self):
        value = convert(IntValue(3, ct.INT), ct.DOUBLE, OPTIONS)
        assert isinstance(value, FloatValue) and value.value == 3.0

    def test_float_to_int_truncates(self):
        value = convert(FloatValue(3.9, ct.DOUBLE), ct.INT, OPTIONS)
        assert value.value == 3

    def test_float_to_int_out_of_range_is_undefined(self):
        with pytest.raises(UndefinedBehaviorError) as err:
            convert(FloatValue(1e30, ct.DOUBLE), ct.INT, OPTIONS)
        assert err.value.kind is UBKind.CONVERSION_OVERFLOW

    def test_nan_to_int_is_undefined(self):
        with pytest.raises(UndefinedBehaviorError):
            convert(FloatValue(float("nan"), ct.DOUBLE), ct.INT, OPTIONS)

    def test_out_of_range_allowed_when_arithmetic_checks_disabled(self):
        relaxed = CheckerOptions(check_arithmetic=False)
        value = convert(FloatValue(1e30, ct.DOUBLE), ct.INT, relaxed)
        assert isinstance(value, IntValue)

    def test_double_to_float_narrows(self):
        value = convert(FloatValue(1.0e40, ct.DOUBLE), ct.FLOAT, OPTIONS)
        assert isinstance(value, FloatValue)
        assert value.value == float("inf")


class TestPointerConversions:
    def test_pointer_type_change(self):
        pointer = PointerValue(base=3, offset=0, type=ct.PointerType(pointee=ct.INT))
        converted = convert(pointer, ct.CHAR_PTR, OPTIONS, explicit=True)
        assert isinstance(converted, PointerValue)
        assert converted.base == 3
        assert converted.type == ct.CHAR_PTR

    def test_zero_integer_to_pointer_is_null(self):
        converted = convert(IntValue(0, ct.INT), ct.VOID_PTR, OPTIONS, explicit=True)
        assert isinstance(converted, PointerValue) and converted.is_null

    def test_pointer_to_integer_and_back_preserves_provenance(self):
        registry = {}
        pointer = PointerValue(base=9, offset=4, type=ct.PointerType(pointee=ct.INT))
        as_int = pointer_to_integer(pointer, ct.ULONG, ct.LP64, registry)
        back = integer_to_pointer(as_int.value, ct.PointerType(pointee=ct.INT), registry)
        assert back.base == 9 and back.offset == 4

    def test_arbitrary_integer_to_pointer_is_invalid_provenance(self):
        converted = integer_to_pointer(0xDEAD, ct.PointerType(pointee=ct.INT), {})
        assert converted.base is not None and converted.base < 0

    def test_pointer_to_bool(self):
        pointer = PointerValue(base=1, offset=0, type=ct.VOID_PTR)
        assert convert(pointer, ct.BOOL, OPTIONS).value == 1
        assert convert(PointerValue(base=None, offset=0), ct.BOOL, OPTIONS).value == 0


class TestSpecialValues:
    def test_void_value_use_is_undefined(self):
        with pytest.raises(UndefinedBehaviorError) as err:
            convert(VoidValue(), ct.INT, OPTIONS)
        assert err.value.kind is UBKind.VOID_VALUE_USED

    def test_conversion_to_void_discards(self):
        assert isinstance(convert(IntValue(1, ct.INT), ct.VOID, OPTIONS), VoidValue)

    def test_indeterminate_stays_indeterminate(self):
        value = IndeterminateValue(type=ct.INT, data=())
        converted = convert(value, ct.LONG, OPTIONS)
        assert isinstance(converted, IndeterminateValue)
        assert converted.type == ct.LONG

    def test_to_boolean_on_scalars(self):
        assert to_boolean(IntValue(2, ct.INT), OPTIONS) is True
        assert to_boolean(IntValue(0, ct.INT), OPTIONS) is False
        assert to_boolean(FloatValue(0.5, ct.DOUBLE), OPTIONS) is True
        assert to_boolean(PointerValue(base=None, offset=0), OPTIONS) is False

    def test_to_boolean_on_indeterminate_is_undefined(self):
        with pytest.raises(UndefinedBehaviorError):
            to_boolean(IndeterminateValue(type=ct.INT, data=()), OPTIONS)

    def test_to_boolean_on_void_is_undefined(self):
        with pytest.raises(UndefinedBehaviorError):
            to_boolean(VoidValue(), OPTIONS)
