"""The sparse byte store and the aggregate-copy provenance checks.

Objects at or above ``SPARSE_OBJECT_THRESHOLD`` get an overlay-dict byte
store (``SparseBytes``) instead of a materialized list, which is what lets
``static char vast[<huge>]`` exist without allocating petabytes — the
substrate for the pointer-difference-overflow slice.  Struct reads carry
``source_base``/``source_offset`` provenance so inexactly-overlapping
aggregate assignment (§6.5.16.1:3) is detectable on every engine.
"""

import pytest

from repro.core.config import CheckerOptions
from repro.core.kcc import check_program
from repro.core.memory import SPARSE_OBJECT_THRESHOLD, SparseBytes
from repro.core.values import ConcreteByte, UnknownByte
from repro.errors import OutcomeKind, UBKind


def test_sparse_bytes_list_protocol():
    store = SparseBytes(100, UnknownByte.fresh())
    assert len(store) == 100
    assert isinstance(store[0], UnknownByte)
    store[3] = ConcreteByte(7)
    assert store[3] == ConcreteByte(7)
    assert isinstance(store[4], UnknownByte)
    with pytest.raises(IndexError):
        store[100]
    with pytest.raises(IndexError):
        store[-101]
    assert store[-97] == ConcreteByte(7)  # negative indexing reaches overlay


def test_sparse_bytes_fill_and_int_io():
    store = SparseBytes(64, UnknownByte.fresh())
    store.fill(ConcreteByte(0))
    assert store.read_int(0, 8, False) == 0
    store.write_int(16, 4, 0xDEAD)
    assert store.read_int(16, 4, False) == 0xDEAD
    # Unwritten-but-filled regions still read as concrete zero.
    assert store.read_int(32, 4, True) == 0
    # Unfilled unknown bytes decode to None, never to a fabricated value.
    fresh = SparseBytes(8, UnknownByte.fresh())
    assert fresh.read_int(0, 4, False) is None


def test_huge_static_object_stays_sparse():
    # A byte store this large must never materialize; the program below
    # would otherwise exhaust memory long before producing a verdict.
    assert SPARSE_OBJECT_THRESHOLD <= 1 << 32
    report = check_program(
        "int main(void) {\n"
        "    static char vast[9223372036854775812];\n"
        "    char *a = vast;\n"
        "    char *b = vast + 9223372036854775810;\n"
        "    long d = b - a;\n"
        "    d = d;\n"
        "    return 0;\n"
        "}\n"
    )
    assert report.outcome.flagged
    assert UBKind.SIGNED_OVERFLOW in report.outcome.ub_kinds


def test_overlapping_struct_assignment_is_flagged():
    source = (
        "int main(void) {\n"
        "    struct pair { int a; int b; };\n"
        "    struct pair arr[3];\n"
        "    arr[0].a = 1;\n"
        "    arr[0].b = 2;\n"
        "    arr[1].a = 3;\n"
        "    arr[1].b = 4;\n"
        "    struct pair *src = (struct pair *)((char *)arr + 4);\n"
        "    arr[0] = *src;\n"
        "    return 0;\n"
        "}\n"
    )
    report = check_program(source)
    assert UBKind.OVERLAPPING_COPY in report.outcome.ub_kinds
    # The check belongs to the memory family: ablating it runs to completion.
    ablated = check_program(source, CheckerOptions(check_memory=False))
    assert ablated.outcome.kind is OutcomeKind.DEFINED


def test_exactly_aliasing_struct_assignment_is_fine():
    # Same object, same offset — §6.5.16.1:3 permits exact overlap.
    report = check_program(
        "int main(void) {\n"
        "    struct pair { int a; int b; };\n"
        "    struct pair p;\n"
        "    p.a = 1;\n"
        "    p.b = 2;\n"
        "    struct pair *q = &p;\n"
        "    p = *q;\n"
        "    return p.a - 1;\n"
        "}\n"
    )
    assert report.outcome.kind is OutcomeKind.DEFINED


def test_disjoint_struct_assignment_is_fine():
    report = check_program(
        "int main(void) {\n"
        "    struct pair { int a; int b; };\n"
        "    struct pair arr[2];\n"
        "    arr[1].a = 3;\n"
        "    arr[1].b = 4;\n"
        "    arr[0] = arr[1];\n"
        "    return arr[0].a - 3;\n"
        "}\n"
    )
    assert report.outcome.kind is OutcomeKind.DEFINED


def test_compound_literal_lifetime_ends_with_scope():
    report = check_program(
        "int main(void) {\n"
        "    int *p;\n"
        "    if (1) { p = &(int){21}; }\n"
        "    int x = *p;\n"
        "    x = x;\n"
        "    return 0;\n"
        "}\n"
    )
    assert UBKind.DANGLING_DEREFERENCE in report.outcome.ub_kinds


def test_compound_literal_value_in_scope_is_defined():
    report = check_program(
        "int main(void) {\n"
        "    int v = (int){ 21 };\n"
        "    int *p = &(int){ 2 };\n"
        "    return v / *p - 10;\n"
        "}\n"
    )
    assert report.outcome.kind is OutcomeKind.DEFINED
    assert report.outcome.exit_code == 0
