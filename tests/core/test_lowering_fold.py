"""Constant folding in the lowering pass — including UB-on-fold.

Folding evaluates constant subexpressions once at compile time, but it uses
the *same* arithmetic rules as the runtime, so a constant expression that is
undefined (``INT_MAX + 1``, ``1/0``, an out-of-range shift) must still be
reported — via the same catalogued error, at the same line — if and only if
execution actually reaches it.
"""

import pytest

from repro.cfront.parser import parse
from repro.core.config import CheckerOptions
from repro.core.kcc import KccTool
from repro.core.lowering import LoweringContext, _FoldUB, _try_fold
from repro.core.values import IntValue
from repro.errors import OutcomeKind, UBKind

INT_MAX = 2147483647  # LP64 profile: 4-byte int

FAST = KccTool(CheckerOptions())
LEGACY = KccTool(CheckerOptions(enable_lowering=False))


def first_expression(source: str):
    """The expression of the first ``return`` in ``main``."""
    unit = parse(source)
    main = unit.functions()["main"]
    for item in main.body.items:
        if hasattr(item, "value") and item.value is not None:
            return item.value
    raise AssertionError("no return expression found")


class TestFoldValues:
    def setup_method(self):
        self.L = LoweringContext(CheckerOptions())

    def fold(self, c_expr: str):
        return _try_fold(first_expression(
            f"int main(void){{ return {c_expr}; }}"), self.L)

    def test_folds_arithmetic(self):
        value = self.fold("2 + 3 * 4")
        assert isinstance(value, IntValue) and value.value == 14

    def test_folds_bitwise_and_shifts(self):
        assert self.fold("(1 << 3) | 5").value == 13
        assert self.fold("0xFF & 0x0F").value == 15
        assert self.fold("256 >> 4").value == 16

    def test_folds_comparisons_and_negation(self):
        assert self.fold("3 < 4").value == 1
        assert self.fold("-(10)").value == -10
        assert self.fold("!7").value == 0

    def test_folds_sizeof_type(self):
        assert self.fold("(int)sizeof(long)").value == 8  # LP64

    def test_does_not_fold_identifiers(self):
        expr = first_expression("int main(void){ int x = 1; return x + 1; }")
        assert _try_fold(expr, self.L) is None

    def test_constant_overflow_raises_fold_ub(self):
        with pytest.raises(_FoldUB) as excinfo:
            self.fold(f"{INT_MAX} + 1")
        assert excinfo.value.kind is UBKind.SIGNED_OVERFLOW

    def test_constant_division_by_zero_raises_fold_ub(self):
        with pytest.raises(_FoldUB) as excinfo:
            self.fold("1 / 0")
        assert excinfo.value.kind is UBKind.DIVISION_BY_ZERO

    def test_fold_respects_disabled_arithmetic_checks(self):
        relaxed = LoweringContext(CheckerOptions().without(check_arithmetic=False))
        expr = first_expression(f"int main(void){{ return {INT_MAX} + 1; }}")
        value = _try_fold(expr, relaxed)
        assert isinstance(value, IntValue)
        assert value.value == -(INT_MAX + 1)  # wraps instead of raising


class TestFoldedPrograms:
    """End-to-end: folded UB fires identically on both engines.

    The static checker flags most constant-expression UB at translation time
    already; these tests turn it off (``run_static_checks=False``) so that
    the *dynamic* stage — where the fold closures live — must do the
    reporting on its own.
    """

    @pytest.mark.parametrize("expression,kind", [
        (f"{INT_MAX} + 1", UBKind.SIGNED_OVERFLOW),
        ("1 / 0", UBKind.DIVISION_BY_ZERO),
        ("5 % 0", UBKind.DIVISION_BY_ZERO),
        ("1 << 40", UBKind.SHIFT_TOO_FAR),
        (f"(-{INT_MAX} - 1) / (-1)", UBKind.SIGNED_OVERFLOW),
    ])
    def test_reached_constant_ub_is_reported(self, expression, kind):
        source = f"int main(void){{ return {expression}; }}"
        for lowering in (True, False):
            tool = KccTool(CheckerOptions(enable_lowering=lowering),
                           run_static_checks=False)
            report = tool.check(source)
            assert report.outcome.kind is OutcomeKind.UNDEFINED, tool.options
            assert report.outcome.error.kind is kind

    def test_unreached_constant_ub_is_not_reported(self):
        # A constant-expression UB in dead code must stay silent: folding may
        # detect it at compile time but may only report it when reached.
        source = "int main(void){ if (0) { return 1 / 0; } return 7; }"
        for lowering in (True, False):
            tool = KccTool(CheckerOptions(enable_lowering=lowering),
                           run_static_checks=False)
            report = tool.check(source)
            assert report.outcome.kind is OutcomeKind.DEFINED
            assert report.outcome.exit_code == 7

    def test_folded_result_matches_legacy(self):
        source = "int main(void){ return (2 + 3 * 4) - (1 << 2); }"
        fast = FAST.check(source)
        legacy = LEGACY.check(source)
        assert fast.outcome.exit_code == legacy.outcome.exit_code == 10

    def test_folded_ub_line_and_function_match_legacy(self):
        source = (
            "int f(void){ return 1 / 0; }\n"
            "int main(void){ return f(); }\n")
        fast = KccTool(CheckerOptions(), run_static_checks=False).check(source)
        legacy = KccTool(CheckerOptions(enable_lowering=False),
                         run_static_checks=False).check(source)
        assert fast.outcome.error.line == legacy.outcome.error.line
        assert fast.outcome.error.function == legacy.outcome.error.function == "f"
        assert fast.outcome.error.message == legacy.outcome.error.message

    def test_overflow_wraps_when_arithmetic_checks_disabled(self):
        source = f"int main(void){{ return ({INT_MAX} + 1) == (-{INT_MAX} - 1); }}"
        relaxed = CheckerOptions().without(check_arithmetic=False)
        for options in (relaxed, relaxed.without(enable_lowering=False)):
            report = KccTool(options, run_static_checks=False).check(source)
            assert report.outcome.kind is OutcomeKind.DEFINED
            assert report.outcome.exit_code == 1

    def test_search_mode_uses_fold_free_lowering(self):
        tool = KccTool(CheckerOptions(), search_evaluation_order=True)
        compiled = tool.compile_unit(
            "int main(void){ int x = 0; return (x = 1) + (x = 2); }")
        report = tool.run_unit(compiled)
        assert report.outcome.kind is OutcomeKind.UNDEFINED
        # The search engine observes per-operand footprints through the
        # event stream, so it runs on the instrumented (and therefore
        # fold-free) lowering: scripted schedules meet exactly the legacy
        # walker's decision points.
        assert (CheckerOptions(), False, True) in compiled._lowered
        assert (CheckerOptions(), True, False) not in compiled._lowered  # no folds
