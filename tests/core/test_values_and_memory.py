"""Unit tests for the symbolic value and memory models (§4.3 of the paper)."""

import pytest

from repro.cfront import ctypes as ct
from repro.core.config import CheckerOptions
from repro.core.memory import ByteLocation, Memory, StorageKind
from repro.core.values import (
    ConcreteByte,
    FloatValue,
    IndeterminateValue,
    PointerByte,
    PointerValue,
    StructValue,
    UnknownByte,
    decode_value,
    encode_int,
    decode_int,
    encode_pointer,
    decode_pointer,
    encode_value,
    unknown_bytes,
)
from repro.errors import UBKind, UndefinedBehaviorError


OPTIONS = CheckerOptions()


class TestIntegerEncoding:
    def test_roundtrip_small_positive(self):
        data = encode_int(42, 4, signed=True)
        assert decode_int(data, signed=True) == 42

    def test_roundtrip_negative(self):
        data = encode_int(-1, 4, signed=True)
        assert all(b.value == 0xFF for b in data)
        assert decode_int(data, signed=True) == -1

    def test_little_endian_layout(self):
        data = encode_int(0x01020304, 4, signed=False)
        assert [b.value for b in data] == [0x04, 0x03, 0x02, 0x01]

    def test_unsigned_decode(self):
        data = encode_int(0xFF, 1, signed=False)
        assert decode_int(data, signed=False) == 255
        assert decode_int(data, signed=True) == -1

    def test_decode_with_unknown_byte_returns_none(self):
        data = encode_int(5, 4, signed=True)
        data[2] = UnknownByte.fresh()
        assert decode_int(data, signed=True) is None


class TestPointerEncoding:
    def test_pointer_splits_into_symbolic_bytes(self):
        pointer = PointerValue(base=7, offset=4, type=ct.PointerType(pointee=ct.INT))
        data = encode_pointer(pointer, 8)
        assert len(data) == 8
        assert all(isinstance(b, PointerByte) for b in data)
        assert [b.index for b in data] == list(range(8))

    def test_pointer_reconstructs_from_all_bytes(self):
        pointer = PointerValue(base=7, offset=4, type=ct.PointerType(pointee=ct.INT))
        data = encode_pointer(pointer, 8)
        decoded = decode_pointer(data, ct.PointerType(pointee=ct.INT))
        assert decoded is not None
        assert decoded.base == 7 and decoded.offset == 4

    def test_partial_pointer_bytes_do_not_reconstruct(self):
        p = PointerValue(base=7, offset=0, type=ct.PointerType(pointee=ct.INT))
        q = PointerValue(base=9, offset=0, type=ct.PointerType(pointee=ct.INT))
        data = encode_pointer(p, 8)
        data[3:] = encode_pointer(q, 8)[3:]
        assert decode_pointer(data, ct.PointerType(pointee=ct.INT)) is None

    def test_null_pointer_encodes_as_zero_bytes(self):
        data = encode_pointer(PointerValue(base=None, offset=0), 8)
        assert all(isinstance(b, ConcreteByte) and b.value == 0 for b in data)
        decoded = decode_pointer(data, ct.PointerType(pointee=ct.INT))
        assert decoded is not None and decoded.is_null

    def test_decode_value_of_uninitialized_region_is_indeterminate(self):
        value = decode_value(unknown_bytes(4), ct.INT, ct.LP64)
        assert isinstance(value, IndeterminateValue)

    def test_encode_value_struct_pads_with_unknown(self):
        struct_type = ct.StructType(tag="s", fields=(ct.StructField("a", ct.INT),
                                                     ct.StructField("b", ct.INT)))
        value = StructValue(data=tuple(encode_int(1, 4, True)), type=struct_type)
        data = encode_value(value, struct_type, ct.LP64)
        assert len(data) == 8

    def test_float_roundtrip(self):
        data = encode_value(FloatValue(2.5, ct.DOUBLE), ct.DOUBLE, ct.LP64)
        value = decode_value(data, ct.DOUBLE, ct.LP64)
        assert isinstance(value, FloatValue)
        assert value.value == 2.5


class TestMemoryObjects:
    def make_memory(self, options=OPTIONS):
        return Memory(options)

    def test_allocation_returns_distinct_bases(self):
        memory = self.make_memory()
        first = memory.allocate(4, StorageKind.AUTO, name="a")
        second = memory.allocate(4, StorageKind.AUTO, name="b")
        assert first.base != second.base

    def test_new_object_is_uninitialized(self):
        memory = self.make_memory()
        obj = memory.allocate(4, StorageKind.AUTO, name="a")
        assert all(isinstance(b, UnknownByte) for b in obj.data)

    def test_write_then_read(self):
        memory = self.make_memory()
        obj = memory.allocate(4, StorageKind.AUTO, name="a", declared_type=ct.INT)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.INT))
        memory.write_bytes(pointer, encode_int(77, 4, True), lvalue_type=ct.INT)
        memory.sequence_point()
        data = memory.read_bytes(pointer, 4, lvalue_type=ct.INT)
        assert decode_int(data, True) == 77

    def test_out_of_bounds_read_raises(self):
        memory = self.make_memory()
        obj = memory.allocate(4, StorageKind.AUTO, name="a")
        pointer = PointerValue(base=obj.base, offset=2, type=ct.PointerType(pointee=ct.INT))
        with pytest.raises(UndefinedBehaviorError) as err:
            memory.read_bytes(pointer, 4)
        assert err.value.kind in (UBKind.OUT_OF_BOUNDS, UBKind.BUFFER_OVERFLOW)

    def test_null_dereference_raises(self):
        memory = self.make_memory()
        with pytest.raises(UndefinedBehaviorError) as err:
            memory.read_bytes(PointerValue(base=None, offset=0), 1)
        assert err.value.kind is UBKind.NULL_DEREFERENCE

    def test_read_of_dead_object_raises(self):
        memory = self.make_memory()
        obj = memory.allocate(4, StorageKind.AUTO, name="a")
        memory.kill(obj.base)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.INT))
        with pytest.raises(UndefinedBehaviorError) as err:
            memory.read_bytes(pointer, 4)
        assert err.value.kind is UBKind.DANGLING_DEREFERENCE

    def test_kill_frame_ends_only_that_frames_objects(self):
        memory = self.make_memory()
        kept = memory.allocate(4, StorageKind.AUTO, name="kept", frame=1)
        dropped = memory.allocate(4, StorageKind.AUTO, name="dropped", frame=2)
        memory.kill_frame(2)
        assert memory.objects[kept.base].alive
        assert not memory.objects[dropped.base].alive

    def test_free_heap_object(self):
        memory = self.make_memory()
        obj = memory.allocate(16, StorageKind.HEAP)
        pointer = PointerValue(base=obj.base, offset=0)
        memory.free(pointer)
        assert obj.freed and not obj.alive

    def test_free_null_is_noop(self):
        memory = self.make_memory()
        memory.free(PointerValue(base=None, offset=0))

    def test_double_free_raises(self):
        memory = self.make_memory()
        obj = memory.allocate(16, StorageKind.HEAP)
        pointer = PointerValue(base=obj.base, offset=0)
        memory.free(pointer)
        with pytest.raises(UndefinedBehaviorError) as err:
            memory.free(pointer)
        assert err.value.kind is UBKind.DOUBLE_FREE

    def test_free_of_non_heap_raises(self):
        memory = self.make_memory()
        obj = memory.allocate(4, StorageKind.AUTO, name="local")
        with pytest.raises(UndefinedBehaviorError) as err:
            memory.free(PointerValue(base=obj.base, offset=0))
        assert err.value.kind is UBKind.BAD_FREE

    def test_free_of_interior_pointer_raises(self):
        memory = self.make_memory()
        obj = memory.allocate(16, StorageKind.HEAP)
        with pytest.raises(UndefinedBehaviorError) as err:
            memory.free(PointerValue(base=obj.base, offset=4))
        assert err.value.kind is UBKind.BAD_FREE

    def test_use_after_free_raises(self):
        memory = self.make_memory()
        obj = memory.allocate(16, StorageKind.HEAP)
        pointer = PointerValue(base=obj.base, offset=0)
        memory.free(pointer)
        with pytest.raises(UndefinedBehaviorError) as err:
            memory.read_bytes(pointer, 1)
        assert err.value.kind is UBKind.USE_AFTER_FREE


class TestSequencingCells:
    def test_write_adds_to_locs_written(self):
        memory = Memory(OPTIONS)
        obj = memory.allocate(4, StorageKind.AUTO, declared_type=ct.INT)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.INT))
        memory.write_bytes(pointer, encode_int(1, 4, True), lvalue_type=ct.INT)
        assert ByteLocation(obj.base, 0) in memory.locs_written

    def test_second_unsequenced_write_raises(self):
        memory = Memory(OPTIONS)
        obj = memory.allocate(4, StorageKind.AUTO, declared_type=ct.INT)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.INT))
        memory.write_bytes(pointer, encode_int(1, 4, True), lvalue_type=ct.INT)
        with pytest.raises(UndefinedBehaviorError) as err:
            memory.write_bytes(pointer, encode_int(2, 4, True), lvalue_type=ct.INT)
        assert err.value.kind is UBKind.UNSEQUENCED_SIDE_EFFECT

    def test_sequence_point_clears_the_set(self):
        memory = Memory(OPTIONS)
        obj = memory.allocate(4, StorageKind.AUTO, declared_type=ct.INT)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.INT))
        memory.write_bytes(pointer, encode_int(1, 4, True), lvalue_type=ct.INT)
        memory.sequence_point()
        memory.write_bytes(pointer, encode_int(2, 4, True), lvalue_type=ct.INT)
        assert decode_int(memory.read_bytes(pointer, 4, track_sequencing=False), True) == 2

    def test_read_after_unsequenced_write_raises(self):
        memory = Memory(OPTIONS)
        obj = memory.allocate(4, StorageKind.AUTO, declared_type=ct.INT)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.INT))
        memory.write_bytes(pointer, encode_int(1, 4, True), lvalue_type=ct.INT)
        with pytest.raises(UndefinedBehaviorError):
            memory.read_bytes(pointer, 4, lvalue_type=ct.INT)

    def test_sequencing_disabled_by_options(self):
        memory = Memory(CheckerOptions(check_sequencing=False))
        obj = memory.allocate(4, StorageKind.AUTO, declared_type=ct.INT)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.INT))
        memory.write_bytes(pointer, encode_int(1, 4, True), lvalue_type=ct.INT)
        memory.write_bytes(pointer, encode_int(2, 4, True), lvalue_type=ct.INT)


class TestConstCell:
    def test_const_object_registered_not_writable(self):
        memory = Memory(OPTIONS)
        obj = memory.allocate(4, StorageKind.STATIC, name="limit", declared_type=ct.INT,
                              is_const=True)
        assert obj.base in memory.not_writable

    def test_write_to_const_object_raises(self):
        memory = Memory(OPTIONS)
        obj = memory.allocate(4, StorageKind.STATIC, name="limit", declared_type=ct.INT,
                              is_const=True)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.INT))
        with pytest.raises(UndefinedBehaviorError) as err:
            memory.write_bytes(pointer, encode_int(1, 4, True), lvalue_type=ct.INT)
        assert err.value.kind is UBKind.CONST_VIOLATION

    def test_write_to_string_literal_raises_its_own_kind(self):
        memory = Memory(OPTIONS)
        obj = memory.allocate(6, StorageKind.STRING_LITERAL, name='"hello"')
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.CHAR))
        with pytest.raises(UndefinedBehaviorError) as err:
            memory.write_bytes(pointer, [ConcreteByte(72)], lvalue_type=ct.CHAR)
        assert err.value.kind is UBKind.MODIFY_STRING_LITERAL

    def test_const_check_disabled_by_options(self):
        memory = Memory(CheckerOptions(check_const=False))
        obj = memory.allocate(4, StorageKind.STATIC, name="limit", declared_type=ct.INT,
                              is_const=True)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.INT))
        memory.write_bytes(pointer, encode_int(1, 4, True), lvalue_type=ct.INT)


class TestEffectiveTypes:
    def test_heap_type_punning_detected_on_read(self):
        memory = Memory(OPTIONS)
        obj = memory.allocate(8, StorageKind.HEAP)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.LONG))
        memory.write_bytes(pointer, encode_int(1, 8, True), lvalue_type=ct.LONG)
        memory.sequence_point()
        with pytest.raises(UndefinedBehaviorError) as err:
            memory.read_bytes(pointer, 8, lvalue_type=ct.DOUBLE)
        assert err.value.kind is UBKind.EFFECTIVE_TYPE_VIOLATION

    def test_character_access_always_allowed(self):
        memory = Memory(OPTIONS)
        obj = memory.allocate(8, StorageKind.HEAP)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.LONG))
        memory.write_bytes(pointer, encode_int(1, 8, True), lvalue_type=ct.LONG)
        memory.sequence_point()
        memory.read_bytes(pointer, 1, lvalue_type=ct.UCHAR)

    def test_declared_object_incompatible_access_raises(self):
        memory = Memory(OPTIONS)
        obj = memory.allocate(4, StorageKind.AUTO, name="x", declared_type=ct.INT)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ct.SHORT))
        memory.write_bytes(pointer, encode_int(1, 2, True), lvalue_type=ct.INT,
                           track_sequencing=False)
        memory.sequence_point()
        with pytest.raises(UndefinedBehaviorError):
            memory.read_bytes(pointer, 2, lvalue_type=ct.SHORT)
