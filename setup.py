"""Setup shim.

The environment has no `wheel` package and no network access, so PEP 660
editable installs (which need bdist_wheel) are unavailable.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
legacy ``setup.py develop`` path.  Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
