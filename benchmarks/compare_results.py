"""Benchmark regression gate: compare fresh results against baselines.

Compares the machine-independent *ratio* metrics of the committed
``benchmarks/results/*.json`` baselines against a freshly generated set:

* ``interp_speed.json`` — per-program ``speedup`` (lowered vs legacy walker);
* ``search_speed.json`` — per-program ``reduction_factor`` (seed DFS runs
  from ``main`` vs the search engine's).

Absolute throughput numbers (runs/sec) vary with the host and are reported
but never gated; a ratio regressing by more than ``--max-regression``
(default 15%) fails the gate.  Usage::

    python benchmarks/compare_results.py \\
        --baseline /tmp/baseline-results --fresh benchmarks/results

Exit status: 0 when every gated metric holds (or has no baseline yet),
1 on a regression, 2 on unreadable inputs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: file name -> ratio metrics gated within each top-level program entry.
GATED_METRICS = {
    "interp_speed.json": ("speedup",),
    "search_speed.json": ("reduction_factor",),
}

#: file name -> ratio metrics *reported* but never gated.  The fuzz
#: campaign's pool speedup depends on host core count and oracle mix; it is
#: tracked from day one so a real scaling regression is visible in the CI
#: logs, without letting runner topology fail the build.
INFORMATIONAL_METRICS = {
    "fuzz_speed.json": ("parallel_speedup",),
}


def load(path: pathlib.Path) -> dict | None:
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        print(f"compare_results: cannot read {path}: {error}", file=sys.stderr)
        raise SystemExit(2)


def compare_file(
    name: str,
    baseline: dict | None,
    fresh: dict | None,
    max_regression: float,
) -> list[str]:
    failures: list[str] = []
    if fresh is None:
        failures.append(f"{name}: fresh results missing (benchmark did not run)")
        return failures
    if baseline is None:
        print(f"{name}: no committed baseline yet; gate passes vacuously")
        return failures
    for program in sorted(set(baseline) - set(fresh)):
        # A silently vanished program would disable its gate while CI
        # stays green; renames must update the committed baseline too.
        failures.append(f"{name}: baseline program {program!r} missing from fresh run")
    for program, fresh_entry in sorted(fresh.items()):
        base_entry = baseline.get(program)
        if not isinstance(base_entry, dict) or not isinstance(fresh_entry, dict):
            continue
        for metric in GATED_METRICS[name]:
            base_value = base_entry.get(metric)
            fresh_value = fresh_entry.get(metric)
            if not isinstance(base_value, (int, float)):
                continue
            if not isinstance(fresh_value, (int, float)):
                failures.append(f"{name}: {program}.{metric} missing in fresh run")
                continue
            floor = base_value * (1.0 - max_regression)
            status = "OK " if fresh_value >= floor else "REG"
            print(
                f"{status} {name}: {program}.{metric} "
                f"baseline={base_value:.3f} fresh={fresh_value:.3f} "
                f"floor={floor:.3f}"
            )
            if fresh_value < floor:
                failures.append(
                    f"{name}: {program}.{metric} regressed "
                    f"{base_value:.3f} -> {fresh_value:.3f} "
                    f"(> {max_regression:.0%} drop)"
                )
    return failures


def report_informational(
    name: str,
    baseline: dict | None,
    fresh: dict | None,
) -> None:
    """Print (never gate) the informational ratio rows."""
    if fresh is None:
        print(f"INFO {name}: no fresh results (benchmark did not run)")
        return
    for program, fresh_entry in sorted(fresh.items()):
        if not isinstance(fresh_entry, dict):
            continue
        base_entry = (baseline or {}).get(program)
        for metric in INFORMATIONAL_METRICS[name]:
            fresh_value = fresh_entry.get(metric)
            if not isinstance(fresh_value, (int, float)):
                continue
            base_value = (base_entry or {}).get(metric)
            base_text = (
                f"baseline={base_value:.3f} "
                if isinstance(base_value, (int, float)) else ""
            )
            print(
                f"INFO {name}: {program}.{metric} "
                f"{base_text}fresh={fresh_value:.3f} (informational, not gated)"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        required=True,
        type=pathlib.Path,
        help="directory with the committed baseline result JSONs",
    )
    parser.add_argument(
        "--fresh",
        required=True,
        type=pathlib.Path,
        help="directory with freshly generated result JSONs",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="largest tolerated relative drop of a gated ratio (default 0.15)",
    )
    arguments = parser.parse_args(argv)
    failures: list[str] = []
    for name in GATED_METRICS:
        failures += compare_file(
            name,
            load(arguments.baseline / name),
            load(arguments.fresh / name),
            arguments.max_regression,
        )
    for name in INFORMATIONAL_METRICS:
        report_informational(
            name,
            load(arguments.baseline / name),
            load(arguments.fresh / name),
        )
    if failures:
        print("\nBenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nBenchmark regression gate passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
