"""Benchmark regression gate: compare fresh results against baselines.

Compares the machine-independent *ratio* metrics of the committed
``benchmarks/results/*.json`` baselines against a freshly generated set:

* ``interp_speed.json`` — per-program ``speedup`` (lowered closures vs
  legacy walker) and ``compiled_speedup`` (register-bytecode VM vs lowered
  closures; ~1.0 on programs outside the bytecode's native subset, which
  run on the closure fallback);
* ``search_speed.json`` — per-program ``reduction_factor`` (seed DFS runs
  from ``main`` vs the search engine's);
* ``fuzz_speed.json`` / ``pool_speed.json`` — ``parallel_speedup`` of the
  warm worker pool at ``jobs=N``.  Unlike the pure ratio metrics above,
  these are only meaningful when the host actually has ``N`` CPUs, so each
  entry records ``host_cpus`` and ``jobs``: on an undersized host the gate
  prints a SKIP with the reason and the row stays informational.  On a
  big-enough host an absolute floor (>= 3.0 at jobs=4) applies on top of
  the usual regression check.

Absolute throughput numbers (runs/sec) vary with the host and are reported
but never gated; a ratio regressing by more than ``--max-regression``
(default 15%) fails the gate.  Usage::

    python benchmarks/compare_results.py \\
        --baseline /tmp/baseline-results --fresh benchmarks/results

Exit status: 0 when every gated metric holds (or has no baseline yet),
1 on a regression, 2 on unreadable inputs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: file name -> ratio metrics gated within each top-level program entry.
GATED_METRICS = {
    "interp_speed.json": ("speedup", "compiled_speedup"),
    "search_speed.json": ("reduction_factor",),
    "fuzz_speed.json": ("parallel_speedup",),
    "pool_speed.json": ("parallel_speedup",),
}

#: metric -> absolute floor, applied in addition to the regression check.
#: ``parallel_speedup`` entries also carry ``host_cpus``/``jobs`` and are
#: skipped (with a printed reason) when the host has fewer CPUs than jobs:
#: a 4-worker pool on a 1-CPU runner cannot beat serial, and gating that
#: ratio would only measure runner topology.
ABSOLUTE_FLOORS = {
    "parallel_speedup": 3.0,
}

#: file name -> ratio metrics *reported* but never gated.  ``warm_speedup``
#: (warm batch vs cold spawn-paying batch) is always > 1 but its magnitude
#: tracks import cost, not checker performance, so it stays informational.
#: ``coverage_ratio`` (concrete-checker work one range proof replaces, see
#: ``test_bench_symbolic``) is dominated by the chosen range widths, so it
#: documents the trend; its >= 100x floor is gated inside the benchmark.
INFORMATIONAL_METRICS = {
    "pool_speed.json": ("warm_speedup",),
    "symbolic_speed.json": ("coverage_ratio",),
}


def parallelism_skip_reason(entry: dict) -> str | None:
    """Why ``entry``'s parallelism ratio cannot be gated (``None`` if it can)."""
    host_cpus = entry.get("host_cpus")
    jobs = entry.get("jobs")
    if not isinstance(host_cpus, int) or not isinstance(jobs, int):
        return "entry lacks host_cpus/jobs fields"
    if host_cpus < jobs:
        return f"host_cpus={host_cpus} < jobs={jobs}; ratio not meaningful"
    return None


def load(path: pathlib.Path) -> dict | None:
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        print(f"compare_results: cannot read {path}: {error}", file=sys.stderr)
        raise SystemExit(2)


def compare_file(
    name: str,
    baseline: dict | None,
    fresh: dict | None,
    max_regression: float,
) -> list[str]:
    failures: list[str] = []
    if fresh is None:
        failures.append(f"{name}: fresh results missing (benchmark did not run)")
        return failures
    if baseline is None:
        print(f"{name}: no committed baseline yet; only absolute floors apply")
        baseline = {}
    for program in sorted(set(baseline) - set(fresh)):
        # A silently vanished program would disable its gate while CI
        # stays green; renames must update the committed baseline too.
        failures.append(f"{name}: baseline program {program!r} missing from fresh run")
    for program, fresh_entry in sorted(fresh.items()):
        base_entry = baseline.get(program)
        if not isinstance(base_entry, dict):
            base_entry = {}
        if not isinstance(fresh_entry, dict):
            continue
        for metric in GATED_METRICS[name]:
            base_value = base_entry.get(metric)
            fresh_value = fresh_entry.get(metric)
            has_base = isinstance(base_value, (int, float))
            if not has_base and metric not in ABSOLUTE_FLOORS:
                continue
            if not isinstance(fresh_value, (int, float)):
                if has_base:
                    failures.append(f"{name}: {program}.{metric} missing in fresh run")
                continue
            if metric in ABSOLUTE_FLOORS:
                reason = parallelism_skip_reason(fresh_entry)
                if reason is not None:
                    print(
                        f"SKIP {name}: {program}.{metric} "
                        f"fresh={fresh_value:.3f} ({reason}; "
                        f"informational on this host)"
                    )
                    continue
            floor = None
            if has_base:
                if parallelism_skip_reason(base_entry) is None \
                        or metric not in ABSOLUTE_FLOORS:
                    floor = base_value * (1.0 - max_regression)
                else:
                    print(
                        f"NOTE {name}: {program}.{metric} baseline recorded "
                        f"on an undersized host; only the absolute floor "
                        f"applies"
                    )
            if metric in ABSOLUTE_FLOORS:
                absolute = ABSOLUTE_FLOORS[metric]
                floor = absolute if floor is None else max(floor, absolute)
            if floor is None:
                continue
            base_text = f"baseline={base_value:.3f} " if has_base else ""
            status = "OK " if fresh_value >= floor else "REG"
            print(
                f"{status} {name}: {program}.{metric} "
                f"{base_text}fresh={fresh_value:.3f} floor={floor:.3f}"
            )
            if fresh_value < floor:
                failures.append(
                    f"{name}: {program}.{metric} = {fresh_value:.3f} "
                    f"below floor {floor:.3f}"
                )
    return failures


def report_informational(
    name: str,
    baseline: dict | None,
    fresh: dict | None,
) -> None:
    """Print (never gate) the informational ratio rows."""
    if fresh is None:
        print(f"INFO {name}: no fresh results (benchmark did not run)")
        return
    for program, fresh_entry in sorted(fresh.items()):
        if not isinstance(fresh_entry, dict):
            continue
        base_entry = (baseline or {}).get(program)
        for metric in INFORMATIONAL_METRICS[name]:
            fresh_value = fresh_entry.get(metric)
            if not isinstance(fresh_value, (int, float)):
                continue
            base_value = (base_entry or {}).get(metric)
            base_text = (
                f"baseline={base_value:.3f} "
                if isinstance(base_value, (int, float)) else ""
            )
            print(
                f"INFO {name}: {program}.{metric} "
                f"{base_text}fresh={fresh_value:.3f} (informational, not gated)"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        required=True,
        type=pathlib.Path,
        help="directory with the committed baseline result JSONs",
    )
    parser.add_argument(
        "--fresh",
        required=True,
        type=pathlib.Path,
        help="directory with freshly generated result JSONs",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="largest tolerated relative drop of a gated ratio (default 0.15)",
    )
    arguments = parser.parse_args(argv)
    failures: list[str] = []
    for name in GATED_METRICS:
        failures += compare_file(
            name,
            load(arguments.baseline / name),
            load(arguments.fresh / name),
            arguments.max_regression,
        )
    for name in INFORMATIONAL_METRICS:
        report_informational(
            name,
            load(arguments.baseline / name),
            load(arguments.fresh / name),
        )
    if failures:
        print("\nBenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nBenchmark regression gate passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
