"""E2 — Figure 3: comparison of analysis tools on the undefinedness suite.

Figure 3 of the paper averages detection across undefined *behaviors* (each
behavior weighted equally) and splits the result into statically and
dynamically detectable behaviors.  The qualitative claims we check:

* kcc leads by a wide margin on both static and dynamic behaviors (it is the
  only tool that performs translation-time checking at all);
* Value Analysis is the strongest baseline on dynamic behaviors but still far
  behind kcc, because language-level undefinedness (sequencing, const,
  pointer provenance, effective types) has no arithmetic/memory signature;
* the narrow memory checkers (Valgrind, CheckPointer) trail on the broad
  suite even though they did well on their own classes in Figure 2;
* nobody flags the defined control programs.
"""

from repro.analyzers.base import KccAnalysisTool

from benchmarks.conftest import publish


def test_figure3_ubsuite_comparison(ubsuite_comparison, capsys, benchmark):
    # The tool runs happen once in the session fixture; the benchmarked step
    # is the per-behavior scoring and table rendering.
    table = benchmark(ubsuite_comparison.figure3_table)
    table = table + "\n\n" + ubsuite_comparison.runtime_table()
    publish("figure3_ubsuite.txt", table, capsys)

    scores = {score.tool: score for score in ubsuite_comparison.scores}
    kcc = scores["kcc"]
    value_analysis = scores["V. Analysis"]
    valgrind = scores["Valgrind"]
    checkpointer = scores["CheckPointer"]

    # kcc dominates on both columns.
    for other in (value_analysis, valgrind, checkpointer):
        assert kcc.per_behavior_rate("static") > other.per_behavior_rate("static")
        assert kcc.per_behavior_rate("dynamic") > other.per_behavior_rate("dynamic")

    # kcc's static coverage is substantial, the baselines' is marginal
    # (they are dynamic tools; the paper reports 0.0-2.4% for them).
    assert kcc.per_behavior_rate("static") >= 0.8
    for other in (value_analysis, valgrind, checkpointer):
        assert other.per_behavior_rate("static") <= 0.3

    # Value Analysis is the best baseline on dynamic behaviors, as in Figure 3.
    assert value_analysis.per_behavior_rate("dynamic") > valgrind.per_behavior_rate("dynamic")
    assert value_analysis.per_behavior_rate("dynamic") > checkpointer.per_behavior_rate("dynamic")

    # Control tests: no tool is allowed to cheat by flagging everything.
    for score in ubsuite_comparison.scores:
        assert score.false_positive_rate() == 0.0, score.tool


def test_suite_scale_is_comparable_to_the_paper(undefinedness_suite):
    # Paper: 178 tests over 70 behaviors, majority dynamic, all non-library
    # dynamic behaviors represented.
    assert undefinedness_suite.behavior_count() >= 60
    assert len(undefinedness_suite) >= 120
    assert len(undefinedness_suite.dynamic_behaviors()) > len(
        undefinedness_suite.static_behaviors())


def test_bench_kcc_on_undefinedness_suite(benchmark, undefinedness_suite):
    """pytest-benchmark target: kcc over a sample of the undefinedness suite."""
    kcc = KccAnalysisTool()
    sample = undefinedness_suite.cases[:16]

    def analyze_sample():
        return sum(1 for case in sample if kcc.analyze(case.source).flagged)

    flagged_count = benchmark(analyze_sample)
    expected = sum(1 for case in sample if case.is_bad)
    assert flagged_count >= expected - 2  # a couple of known-hard behaviors allowed
