"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module reproduces one table or figure of the paper.  The
rendered tables are written to ``benchmarks/results/`` and echoed to the
terminal, so a plain ``pytest benchmarks/ --benchmark-only`` run regenerates
every figure of the evaluation section.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analyzers.registry import default_tools
from repro.suites.harness import EvaluationHarness
from repro.suites.juliet import generate_juliet_suite
from repro.suites.ubsuite import generate_undefinedness_suite

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def publish(name: str, text: str, capsys) -> None:
    """Write a rendered table to the results directory and to the terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n", encoding="utf-8")
    with capsys.disabled():
        print()
        print(text)


@pytest.fixture(scope="session")
def juliet_suite():
    return generate_juliet_suite()


@pytest.fixture(scope="session")
def undefinedness_suite():
    return generate_undefinedness_suite()


@pytest.fixture(scope="session")
def tools():
    return default_tools()


@pytest.fixture(scope="session")
def juliet_comparison(juliet_suite, tools):
    return EvaluationHarness(tools).run_suite(juliet_suite)


@pytest.fixture(scope="session")
def ubsuite_comparison(undefinedness_suite, tools):
    return EvaluationHarness(tools).run_suite(undefinedness_suite)
