"""E8 — the 2,000-program resumable-campaign acceptance run.

The campaign subsystem's contract, held at the acceptance scale of E6's
fuzz campaign (fixed seed, 2,000 generated programs):

* an uninterrupted journaled run is the reference;
* the same campaign launched as a real ``kcc-check campaign run``
  subprocess and **SIGKILLed** mid-run must, after ``resume``, produce
  findings and per-family tables **byte-identical** to the reference with
  **zero** completed units re-executed (the journal's ``duplicate_done``
  counter and the executed/skipped split prove it);
* two independently-run half-campaigns (disjoint ``--units`` slices) must
  ``merge`` — in either input order — to the same canonical result;
* the per-family rates must match the committed
  ``results/campaign_baseline.json`` exactly (delta 0.0 per family).

Published as ``campaign_acceptance.txt``.
"""

import json
import os
import signal
import subprocess
import sys
import time

from repro.campaign.journal import load_journal
from repro.campaign.scheduler import (
    ScheduleConfig,
    merge_campaign_journals,
    run_campaign_spec,
    resume_campaign,
)
from repro.campaign.workunit import CampaignSpec
from repro.reporting import render_table

from benchmarks.conftest import RESULTS_DIR, publish

#: The acceptance-campaign shape: fixed seed, 2,000 mixed programs.  The
#: committed ``campaign_baseline.json`` was generated from exactly this
#: spec, so every family delta must be 0.0.
SEED = 20260729
COUNT = 2000
UNIT_SIZE = 100

BASELINE = RESULTS_DIR / "campaign_baseline.json"


def _done_units(journal) -> int:
    if not journal.exists():
        return 0
    return sum(
        1
        for line in journal.read_bytes().split(b"\n")
        if line.startswith(b'{"digest"') and b'"t":"done"' in line
    )


def _spawn(journal) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [env.get("PYTHONPATH"), "src"] if p
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run",
         "--journal", str(journal), "--kind", "fuzz",
         "--seed", str(SEED), "--count", str(COUNT),
         "--unit-size", str(UNIT_SIZE), "--quiet"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
    )


def test_campaign_acceptance(tmp_path, capsys):
    spec = CampaignSpec(seed=SEED, count=COUNT, unit_size=UNIT_SIZE,
                        inject="mixed")
    units_total = spec.units_estimate()

    # 1. The uninterrupted reference.
    reference = run_campaign_spec(spec, tmp_path / "reference.jsonl")
    canonical = reference.to_dict()
    assert canonical["cases"] == COUNT
    assert canonical["units_done"] == units_total

    # 2. SIGKILL a real subprocess campaign at ~half its units.
    killed = tmp_path / "killed.jsonl"
    child = _spawn(killed)
    try:
        deadline = time.monotonic() + 900
        while time.monotonic() < deadline:
            assert child.poll() is None, "campaign finished before the kill"
            if _done_units(killed) >= units_total // 2:
                break
            time.sleep(0.1)
        else:
            raise AssertionError("campaign never reached the kill point")
    finally:
        child.send_signal(signal.SIGKILL)
        child.wait()
    survived = _done_units(killed)
    assert 0 < survived < units_total

    # 3. Resume: byte-identical, zero completed units re-executed.
    resumed = resume_campaign(killed)
    assert resumed.complete
    assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
        canonical, sort_keys=True)
    state, _ = load_journal(killed)
    assert state.duplicate_done == 0, (
        f"{state.duplicate_done} completed unit(s) re-executed on resume")
    assert resumed.skipped == survived
    assert resumed.executed == units_total - survived

    # 4. Two independent half-campaigns merge to the same result, in
    #    either input order.
    half = units_total // 2
    a, b = tmp_path / "half-a.jsonl", tmp_path / "half-b.jsonl"
    run_campaign_spec(spec, a, ScheduleConfig(units_slice=(0, half)))
    run_campaign_spec(spec, b, ScheduleConfig(units_slice=(half, units_total)))
    merged_ab = merge_campaign_journals([a, b], tmp_path / "ab.jsonl")
    merged_ba = merge_campaign_journals([b, a], tmp_path / "ba.jsonl")
    assert (tmp_path / "ab.jsonl").read_bytes() == (
        tmp_path / "ba.jsonl").read_bytes()
    assert merged_ab.to_dict() == canonical
    assert merged_ba.to_dict() == canonical

    # 5. Every family rate matches the committed baseline exactly.
    baseline = json.loads(BASELINE.read_text())
    assert canonical["families"] == baseline["families"]
    assert canonical["result_digest"] == baseline["result_digest"]

    rows = [[family, row["cases"], row["correct"],
             f"{row['rate']:.0%}" if row["rate"] is not None else "—"]
            for family, row in canonical["families"].items()]
    rows.append(["—", "", "", ""])
    rows.append(["units (total / killed-at / resumed)", units_total,
                 survived, resumed.executed])
    rows.append(["re-executed after resume", 0, "", ""])
    rows.append(["distinct findings", len(canonical["findings"]), "", ""])
    publish("campaign_acceptance.txt",
            render_table(
                ["family", "cases", "ground truth upheld", "rate"], rows,
                title=(f"Campaign acceptance: seed={SEED} count={COUNT} "
                       f"SIGKILL+resume byte-identical; halves merge "
                       f"(digest {canonical['result_digest'][:16]})")),
            capsys)
