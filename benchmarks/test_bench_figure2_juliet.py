"""E1 — Figure 2: comparison of analysis tools on the Juliet-style suite.

The paper's Figure 2 reports, per undefined-behavior class, the percentage of
bad tests each tool catches (Valgrind, CheckPointer, Value Analysis, kcc),
plus the mean runtime per test quoted in Section 5.1.2.  This benchmark
regenerates the table on the generated Juliet-style suite and checks that the
qualitative shape of the paper's results holds:

* kcc catches every class;
* Value Analysis also catches the arithmetic classes (division by zero,
  integer overflow) which the memory-only tools miss entirely;
* Valgrind and CheckPointer stay strong on ``free()`` misuse;
* CheckPointer beats Valgrind on invalid-pointer tests (stack overflows are
  invisible at the binary level) while Valgrind beats CheckPointer on
  uninitialized memory;
* no tool flags the defined control tests.
"""

from repro.analyzers.base import KccAnalysisTool
from repro.suites.juliet import (
    CLASS_BAD_FREE,
    CLASS_DIVISION_BY_ZERO,
    CLASS_INTEGER_OVERFLOW,
    CLASS_INVALID_POINTER,
    CLASS_UNINITIALIZED,
)

from benchmarks.conftest import publish


def test_figure2_juliet_comparison(juliet_comparison, capsys, benchmark):
    # The expensive part (running every tool over every test) happens once in
    # the session fixture; the benchmarked step is scoring + table rendering.
    table = benchmark(juliet_comparison.figure2_table)
    table = table + "\n\n" + juliet_comparison.runtime_table()
    publish("figure2_juliet.txt", table, capsys)

    kcc = juliet_comparison.score_for("kcc")
    valgrind = juliet_comparison.score_for("Valgrind")
    checkpointer = juliet_comparison.score_for("CheckPointer")
    value_analysis = juliet_comparison.score_for("V. Analysis")

    # kcc catches every class completely (the paper's final state after the
    # authors fixed the behaviors the suite showed them they were missing).
    for category in juliet_comparison.suite.categories():
        assert kcc.detection_rate(category) == 1.0, category

    # The arithmetic classes are invisible to the memory-only tools.
    for tool in (valgrind, checkpointer):
        assert tool.detection_rate(CLASS_DIVISION_BY_ZERO) == 0.0
        assert tool.detection_rate(CLASS_INTEGER_OVERFLOW) == 0.0
    assert value_analysis.detection_rate(CLASS_DIVISION_BY_ZERO) == 1.0
    assert value_analysis.detection_rate(CLASS_INTEGER_OVERFLOW) == 1.0

    # Memory misuse classes: everyone does well on bad free().
    for tool in (valgrind, checkpointer, value_analysis, kcc):
        assert tool.detection_rate(CLASS_BAD_FREE) >= 0.9

    # CheckPointer sees stack overflows that a binary-level tool cannot.
    assert checkpointer.detection_rate(CLASS_INVALID_POINTER) > \
        valgrind.detection_rate(CLASS_INVALID_POINTER)
    # ...while Valgrind's definedness bits catch uninitialized data that a
    # pointer-bounds checker ignores.
    assert valgrind.detection_rate(CLASS_UNINITIALIZED) > \
        checkpointer.detection_rate(CLASS_UNINITIALIZED)

    # The paired control tests keep everyone honest: no false positives.
    for score in juliet_comparison.scores:
        assert score.false_positive_rate() == 0.0, score.tool


def test_overall_ranking_matches_paper(juliet_comparison):
    rates = {score.tool: score.detection_rate() for score in juliet_comparison.scores}
    assert rates["kcc"] >= rates["V. Analysis"] >= rates["CheckPointer"]
    assert rates["kcc"] >= rates["Valgrind"]
    assert rates["kcc"] == 1.0


def test_bench_kcc_analysis_throughput(benchmark, juliet_suite):
    """pytest-benchmark target: mean kcc analysis time per Juliet-style test."""
    kcc = KccAnalysisTool()
    cases = [case for case in juliet_suite.cases if case.is_bad][:10]

    def analyze_sample():
        return [kcc.analyze(case.source).flagged for case in cases]

    flagged = benchmark(analyze_sample)
    assert all(flagged)
