"""E6 — ablation of the paper's specification techniques (Section 4).

The paper's central argument is that undefinedness checking does not come for
free: each class of undefined behavior required dedicated machinery — side
conditions on rules (§4.1), extra configuration cells (``locsWrittenTo``,
``notWritable``, §4.2), and symbolic values (§4.3).  This benchmark removes
one technique at a time and measures which undefined behaviors of the suite
are no longer caught, i.e. silently receive a meaning again.
"""

import pytest

from repro.analyzers.base import KccAnalysisTool
from repro.core.config import CheckerOptions
from repro.reporting import format_percent, render_table
from repro.suites.harness import EvaluationHarness

from benchmarks.conftest import publish

#: The ablations: (label, paper section, option overrides).
ABLATIONS = [
    ("full checker", "-", {}),
    # Not a specification technique: disables the lowered closure-tree fast
    # path (PR 2), which must cost only speed, never detection.
    ("no lowered fast path (legacy walker)", "-", {"enable_lowering": False}),
    ("no arithmetic side conditions", "4.1.1", {"check_arithmetic": False}),
    ("no memory access checks", "4.1.2", {"check_memory": False}),
    ("no locsWrittenTo cell", "4.2.1", {"check_sequencing": False}),
    ("no notWritable cell", "4.2.2", {"check_const": False}),
    ("no symbolic pointer provenance", "4.3.1", {"check_pointer_provenance": False}),
    ("no unknown (indeterminate) bytes", "4.3.3", {"check_uninitialized": False}),
    ("no effective-type tracking", "6.5:7", {"check_effective_types": False}),
    ("no function call checks", "6.5.2.2", {"check_functions": False}),
    ("positive semantics only", "all of §4", None),  # every check disabled
]


def _options_for(overrides):
    if overrides is None:
        return CheckerOptions.all_disabled()
    return CheckerOptions().without(**overrides)


@pytest.fixture(scope="module")
def ablation_scores(undefinedness_suite):
    bad_cases = undefinedness_suite.bad_cases()
    results = []
    for label, section, overrides in ABLATIONS:
        tool = KccAnalysisTool(_options_for(overrides))
        score = EvaluationHarness([tool]).run_suite(
            undefinedness_suite, cases=bad_cases).scores[0]
        results.append((label, section, score))
    return results


def test_ablation_table(ablation_scores, undefinedness_suite, capsys, benchmark):
    def build_table() -> str:
        rows = []
        for label, section, score in ablation_scores:
            rows.append([label, section,
                         format_percent(score.per_behavior_rate("dynamic")),
                         format_percent(score.per_behavior_rate("static")),
                         format_percent(score.detection_rate())])
        return render_table(
            ["configuration", "paper §", "dynamic behaviors", "static behaviors",
             "all bad tests"],
            rows, title="Ablation: undefined behaviors caught as techniques are removed")

    table = benchmark(build_table)
    publish("ablation.txt", table, capsys)

    by_label = {label: score for label, _section, score in ablation_scores}
    full = by_label["full checker"].detection_rate()

    # Removing any single technique loses coverage; removing everything loses
    # most of it (what remains are constructs the interpreter cannot even
    # execute meaningfully, e.g. calls through null function pointers).
    for label, _section, score in ablation_scores[1:]:
        assert score.detection_rate() <= full, label
    assert by_label["positive semantics only"].detection_rate() < 0.5

    # The lowered fast path is a performance representation, not a checking
    # technique: turning it off must not change detection at all.
    assert by_label["no lowered fast path (legacy walker)"].detection_rate() == full

    # Each technique is responsible for specific behaviors: spot-check that
    # the ablation actually loses the behaviors its section introduced.
    assert by_label["no locsWrittenTo cell"].detection_rate() < full
    assert by_label["no notWritable cell"].detection_rate() < full
    assert by_label["no arithmetic side conditions"].detection_rate() < full
    assert by_label["no memory access checks"].detection_rate() < full
    assert by_label["no unknown (indeterminate) bytes"].detection_rate() < full


def test_ablations_do_not_flag_defined_programs(undefinedness_suite):
    # Removing checks can only lose reports, never invent them: the defined
    # control tests must stay clean under every ablation.
    good_cases = undefinedness_suite.good_cases()[:20]
    for _label, _section, overrides in ABLATIONS[1:4]:
        tool = KccAnalysisTool(_options_for(overrides))
        for case in good_cases:
            assert not tool.analyze(case.source).flagged, case.name


def test_bench_full_checker_over_bad_tests(benchmark, undefinedness_suite):
    """pytest-benchmark target: the full checker over a sample of bad tests."""
    tool = KccAnalysisTool()
    sample = undefinedness_suite.bad_cases()[:12]

    def analyze():
        return sum(1 for case in sample if tool.analyze(case.source).flagged)

    caught = benchmark(analyze)
    assert caught >= len(sample) - 1
