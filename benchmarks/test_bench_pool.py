"""E7 — warm-pool throughput: cold vs warm batches, serial vs pooled.

The service refactor's claim is twofold and ``pool_speed.{txt,json}``
records both halves:

* **warm beats cold** — the first pooled batch after a shutdown pays worker
  spawn; every later batch runs on live workers.  ``warm_speedup`` (warm
  rate / cold rate) is tracked informationally by ``compare_results.py``:
  on fork-based hosts spawn is nearly free so the ratio hovers around 1,
  while spawn-method hosts (no fork) re-import the whole package per cold
  pool and show the real tax;
* **pooled beats serial** — ``parallel_speedup`` (steady-state pooled rate /
  serial rate) is a *gated* metric with an absolute floor of 3.0 at
  ``jobs=4``, enforced only on hosts with at least ``jobs`` CPUs (on
  smaller hosts the ratio is physically meaningless and the gate records a
  SKIP with the reason instead).

Each timed batch uses a distinct program set, so the shared compile cache
never donates parses across measurements: the serial reference, the cold
pooled batch, and the warm pooled batch all compile their programs from
scratch.  Verdicts are asserted byte-identical between the serial and
pooled paths before any rate is reported.
"""

import json
import os
import time

from repro.api.batch import check_many
from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.reporting import render_table
from repro.service.pool import shutdown_pool

from benchmarks.conftest import RESULTS_DIR, publish

BATCH_JOBS = 4
CHECK_COUNT = 120
FUZZ_COUNT = 60
FUZZ_SEED = 20260729


def _programs(count: int, tag: str) -> list[tuple[str, str]]:
    return [
        (f"{tag}_{index}.c",
         "int main(void) {\n"
         f"  int acc = {index};\n"
         "  for (int i = 0; i < 160; ++i) { acc += (acc + i) % 7; }\n"
         "  return acc % 2;\n"
         "}\n")
        for index in range(count)
    ]


def _normalized_campaign(result) -> str:
    data = result.to_dict()
    data["config"]["jobs"] = 0
    data.pop("timing")
    return json.dumps(data, sort_keys=True)


def test_pool_throughput(capsys):
    host_cpus = os.cpu_count() or 1
    effective = min(BATCH_JOBS, host_cpus)

    # Serial reference on set A.
    set_a = _programs(CHECK_COUNT, "ser")
    start = time.perf_counter()
    serial_reports = check_many(set_a, jobs=1)
    serial_elapsed = time.perf_counter() - start

    # Cold pooled batch on set B: the pool is torn down first, so this
    # batch pays worker spawn + cold imports (the old per-batch tax).
    shutdown_pool(wait=True)
    set_b = _programs(CHECK_COUNT, "cold")
    start = time.perf_counter()
    check_many(set_b, jobs=BATCH_JOBS)
    cold_elapsed = time.perf_counter() - start

    # Warm pooled batches on sets C and D: same pool, already spawned.
    # Two runs, best-of, to keep scheduler noise out of the ratio.
    warm_elapsed = float("inf")
    for tag in ("warm1", "warm2"):
        warm_set = _programs(CHECK_COUNT, tag)
        start = time.perf_counter()
        check_many(warm_set, jobs=BATCH_JOBS)
        warm_elapsed = min(warm_elapsed, time.perf_counter() - start)

    # Verdict identity (untimed): the pooled path must classify set A
    # exactly as the serial path did.
    pooled_reports = check_many(set_a, jobs=BATCH_JOBS)
    assert [r.to_dict() for r in pooled_reports] == \
        [r.to_dict() for r in serial_reports]

    serial_rate = CHECK_COUNT / serial_elapsed
    cold_rate = CHECK_COUNT / cold_elapsed
    warm_rate = CHECK_COUNT / warm_elapsed
    check_speedup = warm_rate / serial_rate
    warm_speedup = warm_rate / cold_rate

    # Fuzz slice: generation + oracle stack, serial vs the (warm) pool.
    start = time.perf_counter()
    fuzz_serial = run_campaign(CampaignConfig(seed=FUZZ_SEED, count=FUZZ_COUNT,
                                              inject="mixed"))
    fuzz_serial_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    fuzz_pooled = run_campaign(CampaignConfig(seed=FUZZ_SEED, count=FUZZ_COUNT,
                                              inject="mixed", jobs=BATCH_JOBS))
    fuzz_pooled_elapsed = time.perf_counter() - start
    assert _normalized_campaign(fuzz_serial) == _normalized_campaign(fuzz_pooled)
    fuzz_serial_rate = FUZZ_COUNT / fuzz_serial_elapsed
    fuzz_pooled_rate = FUZZ_COUNT / fuzz_pooled_elapsed
    fuzz_speedup = fuzz_pooled_rate / fuzz_serial_rate

    results = {
        "check_many": {
            "count": CHECK_COUNT,
            "jobs": BATCH_JOBS,
            "host_cpus": host_cpus,
            "effective_parallelism": effective,
            "serial_programs_per_sec": round(serial_rate, 2),
            "cold_programs_per_sec": round(cold_rate, 2),
            "warm_programs_per_sec": round(warm_rate, 2),
            "parallel_speedup": round(check_speedup, 3),
            "warm_speedup": round(warm_speedup, 3),
        },
        "fuzz_slice": {
            "count": FUZZ_COUNT,
            "jobs": BATCH_JOBS,
            "host_cpus": host_cpus,
            "effective_parallelism": effective,
            "serial_programs_per_sec": round(fuzz_serial_rate, 2),
            "parallel_programs_per_sec": round(fuzz_pooled_rate, 2),
            "parallel_speedup": round(fuzz_speedup, 3),
        },
    }
    table = render_table(
        ["configuration", "programs/sec", "speedup"],
        [["check serial", f"{serial_rate:.1f}", "1.00x"],
         [f"check jobs={BATCH_JOBS} (cold pool)", f"{cold_rate:.1f}",
          f"{cold_rate / serial_rate:.2f}x"],
         [f"check jobs={BATCH_JOBS} (warm pool)", f"{warm_rate:.1f}",
          f"{check_speedup:.2f}x"],
         ["fuzz serial", f"{fuzz_serial_rate:.1f}", "1.00x"],
         [f"fuzz jobs={BATCH_JOBS} (warm pool)", f"{fuzz_pooled_rate:.1f}",
          f"{fuzz_speedup:.2f}x"],
         ["warm vs cold batch", "—", f"{warm_speedup:.2f}x"]],
        title=f"Warm-pool throughput ({CHECK_COUNT} checks / {FUZZ_COUNT} fuzz "
              f"cases; host_cpus={host_cpus}, "
              f"effective parallelism {effective}/{BATCH_JOBS})")
    publish("pool_speed.txt", table, capsys)
    (RESULTS_DIR / "pool_speed.json").write_text(
        json.dumps(results, indent=2) + "\n", encoding="utf-8")

    # A warm batch never re-pays spawn, so it cannot be meaningfully slower
    # than the cold one.  On fork hosts the spawn tax is tiny, so allow
    # scheduler noise around 1.0 rather than asserting a strict win.
    assert warm_speedup > 0.8, (cold_elapsed, warm_elapsed)
    # Local sanity floor; the real >= 3.0 gate runs in compare_results.py
    # on hosts with >= BATCH_JOBS CPUs.
    assert check_speedup > 0.5 and fuzz_speedup > 0.5
