"""E6 — differential fuzzing throughput and the 2,000-program campaign.

Two results come out of this module:

* the **acceptance campaign**: a fixed-seed run of 2,000 generated programs
  (mixed well-defined and one-defect-injected) must complete with **zero**
  differential-oracle mismatches, report ground-truth detection for every
  injected check family, and produce a byte-identical verdict stream under
  ``jobs=4`` — the generated-workload analogue of the hand-written suites'
  guarantees;
* ``fuzz_speed.{txt,json}`` — generation+oracle throughput (programs/sec),
  serial vs ``jobs=N``.  The ``parallel_speedup`` ratio is **gated** by
  ``benchmarks/compare_results.py`` (absolute floor 3.0 at ``jobs=4``),
  but only on hosts with at least ``jobs`` CPUs; each entry records
  ``host_cpus`` and ``effective_parallelism`` so undersized runners skip
  the gate with the reason in the log instead of failing on topology.
"""

import json
import os
import time

from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.generator import injection_families
from repro.reporting import render_table

from benchmarks.conftest import RESULTS_DIR, publish

#: The acceptance-campaign shape: fixed seed, >= 2000 mixed programs.
ACCEPTANCE_SEED = 20260729
ACCEPTANCE_COUNT = 2000

#: The throughput measurement uses a smaller slice (wall-clock, not verdict,
#: is what varies with count).
SPEED_COUNT = 400
SPEED_JOBS = 4


def _normalized(result) -> str:
    data = result.to_dict()
    data["config"]["jobs"] = 0
    data.pop("timing")
    return json.dumps(data, sort_keys=True)


def test_fuzz_acceptance_campaign(capsys):
    config = CampaignConfig(seed=ACCEPTANCE_SEED, count=ACCEPTANCE_COUNT,
                            inject="mixed", jobs=SPEED_JOBS)
    result = run_campaign(config)
    assert result.ok, (
        f"{len(result.mismatches)} oracle mismatch(es); first: "
        f"{result.mismatches[0].to_dict() if result.mismatches else None}")
    table = result.family_table()
    # Every injectable family occurs and upholds its ground truth.
    for family in injection_families():
        assert family in table, f"family {family} never drawn in {ACCEPTANCE_COUNT} cases"
        row = table[family]
        assert row["correct"] == row["cases"], (family, row)
    assert table["clean"]["correct"] == table["clean"]["cases"]

    # Verdict identity: a serial slice of the same campaign must agree
    # byte-for-byte with the pooled run's slice.
    slice_config = CampaignConfig(seed=ACCEPTANCE_SEED, count=200, inject="mixed")
    serial = run_campaign(slice_config)
    pooled = run_campaign(CampaignConfig(seed=ACCEPTANCE_SEED, count=200,
                                         inject="mixed", jobs=SPEED_JOBS))
    assert _normalized(serial) == _normalized(pooled)

    rows = [[family, row["cases"], row["correct"]]
            for family, row in sorted(table.items())]
    publish("fuzz_acceptance.txt",
            render_table(["family", "cases", "ground truth upheld"], rows,
                         title=f"Fuzz acceptance campaign: seed={ACCEPTANCE_SEED} "
                               f"count={ACCEPTANCE_COUNT} (0 mismatches)"),
            capsys)


def test_fuzz_throughput(capsys):
    serial_config = CampaignConfig(seed=ACCEPTANCE_SEED, count=SPEED_COUNT,
                                   inject="mixed")
    start = time.perf_counter()
    serial = run_campaign(serial_config)
    serial_elapsed = time.perf_counter() - start
    assert serial.ok

    parallel_config = CampaignConfig(seed=ACCEPTANCE_SEED, count=SPEED_COUNT,
                                     inject="mixed", jobs=SPEED_JOBS)
    start = time.perf_counter()
    parallel = run_campaign(parallel_config)
    parallel_elapsed = time.perf_counter() - start
    assert parallel.ok
    assert _normalized(serial) == _normalized(parallel)

    serial_rate = SPEED_COUNT / serial_elapsed
    parallel_rate = SPEED_COUNT / parallel_elapsed
    speedup = parallel_rate / serial_rate if serial_rate else 0.0
    host_cpus = os.cpu_count() or 1
    effective = min(SPEED_JOBS, host_cpus)
    results = {
        "campaign": {
            "count": SPEED_COUNT,
            "jobs": SPEED_JOBS,
            "serial_programs_per_sec": round(serial_rate, 2),
            "parallel_programs_per_sec": round(parallel_rate, 2),
            "parallel_speedup": round(speedup, 3),
            "host_cpus": host_cpus,
            "effective_parallelism": effective,
        },
    }
    table = render_table(
        ["configuration", "programs/sec"],
        [["serial", f"{serial_rate:.1f}"],
         [f"jobs={SPEED_JOBS}", f"{parallel_rate:.1f}"],
         ["speedup", f"{speedup:.2f}x"],
         ["effective parallelism", f"{effective}/{SPEED_JOBS} "
          f"(host_cpus={host_cpus})"]],
        title=f"Fuzz campaign throughput ({SPEED_COUNT} programs, "
              "generation + full oracle stack)")
    publish("fuzz_speed.txt", table, capsys)
    (RESULTS_DIR / "fuzz_speed.json").write_text(
        json.dumps(results, indent=2) + "\n", encoding="utf-8")
    # Local sanity only: pooled fan-out must not be pathologically slower
    # than serial.  The real >= 3.0 floor is enforced by compare_results.py
    # on hosts with >= SPEED_JOBS CPUs.
    assert speedup > 0.5
