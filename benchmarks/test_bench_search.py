"""E5 — evaluation-order search (paper Sections 2.5.2 and 4.5).

Whether a program is undefined can depend on the (unspecified) evaluation
order; the paper's ``setDenom`` example is compiled without error by GCC and
to a division by zero by CompCert, and both are allowed.  A checker therefore
has to search evaluation orders.  This benchmark measures the cost of that
search and checks that it finds undefinedness that single-order execution
misses, without introducing false positives on defined programs.
"""

from repro import CheckerOptions, OutcomeKind, UBKind, check_program
from repro.reporting import render_table

from benchmarks.conftest import publish

SET_DENOM = """
int d = 5;
int setDenom(int x){ return d = x; }
int main(void) { return (10/d) + setDenom(0); }
"""

ORDER_DEPENDENT_CONFLICT = """
int main(void){ int i = 1; return i + (i = 2); }
"""

ORDER_INDEPENDENT_UB = """
int main(void){ int x = 0; return (x = 1) + (x = 2); }
"""

DEFINED_WITH_MANY_SUBEXPRESSIONS = """
static int square(int x) { return x * x; }
int main(void) {
    int a = 1, b = 2, c = 3, d = 4;
    return square(a) + square(b) + square(c) + square(d) + (a + b) * (c + d);
}
"""

PROGRAMS = [
    ("setDenom (paper §2.5.2)", SET_DENOM, True),
    ("i + (i = 2)", ORDER_DEPENDENT_CONFLICT, True),
    ("(x=1) + (x=2)", ORDER_INDEPENDENT_UB, True),
    ("defined program", DEFINED_WITH_MANY_SUBEXPRESSIONS, False),
]


def test_search_finds_order_dependent_undefinedness(capsys, benchmark):
    def survey():
        collected = []
        for label, source, expect_undefined in PROGRAMS:
            single = check_program(source)
            searched = check_program(source, search_evaluation_order=True)
            explored = searched.search.explored if searched.search else 1
            collected.append((label, single, searched, explored, expect_undefined))
        return collected

    results = benchmark.pedantic(survey, rounds=1, iterations=1)
    rows = []
    for label, single, searched, explored, expect_undefined in results:
        rows.append([label,
                     "undefined" if single.outcome.flagged else "defined",
                     "undefined" if searched.outcome.flagged else "defined",
                     explored])
        assert searched.outcome.flagged == expect_undefined, label
    table = render_table(
        ["program", "single order", "order search", "orders explored"], rows,
        title="Evaluation-order search (undefinedness reachable on some orders)")
    publish("evaluation_order_search.txt", table, capsys)

    # Single-order execution misses the order-dependent cases...
    assert not check_program(SET_DENOM).outcome.flagged
    assert not check_program(ORDER_DEPENDENT_CONFLICT).outcome.flagged
    # ...and the search attributes the right kind of undefinedness to each.
    assert UBKind.DIVISION_BY_ZERO in check_program(
        SET_DENOM, search_evaluation_order=True).outcome.ub_kinds
    assert UBKind.UNSEQUENCED_SIDE_EFFECT in check_program(
        ORDER_DEPENDENT_CONFLICT, search_evaluation_order=True).outcome.ub_kinds
    # Defined programs stay defined even after exploring every order.
    assert check_program(DEFINED_WITH_MANY_SUBEXPRESSIONS,
                         search_evaluation_order=True).outcome.kind is OutcomeKind.DEFINED


def test_bench_search_cost(benchmark):
    """pytest-benchmark target: exhaustive order search on the setDenom example."""

    def search():
        return check_program(SET_DENOM, search_evaluation_order=True)

    report = benchmark(search)
    assert report.outcome.flagged


def test_bench_single_order_cost(benchmark):
    """Baseline for the search benchmark: a single left-to-right execution."""

    def run_once():
        return check_program(SET_DENOM)

    report = benchmark(run_once)
    assert report.outcome.kind is OutcomeKind.DEFINED


def test_search_respects_path_budget():
    options = CheckerOptions(max_search_paths=3)
    report = check_program(DEFINED_WITH_MANY_SUBEXPRESSIONS, options,
                           search_evaluation_order=True)
    assert report.search is not None
    assert report.search.explored <= 3
