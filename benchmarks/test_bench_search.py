"""E5 — evaluation-order search (paper Sections 2.5.2 and 4.5).

Whether a program is undefined can depend on the (unspecified) evaluation
order; the paper's ``setDenom`` example is compiled without error by GCC and
to a division by zero by CompCert, and both are allowed.  A checker therefore
has to search evaluation orders.

Two tables come out of this module:

* ``evaluation_order_search.txt`` — the qualitative table: undefinedness
  reachable only under some orders is found, defined programs stay defined.
* ``search_speed.{txt,json}`` — the engine-vs-seed comparison on
  deep-interleaving programs: the seed-style DFS re-executes the whole
  program from ``main`` once per explored order, while the engine resumes
  sibling orders from forked checkpoints, merges converging interleavings,
  and prunes commuting groups.  The gate below requires the engine to reach
  the identical verdict set with at least 5x fewer runs from ``main`` on a
  program with >= 200 explorable orders; ``benchmarks/compare_results.py``
  holds future changes to these ratios (the CI regression gate).
"""

import json
import time

from repro import (
    Checker,
    CheckerOptions,
    OutcomeKind,
    SearchBudget,
    UBKind,
    check_program,
)
from repro.kframework.engine import checkpoint_supported
from repro.reporting import render_table

from benchmarks.conftest import RESULTS_DIR, publish

SET_DENOM = """
int d = 5;
int setDenom(int x){ return d = x; }
int main(void) { return (10/d) + setDenom(0); }
"""

ORDER_DEPENDENT_CONFLICT = """
int main(void){ int i = 1; return i + (i = 2); }
"""

ORDER_INDEPENDENT_UB = """
int main(void){ int x = 0; return (x = 1) + (x = 2); }
"""

DEFINED_WITH_MANY_SUBEXPRESSIONS = """
static int square(int x) { return x * x; }
int main(void) {
    int a = 1, b = 2, c = 3, d = 4;
    return square(a) + square(b) + square(c) + square(d) + (a + b) * (c + d);
}
"""

PROGRAMS = [
    ("setDenom (paper §2.5.2)", SET_DENOM, True),
    ("i + (i = 2)", ORDER_DEPENDENT_CONFLICT, True),
    ("(x=1) + (x=2)", ORDER_INDEPENDENT_UB, True),
    ("defined program", DEFINED_WITH_MANY_SUBEXPRESSIONS, False),
]


def _chain(variables: list[str]) -> str:
    decls = "int " + ", ".join(variables) + ";"
    body = "\n".join(f"    r += ({variables[i]}++) + ({variables[i + 1]}++);"
                     for i in range(0, len(variables), 2))
    return f"{decls}\nint main(void) {{\n    int r = 0;\n{body}\n    return r;\n}}\n"


#: Eight sequential two-way interleaving decisions: 2^8 = 256 explorable
#: orders, all converging (disjoint objects).  This is the acceptance
#: program: >= 200 orders, identical verdict set, >= 5x fewer full runs.
DEEP_COMMUTING = _chain([f"u{i}" for i in range(16)])

#: Six decisions whose siblings only converge *after* each statement; run
#: with the commutativity filter off, this isolates what dedup alone saves.
DEEP_CONVERGING = _chain([f"v{i}" for i in range(12)])

#: Seven commuting statements hiding an order-dependent division by zero in
#: the eighth; the final statement contributes further decisions of its own
#: (the call-argument group and the assignment inside setDenom), for about
#: a thousand explorable orders in total.
DEEP_HIDDEN_UB = """
int w0, w1, w2, w3, w4, w5, w6, w7, w8, w9, w10, w11, w12, w13;
int d = 5;
int setDenom(int x){ return d = x; }
int main(void) {
    int r = 0;
    r += (w0++) + (w1++);
    r += (w2++) + (w3++);
    r += (w4++) + (w5++);
    r += (w6++) + (w7++);
    r += (w8++) + (w9++);
    r += (w10++) + (w11++);
    r += (w12++) + (w13++);
    r += (10/d) + setDenom(0);
    return r;
}
"""

BIG_BUDGET = SearchBudget(max_paths=4096)


def _verdict_set(report) -> set:
    out = set()
    for path in report.search.paths:
        outcome = path.payload
        out.add((path.undefined,
                 tuple(outcome.ub_kinds) if outcome.flagged else ()))
    return out


def _measure(checker: Checker, source: str, **kwargs):
    start = time.perf_counter()
    report = checker.search(source, budget=BIG_BUDGET, stop_at_first=False,
                            **kwargs)
    elapsed = time.perf_counter() - start
    return report, elapsed


def _engine_columns(source: str, name: str) -> dict:
    checker = Checker()
    legacy_report, legacy_time = _measure(
        checker, source, checkpoint="replay", dedup_states=False,
        prune_commuting=False)
    legacy = legacy_report.search
    engine_report, engine_time = _measure(checker, source)
    engine = engine_report.search
    assert legacy.exhausted and engine.exhausted, name
    # Identical verdict *set*: dedup/pruning may record fewer paths, but
    # every verdict reachable under some order must survive.
    assert _verdict_set(engine_report) == _verdict_set(legacy_report), name
    assert engine.any_undefined == legacy.any_undefined, name
    orders_covered = engine.explored + engine.merged_paths + engine.pruned_orders
    return {
        "orders": legacy.explored,
        "legacy_runs_from_main": legacy.runs_from_main,
        "legacy_seconds": round(legacy_time, 4),
        "legacy_paths_per_sec": round(legacy.explored / max(legacy_time, 1e-9), 1),
        "engine_runs_from_main": engine.runs_from_main,
        "engine_resumed": engine.resumed_executions,
        "engine_explored": engine.explored,
        "engine_merged": engine.merged_paths,
        "engine_pruned": engine.pruned_orders,
        "engine_seconds": round(engine_time, 4),
        "engine_orders_per_sec": round(orders_covered / max(engine_time, 1e-9), 1),
        "engine_mode": "checkpoint-fork" if checkpoint_supported() else "replay",
        "reduction_factor": round(
            legacy.runs_from_main / max(engine.runs_from_main, 1), 2),
        "wall_clock_speedup": round(legacy_time / max(engine_time, 1e-9), 2),
    }


def test_search_finds_order_dependent_undefinedness(capsys, benchmark):
    def survey():
        collected = []
        for label, source, expect_undefined in PROGRAMS:
            single = check_program(source)
            searched = check_program(source, search_evaluation_order=True)
            explored = searched.search.explored if searched.search else 1
            collected.append((label, single, searched, explored, expect_undefined))
        return collected

    results = benchmark.pedantic(survey, rounds=1, iterations=1)
    rows = []
    for label, single, searched, explored, expect_undefined in results:
        rows.append([label,
                     "undefined" if single.outcome.flagged else "defined",
                     "undefined" if searched.outcome.flagged else "defined",
                     explored,
                     searched.search.stop_reason,
                     f"{searched.search.coverage():.0%}"])
        assert searched.outcome.flagged == expect_undefined, label
    table = render_table(
        ["program", "single order", "order search", "orders explored",
         "stop reason", "coverage"], rows,
        title="Evaluation-order search (undefinedness reachable on some orders)")
    publish("evaluation_order_search.txt", table, capsys)

    # Single-order execution misses the order-dependent cases...
    assert not check_program(SET_DENOM).outcome.flagged
    assert not check_program(ORDER_DEPENDENT_CONFLICT).outcome.flagged
    # ...and the search attributes the right kind of undefinedness to each.
    assert UBKind.DIVISION_BY_ZERO in check_program(
        SET_DENOM, search_evaluation_order=True).outcome.ub_kinds
    assert UBKind.UNSEQUENCED_SIDE_EFFECT in check_program(
        ORDER_DEPENDENT_CONFLICT, search_evaluation_order=True).outcome.ub_kinds
    # Defined programs stay defined even after exploring every order.
    assert check_program(DEFINED_WITH_MANY_SUBEXPRESSIONS,
                         search_evaluation_order=True).outcome.kind is OutcomeKind.DEFINED


def test_search_engine_speed(capsys, benchmark):
    def survey():
        return {
            "deep-commuting-256": _engine_columns(DEEP_COMMUTING,
                                                  "deep-commuting-256"),
            "deep-converging-64": _engine_columns(DEEP_CONVERGING,
                                                  "deep-converging-64"),
            "deep-hidden-ub": _engine_columns(DEEP_HIDDEN_UB, "deep-hidden-ub"),
        }

    results = benchmark.pedantic(survey, rounds=1, iterations=1)
    rows = []
    for name, data in results.items():
        rows.append([name, data["orders"],
                     data["legacy_runs_from_main"],
                     data["engine_runs_from_main"],
                     data["engine_resumed"],
                     data["engine_merged"],
                     data["engine_pruned"],
                     f"{data['reduction_factor']}x",
                     f"{data['wall_clock_speedup']}x"])
    table = render_table(
        ["program", "orders", "seed runs", "engine runs", "resumed", "merged",
         "pruned", "fewer runs", "wall clock"],
        rows,
        title="Search engine vs seed DFS (runs from main; engine resumes "
              "siblings from checkpoints)")
    publish("search_speed.txt", table, capsys)
    (RESULTS_DIR / "search_speed.json").write_text(
        json.dumps(results, indent=2) + "\n", encoding="utf-8")

    # Acceptance gate: on a >= 200-order program the engine reaches the
    # identical verdict set with >= 5x fewer full executions than the seed.
    deep = results["deep-commuting-256"]
    assert deep["orders"] >= 200
    assert deep["legacy_runs_from_main"] >= \
        5 * deep["engine_runs_from_main"], deep


def test_dedup_alone_cuts_full_runs():
    """With the commutativity filter off, dedup still merges interleavings."""
    checker = Checker()
    naive = checker.search(DEEP_CONVERGING, checkpoint="replay",
                           dedup_states=False, prune_commuting=False,
                           budget=BIG_BUDGET, stop_at_first=False).search
    deduped = checker.search(DEEP_CONVERGING, checkpoint="replay",
                             prune_commuting=False,
                             budget=BIG_BUDGET, stop_at_first=False).search
    assert deduped.merged_paths > 0
    assert deduped.runs_from_main < naive.runs_from_main
    assert naive.any_undefined == deduped.any_undefined


def test_walker_engine_matches_lowered_engine_counts():
    """Search over the legacy walker sees the identical decision tree."""
    walker = Checker(CheckerOptions(enable_lowering=False))
    lowered = Checker()
    for source in (SET_DENOM, DEEP_CONVERGING):
        a = walker.search(source, budget=BIG_BUDGET, stop_at_first=False).search
        b = lowered.search(source, budget=BIG_BUDGET, stop_at_first=False).search
        assert a.explored == b.explored
        assert a.merged_paths == b.merged_paths
        assert a.pruned_orders == b.pruned_orders


def test_bench_search_cost(benchmark):
    """pytest-benchmark target: exhaustive order search on the setDenom example."""

    def search():
        return check_program(SET_DENOM, search_evaluation_order=True)

    report = benchmark(search)
    assert report.outcome.flagged


def test_bench_single_order_cost(benchmark):
    """Baseline for the search benchmark: a single left-to-right execution."""

    def run_once():
        return check_program(SET_DENOM)

    report = benchmark(run_once)
    assert report.outcome.kind is OutcomeKind.DEFINED


def test_search_respects_path_budget():
    options = CheckerOptions(max_search_paths=3)
    report = check_program(DEFINED_WITH_MANY_SUBEXPRESSIONS, options,
                           search_evaluation_order=True)
    assert report.search is not None
    assert report.search.explored <= 3
