"""E7 — dynamic-stage throughput: compiled VM vs lowered closures vs walker.

PR 2 replaced the interpreter's hot inner loop with a lowered closure tree
(:mod:`repro.core.lowering`); PR 7 compiles that IR further into a flat
register bytecode run by a single dispatch loop (:mod:`repro.core.bytecode`
+ :mod:`repro.core.vm`).  This benchmark pins both claims with numbers:
compile each program once, then measure steady-state ``run_unit`` throughput
(runs/second, dynamic stage only — the compile is warmed outside the clock)
under each engine.  Results are written to
``benchmarks/results/interp_speed.txt`` (table) and ``interp_speed.json``
(machine-readable, so future PRs can track the trend).

The interpreter-bound programs (tight loops over arithmetic, arrays, calls)
are where the compilation pays: the gated target is >= 2x over the lowered
closures on arith-loop and array-sweep (observed well above that).
pointer-walk deliberately sits *outside* the bytecode's native subset, so
its ratio documents the fallback cost (~1x: unsupported functions just run
on the lowered closures).  The ubsuite aggregate is also reported honestly —
its programs are tiny, so their dynamic stage is dominated by per-run setup
(globals, argv, memory), not by the interpreter loop, and the ratio there is
correspondingly modest.
"""

import json
import statistics
import time

import pytest

from repro.analyzers.base import merge_options
from repro.analyzers.checkpointer_like import CheckPointerLikeTool
from repro.analyzers.valgrind_like import ValgrindLikeTool
from repro.analyzers.value_analysis import ValueAnalysisTool
from repro.core.config import CheckerOptions
from repro.core.kcc import KccTool
from repro.reporting import render_table

from benchmarks.conftest import RESULTS_DIR, publish

#: Interpreter-bound microbenchmarks: the dynamic stage is the program.
PROGRAMS = {
    "arith-loop": r"""
int main(void){
    long s = 0;
    int i;
    for (i = 0; i < 6000; i++) { s += i * 2 + (i % 3); }
    return s & 0xFF ? 0 : 1;
}
""",
    "array-sweep": r"""
int main(void){
    int a[64];
    int i, j, s = 0;
    for (i = 0; i < 64; i++) a[i] = i * i;
    for (j = 0; j < 90; j++)
        for (i = 0; i < 64; i++)
            s += a[i] >> 2;
    return s == 0;
}
""",
    "call-chain": r"""
static int f(int x){ return x * 2 + 1; }
int main(void){
    int i, s = 0;
    for (i = 0; i < 1500; i++) s += f(i) & 7;
    return s < 0;
}
""",
    "pointer-walk": r"""
int main(void){
    int a[32];
    int *p;
    int i, j, s = 0;
    for (i = 0; i < 32; i++) a[i] = i;
    for (j = 0; j < 120; j++)
        for (p = a; p < a + 32; p++)
            s += *p;
    return s == 0;
}
""",
}

#: Minimum acceptable speedup on the interpreter-bound programs overall
#: (geometric mean).  The observed value is ~2x; the gate is set below it so
#: a noisy CI machine does not flake, while still catching a real regression
#: of the fast path.
MIN_GEOMEAN_SPEEDUP = 1.3

#: Minimum acceptable compiled-VM speedup over the lowered closures on the
#: programs inside the bytecode's native subset (arith-loop, array-sweep).
#: The PR-7 target is 2x; the observed value is an order of magnitude above
#: it, so gating at the target itself leaves no room for flakes while still
#: catching a fallback regression (a native program silently dropping to
#: the closures shows up as ~1x).
MIN_COMPILED_SPEEDUP = 2.0
COMPILED_NATIVE_PROGRAMS = ("arith-loop", "array-sweep")

#: Maximum acceptable overhead of the probe-capable entry point when no
#: probe is attached (``run_unit(compiled, probes=[])``), on the arith-loop
#: program.  The null-probe case is compile-time specialized — neither the
#: bytecode stream nor the plain lowered IR carries any instrumentation
#: code — so this gates the dispatch plumbing, not emission.  It is the
#: strictest ratio gate here: the compiled engine's dynamic stage is fast
#: enough that even small per-run plumbing costs would show.
MAX_NULL_PROBE_OVERHEAD = 0.05

#: The same budget on every other program, with headroom for measurement
#: noise on the less interpreter-bound ones (their shorter dynamic stage
#: amplifies per-window jitter).  This catches a probe-dispatch regression
#: on call- or pointer-heavy paths that arith-loop alone would miss.
MAX_NULL_PROBE_OVERHEAD_ANY = 0.10

WINDOW_SECONDS = 0.5
REPEATS = 4


def _timed_window(run) -> float:
    """Throughput of one measurement window (runs/sec)."""
    runs = 0
    start = time.perf_counter()
    while time.perf_counter() - start < WINDOW_SECONDS:
        run()
        runs += 1
    return runs / (time.perf_counter() - start)


def _three_probe_runner(source: str, name: str):
    """One shared observed execution feeding the three baseline-tool probes."""
    tools = [ValgrindLikeTool(), CheckPointerLikeTool(), ValueAnalysisTool()]
    union = merge_options([tool.options for tool in tools])
    engine = KccTool(union, run_static_checks=False)
    compiled = engine.compile_unit(source, filename=name)
    assert compiled.ok, name
    compiled.lowered_for(union, instrument=True)  # warm the instrumented IR

    def run():
        probes = [tool.make_probe() for tool in tools]
        engine.run_unit(compiled, probes=probes)
    return run


@pytest.fixture(scope="module")
def speed_results():
    results = {}
    for name, source in PROGRAMS.items():
        runners = {}
        for key, engine in (("compiled", "compiled"), ("lowered", "lowered"),
                            ("legacy", "walker")):
            tool = KccTool(CheckerOptions(engine=engine))
            compiled = tool.compile_unit(source, filename=name)
            assert compiled.ok, name
            runners[key] = (lambda t, c: (lambda: t.run_unit(c)))(tool, compiled)
        # Null-probe: the probe-capable entry point with zero probes attached
        # must compile down to the plain fast path (the specialization claim)
        # — for the default engine, the uninstrumented bytecode stream.
        null_tool = KccTool(CheckerOptions())
        null_compiled = null_tool.compile_unit(source, filename=name)
        runners["null_probe"] = lambda: null_tool.run_unit(null_compiled, probes=[])
        # Three probes: one observed execution feeding all baseline tools.
        runners["three_probe"] = _three_probe_runner(source, name)
        for run in runners.values():
            run()  # warm: lowering, caches, allocator paths
        # Interleave the configurations' windows so machine-load drift
        # during the measurement hits all sides equally.  The throughput
        # columns report each side's best window (steady state is the
        # fastest the box allowed, noise only slows); the gated *ratio*
        # metrics are medians of per-repeat adjacent-window ratios —
        # adjacent windows share machine conditions, so neither a spike
        # in one window nor slow drift across the measurement can fake a
        # regression (or hide one behind a lucky best window).
        best = dict.fromkeys(runners, 0.0)
        speedups, compiled_speedups, overheads = [], [], []
        for _ in range(REPEATS):
            window = {}
            for key, run in runners.items():
                window[key] = _timed_window(run)
                best[key] = max(best[key], window[key])
            speedups.append(window["lowered"] / window["legacy"])
            compiled_speedups.append(window["compiled"] / window["lowered"])
            overheads.append(1.0 - window["null_probe"] / window["compiled"])
        results[name] = {
            "compiled_runs_per_sec": best["compiled"],
            "lowered_runs_per_sec": best["lowered"],
            "legacy_runs_per_sec": best["legacy"],
            "null_probe_runs_per_sec": best["null_probe"],
            "three_probe_runs_per_sec": best["three_probe"],
            "speedup": statistics.median(speedups),
            "compiled_speedup": statistics.median(compiled_speedups),
            # A budget check wants the *systematic* overhead: noise only
            # inflates a window's reading (a genuinely regressed dispatch
            # path is slower in every window), so the min over repeats is
            # the noise-robust estimate the 5%/10% gates compare against.
            "null_probe_overhead": max(0.0, min(overheads)),
        }
    return results


@pytest.fixture(scope="module")
def ubsuite_aggregate(undefinedness_suite):
    """Whole-suite dynamic-stage throughput (setup-dominated; see module doc).

    The two configurations' windows are interleaved (like the
    micro-benchmarks) and the published speedup is the *median of the
    per-repeat adjacent-window ratios*: adjacent windows run under nearly
    identical machine conditions, so neither a transient load spike in
    one window nor slow host drift across the measurement can publish a
    phantom regression (which the committed JSON would then bake into
    the CI gate's baseline).  The throughput columns report each side's
    best window.
    """
    runners = {}
    for key, engine in (("compiled", "compiled"), ("lowered", "lowered"),
                        ("legacy", "walker")):
        tool = KccTool(CheckerOptions(engine=engine))
        units = [tool.compile_unit(case.source, filename=case.name)
                 for case in undefinedness_suite.cases]

        def run_suite(tool=tool, units=units):
            for unit in units:
                tool.run_unit(unit)
        runners[key] = (run_suite, len(units))
    for run, _ in runners.values():
        run()  # warm: lowering, caches, allocator paths
    best = dict.fromkeys(runners, 0.0)
    ratios = []
    for _ in range(REPEATS):
        window = {}
        for key, (run, count) in runners.items():
            # _timed_window counts whole-suite passes; scale to unit runs.
            window[key] = _timed_window(run) * count
            best[key] = max(best[key], window[key])
        ratios.append(window["lowered"] / window["legacy"])
    return {
        "compiled_runs_per_sec": best["compiled"],
        "lowered_runs_per_sec": best["lowered"],
        "legacy_runs_per_sec": best["legacy"],
        "speedup": statistics.median(ratios),
    }


def test_interp_speed_table(speed_results, ubsuite_aggregate, capsys, benchmark):
    rows = []
    for name, data in speed_results.items():
        rows.append([name, f"{data['compiled_runs_per_sec']:.2f}",
                     f"{data['lowered_runs_per_sec']:.2f}",
                     f"{data['legacy_runs_per_sec']:.2f}",
                     f"{data['null_probe_runs_per_sec']:.2f}",
                     f"{data['three_probe_runs_per_sec']:.2f}",
                     f"{data['compiled_speedup']:.2f}x",
                     f"{data['speedup']:.2f}x"])
    rows.append(["ubsuite (all 150, setup-dominated)",
                 f"{ubsuite_aggregate['compiled_runs_per_sec']:.1f}",
                 f"{ubsuite_aggregate['lowered_runs_per_sec']:.1f}",
                 f"{ubsuite_aggregate['legacy_runs_per_sec']:.1f}",
                 "—", "—", "—",
                 f"{ubsuite_aggregate['speedup']:.2f}x"])

    def build_table() -> str:
        return render_table(
            ["program", "compiled runs/s", "lowered runs/s", "legacy runs/s",
             "null-probe runs/s", "3-probe runs/s",
             "compiled/lowered", "lowered/legacy"],
            rows,
            title="Dynamic-stage throughput: compiled VM vs lowered closures "
                  "vs legacy walker vs probe instrumentation")

    table = benchmark(build_table)
    publish("interp_speed.txt", table, capsys)

    payload = dict(speed_results)
    payload["ubsuite-aggregate"] = ubsuite_aggregate
    (RESULTS_DIR / "interp_speed.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def test_compiled_meets_speedup_target(speed_results):
    # CI gate: the register-bytecode VM must hold its 2x-over-the-closures
    # target on the programs inside its native subset.  A compiler bug that
    # silently drops a native function to the fallback shows up here as a
    # ~1x ratio long before it would show in any verdict.
    for name in COMPILED_NATIVE_PROGRAMS:
        data = speed_results[name]
        assert data["compiled_speedup"] >= MIN_COMPILED_SPEEDUP, (name, data)


def test_compiled_never_slows_a_program_down_badly(speed_results):
    # Programs outside the native subset (pointer-walk) fall back to the
    # lowered closures per function; the fallback must cost compile time
    # only, never run-time throughput.
    for name, data in speed_results.items():
        assert data["compiled_speedup"] > 0.85, (name, data)


def test_null_probe_overhead_within_budget(speed_results):
    # CI gate: the probe-capable entry point with no probes attached must
    # stay within 5% of the plain compiled fast path on the arith-loop
    # benchmark — the compile-time null-probe specialization at work.
    data = speed_results["arith-loop"]
    assert data["null_probe_overhead"] <= MAX_NULL_PROBE_OVERHEAD, data
    # Every program gets the wider budget, so a probe-dispatch regression
    # on call- or pointer-heavy paths cannot hide behind the arith-loop
    # gate.
    for name, data in speed_results.items():
        assert data["null_probe_overhead"] <= MAX_NULL_PROBE_OVERHEAD_ANY, (
            name, data)


def test_lowering_meets_speedup_target(speed_results):
    speedups = [data["speedup"] for data in speed_results.values()]
    geomean = 1.0
    for value in speedups:
        geomean *= value
    geomean **= 1.0 / len(speedups)
    assert geomean >= MIN_GEOMEAN_SPEEDUP, (
        f"lowered fast path geomean speedup {geomean:.2f}x fell below "
        f"{MIN_GEOMEAN_SPEEDUP}x over {speed_results}")


def test_lowering_never_slows_a_program_down_badly(speed_results, ubsuite_aggregate):
    # Even the least interpreter-bound program must not regress: the lowered
    # form costs one compile-time pass, never run-time throughput.  The
    # setup-dominated ubsuite aggregate is gated too — the geomean target
    # above excludes it by design, so without this check a per-run overhead
    # regression on tiny programs would only surface once a poisoned
    # baseline reached compare_results.py.
    for name, data in speed_results.items():
        assert data["speedup"] > 0.85, (name, data)
    assert ubsuite_aggregate["speedup"] > 0.85, ubsuite_aggregate
