"""E3 — the §5.2.1 classification counts and §5.2.2 suite coverage.

The paper reports that the C11 standard lists 221 undefined behaviors, of
which 92 are statically detectable and 129 only dynamically detectable, and
that the authors' suite covers 70 behaviors with 178 tests (at least one test
for each of the 42 non-library, non-implementation-specific dynamic
behaviors).  This benchmark regenerates the corresponding table for our
catalog and suite, side by side with the paper's numbers.
"""

from repro.reporting import render_table
from repro.suites.ubsuite import BEHAVIOR_TESTS
from repro.ub.catalog import (
    PAPER_DYNAMIC_BEHAVIORS,
    PAPER_STATIC_BEHAVIORS,
    PAPER_TOTAL_BEHAVIORS,
    UB_CATALOG,
    count_covered,
    count_dynamic,
    count_static,
)

from benchmarks.conftest import publish


def _suite_counts():
    behaviors = {entry.behavior: entry for entry in BEHAVIOR_TESTS}
    static = sum(1 for entry in behaviors.values() if entry.stage == "static")
    dynamic = sum(1 for entry in behaviors.values() if entry.stage == "dynamic")
    return len(behaviors), static, dynamic, 2 * len(behaviors)


def test_classification_counts(undefinedness_suite, capsys, benchmark):
    behaviors, static, dynamic, tests = benchmark(_suite_counts)
    rows = [
        ["undefined behaviors in the standard", PAPER_TOTAL_BEHAVIORS, len(UB_CATALOG)],
        ["  statically detectable", PAPER_STATIC_BEHAVIORS, count_static()],
        ["  dynamically detectable", PAPER_DYNAMIC_BEHAVIORS, count_dynamic()],
        ["behaviors mapped to checker error kinds", "-", count_covered()],
        ["behaviors covered by the test suite", 70, behaviors],
        ["  static behaviors in the suite", "-", static],
        ["  dynamic behaviors in the suite", "-", dynamic],
        ["test programs in the suite", 178, tests],
    ]
    table = render_table(["quantity", "paper", "this reproduction"], rows,
                         title="Undefined-behavior classification (Section 5.2)")
    publish("catalog_counts.txt", table, capsys)

    # Shape checks: the dynamic side is the majority in both the paper's
    # classification and ours, and the suite leans dynamic like the paper's.
    assert PAPER_STATIC_BEHAVIORS + PAPER_DYNAMIC_BEHAVIORS == PAPER_TOTAL_BEHAVIORS
    assert count_static() + count_dynamic() == len(UB_CATALOG)
    assert count_dynamic() > count_static()
    assert dynamic > static
    assert behaviors >= 60
    assert tests >= 120


def test_bench_catalog_queries(benchmark):
    """pytest-benchmark target: catalog classification queries."""

    def classify():
        return count_static(), count_dynamic(), count_covered()

    static, dynamic, covered = benchmark(classify)
    assert static + dynamic == len(UB_CATALOG)
    assert covered > 0
