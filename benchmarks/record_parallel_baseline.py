"""Record the committed >=4-CPU parallel baseline — on a real >=4-CPU host.

The ``parallel_speedup`` ratios of ``pool_speed.json`` / ``fuzz_speed.json``
are only meaningful when the host genuinely has as many CPUs as the
benchmark uses workers (``jobs=4``).  The development seed for this repo was
recorded on a 1-CPU container, so its committed results self-SKIP the
floor-3.0 gate; this script produces the committed artifact that turns the
SKIP into a real gate.  Usage, on a machine with at least 4 CPUs::

    python benchmarks/record_parallel_baseline.py

It re-runs the pool and fuzz-throughput benchmarks, verifies every recorded
entry really measured ``host_cpus >= jobs`` (a 1-CPU run aborts — this
script refuses to fabricate a baseline the gate would then trust), and
writes ``benchmarks/results/parallel_baseline/{pool,fuzz}_speed.json`` plus
a provenance stamp.  Commit that directory; the CI ``bench-parallel`` job
prefers it as the comparison baseline, so the >=3.0 floor and the 15%%
regression check both run against honest numbers.

Exit status: 0 on success, 2 when the host is too small or the fresh
results are unusable.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import shutil
import subprocess
import sys

RESULTS = pathlib.Path(__file__).resolve().parent / "results"
BASELINE_DIR = RESULTS / "parallel_baseline"
FILES = ("pool_speed.json", "fuzz_speed.json")
MIN_CPUS = 4


def fail(message: str) -> "SystemExit":
    print(f"record_parallel_baseline: {message}", file=sys.stderr)
    return SystemExit(2)


def main() -> int:
    cpus = os.cpu_count() or 1
    if cpus < MIN_CPUS:
        raise fail(
            f"host has {cpus} CPU(s); a parallel baseline recorded here "
            f"would be meaningless and the gate would enforce it as truth. "
            f"Run this on a machine with >= {MIN_CPUS} CPUs "
            "(the CI bench-parallel runner qualifies)."
        )

    repo = RESULTS.parent.parent
    env = dict(os.environ, PYTHONPATH=str(repo / "src"))
    print(f"recording parallel baseline on {cpus} CPUs ...")
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "benchmarks/test_bench_pool.py",
            "benchmarks/test_bench_fuzz.py::test_fuzz_throughput",
        ],
        cwd=repo,
        env=env,
    )
    if completed.returncode != 0:
        raise fail("benchmark run failed; nothing recorded")

    entries = {}
    for name in FILES:
        path = RESULTS / name
        if not path.exists():
            raise fail(f"{path} missing after the benchmark run")
        data = json.loads(path.read_text(encoding="utf-8"))
        for program, entry in data.items():
            host_cpus = entry.get("host_cpus")
            jobs = entry.get("jobs")
            if "parallel_speedup" not in entry:
                continue
            if not isinstance(host_cpus, int) or host_cpus < (jobs or MIN_CPUS):
                raise fail(
                    f"{name}:{program} records host_cpus={host_cpus} < "
                    f"jobs={jobs}; refusing to commit an undersized "
                    "measurement as the baseline"
                )
        entries[name] = data

    BASELINE_DIR.mkdir(exist_ok=True)
    for name in FILES:
        shutil.copyfile(RESULTS / name, BASELINE_DIR / name)
    now = datetime.datetime.now(datetime.timezone.utc)
    stamp = {
        "recorded_utc": now.strftime("%Y-%m-%dT%H:%M:%SZ"),
        "host_cpus": cpus,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "files": list(FILES),
    }
    (BASELINE_DIR / "provenance.json").write_text(
        json.dumps(stamp, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"baseline written to {BASELINE_DIR}; commit it so the "
        "bench-parallel gate runs for real"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
