"""E10 — symbolic proving throughput: one proof vs the concrete programs it covers.

The abstract interval engine's value proposition is quantification: a single
``prove_source`` call over an input range renders a verdict for *every*
concretization, where the dynamic engines need one full run per input value.
This benchmark makes that trade measurable.  For each program it measures

* the wall-clock cost of the range proof (median of repeated runs), and
* the steady-state throughput of the concrete checker on the same program
  (runs/second, compile warmed outside the clock),

and reports ``coverage_ratio``: how many times more concrete-checker work
the proof replaces than it costs —

    coverage_ratio = covered_inputs / (prove_seconds * concrete_runs_per_sec)

i.e. (inputs covered by the proof) / (inputs the concrete checker could have
visited in the time the proof took).  The gate requires >= 100x on the
arithmetic/overflow family, where ranges are wide and proofs are cheap; the
observed values sit orders of magnitude above that (a 2^20-value range
proves in a few milliseconds).  Results go to
``benchmarks/results/symbolic_speed.txt`` (table) and ``symbolic_speed.json``
(machine-readable; ``coverage_ratio`` is reported as an informational row by
``compare_results.py`` — absolute throughput varies with the host, and the
ratio's magnitude is dominated by the chosen range widths, so it documents
rather than gates regressions).
"""

import json
import statistics
import time

import pytest

from repro.core.config import CheckerOptions
from repro.core.kcc import KccTool
from repro.reporting import render_table
from repro.symbolic import PROVED_DEFINED, PROVED_UNDEFINED, prove_unit

from benchmarks.conftest import RESULTS_DIR, publish

#: name -> (source, inputs, expected verdict, gated family?).
PROGRAMS = {
    "arith-range": (
        "int main(void) {\n"
        "  int x = 0;\n"
        "  int y = x * 2 + 7;\n"
        "  int z = y / 3;\n"
        "  return z >= 0;\n"
        "}\n",
        {"x": (0, 1 << 20)},
        PROVED_DEFINED,
        True,
    ),
    "overflow-range": (
        "int main(void) {\n"
        "  int x = 2000000000;\n"
        "  int y = x + x;\n"
        "  return y > 0;\n"
        "}\n",
        {"x": (2_000_000_000, 2_147_483_647)},
        PROVED_UNDEFINED,
        True,
    ),
    "guarded-divide-range": (
        "int main(void) {\n"
        "  int x = 5;\n"
        "  if (x != 0) { return 1000 / x > 0; }\n"
        "  return 0;\n"
        "}\n",
        {"x": (0, 1 << 16)},
        PROVED_DEFINED,
        True,
    ),
    "loop-range": (
        "int main(void) {\n"
        "  int x = 1;\n"
        "  int s = 0;\n"
        "  int i;\n"
        "  for (i = 0; i < 20; i = i + 1) { s = s + x; }\n"
        "  return s >= 0;\n"
        "}\n",
        {"x": (0, 65535)},
        PROVED_DEFINED,
        False,  # loop unrolling makes this the expensive proof; report only
    ),
}

#: The acceptance floor on the gated (arithmetic/overflow) programs: one
#: proof must replace at least 100x the concrete work it costs.
MIN_COVERAGE_RATIO = 100.0

PROVE_REPEATS = 5
CONCRETE_WINDOW_SECONDS = 0.3


@pytest.fixture(scope="module")
def symbolic_results():
    options = CheckerOptions()
    tool = KccTool(options)
    results = {}
    for name, (source, inputs, expected, gated) in PROGRAMS.items():
        compiled = tool.compile_unit(source, filename=name)
        assert compiled.ok, name

        durations = []
        for _ in range(PROVE_REPEATS):
            start = time.perf_counter()
            report = prove_unit(compiled, options=options, inputs=inputs)
            durations.append(time.perf_counter() - start)
        assert report.verdict == expected, f"{name}: {report.render()}"
        prove_seconds = statistics.median(durations)

        tool.run_unit(compiled)  # warm the dynamic stage
        runs = 0
        start = time.perf_counter()
        while time.perf_counter() - start < CONCRETE_WINDOW_SECONDS:
            tool.run_unit(compiled)
            runs += 1
        concrete_runs_per_sec = runs / (time.perf_counter() - start)

        concrete_equivalent = prove_seconds * concrete_runs_per_sec
        results[name] = {
            "verdict": report.verdict,
            "covered_inputs": report.covered_inputs,
            "prove_seconds": prove_seconds,
            "concrete_runs_per_sec": concrete_runs_per_sec,
            "coverage_ratio": (
                report.covered_inputs / concrete_equivalent
                if concrete_equivalent > 0
                else float("inf")
            ),
            "gated": gated,
        }
    return results


def test_symbolic_speed_tables(symbolic_results, capsys):
    rows = []
    for name, entry in symbolic_results.items():
        rows.append(
            [
                name,
                entry["verdict"],
                f"{entry['covered_inputs']:,}",
                f"{entry['prove_seconds'] * 1000:.1f} ms",
                f"{entry['concrete_runs_per_sec']:.0f}",
                f"{entry['coverage_ratio']:,.0f}x",
                "yes" if entry["gated"] else "no",
            ]
        )
    table = render_table(
        [
            "program",
            "verdict",
            "inputs covered",
            "proof cost",
            "concrete runs/sec",
            "coverage ratio",
            "gated",
        ],
        rows,
        title="E10: one range proof vs equivalent concrete-checker work",
    )
    publish("symbolic_speed.txt", table, capsys)
    payload = {
        name: {key: value for key, value in entry.items()}
        for name, entry in symbolic_results.items()
    }
    (RESULTS_DIR / "symbolic_speed.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def test_coverage_ratio_floor(symbolic_results):
    for name, entry in symbolic_results.items():
        if not entry["gated"]:
            continue
        assert entry["coverage_ratio"] >= MIN_COVERAGE_RATIO, (
            f"{name}: coverage ratio {entry['coverage_ratio']:.1f} below "
            f"{MIN_COVERAGE_RATIO}"
        )


def test_proofs_quantify_over_wide_ranges(symbolic_results):
    """The point of the exercise: ranges far too wide to enumerate."""
    assert symbolic_results["arith-range"]["covered_inputs"] > 1_000_000
