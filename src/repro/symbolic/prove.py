"""Verdicts: turning one abstract execution into a range proof.

A proof here is a statement about *every* concrete execution drawn from
the declared input ranges (the whole singleton family when no inputs are
declared):

* ``PROVED_DEFINED`` — the abstract execution completed, recorded no
  possible undefined behavior, and never had to widen a loop.  Every
  concrete run from the ranges is defined.  (Widening is excluded on
  purpose: a widened fixpoint cannot establish termination, and the
  concrete engines report a non-terminating run as INCONCLUSIVE, not
  DEFINED.)
* ``PROVED_UNDEFINED`` — a definite path (no approximate fork crossed)
  reached an operation that is undefined for every concretization.
  ``kind``/``line`` name the first such operation in evaluation order,
  so they match what the dynamic engines report.
* ``INCONCLUSIVE`` — everything else: subset bailouts, widened loops,
  UBs that are only possible, paths whose reachability is approximate.

The asymmetry is the soundness contract: both PROVED verdicts are
universally quantified over the input ranges and are cross-checked by
:mod:`repro.symbolic.oracle` against concrete runs on sampled points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import DEFAULT_OPTIONS, CheckerOptions
from repro.core.kcc import CompiledUnit, KccTool
from repro.errors import UBKind
from repro.symbolic.abseval import analyze
from repro.symbolic.domain import Interval, PossibleUB

PROVED_DEFINED = "PROVED_DEFINED"
PROVED_UNDEFINED = "PROVED_UNDEFINED"
INCONCLUSIVE = "INCONCLUSIVE"


@dataclass
class ProveReport:
    """The outcome of one range proof attempt."""

    verdict: str
    kind: Optional[UBKind] = None
    line: int = 0
    message: str = ""
    witness: Optional[Interval] = None
    reason: str = ""
    inputs: dict = field(default_factory=dict)
    covered_inputs: int = 1
    exit_interval: Optional[Interval] = None
    possible: list = field(default_factory=list)
    widened: bool = False

    @property
    def proved(self) -> bool:
        return self.verdict in (PROVED_DEFINED, PROVED_UNDEFINED)

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "kind": self.kind.name if self.kind else None,
            "line": self.line,
            "message": self.message,
            "witness": str(self.witness) if self.witness else None,
            "reason": self.reason,
            "inputs": {name: list(bounds) for name, bounds in self.inputs.items()},
            "covered_inputs": self.covered_inputs,
            "exit_interval": (str(self.exit_interval) if self.exit_interval else None),
            "possible": [
                {"kind": ub.kind.name, "line": ub.line, "message": ub.message}
                for ub in self.possible
            ],
            "widened": self.widened,
        }

    def render(self) -> str:
        lines = []
        if self.inputs:
            ranges = ", ".join(
                f"{name} in [{lo}, {hi}]" for name, (lo, hi) in self.inputs.items()
            )
            lines.append(
                f"inputs: {ranges}  " f"({self.covered_inputs} concrete programs)"
            )
        if self.verdict == PROVED_DEFINED:
            lines.append(
                "PROVED_DEFINED: every execution in the input "
                "ranges is free of undefined behavior"
            )
            if self.exit_interval is not None:
                lines.append(f"  exit status interval: {self.exit_interval}")
        elif self.verdict == PROVED_UNDEFINED:
            kind = self.kind.name if self.kind else "?"
            lines.append(
                f"PROVED_UNDEFINED({kind}) at line {self.line}: " f"{self.message}"
            )
            if self.witness is not None:
                lines.append(f"  witness interval: {self.witness}")
        else:
            lines.append(f"INCONCLUSIVE: {self.reason}")
            for ub in self.possible:
                lines.append(
                    f"  possible {ub.kind.name} at line {ub.line}: " f"{ub.message}"
                )
        return "\n".join(lines)


def _covered(inputs: dict) -> int:
    total = 1
    for lo, hi in inputs.values():
        total *= hi - lo + 1
    return total


def prove_unit(
    compiled: CompiledUnit,
    *,
    options: CheckerOptions = DEFAULT_OPTIONS,
    inputs: Optional[dict] = None,
) -> ProveReport:
    """Attempt a range proof for one compiled translation unit."""
    inputs = dict(inputs or {})
    covered = _covered(inputs)
    if compiled.parse_error is not None:
        return ProveReport(
            verdict=INCONCLUSIVE,
            reason=f"parse error: {compiled.parse_error}",
            inputs=inputs,
            covered_inputs=covered,
        )
    if compiled.static_violations:
        violation = compiled.static_violations[0]
        # A constraint violation is input-independent: every concrete run
        # of the unit is flagged before execution starts.
        return ProveReport(
            verdict=PROVED_UNDEFINED,
            kind=violation.kind,
            line=violation.line,
            message=violation.message,
            inputs=inputs,
            covered_inputs=covered,
        )
    result = analyze(compiled.unit, options, inputs)
    possible = list(result.possible)
    if result.status == "bail":
        return ProveReport(
            verdict=INCONCLUSIVE,
            reason=result.bail_reason,
            inputs=inputs,
            covered_inputs=covered,
            possible=possible,
            widened=result.widened,
        )
    if result.status == "stuck":
        certain: Optional[PossibleUB] = result.certain
        if certain is not None:
            return ProveReport(
                verdict=PROVED_UNDEFINED,
                kind=certain.kind,
                line=certain.line,
                message=certain.message,
                witness=certain.witness,
                inputs=inputs,
                covered_inputs=covered,
                possible=possible,
                widened=result.widened,
            )
        return ProveReport(
            verdict=INCONCLUSIVE,
            reason="every abstract path died without a " "definite culprit",
            inputs=inputs,
            covered_inputs=covered,
            possible=possible,
            widened=result.widened,
        )
    # completed
    if possible:
        first = possible[0]
        return ProveReport(
            verdict=INCONCLUSIVE,
            reason=f"possible {first.kind.name} at line " f"{first.line}",
            inputs=inputs,
            covered_inputs=covered,
            possible=possible,
            widened=result.widened,
        )
    if result.widened:
        return ProveReport(
            verdict=INCONCLUSIVE,
            reason="a loop required widening; termination " "is not established",
            inputs=inputs,
            covered_inputs=covered,
            widened=True,
        )
    exit_interval = (
        Interval(result.exit_value.lo, result.exit_value.hi)
        if result.exit_value is not None
        else None
    )
    return ProveReport(
        verdict=PROVED_DEFINED,
        inputs=inputs,
        covered_inputs=covered,
        exit_interval=exit_interval,
    )


def prove_source(
    source: str,
    *,
    inputs: Optional[dict] = None,
    options: CheckerOptions = DEFAULT_OPTIONS,
    filename: str = "<prove>",
) -> ProveReport:
    """Parse, statically check, then attempt a range proof on ``source``."""
    tool = KccTool(options)
    compiled = tool.compile_unit(source, filename=filename)
    return prove_unit(compiled, options=options, inputs=inputs)


__all__ = [
    "INCONCLUSIVE",
    "PROVED_DEFINED",
    "PROVED_UNDEFINED",
    "ProveReport",
    "prove_source",
    "prove_unit",
]
