"""CI smoke for the prove pipeline: ``python -m repro.symbolic.smoke``.

Runs range proofs over a small fixed corpus — the full ubsuite
arithmetic slice (bad and good variants) plus a handful of
symbolic-input programs — and fails (exit 1) unless:

* at least one unit is PROVED_DEFINED,
* at least one unit is PROVED_UNDEFINED, and
* the soundness oracle finds zero mismatches across every proof.

This is the cheap always-on version of the exhaustive soundness tests in
``tests/symbolic/``; it is wired into CI as the ``prove-smoke`` job.
"""

from __future__ import annotations

import sys

from repro.suites.ubsuite import BEHAVIOR_TESTS, GROUP_ARITHMETIC
from repro.symbolic.oracle import check_proved_report
from repro.symbolic.prove import (
    INCONCLUSIVE,
    PROVED_DEFINED,
    PROVED_UNDEFINED,
    prove_source,
)

#: Symbolic-input programs: (label, source, inputs).
INPUT_CORPUS = [
    (
        "guarded-divide",
        "int main(void) {\n"
        "  int x = 7;\n"
        "  if (x != 0) { int r = 100 / x; return r > 0; }\n"
        "  return 0;\n"
        "}\n",
        {"x": (0, 50)},
    ),
    (
        "range-add-defined",
        "int main(void) {\n"
        "  int x = 0;\n"
        "  int y = x + 1000;\n"
        "  return y > 0;\n"
        "}\n",
        {"x": (0, 1000000)},
    ),
    (
        "range-overflow-certain",
        "int main(void) {\n"
        "  int x = 2147483000;\n"
        "  int y = x + 1000;\n"
        "  return y > 0;\n"
        "}\n",
        {"x": (2147483000, 2147483647)},
    ),
    (
        "loop-accumulate",
        "int main(void) {\n"
        "  int x = 3;\n"
        "  int s = 0;\n"
        "  int i;\n"
        "  for (i = 0; i < 10; i = i + 1) { s = s + x; }\n"
        "  return s >= 0;\n"
        "}\n",
        {"x": (0, 100)},
    ),
]


def run(argv: list[str]) -> int:
    proved_defined = 0
    proved_undefined = 0
    inconclusive = 0
    mismatches = 0
    rows = []

    def attempt(label: str, source: str, inputs=None) -> None:
        nonlocal proved_defined, proved_undefined, inconclusive, mismatches
        report = prove_source(source, inputs=inputs)
        bad = check_proved_report(source, report)
        if report.verdict == PROVED_DEFINED:
            proved_defined += 1
        elif report.verdict == PROVED_UNDEFINED:
            proved_undefined += 1
        else:
            inconclusive += 1
        mismatches += len(bad)
        detail = (report.kind.name if report.kind else report.reason[:48])
        rows.append((label, report.verdict, detail, len(bad)))
        for mismatch in bad:
            rows.append((label, "SOUNDNESS", mismatch.describe(), 1))

    for behavior in BEHAVIOR_TESTS:
        if behavior.group != GROUP_ARITHMETIC:
            continue
        attempt(f"{behavior.behavior}/bad", behavior.bad)
        attempt(f"{behavior.behavior}/good", behavior.good)
    for label, source, inputs in INPUT_CORPUS:
        attempt(f"input/{label}", source, inputs)

    width = max(len(row[0]) for row in rows)
    for label, verdict, detail, bad in rows:
        flag = "  <-- MISMATCH" if bad and verdict != INCONCLUSIVE else ""
        print(f"{label:{width}s}  {verdict:17s} {detail}{flag}")
    print(
        f"\nproved-defined={proved_defined} "
        f"proved-undefined={proved_undefined} "
        f"inconclusive={inconclusive} oracle-mismatches={mismatches}"
    )

    if proved_defined == 0:
        print("FAIL: no unit was proved defined", file=sys.stderr)
        return 1
    if proved_undefined == 0:
        print("FAIL: no unit was proved undefined", file=sys.stderr)
        return 1
    if mismatches:
        print(
            "FAIL: the soundness oracle found concrete counterexamples", file=sys.stderr
        )
        return 1
    print("prove-smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(run(sys.argv[1:]))
