"""The abstract evaluator: one pass covers a family of concrete inputs.

This walks the parsed AST of the supported fuzz subset with
:class:`repro.symbolic.domain.AbstractInt` values, driven by the *same*
per-site facts (:func:`repro.core.lowering.int_type_facts` /
:func:`repro.core.lowering.int_binary_facts`) that specialize the concrete
engines, so every armed ``check_*`` becomes an interval test.

Design contract — three ways out, all honest:

* **completed**: main finished on every abstract path.  If no
  :class:`PossibleUB` was recorded and no loop needed widening, every
  concrete execution drawn from the input ranges is defined.
* **stuck with a certain UB**: a path whose reachability is *definite*
  (no abstract fork taken, no precision-losing refinement survived into
  it) reached an operation where every concretization triggers the same
  undefined behavior — the first such operation in the engine's
  left-to-right order, so the kind and line match the dynamic verdict.
* **bail**: the program uses something outside the modeled subset
  (floats, switch/goto, unknown pointers, recursion, unbounded loops the
  widening cannot finish, ...).  Never guess: bailing is INCONCLUSIVE.

Anything that loses path precision (an indefinite branch, a widened
loop) *downgrades* certainty — certain UBs found beyond such a point are
reported as possible only, which can cost a PROVED_UNDEFINED but can
never fabricate one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct
from repro.core.config import DEFAULT_OPTIONS, CheckerOptions
from repro.core.lowering import IntTypeFacts, int_binary_facts, int_type_facts
from repro.errors import UBKind
from repro.symbolic.domain import (
    AbstractInt,
    ConstraintStore,
    Interval,
    PossibleUB,
    abstract_binary,
    abstract_bool,
    abstract_complement,
    abstract_convert,
    abstract_negate,
)

#: Loop iterations executed precisely before switching to widening.
MAX_UNROLL = 256
#: Widening iterations before giving up on a fixpoint.
MAX_WIDEN = 64
#: Abstract evaluation steps (statements + expressions) before bailing.
MAX_STEPS = 400_000
#: Call depth (helpers calling helpers) before bailing.
MAX_CALL_DEPTH = 24

_COMPARE_OPS = ("<", ">", "<=", ">=", "==", "!=")
_NEGATED_COMPARE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}
_INCDEC_OPS = ("++pre", "--pre", "++post", "--post")


class AbstractBail(Exception):
    """The program left the modeled subset; the analysis is inconclusive."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


class _Stuck(Exception):
    """No concretization of the current abstract path continues past here.

    ``ub`` carries the proving certain UB when the path was definite;
    None when the stop is only the death of an over-approximated path.
    """

    def __init__(self, ub: Optional[PossibleUB]) -> None:
        self.ub = ub
        super().__init__(ub.kind.name if ub else "dead abstract path")


# ---------------------------------------------------------------------------
# Cells (immutable-style: writes replace the cell, keeping its uid)
# ---------------------------------------------------------------------------

_uids = itertools.count(1)

#: initialization state of a cell: definitely / definitely-not / on-some-paths
_INIT_YES, _INIT_NO, _INIT_MAYBE = "yes", "no", "maybe"


@dataclass(frozen=True)
class _IntCell:
    uid: int
    ctype: ct.CType
    value: Optional[AbstractInt]
    init: str
    const: bool = False


@dataclass(frozen=True)
class _ArrCell:
    uid: int
    element: ct.CType
    values: tuple
    inits: tuple
    const: bool = False

    @property
    def length(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class _PtrCell:
    uid: int
    pointee: ct.CType
    #: ("int", uid) | ("elem", uid, lo, hi) | ("fn", name)
    targets: tuple
    null: str  # "yes" | "no" | "maybe"
    init: str = _INIT_YES
    const: bool = False


@dataclass(frozen=True)
class _PtrVal:
    """A pointer rvalue (same shape as the cell, without identity)."""

    pointee: Optional[ct.CType]
    targets: tuple
    null: str


@dataclass(frozen=True)
class _Opaque:
    """A value we cannot model (e.g. printf's return); bails when *used*."""

    reason: str


_Value = Union[AbstractInt, _PtrVal, _Opaque]


def _merge_init(a: str, b: str) -> str:
    return a if a == b else _INIT_MAYBE


def _join_opt(a: Optional[AbstractInt], b: Optional[AbstractInt]) -> Optional[
    AbstractInt
]:
    if a is None:
        return b
    if b is None:
        return a
    return a.join(b)


# ---------------------------------------------------------------------------
# The abstract environment
# ---------------------------------------------------------------------------

class _AbsEnv:
    """Scoped bindings plus the relational store.

    ``barriers[i]`` marks scope ``i`` as a function-frame boundary: name
    lookup does not cross it downward (except into the global scope 0),
    which is how helper calls reuse one environment object.
    """

    __slots__ = ("scopes", "barriers", "store")

    def __init__(self) -> None:
        self.scopes: list[dict] = [{}]
        self.barriers: list[bool] = [False]
        self.store = ConstraintStore()

    def copy(self) -> "_AbsEnv":
        dup = _AbsEnv.__new__(_AbsEnv)
        dup.scopes = [dict(scope) for scope in self.scopes]
        dup.barriers = list(self.barriers)
        dup.store = self.store.copy()
        return dup

    def push(self, barrier: bool = False) -> None:
        self.scopes.append({})
        self.barriers.append(barrier)

    def pop(self) -> None:
        for cell in self.scopes[-1].values():
            self.store.forget(cell.uid)
        del self.scopes[-1]
        del self.barriers[-1]

    def _visible_range(self):
        for index in range(len(self.scopes) - 1, -1, -1):
            yield index
            if self.barriers[index]:
                break
        else:
            return
        if len(self.scopes) > 0:
            yield 0

    def lookup(self, name: str):
        for index in self._visible_range():
            cell = self.scopes[index].get(name)
            if cell is not None:
                return cell
        return None

    def bind(self, name: str, cell) -> None:
        self.scopes[-1][name] = cell

    def replace(self, uid: int, cell) -> None:
        """Replace the cell with this uid, wherever it is bound."""
        for scope in reversed(self.scopes):
            for name, existing in scope.items():
                if existing.uid == uid:
                    scope[name] = cell
                    self.store.forget(uid)
                    return
        raise KeyError(uid)

    def by_uid(self, uid: int):
        for scope in reversed(self.scopes):
            for cell in scope.values():
                if cell.uid == uid:
                    return cell
        return None

    def join(self, other: "_AbsEnv") -> "_AbsEnv":
        """Merge-point join: cell-wise, over identical scope structure."""
        if len(self.scopes) != len(other.scopes):
            raise AbstractBail("abstract join over mismatched scopes")
        joined = _AbsEnv.__new__(_AbsEnv)
        joined.barriers = list(self.barriers)
        joined.scopes = []
        for mine, theirs in zip(self.scopes, other.scopes):
            scope = {}
            for name, cell in mine.items():
                other_cell = theirs.get(name)
                if other_cell is None:
                    continue
                scope[name] = _join_cell(cell, other_cell)
            joined.scopes.append(scope)
        joined.store = self.store.join(other.store)
        return joined


def _join_cell(a, b):
    if type(a) is not type(b) or a.uid != b.uid:
        raise AbstractBail("abstract join over mismatched cells")
    if isinstance(a, _IntCell):
        return _IntCell(
            a.uid,
            a.ctype,
            _join_opt(a.value, b.value),
            _merge_init(a.init, b.init),
            a.const,
        )
    if isinstance(a, _ArrCell):
        values = tuple(_join_opt(va, vb) for va, vb in zip(a.values, b.values))
        inits = tuple(_merge_init(ia, ib) for ia, ib in zip(a.inits, b.inits))
        return _ArrCell(a.uid, a.element, values, inits, a.const)
    if isinstance(a, _PtrCell):
        targets = a.targets + tuple(t for t in b.targets if t not in a.targets)
        null = _merge_init(a.null, b.null) if a.null != b.null else a.null
        if a.null != b.null:
            null = _INIT_MAYBE
        return _PtrCell(
            a.uid, a.pointee, targets, null, _merge_init(a.init, b.init), a.const
        )
    raise AbstractBail(f"abstract join over {type(a).__name__}")


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass
class AbsResult:
    """What one abstract execution of a translation unit established."""

    status: str                       # "completed" | "stuck" | "bail"
    certain: Optional[PossibleUB] = None
    possible: list[PossibleUB] = field(default_factory=list)
    widened: bool = False
    bail_reason: str = ""
    exit_value: Optional[AbstractInt] = None
    steps: int = 0


# ---------------------------------------------------------------------------
# Side-effect / sequencing hazard scan
# ---------------------------------------------------------------------------

def _effect_nodes(expr: c_ast.Node) -> list:
    return [
        node
        for node in c_ast.walk(expr)
        if isinstance(node, c_ast.Assignment)
        or (isinstance(node, c_ast.UnaryOp) and node.op in _INCDEC_OPS)
        or isinstance(node, c_ast.Call)
    ]


def _reads_of(expr: c_ast.Node, name: str, *, excluding=None) -> int:
    count = 0
    for node in c_ast.walk(expr):
        if excluding is not None and node is excluding:
            # walk() is preorder; prune by skipping the subtree via a
            # recount of its own reads subtracted afterwards.
            continue
        if isinstance(node, c_ast.Identifier) and node.name == name:
            count += 1
    if excluding is not None:
        for node in c_ast.walk(excluding):
            if isinstance(node, c_ast.Identifier) and node.name == name:
                count -= 1
    return count


def _sequencing_hazard(expr: c_ast.Expression) -> bool:
    """Conservative: could the concrete checker flag this full expression
    for unsequenced side effects (or does it interleave effects in a way
    the single-order abstract walk cannot claim to cover)?"""
    effects = _effect_nodes(expr)
    calls = [e for e in effects if isinstance(e, c_ast.Call)]
    mutations = [e for e in effects if not isinstance(e, c_ast.Call)]
    if len(mutations) >= 2:
        return True
    # Effects under a conditionally evaluated operand are out: the
    # abstract walk evaluates both arms valuelessly.
    for node in c_ast.walk(expr):
        if isinstance(node, c_ast.BinaryOp) and node.op in ("&&", "||"):
            if _effect_nodes(node.right):
                return True
        if isinstance(node, c_ast.Conditional):
            if _effect_nodes(node.then) or _effect_nodes(node.otherwise):
                return True
    if len(mutations) == 1:
        effect = mutations[0]
        if calls:
            return True
        if isinstance(effect, c_ast.Assignment):
            target = effect.target
            if isinstance(target, c_ast.Identifier):
                # Reads of the target outside the assignment are unsequenced
                # with the write (`x + (x = 3)`); inside its own value
                # operand they are fine (`x = x + 1`).
                return _reads_of(expr, target.name, excluding=effect) > 0
            # Array element / deref target: require the assignment to be
            # the whole expression.
            return effect is not expr
        operand = effect.operand
        if isinstance(operand, c_ast.Identifier):
            return _reads_of(expr, operand.name, excluding=effect) > 0
        return effect is not expr
    return False


def _subexpr_has_effects(expr: Optional[c_ast.Expression]) -> bool:
    return expr is not None and bool(_effect_nodes(expr))


# ---------------------------------------------------------------------------
# The evaluator
# ---------------------------------------------------------------------------

class AbstractEvaluator:
    """Abstract execution of one translation unit under input ranges."""

    def __init__(
        self,
        unit: c_ast.TranslationUnit,
        options: CheckerOptions = DEFAULT_OPTIONS,
        inputs: Optional[dict[str, tuple[int, int]]] = None,
    ) -> None:
        self.unit = unit
        self.options = options
        self.profile = options.profile
        self.inputs = dict(inputs or {})
        self.functions = unit.functions()
        self.possible: list[PossibleUB] = []
        self.widened = False
        self.steps = 0
        self._soft = 0          # >0: certainty downgraded (approximate context)
        self._call_stack: list[str] = []
        self._bound_inputs: set[str] = set()

    # -- plumbing ----------------------------------------------------------
    def _tick(self) -> None:
        self.steps += 1
        if self.steps > MAX_STEPS:
            raise AbstractBail("abstract step budget exhausted")

    def _facts(self, ctype: ct.CType) -> IntTypeFacts:
        facts = int_type_facts(ctype, self.profile)
        if facts is None:
            raise AbstractBail(f"unmodeled scalar type {ctype}")
        return facts

    def _promoted_facts(self, ctype: ct.CType) -> IntTypeFacts:
        return self._facts(ct.promote_integer(ctype.unqualified(), self.profile))

    def _ub(self, ub: PossibleUB) -> None:
        """Record one UB finding; raise when it definitely stops the run."""
        if ub.certain and self._soft == 0:
            raise _Stuck(ub)
        self.possible.append(
            ub
            if not ub.certain
            else PossibleUB(
                ub.kind, ub.message, ub.line, certain=False, witness=ub.witness
            )
        )
        if ub.certain:
            raise _Stuck(None)

    def _consume(self, ubs: list[PossibleUB]) -> None:
        for ub in ubs:
            if ub.certain and self._soft == 0:
                raise _Stuck(ub)
            self.possible.append(
                ub
                if not ub.certain
                else PossibleUB(
                    ub.kind, ub.message, ub.line, certain=False, witness=ub.witness
                )
            )
        for ub in ubs:
            if ub.certain:
                raise _Stuck(None)

    def _require_int(self, value: _Value, what: str) -> AbstractInt:
        if isinstance(value, AbstractInt):
            return value
        if isinstance(value, _Opaque):
            raise AbstractBail(f"{what}: {value.reason}")
        raise AbstractBail(f"{what}: pointer value where an integer is modeled")

    # -- entry point -------------------------------------------------------
    def run(self) -> AbsResult:
        try:
            env = _AbsEnv()
            self._exec_globals(env)
            main = self.functions.get("main")
            if main is None or main.body is None:
                raise AbstractBail("no main function")
            missing = set(self.inputs) - self._main_decl_names(main)
            if missing:
                raise AbstractBail(
                    f"input(s) {sorted(missing)} are not int declarations " f"in main"
                )
            flows = self._call(main, [], env, main.line)
            exit_value = flows.get("return")
            if exit_value is not None and not isinstance(exit_value, AbstractInt):
                exit_value = None
            if exit_value is None and "normal" in (flows or {}):
                exit_value = AbstractInt.constant(0, ct.INT)
            unbound = set(self.inputs) - self._bound_inputs
            if unbound:
                raise AbstractBail(
                    f"input(s) {sorted(unbound)} were never declared on the "
                    f"executed path"
                )
            return AbsResult(
                status="completed",
                possible=self.possible,
                widened=self.widened,
                exit_value=exit_value,
                steps=self.steps,
            )
        except _Stuck as stuck:
            return AbsResult(
                status="stuck",
                certain=stuck.ub,
                possible=self.possible,
                widened=self.widened,
                steps=self.steps,
            )
        except AbstractBail as bail:
            return AbsResult(
                status="bail",
                bail_reason=bail.reason,
                possible=self.possible,
                widened=self.widened,
                steps=self.steps,
            )

    def _main_decl_names(self, main: c_ast.FunctionDef) -> set[str]:
        names = set()
        for node in c_ast.walk(main.body):
            if isinstance(node, c_ast.Declaration) and isinstance(
                node.type, (ct.IntType,)
            ):
                names.add(node.name)
        return names

    def _exec_globals(self, env: _AbsEnv) -> None:
        for decl in self.unit.globals():
            if decl.storage == "typedef" or not decl.is_definition:
                continue
            self._declare(decl, env, is_global=True)

    # -- function calls ----------------------------------------------------
    def _call(
        self, fndef: c_ast.FunctionDef, args: list[_Value], env: _AbsEnv, line: int
    ) -> dict:
        if fndef.name in self._call_stack:
            raise AbstractBail(f"recursive call to {fndef.name}()")
        if len(self._call_stack) >= MAX_CALL_DEPTH:
            raise AbstractBail("call depth limit")
        ftype = fndef.type
        assert isinstance(ftype, ct.FunctionType)
        if len(args) != len(ftype.parameters):
            raise AbstractBail(f"call to {fndef.name}() with {len(args)} argument(s)")
        env.push(barrier=True)
        self._call_stack.append(fndef.name)
        try:
            for name, ptype, value in zip(
                fndef.parameter_names, ftype.parameters, args
            ):
                facts = self._facts(ptype)
                converted = abstract_convert(
                    facts, self._require_int(value, f"argument {name}")
                )
                env.bind(name, _IntCell(next(_uids), facts.type, converted, _INIT_YES))
            flows = self._exec_block(fndef.body.items, env)
        finally:
            self._call_stack.pop()
        if "break" in flows or "continue" in flows:
            raise AbstractBail("break/continue escaping a function body")
        # Pop the frame scope from every surviving flow env; they all alias
        # chains rooted at `env`, and _exec_block returns envs whose scope
        # stack still carries the frame.
        result: dict = {}
        if "normal" in flows:
            flows["normal"].pop()
            if fndef.name != "main":
                # Value of a call to a function that fell off the end: the
                # subset requires helpers to return on every path.
                raise AbstractBail(
                    f"{fndef.name}() may finish without returning a value"
                )
            result["normal"] = flows["normal"]
        if "return" in flows:
            ret_env, ret_value = flows["return"]
            ret_env.pop()
            if isinstance(ftype.return_type, ct.VoidType):
                result["return"] = None
            else:
                facts = self._facts(ftype.return_type)
                if ret_value is None:
                    raise AbstractBail(f"{fndef.name}() returns without a value")
                result["return"] = abstract_convert(
                    facts, self._require_int(ret_value, "return value")
                )
            result["return_env"] = ret_env
        return result

    # -- statements --------------------------------------------------------
    def _exec_block(self, items: list, env: _AbsEnv) -> dict:
        """Execute a statement list; returns flow -> env (plus return value).

        Flows: "normal" -> env, "break"/"continue" -> env,
        "return" -> (env, value or None).  At most one entry per flow kind
        (same-kind flows are joined).
        """
        outgoing: dict = {}
        current: Optional[_AbsEnv] = env
        for item in items:
            if current is None:
                break
            flows = self._exec_stmt(item, current)
            current = flows.pop("normal", None)
            _merge_flows(outgoing, flows)
        if current is not None:
            outgoing["normal"] = (
                _join_flow_env(outgoing.get("normal"), current)
                if "normal" in outgoing
                else current
            )
        return outgoing

    def _exec_stmt(self, stmt, env: _AbsEnv) -> dict:
        self._tick()
        if isinstance(stmt, c_ast.Declaration):
            self._declare(stmt, env, is_global=False)
            return {"normal": env}
        if isinstance(stmt, c_ast.ExpressionStmt):
            if stmt.expression is not None:
                self._eval_full(stmt.expression, env)
            return {"normal": env}
        if isinstance(stmt, c_ast.Compound):
            env.push()
            flows = self._exec_block(stmt.items, env)
            for key, entry in flows.items():
                (entry[0] if key == "return" else entry).pop()
            return flows
        if isinstance(stmt, c_ast.If):
            return self._exec_if(stmt, env)
        if isinstance(stmt, c_ast.Return):
            value = (
                self._eval_full(stmt.value, env) if stmt.value is not None else None
            )
            return {"return": (env, value)}
        if isinstance(stmt, c_ast.Break):
            return {"break": env}
        if isinstance(stmt, c_ast.Continue):
            return {"continue": env}
        if isinstance(stmt, c_ast.For):
            return self._exec_for(stmt, env)
        if isinstance(stmt, c_ast.While):
            loop = c_ast.For(
                line=stmt.line,
                init=None,
                condition=stmt.condition,
                step=None,
                body=stmt.body,
            )
            return self._exec_for(loop, env)
        if isinstance(stmt, c_ast.DoWhile):
            first = self._exec_loop_body(stmt.body, None, env)
            flows: dict = {}
            broke = first.pop("break", None)
            if broke is not None:
                flows["normal"] = broke
            _merge_flows(flows, {k: v for k, v in first.items() if k == "return"})
            cont = first.get("normal")
            if cont is not None:
                loop = c_ast.For(
                    line=stmt.line,
                    init=None,
                    condition=stmt.condition,
                    step=None,
                    body=stmt.body,
                )
                again = self._exec_for(loop, cont)
                _merge_flows(flows, again)
                normal = again.get("normal")
                if normal is not None:
                    flows["normal"] = (
                        _join_flow_env(flows.get("normal"), normal)
                        if "normal" in flows
                        else normal
                    )
            return flows
        raise AbstractBail(f"unmodeled statement {type(stmt).__name__}")

    def _exec_if(self, stmt: c_ast.If, env: _AbsEnv) -> dict:
        truths = self._branch_condition(stmt.condition, env)
        branch_flows: list[dict] = []
        stucks: list[PossibleUB] = []
        live = 0
        for truth, branch_env in truths:
            live += 1
            body = stmt.then if truth else stmt.otherwise
            soft = len(truths) > 1
            try:
                if soft:
                    self._soft += 1
                try:
                    if body is None:
                        branch_flows.append({"normal": branch_env})
                    else:
                        branch_flows.append(self._exec_stmt(body, branch_env))
                finally:
                    if soft:
                        self._soft -= 1
            except _Stuck as stuck:
                if stuck.ub is not None:
                    stucks.append(stuck.ub)
        if not branch_flows:
            # Every branch died.  Certainty was already recorded/downgraded
            # by _ub under soft mode; a single definite branch re-raises.
            raise _Stuck(stucks[0] if len(stucks) == 1 and len(truths) == 1 else None)
        merged: dict = {}
        for flows in branch_flows:
            _merge_flows(merged, {k: v for k, v in flows.items() if k != "normal"})
            normal = flows.get("normal")
            if normal is not None:
                merged["normal"] = (
                    _join_flow_env(merged.get("normal"), normal)
                    if "normal" in merged
                    else normal
                )
        return merged

    def _exec_loop_body(
        self, body, step: Optional[c_ast.Expression], env: _AbsEnv
    ) -> dict:
        flows = self._exec_stmt(body, env) if body is not None else {"normal": env}
        # continue re-joins the normal path before the step expression.
        cont = flows.pop("continue", None)
        normal = flows.get("normal")
        if cont is not None:
            normal = _join_flow_env(normal, cont) if normal is not None else cont
        if normal is not None and step is not None:
            self._eval_full(step, normal)
        if normal is not None:
            flows["normal"] = normal
        elif "normal" in flows:
            del flows["normal"]
        return flows

    def _exec_for(self, stmt: c_ast.For, env: _AbsEnv) -> dict:
        env.push()
        init = stmt.init
        if isinstance(init, list):
            for decl in init:
                self._declare(decl, env, is_global=False)
        elif isinstance(init, c_ast.Declaration):
            self._declare(init, env, is_global=False)
        elif init is not None:
            self._eval_full(init, env)

        outgoing: dict = {}
        exit_envs: list[_AbsEnv] = []
        current: Optional[_AbsEnv] = env
        unrolled = 0
        while current is not None and unrolled < MAX_UNROLL:
            unrolled += 1
            truths = (
                self._branch_condition(stmt.condition, current)
                if stmt.condition is not None
                else [(True, current)]
            )
            take: Optional[_AbsEnv] = None
            for truth, branch_env in truths:
                if truth:
                    take = branch_env
                else:
                    exit_envs.append(branch_env)
            if take is None:
                current = None
                break
            soft = len(truths) > 1
            try:
                if soft:
                    self._soft += 1
                try:
                    flows = self._exec_loop_body(stmt.body, stmt.step, take)
                finally:
                    if soft:
                        self._soft -= 1
            except _Stuck as stuck:
                if stuck.ub is not None and len(truths) == 1:
                    raise
                current = None
                break
            broke = flows.pop("break", None)
            if broke is not None:
                exit_envs.append(broke)
            _merge_flows(outgoing, {k: v for k, v in flows.items() if k == "return"})
            current = flows.get("normal")
        if current is not None:
            # Ran out of unrolling budget: widen to a fixpoint.
            exit_env, extra = self._widen_loop(stmt, current)
            _merge_flows(outgoing, extra)
            if exit_env is not None:
                exit_envs.append(exit_env)
        normal: Optional[_AbsEnv] = None
        for exit_env in exit_envs:
            normal = exit_env if normal is None else _join_flow_env(normal, exit_env)
        for key, entry in list(outgoing.items()):
            (entry[0] if key == "return" else entry).pop()
        if normal is not None:
            normal.pop()
            outgoing["normal"] = normal
        return outgoing

    def _widen_loop(self, stmt: c_ast.For, env: _AbsEnv,) -> tuple[
        Optional[_AbsEnv], dict
    ]:
        """Widening fixpoint over the loop head; everything inside is soft."""
        self.widened = True
        outgoing: dict = {}
        head = env
        self._soft += 1
        try:
            for _ in range(MAX_WIDEN):
                body_env = head.copy()
                truths = (
                    self._branch_condition(stmt.condition, body_env)
                    if stmt.condition is not None
                    else [(True, body_env)]
                )
                take = None
                for truth, branch_env in truths:
                    if truth:
                        take = branch_env
                after: Optional[_AbsEnv] = None
                if take is not None:
                    try:
                        flows = self._exec_loop_body(stmt.body, stmt.step, take)
                    except _Stuck:
                        flows = {}
                    broke = flows.get("break")
                    if broke is not None:
                        # Break exits fold into the head for simplicity: the
                        # exit join below over-approximates them.
                        pass
                    _merge_flows(
                        outgoing, {k: v for k, v in flows.items() if k == "return"}
                    )
                    after = flows.get("normal")
                    if broke is not None:
                        after = (
                            _join_flow_env(after, broke) if after is not None else broke
                        )
                if after is None:
                    break
                new_head = _widen_env(head, head.join(after), self)
                if _env_equal(new_head, head):
                    head = new_head
                    break
                head = new_head
            else:
                raise AbstractBail("loop widening did not converge")
        finally:
            self._soft -= 1
        # The exit environment: the stable head (condition refinement on
        # exit is sound but unnecessary for the verdict — widening already
        # made the result inconclusive for definedness).
        return head, outgoing

    # -- conditions --------------------------------------------------------
    def _branch_condition(self, cond: c_ast.Expression, env: _AbsEnv,) -> list[
        tuple[bool, _AbsEnv]
    ]:
        """[(truth, env)] — two entries (with refined copies) when indefinite."""
        value = self._eval_full(cond, env)
        may_true, may_false = self._truth(value)
        refinable = not _subexpr_has_effects(cond)
        if may_true and not may_false:
            return [(True, env)]
        if may_false and not may_true:
            return [(False, env)]
        then_env = env.copy()
        else_env = env
        branches: list[tuple[bool, _AbsEnv]] = []
        if not refinable:
            return [(True, then_env), (False, else_env)]
        if self._assume(cond, True, then_env):
            branches.append((True, then_env))
        if self._assume(cond, False, else_env):
            branches.append((False, else_env))
        if not branches:
            raise AbstractBail("contradictory branch refinement")
        return branches

    def _truth(self, value: _Value) -> tuple[bool, bool]:
        if isinstance(value, AbstractInt):
            if not value.contains(0):
                return True, False
            if value.is_constant:
                return False, True
            return True, True
        if isinstance(value, _PtrVal):
            if value.null == "yes" and not value.targets:
                return False, True
            if value.null == "no":
                return True, False
            return True, True
        raise AbstractBail(f"unmodeled condition value: {value.reason}")

    def _assume(self, cond: c_ast.Expression, truth: bool, env: _AbsEnv) -> bool:
        """Refine ``env`` with ``cond == truth``; False if contradictory."""
        if isinstance(cond, c_ast.UnaryOp) and cond.op == "!":
            return self._assume(cond.operand, not truth, env)
        if isinstance(cond, c_ast.Identifier):
            return self._refine_var_vs_const(cond.name, "!=" if truth else "==", 0, env)
        if isinstance(cond, c_ast.BinaryOp) and cond.op in _COMPARE_OPS:
            op = cond.op if truth else _NEGATED_COMPARE[cond.op]
            left_var = self._refinable_var(cond.left, env)
            right_var = self._refinable_var(cond.right, env)
            left_const = self._try_constant(cond.left, env)
            right_const = self._try_constant(cond.right, env)
            if left_var is not None and right_const is not None:
                return self._refine_var_vs_const(left_var, op, right_const, env)
            if right_var is not None and left_const is not None:
                return self._refine_var_vs_const(
                    right_var, _flip_compare(op), left_const, env
                )
            if left_var is not None and right_var is not None:
                left_cell = env.lookup(left_var)
                right_cell = env.lookup(right_var)
                env.store.assume_compare(op, left_cell.uid, right_cell.uid, True)
                return self._refine_var_vs_var(left_cell, op, right_cell, env)
        return True

    def _refinable_var(self, expr, env: _AbsEnv) -> Optional[str]:
        if isinstance(expr, c_ast.Identifier):
            cell = env.lookup(expr.name)
            if isinstance(cell, _IntCell) and cell.value is not None:
                return expr.name
        return None

    def _try_constant(self, expr, env: _AbsEnv) -> Optional[int]:
        if _subexpr_has_effects(expr):
            return None
        self._soft += 1
        saved = len(self.possible)
        try:
            value = self._eval(expr, env)
        except (_Stuck, AbstractBail):
            del self.possible[saved:]
            return None
        finally:
            self._soft -= 1
        del self.possible[saved:]
        if isinstance(value, AbstractInt) and value.is_constant:
            return value.value
        return None

    def _refine_var_vs_const(
        self, name: str, op: str, constant: int, env: _AbsEnv
    ) -> bool:
        cell = env.lookup(name)
        if not isinstance(cell, _IntCell) or cell.value is None:
            return True
        value = cell.value
        refined: Optional[AbstractInt]
        if op == "<":
            refined = value.meet_range(value.lo, constant - 1)
        elif op == "<=":
            refined = value.meet_range(value.lo, constant)
        elif op == ">":
            refined = value.meet_range(constant + 1, value.hi)
        elif op == ">=":
            refined = value.meet_range(constant, value.hi)
        elif op == "==":
            refined = (
                AbstractInt.constant(constant, value.type)
                if value.contains(constant)
                else None
            )
        else:  # "!="
            if value.is_constant:
                refined = None if value.value == constant else value
            elif constant == value.lo:
                refined = value.meet_range(value.lo + 1, value.hi)
            elif constant == value.hi:
                refined = value.meet_range(value.lo, value.hi - 1)
            else:
                refined = value
        if refined is None:
            return False
        env.replace(
            cell.uid, _IntCell(cell.uid, cell.ctype, refined, cell.init, cell.const)
        )
        return True

    def _refine_var_vs_var(
        self, left: _IntCell, op: str, right: _IntCell, env: _AbsEnv
    ) -> bool:
        lv, rv = left.value, right.value
        if lv is None or rv is None:
            return True
        new_l: Optional[AbstractInt] = lv
        new_r: Optional[AbstractInt] = rv
        if op == "<":
            new_l = lv.meet_range(lv.lo, rv.hi - 1)
            new_r = rv.meet_range(lv.lo + 1, rv.hi)
        elif op == "<=":
            new_l = lv.meet_range(lv.lo, rv.hi)
            new_r = rv.meet_range(lv.lo, rv.hi)
        elif op == ">":
            new_l = lv.meet_range(rv.lo + 1, lv.hi)
            new_r = rv.meet_range(rv.lo, lv.hi - 1)
        elif op == ">=":
            new_l = lv.meet_range(rv.lo, lv.hi)
            new_r = rv.meet_range(rv.lo, lv.hi)
        elif op == "==":
            new_l = lv.meet_range(max(lv.lo, rv.lo), min(lv.hi, rv.hi))
            new_r = rv.meet_range(max(lv.lo, rv.lo), min(lv.hi, rv.hi))
        if new_l is None or new_r is None:
            return False
        env.replace(
            left.uid, _IntCell(left.uid, left.ctype, new_l, left.init, left.const)
        )
        env.replace(
            right.uid, _IntCell(right.uid, right.ctype, new_r, right.init, right.const)
        )
        return True

    # -- declarations ------------------------------------------------------
    def _declare(
        self, decl: c_ast.Declaration, env: _AbsEnv, *, is_global: bool
    ) -> None:
        self._tick()
        if decl.storage not in (None, "auto", "register") and not is_global:
            raise AbstractBail(f"{decl.storage} local declaration")
        if is_global and decl.storage not in (None, "static"):
            raise AbstractBail(f"{decl.storage} global declaration")
        dtype = decl.type
        if isinstance(dtype, ct.IntType):
            self._declare_int(decl, dtype, env, is_global=is_global)
            return
        if isinstance(dtype, ct.ArrayType) and isinstance(dtype.element, ct.IntType):
            self._declare_array(decl, dtype, env, is_global=is_global)
            return
        if isinstance(dtype, ct.PointerType):
            self._declare_pointer(decl, dtype, env)
            return
        raise AbstractBail(f"unmodeled declaration type {dtype}")

    def _declare_int(
        self,
        decl: c_ast.Declaration,
        dtype: ct.IntType,
        env: _AbsEnv,
        *,
        is_global: bool,
    ) -> None:
        facts = self._facts(dtype)
        const = dtype.const
        if not is_global and decl.name in self.inputs:
            lo, hi = self.inputs[decl.name]
            if not (facts.lo <= lo <= hi <= facts.hi):
                raise AbstractBail(
                    f"input range [{lo}, {hi}] does not fit {facts.type}"
                )
            self._bound_inputs.add(decl.name)
            env.bind(
                decl.name,
                _IntCell(
                    next(_uids),
                    facts.type,
                    AbstractInt(lo, hi, facts.type),
                    _INIT_YES,
                    const,
                ),
            )
            return
        if decl.initializer is None:
            if is_global:
                env.bind(
                    decl.name,
                    _IntCell(
                        next(_uids),
                        facts.type,
                        AbstractInt.constant(0, facts.type),
                        _INIT_YES,
                        const,
                    ),
                )
            else:
                env.bind(
                    decl.name, _IntCell(next(_uids), facts.type, None, _INIT_NO, const)
                )
            return
        init = decl.initializer
        if isinstance(init, c_ast.InitList):
            if len(init.items) != 1:
                raise AbstractBail("scalar initializer list")
            init = init.items[0]
        value = abstract_convert(
            facts,
            self._require_int(
                self._eval_full(init, env), f"initializer of {decl.name}"
            ),
        )
        cell = _IntCell(next(_uids), facts.type, value, _INIT_YES, const)
        env.bind(decl.name, cell)
        self._record_decl_relation(init, cell, env)

    def _record_decl_relation(self, init, cell: _IntCell, env: _AbsEnv) -> None:
        """`int y = x + c;` (no wrap possible) relates y - x == c."""
        base, delta = None, None
        if isinstance(init, c_ast.Identifier):
            base, delta = init.name, 0
        elif (
            isinstance(init, c_ast.BinaryOp)
            and init.op in ("+", "-")
            and isinstance(init.left, c_ast.Identifier)
            and isinstance(init.right, c_ast.IntegerLiteral)
        ):
            base = init.left.name
            delta = init.right.value if init.op == "+" else -init.right.value
        if base is None:
            return
        source = env.lookup(base)
        if not (
            isinstance(source, _IntCell)
            and source.value is not None
            and source.ctype == cell.ctype
            and cell.value is not None
        ):
            return
        facts = self._facts(cell.ctype)
        if (
            facts.lo <= source.value.lo + delta and source.value.hi + delta <= facts.hi
        ):
            env.store.relate(source.uid, cell.uid, delta, delta)

    def _declare_array(
        self,
        decl: c_ast.Declaration,
        dtype: ct.ArrayType,
        env: _AbsEnv,
        *,
        is_global: bool,
    ) -> None:
        facts = self._facts(dtype.element)
        items = []
        if decl.initializer is not None:
            if not isinstance(decl.initializer, c_ast.InitList):
                raise AbstractBail("array initialized from a non-list")
            items = decl.initializer.items
        length = dtype.length if dtype.length is not None else len(items)
        if length is None or length <= 0 or length > 4096:
            raise AbstractBail(f"unmodeled array length {length}")
        if len(items) > length:
            raise AbstractBail("excess array initializers")
        values: list[Optional[AbstractInt]] = []
        inits: list[str] = []
        for item in items:
            values.append(
                abstract_convert(
                    facts,
                    self._require_int(self._eval_full(item, env), "array initializer"),
                )
            )
            inits.append(_INIT_YES)
        default_init = _INIT_YES if (items or is_global) else _INIT_NO
        default_value = (
            AbstractInt.constant(0, facts.type) if default_init == _INIT_YES else None
        )
        while len(values) < length:
            values.append(default_value)
            inits.append(default_init)
        env.bind(
            decl.name,
            _ArrCell(
                next(_uids),
                facts.type,
                tuple(values),
                tuple(inits),
                dtype.const or dtype.element.const,
            ),
        )

    def _declare_pointer(
        self, decl: c_ast.Declaration, dtype: ct.PointerType, env: _AbsEnv
    ) -> None:
        pointee = dtype.pointee
        if not isinstance(pointee, (ct.IntType, ct.FunctionType)):
            raise AbstractBail(f"unmodeled pointer type {dtype}")
        if decl.initializer is None:
            env.bind(
                decl.name,
                _PtrCell(next(_uids), pointee, (), "maybe", _INIT_NO, dtype.const),
            )
            return
        value = self._eval_full(decl.initializer, env)
        ptr = self._as_pointer(value, pointee, decl.line)
        env.bind(
            decl.name,
            _PtrCell(
                next(_uids), pointee, ptr.targets, ptr.null, _INIT_YES, dtype.const
            ),
        )

    def _as_pointer(self, value: _Value, pointee: ct.CType, line: int) -> _PtrVal:
        if isinstance(value, _PtrVal):
            if value.pointee is not None:
                is_function = isinstance(pointee, ct.FunctionType)
                was_function = isinstance(value.pointee, ct.FunctionType)
                if is_function != was_function:
                    raise AbstractBail("mixed object/function pointer")
                if not ct.types_compatible(
                    value.pointee.unqualified(), pointee.unqualified()
                ):
                    raise AbstractBail(
                        f"pointer conversion {value.pointee} -> {pointee}"
                    )
            return value
        if isinstance(value, AbstractInt):
            if value.is_constant and value.value == 0:
                return _PtrVal(pointee, (), "yes")
            raise AbstractBail("integer-to-pointer conversion")
        raise AbstractBail(f"unmodeled pointer source: {value}")

    # -- expressions -------------------------------------------------------
    def _eval_full(self, expr: c_ast.Expression, env: _AbsEnv) -> _Value:
        """Evaluate a full expression (statement/condition/initializer)."""
        if _sequencing_hazard(expr):
            raise AbstractBail("expression with potentially unsequenced side effects")
        return self._eval(expr, env)

    def _eval(self, expr: c_ast.Expression, env: _AbsEnv) -> _Value:
        self._tick()
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise AbstractBail(f"unmodeled expression {type(expr).__name__}")
        return method(expr, env)

    def _eval_IntegerLiteral(self, expr: c_ast.IntegerLiteral, env: _AbsEnv) -> _Value:
        ctype = expr.type if expr.type is not None else ct.INT
        if not isinstance(ctype, ct.IntType):
            raise AbstractBail(f"literal of type {ctype}")
        return AbstractInt.constant(expr.value, ctype.unqualified())

    def _eval_CharLiteral(self, expr: c_ast.CharLiteral, env: _AbsEnv) -> _Value:
        return AbstractInt.constant(expr.value, ct.INT)

    def _eval_Identifier(self, expr: c_ast.Identifier, env: _AbsEnv) -> _Value:
        cell = env.lookup(expr.name)
        if cell is None:
            if expr.name in self.functions:
                return _PtrVal(
                    self.functions[expr.name].type, (("fn", expr.name),), "no"
                )
            raise AbstractBail(f"unknown identifier {expr.name}")
        if isinstance(cell, _IntCell):
            return self._read_int_cell(cell, expr.line)
        if isinstance(cell, _PtrCell):
            if cell.init == _INIT_NO:
                self._uninit(expr.line)
            elif cell.init == _INIT_MAYBE:
                self._uninit(expr.line, certain=False)
            return _PtrVal(cell.pointee, cell.targets, cell.null)
        if isinstance(cell, _ArrCell):
            # Array decay: a pointer covering the whole array.
            return _PtrVal(
                cell.element, (("elem", cell.uid, 0, cell.length - 1),), "no"
            )
        raise AbstractBail(f"unmodeled cell for {expr.name}")

    def _uninit(self, line: int, certain: bool = True) -> None:
        if not self.options.check_uninitialized:
            raise AbstractBail("indeterminate read with uninitialized checks disabled")
        self._ub(
            PossibleUB(
                UBKind.UNINITIALIZED_READ,
                "Use of an indeterminate (uninitialized) value.",
                line,
                certain=certain,
            )
        )

    def _read_int_cell(self, cell: _IntCell, line: int) -> AbstractInt:
        if cell.init == _INIT_NO:
            self._uninit(line)
        elif cell.init == _INIT_MAYBE:
            self._uninit(line, certain=False)
        if cell.value is None:
            raise _Stuck(None)
        return cell.value

    def _eval_UnaryOp(self, expr: c_ast.UnaryOp, env: _AbsEnv) -> _Value:
        op = expr.op
        line = expr.line
        if op == "&":
            return self._address_of(expr.operand, env, line)
        if op == "*":
            ptr = self._eval(expr.operand, env)
            return self._deref_read(ptr, line, env)
        if op in _INCDEC_OPS:
            return self._eval_incdec(expr, env)
        if op in ("sizeof",):
            raise AbstractBail("sizeof expression")
        value = self._eval(expr.operand, env)
        if op == "!":
            may_true, may_false = self._truth(value)
            if may_true and may_false:
                return AbstractInt(0, 1, ct.INT)
            return AbstractInt.constant(0 if may_true else 1, ct.INT)
        operand = self._require_int(value, f"operand of unary {op}")
        facts = self._promoted_facts(operand.type)
        if op == "+":
            return abstract_convert(facts, operand)
        if op == "-":
            result, ubs = abstract_negate(
                facts, self.options.check_arithmetic, operand, line
            )
            self._consume(ubs)
            if result is None:
                raise _Stuck(None)
            return result
        if op == "~":
            return abstract_complement(facts, operand)
        raise AbstractBail(f"unmodeled unary operator {op!r}")

    def _eval_incdec(self, expr: c_ast.UnaryOp, env: _AbsEnv) -> _Value:
        line = expr.line
        lvalue = self._lvalue(expr.operand, env, line)
        old = self._lvalue_read(lvalue, env, line)
        old_int = self._require_int(old, "operand of ++/--")
        op = "+" if expr.op.startswith("++") else "-"
        facts = int_binary_facts(op, old_int.type, ct.INT, self.options, line)
        if facts is None:
            raise AbstractBail("unplanned ++/-- operand type")
        result, ubs = abstract_binary(facts, old_int, AbstractInt.constant(1, ct.INT))
        self._consume(ubs)
        if result is None:
            raise _Stuck(None)
        converted = abstract_convert(self._facts(lvalue_type(lvalue)), result)
        self._lvalue_write(lvalue, converted, env, line)
        return old_int if expr.op.endswith("post") else converted

    def _eval_BinaryOp(self, expr: c_ast.BinaryOp, env: _AbsEnv) -> _Value:
        op = expr.op
        line = expr.line
        if op in ("&&", "||"):
            return self._eval_logical(expr, env)
        left = self._require_int(self._eval(expr.left, env), f"left operand of {op}")
        right = self._require_int(self._eval(expr.right, env), f"right operand of {op}")
        if op in _COMPARE_OPS:
            decided = self._store_compare(expr, op, env)
            if decided is not None:
                return abstract_bool(decided)
        facts = int_binary_facts(op, left.type, right.type, self.options, line)
        if facts is None:
            raise AbstractBail(
                f"unplanned operand types for {op}: " f"{left.type}, {right.type}"
            )
        result, ubs = abstract_binary(facts, left, right)
        self._consume(ubs)
        if result is None:
            raise _Stuck(None)
        return result

    def _store_compare(
        self, expr: c_ast.BinaryOp, op: str, env: _AbsEnv
    ) -> Optional[bool]:
        if not (
            isinstance(expr.left, c_ast.Identifier)
            and isinstance(expr.right, c_ast.Identifier)
        ):
            return None
        left = env.lookup(expr.left.name)
        right = env.lookup(expr.right.name)
        if not (isinstance(left, _IntCell) and isinstance(right, _IntCell)):
            return None
        return env.store.compare(op, left.uid, right.uid)

    def _eval_logical(self, expr: c_ast.BinaryOp, env: _AbsEnv) -> _Value:
        left = self._eval(expr.left, env)
        may_true, may_false = self._truth(left)
        is_and = expr.op == "&&"
        if is_and and not may_true:
            return AbstractInt.constant(0, ct.INT)
        if not is_and and not may_false:
            return AbstractInt.constant(1, ct.INT)
        definite = (may_true and not may_false) if is_and else (
            may_false and not may_true
        )
        self._soft += 0 if definite else 1
        try:
            try:
                right = self._eval(expr.right, env)
                right_true, right_false = self._truth(right)
            except _Stuck:
                if definite:
                    raise
                # Only the short-circuited concretizations survive.
                return AbstractInt.constant(0 if is_and else 1, ct.INT)
        finally:
            self._soft -= 0 if definite else 1
        if is_and:
            result_true = may_true and right_true
            result_false = may_false or right_false
        else:
            result_true = may_true or right_true
            result_false = may_false and right_false
        if result_true and result_false:
            return AbstractInt(0, 1, ct.INT)
        return AbstractInt.constant(1 if result_true else 0, ct.INT)

    def _eval_Conditional(self, expr: c_ast.Conditional, env: _AbsEnv) -> _Value:
        cond = self._eval(expr.condition, env)
        may_true, may_false = self._truth(cond)
        if may_true and not may_false:
            return self._eval(expr.then, env)
        if may_false and not may_true:
            return self._eval(expr.otherwise, env)
        self._soft += 1
        results = []
        try:
            for branch in (expr.then, expr.otherwise):
                try:
                    results.append(self._eval(branch, env))
                except _Stuck:
                    pass
        finally:
            self._soft -= 1
        if not results:
            raise _Stuck(None)
        if len(results) == 1:
            return self._require_int(results[0], "conditional branch")
        a = self._require_int(results[0], "conditional branch")
        b = self._require_int(results[1], "conditional branch")
        if a.type != b.type:
            facts = int_binary_facts("+", a.type, b.type, self.options, expr.line)
            if facts is None:
                raise AbstractBail("conditional branches of mixed types")
            a = abstract_convert(facts.common, a)
            b = abstract_convert(facts.common, b)
        return a.join(b)

    def _eval_Comma(self, expr: c_ast.Comma, env: _AbsEnv) -> _Value:
        self._eval(expr.left, env)
        return self._eval(expr.right, env)

    def _eval_Cast(self, expr: c_ast.Cast, env: _AbsEnv) -> _Value:
        target = expr.target_type
        if isinstance(expr.operand, c_ast.InitList):
            # Compound literal: only the scalar (int){expr} form is modeled.
            if (isinstance(target, ct.IntType) and len(expr.operand.items) == 1):
                value = self._require_int(
                    self._eval(expr.operand.items[0], env), "compound literal"
                )
                return abstract_convert(self._facts(target), value)
            raise AbstractBail("unmodeled compound literal")
        value = self._eval(expr.operand, env)
        if isinstance(target, ct.IntType):
            return abstract_convert(
                self._facts(target), self._require_int(value, "cast operand")
            )
        if isinstance(target, ct.PointerType):
            return self._as_pointer(value, target.pointee, expr.line)
        raise AbstractBail(f"unmodeled cast to {target}")

    def _eval_Assignment(self, expr: c_ast.Assignment, env: _AbsEnv) -> _Value:
        line = expr.line
        lvalue = self._lvalue(expr.target, env, line)
        value = self._eval(expr.value, env)
        if expr.op != "=":
            binop = expr.op[:-1]
            old = self._require_int(
                self._lvalue_read(lvalue, env, line), "compound assignment target"
            )
            rhs = self._require_int(value, "compound assignment value")
            facts = int_binary_facts(binop, old.type, rhs.type, self.options, line)
            if facts is None:
                raise AbstractBail(f"unplanned compound assignment {expr.op}")
            result, ubs = abstract_binary(facts, old, rhs)
            self._consume(ubs)
            if result is None:
                raise _Stuck(None)
            value = result
        target_type = lvalue_type(lvalue)
        if isinstance(target_type, ct.PointerType):
            ptr = self._as_pointer(value, target_type.pointee, line)
            self._lvalue_write(lvalue, ptr, env, line)
            return ptr
        converted = abstract_convert(
            self._facts(target_type), self._require_int(value, "assigned value")
        )
        self._lvalue_write(lvalue, converted, env, line)
        return converted

    def _eval_ArraySubscript(self, expr: c_ast.ArraySubscript, env: _AbsEnv) -> _Value:
        lvalue = self._lvalue(expr, env, expr.line)
        return self._lvalue_read(lvalue, env, expr.line)

    def _eval_Call(self, expr: c_ast.Call, env: _AbsEnv) -> _Value:
        line = expr.line
        target = expr.function
        fndef: Optional[c_ast.FunctionDef] = None
        if isinstance(target, c_ast.UnaryOp) and target.op == "*":
            target = target.operand
        if isinstance(target, c_ast.Identifier):
            name = target.name
            cell = env.lookup(name)
            if cell is None:
                if name == "printf":
                    return self._eval_printf(expr, env)
                if name in self.functions:
                    fndef = self.functions[name]
                else:
                    raise AbstractBail(f"call to unmodeled function {name}()")
            elif isinstance(cell, _PtrCell):
                if cell.init != _INIT_YES:
                    self._uninit(line, certain=cell.init == _INIT_NO)
                if cell.null == "yes" and not cell.targets:
                    self._ub(
                        PossibleUB(
                            UBKind.NULL_DEREFERENCE,
                            "Call through a null function pointer.",
                            line,
                            certain=True,
                        )
                    )
                fn_targets = [t for t in cell.targets if t[0] == "fn"]
                if len(fn_targets) != 1 or len(cell.targets) != 1:
                    raise AbstractBail("call through an imprecise pointer")
                if cell.null == "maybe":
                    self._ub(
                        PossibleUB(
                            UBKind.NULL_DEREFERENCE,
                            "Call through a possibly null function pointer.",
                            line,
                            certain=False,
                        )
                    )
                callee = fn_targets[0][1]
                fndef = self.functions.get(callee)
                if fndef is None:
                    raise AbstractBail(f"unknown function {callee}()")
                if not ct.types_compatible(
                    cell.pointee.unqualified(), fndef.type.unqualified()
                ):
                    raise AbstractBail("call through an incompatible function pointer")
            else:
                raise AbstractBail(f"call through non-function {name}")
        else:
            raise AbstractBail("unmodeled call target")
        args = [self._eval(arg, env) for arg in expr.arguments]
        flows = self._call(fndef, args, env, line)
        if "normal" in flows and "return" not in flows:
            raise AbstractBail(f"{fndef.name}() never returns a value")
        return flows["return"]

    def _eval_printf(self, expr: c_ast.Call, env: _AbsEnv) -> _Value:
        if not expr.arguments or not isinstance(expr.arguments[0], c_ast.StringLiteral):
            raise AbstractBail("printf without a literal format string")
        fmt = expr.arguments[0].value
        conversions = _printf_conversions(fmt)
        if conversions is None:
            raise AbstractBail("printf format outside the modeled subset")
        if len(conversions) != len(expr.arguments) - 1:
            raise AbstractBail("printf arity outside the modeled subset")
        for arg in expr.arguments[1:]:
            value = self._eval(arg, env)
            self._require_int(value, "printf argument")
        return _Opaque("printf return value")

    # -- lvalues -----------------------------------------------------------
    def _lvalue(self, expr: c_ast.Expression, env: _AbsEnv, line: int):
        if isinstance(expr, c_ast.Identifier):
            cell = env.lookup(expr.name)
            if cell is None:
                raise AbstractBail(f"unknown lvalue {expr.name}")
            return ("cell", cell)
        if isinstance(expr, c_ast.ArraySubscript):
            base = expr.array
            if not isinstance(base, c_ast.Identifier):
                raise AbstractBail("unmodeled subscript base")
            cell = env.lookup(base.name)
            index = self._require_int(self._eval(expr.index, env), "array index")
            if isinstance(cell, _ArrCell):
                return ("elem", cell, self._check_index(cell, index, line))
            if isinstance(cell, _PtrCell):
                raise AbstractBail("pointer subscripting")
            raise AbstractBail(f"subscript of non-array {base.name}")
        if isinstance(expr, c_ast.UnaryOp) and expr.op == "*":
            ptr = self._eval(expr.operand, env)
            if not isinstance(ptr, _PtrVal):
                raise AbstractBail("dereference of a non-pointer value")
            return ("deref", ptr)
        raise AbstractBail(f"unmodeled lvalue {type(expr).__name__}")

    def _check_index(
        self, cell: _ArrCell, index: AbstractInt, line: int
    ) -> AbstractInt:
        length = cell.length
        if 0 <= index.lo and index.hi < length:
            return index
        if not self.options.check_memory:
            raise AbstractBail(
                "possible out-of-bounds access with memory checks disabled"
            )
        certain = index.hi < 0 or index.lo >= length
        self._ub(
            PossibleUB(
                UBKind.OUT_OF_BOUNDS,
                "Pointer arithmetic or access outside the bounds of an object.",
                line,
                certain=certain,
                witness=Interval(index.lo, index.hi),
            )
        )
        refined = index.meet_range(0, length - 1)
        if refined is None:
            raise _Stuck(None)
        return refined

    def _address_of(
        self, operand: c_ast.Expression, env: _AbsEnv, line: int
    ) -> _PtrVal:
        if isinstance(operand, c_ast.Identifier):
            cell = env.lookup(operand.name)
            if isinstance(cell, _IntCell):
                return _PtrVal(cell.ctype, (("int", cell.uid),), "no")
            if cell is None and operand.name in self.functions:
                return _PtrVal(
                    self.functions[operand.name].type, (("fn", operand.name),), "no"
                )
            raise AbstractBail(f"unmodeled address-of &{operand.name}")
        if isinstance(operand, c_ast.ArraySubscript) and isinstance(
            operand.array, c_ast.Identifier
        ):
            cell = env.lookup(operand.array.name)
            if not isinstance(cell, _ArrCell):
                raise AbstractBail("unmodeled address-of subscript")
            index = self._require_int(self._eval(operand.index, env), "array index")
            if not (0 <= index.lo and index.hi < cell.length):
                raise AbstractBail("address-of possibly out-of-bounds element")
            return _PtrVal(
                cell.element, (("elem", cell.uid, index.lo, index.hi),), "no"
            )
        raise AbstractBail("unmodeled address-of operand")

    def _deref_read(self, ptr: _Value, line: int, env: _AbsEnv) -> _Value:
        if not isinstance(ptr, _PtrVal):
            raise AbstractBail("dereference of a non-pointer value")
        self._deref_null_check(ptr, line)
        values: list[AbstractInt] = []
        for target in ptr.targets:
            values.append(self._read_target(target, env, line))
        if not values:
            raise _Stuck(None)
        result = values[0]
        for value in values[1:]:
            result = result.join(value)
        return result

    def _deref_null_check(self, ptr: _PtrVal, line: int) -> None:
        if ptr.null == "yes" and not ptr.targets:
            if not self.options.check_memory:
                raise AbstractBail("null dereference with memory checks disabled")
            self._ub(
                PossibleUB(
                    UBKind.NULL_DEREFERENCE,
                    "Dereference of a null pointer.",
                    line,
                    certain=True,
                )
            )
        elif ptr.null in ("yes", "maybe"):
            if not self.options.check_memory:
                raise AbstractBail(
                    "possible null dereference with memory checks disabled"
                )
            self._ub(
                PossibleUB(
                    UBKind.NULL_DEREFERENCE,
                    "Dereference of a null pointer.",
                    line,
                    certain=False,
                )
            )

    def _read_target(self, target, env: _AbsEnv, line: int) -> AbstractInt:
        if target[0] == "int":
            cell = env.by_uid(target[1])
            if not isinstance(cell, _IntCell):
                raise AbstractBail("dangling abstract pointer target")
            return self._read_int_cell(cell, line)
        if target[0] == "elem":
            cell = env.by_uid(target[1])
            if not isinstance(cell, _ArrCell):
                raise AbstractBail("dangling abstract pointer target")
            lo, hi = target[2], min(target[3], cell.length - 1)
            inits = set(cell.inits[lo:hi + 1])
            if inits == {_INIT_NO}:
                self._uninit(line)
            elif _INIT_NO in inits or _INIT_MAYBE in inits:
                self._uninit(line, certain=False)
            values = [v for v in cell.values[lo:hi + 1] if v is not None]
            if not values:
                raise _Stuck(None)
            result = values[0]
            for value in values[1:]:
                result = result.join(value)
            return result
        raise AbstractBail("dereference of a function pointer")

    def _lvalue_read(self, lvalue, env: _AbsEnv, line: int) -> _Value:
        kind = lvalue[0]
        if kind == "cell":
            cell = lvalue[1]
            cell = env.by_uid(cell.uid) or cell
            if isinstance(cell, _IntCell):
                return self._read_int_cell(cell, line)
            if isinstance(cell, _PtrCell):
                if cell.init == _INIT_NO:
                    self._uninit(line)
                elif cell.init == _INIT_MAYBE:
                    self._uninit(line, certain=False)
                return _PtrVal(cell.pointee, cell.targets, cell.null)
            raise AbstractBail("unmodeled lvalue cell read")
        if kind == "elem":
            _, cell, index = lvalue
            cell = env.by_uid(cell.uid) or cell
            return self._read_target(("elem", cell.uid, index.lo, index.hi), env, line)
        if kind == "deref":
            return self._deref_read(lvalue[1], line, env)
        raise AbstractBail("unmodeled lvalue read")

    def _const_write_check(self, const: bool, line: int, certain: bool = True) -> None:
        if const and self.options.check_const:
            self._ub(
                PossibleUB(
                    UBKind.CONST_VIOLATION,
                    "Modification of an object defined with a const-qualified "
                    "type.",
                    line,
                    certain=certain,
                )
            )

    def _lvalue_write(self, lvalue, value: _Value, env: _AbsEnv, line: int) -> None:
        kind = lvalue[0]
        if kind == "cell":
            cell = env.by_uid(lvalue[1].uid)
            if cell is None:
                raise AbstractBail("write to an unbound cell")
            self._const_write_check(cell.const, line)
            if isinstance(cell, _IntCell):
                if not isinstance(value, AbstractInt):
                    raise AbstractBail("pointer stored into an int cell")
                env.replace(
                    cell.uid,
                    _IntCell(cell.uid, cell.ctype, value, _INIT_YES, cell.const),
                )
                return
            if isinstance(cell, _PtrCell):
                if not isinstance(value, _PtrVal):
                    raise AbstractBail("non-pointer stored into a pointer")
                env.replace(
                    cell.uid,
                    _PtrCell(
                        cell.uid,
                        cell.pointee,
                        value.targets,
                        value.null,
                        _INIT_YES,
                        cell.const,
                    ),
                )
                return
            raise AbstractBail("unmodeled lvalue cell write")
        if kind == "elem":
            _, cell, index = lvalue
            fresh = env.by_uid(cell.uid)
            if not isinstance(fresh, _ArrCell):
                raise AbstractBail("write to a vanished array")
            if not isinstance(value, AbstractInt):
                raise AbstractBail("pointer stored into an array element")
            self._const_write_check(fresh.const, line)
            self._write_elements(
                fresh, index.lo, index.hi, value, env, strong=index.is_constant
            )
            return
        if kind == "deref":
            ptr = lvalue[1]
            self._deref_null_check(ptr, line)
            if not ptr.targets:
                raise _Stuck(None)
            strong = len(ptr.targets) == 1 and ptr.null == "no"
            for target in ptr.targets:
                self._write_ptr_target(target, value, env, line, strong=strong)
            return
        raise AbstractBail("unmodeled lvalue write")

    def _write_ptr_target(
        self, target, value: _Value, env: _AbsEnv, line: int, *, strong: bool
    ) -> None:
        if target[0] == "int":
            cell = env.by_uid(target[1])
            if not isinstance(cell, _IntCell):
                raise AbstractBail("dangling abstract pointer target")
            if not isinstance(value, AbstractInt):
                raise AbstractBail("pointer stored through an int pointer")
            self._const_write_check(cell.const, line, certain=strong)
            converted = abstract_convert(self._facts(cell.ctype), value)
            if not strong:
                converted = _join_opt(cell.value, converted)
            env.replace(
                cell.uid,
                _IntCell(
                    cell.uid,
                    cell.ctype,
                    converted,
                    _INIT_YES if strong else _merge_init(cell.init, _INIT_YES),
                    cell.const,
                ),
            )
            return
        if target[0] == "elem":
            cell = env.by_uid(target[1])
            if not isinstance(cell, _ArrCell):
                raise AbstractBail("dangling abstract pointer target")
            if not isinstance(value, AbstractInt):
                raise AbstractBail("pointer stored through an int pointer")
            self._const_write_check(cell.const, line, certain=strong)
            lo, hi = target[2], min(target[3], cell.length - 1)
            self._write_elements(cell, lo, hi, value, env, strong=strong and lo == hi)
            return
        raise AbstractBail("write through a function pointer")

    def _write_elements(
        self,
        cell: _ArrCell,
        lo: int,
        hi: int,
        value: AbstractInt,
        env: _AbsEnv,
        *,
        strong: bool,
    ) -> None:
        converted = abstract_convert(self._facts(cell.element), value)
        values = list(cell.values)
        inits = list(cell.inits)
        for index in range(lo, hi + 1):
            if strong:
                values[index] = converted
                inits[index] = _INIT_YES
            else:
                values[index] = _join_opt(values[index], converted)
                inits[index] = _merge_init(inits[index], _INIT_YES)
        env.replace(
            cell.uid,
            _ArrCell(cell.uid, cell.element, tuple(values), tuple(inits), cell.const),
        )


def lvalue_type(lvalue) -> ct.CType:
    kind = lvalue[0]
    if kind == "cell":
        cell = lvalue[1]
        if isinstance(cell, _IntCell):
            return cell.ctype
        if isinstance(cell, _PtrCell):
            return ct.PointerType(pointee=cell.pointee)
    if kind == "elem":
        return lvalue[1].element
    if kind == "deref":
        ptr = lvalue[1]
        if ptr.pointee is not None and isinstance(ptr.pointee, ct.IntType):
            return ptr.pointee
    raise AbstractBail("unmodeled lvalue type")


def _flip_compare(op: str) -> str:
    return {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}[op]


_PRINTF_SIMPLE = set("duxXoc")


def _printf_conversions(fmt: str) -> Optional[list[str]]:
    conversions: list[str] = []
    index = 0
    while index < len(fmt):
        ch = fmt[index]
        if ch != "%":
            index += 1
            continue
        if index + 1 >= len(fmt):
            return None
        spec = fmt[index + 1]
        if spec == "%":
            index += 2
            continue
        if spec in _PRINTF_SIMPLE:
            conversions.append(spec)
            index += 2
            continue
        return None
    return conversions


# ---------------------------------------------------------------------------
# Flow plumbing
# ---------------------------------------------------------------------------

def _join_flow_env(a: Optional[_AbsEnv], b: _AbsEnv) -> _AbsEnv:
    return b if a is None else a.join(b)


def _merge_flows(into: dict, flows: dict) -> None:
    for kind, entry in flows.items():
        if kind == "normal":
            continue
        if kind == "return":
            env, value = entry
            if "return" in into:
                old_env, old_value = into["return"]
                joined_env = old_env.join(env)
                if value is None or old_value is None:
                    joined_value = old_value if value is None else value
                elif isinstance(value, AbstractInt) and isinstance(
                    old_value, AbstractInt
                ):
                    joined_value = old_value.join(value)
                else:
                    raise AbstractBail("joining non-integer return values")
                into["return"] = (joined_env, joined_value)
            else:
                into["return"] = entry
        else:
            if kind in into:
                into[kind] = into[kind].join(entry)
            else:
                into[kind] = entry


def _widen_env(old: _AbsEnv, new: _AbsEnv, evaluator: AbstractEvaluator) -> _AbsEnv:
    """Cell-wise widening of ``old`` by ``new`` (same scope structure)."""
    result = new.copy()
    for scope_index, scope in enumerate(result.scopes):
        for name, cell in list(scope.items()):
            old_cell = old.scopes[scope_index].get(name)
            if old_cell is None or old_cell.uid != cell.uid:
                continue
            if isinstance(cell, _IntCell) and isinstance(old_cell, _IntCell):
                if cell.value is not None and old_cell.value is not None:
                    facts = evaluator._facts(cell.ctype)
                    scope[name] = _IntCell(
                        cell.uid,
                        cell.ctype,
                        old_cell.value.widen(cell.value, facts),
                        cell.init,
                        cell.const,
                    )
            elif isinstance(cell, _ArrCell) and isinstance(old_cell, _ArrCell):
                facts = evaluator._facts(cell.element)
                merged = []
                for ov, nv in zip(old_cell.values, cell.values):
                    if ov is not None and nv is not None:
                        merged.append(ov.widen(nv, facts))
                    else:
                        merged.append(_join_opt(ov, nv))
                values = tuple(merged)
                scope[name] = _ArrCell(
                    cell.uid, cell.element, values, cell.inits, cell.const
                )
    return result


def _env_equal(a: _AbsEnv, b: _AbsEnv) -> bool:
    if len(a.scopes) != len(b.scopes):
        return False
    for sa, sb in zip(a.scopes, b.scopes):
        if sa.keys() != sb.keys():
            return False
        for name, ca in sa.items():
            cb = sb[name]
            if type(ca) is not type(cb) or ca.uid != cb.uid:
                return False
            if isinstance(ca, _IntCell):
                va, vb = ca.value, cb.value
                if (va is None) != (vb is None):
                    return False
                if va is not None and not va.same_set(vb):
                    return False
                if ca.init != cb.init:
                    return False
            elif isinstance(ca, _ArrCell):
                for va, vb in zip(ca.values, cb.values):
                    if (va is None) != (vb is None):
                        return False
                    if va is not None and not va.same_set(vb):
                        return False
                if ca.inits != cb.inits:
                    return False
            elif isinstance(ca, _PtrCell):
                if (
                    set(ca.targets) != set(cb.targets)
                    or ca.null != cb.null
                    or ca.init != cb.init
                ):
                    return False
    return True


def analyze(
    unit: c_ast.TranslationUnit,
    options: CheckerOptions = DEFAULT_OPTIONS,
    inputs: Optional[dict[str, tuple[int, int]]] = None,
) -> AbsResult:
    """Abstractly execute ``unit`` under the given input ranges."""
    return AbstractEvaluator(unit, options, inputs).run()


__all__ = [
    "AbsResult",
    "AbstractBail",
    "AbstractEvaluator",
    "MAX_UNROLL",
    "MAX_WIDEN",
    "analyze",
]
