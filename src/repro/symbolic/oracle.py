"""The soundness leg: proved ranges re-checked on concrete executions.

A range proof quantifies over every concretization of the declared input
ranges; this module spot-checks that claim with the dynamic engines.  For
each proved report it samples points from every input range — *always*
including both endpoints — substitutes them into the input declarations,
runs the concrete checker, and compares verdicts:

* ``PROVED_DEFINED``  → every sampled run must be ``DEFINED``.
* ``PROVED_UNDEFINED(kind)`` → every sampled run must be ``UNDEFINED``
  with the same kind among its reported kinds.

Any disagreement is a soundness bug in the abstract engine, never noise:
the proofs claim universality, so one concrete counterexample refutes
them.  The fuzz oracle (``OracleConfig.check_symbolic``) and the CI
``prove-smoke`` job are both built on :func:`check_proved_report`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.config import DEFAULT_OPTIONS, CheckerOptions
from repro.core.kcc import KccTool
from repro.errors import OutcomeKind
from repro.symbolic.prove import (
    PROVED_DEFINED,
    PROVED_UNDEFINED,
    ProveReport,
)

#: Default number of concrete samples per proved input range.
SAMPLES_PER_RANGE = 8


def sample_points(lo: int, hi: int, n: int = SAMPLES_PER_RANGE) -> list[int]:
    """``n`` representative points of ``[lo, hi]``, both endpoints included.

    Deterministic: endpoints first, then near-endpoint values and evenly
    spaced interior points, deduplicated while preserving order.
    """
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    candidates = [lo, hi, lo + 1, hi - 1]
    if lo <= 0 <= hi:
        candidates.append(0)
    span = hi - lo
    if span > 1 and n > len(candidates):
        steps = n - len(candidates) + 1
        for k in range(1, steps):
            candidates.append(lo + span * k // steps)
    points: list[int] = []
    for value in candidates:
        if lo <= value <= hi and value not in points:
            points.append(value)
        if len(points) >= n:
            break
    # Grid points may collide with the near-endpoint candidates; fill from
    # lo upward so a range with >= n values always yields n samples.
    fill = lo
    while len(points) < n and fill <= hi:
        if fill not in points:
            points.append(fill)
        fill += 1
    return points


def substitute_input(source: str, name: str, value: int) -> str:
    """Rewrite the initializer of ``int name = ...;`` to ``value``.

    The input convention of the prove pipeline: inputs are plain ``int``
    declarations with an initializer.  Raises ValueError when the
    declaration cannot be found exactly once.
    """
    pattern = re.compile(r"(\bint\s+" + re.escape(name) + r"\s*=\s*)[^;,]+([;,])")
    replaced = pattern.subn(
        lambda m: f"{m.group(1)}{value}{m.group(2)}", source, count=2
    )
    text, count = replaced
    if count != 1:
        raise ValueError(f"input declaration 'int {name} = ...;' matched {count} times")
    return text


@dataclass
class OracleMismatch:
    """One concrete counterexample to a range proof."""

    point: dict
    expected: str
    got: str
    detail: str

    def describe(self) -> str:
        at = ", ".join(f"{k}={v}" for k, v in self.point.items())
        return (
            f"at {{{at}}}: proof says {self.expected}, concrete run "
            f"says {self.got} ({self.detail})"
        )


def _sample_grid(inputs: dict, samples: int) -> list[dict]:
    """Sampled assignments; full cross product is avoided by a diagonal
    sweep plus per-axis endpoint runs so the count stays linear."""
    names = list(inputs)
    if not names:
        return [{}]
    per_axis = {
        name: sample_points(lo, hi, samples) for name, (lo, hi) in inputs.items()
    }
    grid: list[dict] = []
    seen: set = set()

    def push(assignment: dict) -> None:
        key = tuple(sorted(assignment.items()))
        if key not in seen:
            seen.add(key)
            grid.append(assignment)

    longest = max(len(points) for points in per_axis.values())
    for index in range(longest):
        push(
            {
                name: points[min(index, len(points) - 1)]
                for name, points in per_axis.items()
            }
        )
    # Per-axis sweeps with the other inputs pinned to their low endpoint:
    # exercises each range's endpoints independently of the diagonal.
    for name in names:
        for value in per_axis[name]:
            assignment = {other: inputs[other][0] for other in names}
            assignment[name] = value
            push(assignment)
    return grid


def check_proved_report(
    source: str,
    report: ProveReport,
    *,
    options: CheckerOptions = DEFAULT_OPTIONS,
    samples: int = SAMPLES_PER_RANGE,
    filename: str = "<oracle>",
) -> list[OracleMismatch]:
    """Concrete counterexamples to ``report`` (empty list = proof holds).

    Only PROVED verdicts make a universal claim; INCONCLUSIVE reports
    are vacuously fine and return no mismatches.
    """
    if report.verdict not in (PROVED_DEFINED, PROVED_UNDEFINED):
        return []
    tool = KccTool(options)
    mismatches: list[OracleMismatch] = []
    for assignment in _sample_grid(report.inputs, samples):
        text = source
        for name, value in assignment.items():
            text = substitute_input(text, name, value)
        outcome = tool.check(text, filename=filename).outcome
        if report.verdict == PROVED_DEFINED:
            if outcome.kind != OutcomeKind.DEFINED:
                mismatches.append(
                    OracleMismatch(
                        point=assignment,
                        expected=PROVED_DEFINED,
                        got=outcome.kind.name,
                        detail=outcome.describe(),
                    )
                )
        else:
            # Static violations surface as STATIC_ERROR outcomes; both are
            # flagged runs, and ub_kinds covers either source.
            kinds = set(outcome.ub_kinds)
            flagged = outcome.kind in (OutcomeKind.UNDEFINED, OutcomeKind.STATIC_ERROR)
            if not flagged or (report.kind is not None and report.kind not in kinds):
                expected = (
                    f"{PROVED_UNDEFINED}({report.kind.name if report.kind else '?'})"
                )
                mismatches.append(
                    OracleMismatch(
                        point=assignment,
                        expected=expected,
                        got=outcome.kind.name,
                        detail=outcome.describe(),
                    )
                )
    return mismatches


__all__ = [
    "OracleMismatch",
    "SAMPLES_PER_RANGE",
    "check_proved_report",
    "sample_points",
    "substitute_input",
]
