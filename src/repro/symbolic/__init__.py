"""Abstract interpretation over the checker's own semantic truth.

``repro.symbolic`` is the first *static* engine in the reproduction: an
interval-with-congruence abstract interpreter that consumes the same
per-site arithmetic facts (:func:`repro.core.lowering.int_type_facts` /
:func:`repro.core.lowering.int_binary_facts`) as the concrete walker,
lowered and compiled engines, so every ``check_*`` family becomes an
interval emptiness or containment test over the exact bounds the dynamic
engines enforce.

Modules:

* :mod:`repro.symbolic.domain` — abstract values (interval + congruence),
  the relational constraint store, and the per-operator transfer functions.
* :mod:`repro.symbolic.abseval` — the abstract evaluator over the parsed
  fuzz-subset AST, with loop unrolling, widening, and honest bailouts.
* :mod:`repro.symbolic.prove` — verdicts: ``PROVED_DEFINED``,
  ``PROVED_UNDEFINED(kind)`` or ``INCONCLUSIVE`` with a witness interval.
* :mod:`repro.symbolic.oracle` — the soundness leg: every proved range is
  re-checked against concrete executions on sampled points (both endpoints
  always included).
"""

from repro.symbolic.domain import (
    AbstractInt,
    ConstraintStore,
    Interval,
    PossibleUB,
)
from repro.symbolic.prove import (
    INCONCLUSIVE,
    PROVED_DEFINED,
    PROVED_UNDEFINED,
    ProveReport,
    prove_source,
    prove_unit,
)
from repro.symbolic.oracle import check_proved_report, sample_points

__all__ = [
    "AbstractInt",
    "ConstraintStore",
    "Interval",
    "PossibleUB",
    "ProveReport",
    "PROVED_DEFINED",
    "PROVED_UNDEFINED",
    "INCONCLUSIVE",
    "prove_source",
    "prove_unit",
    "check_proved_report",
    "sample_points",
]
