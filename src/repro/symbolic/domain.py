"""Abstract values and transfer functions for the symbolic engine.

Three layers live here:

* :class:`Interval` — the plain (possibly unbounded) integer interval that
  the value-analysis baseline has always used; it moved here so the
  baseline and the prover share one definition
  (:mod:`repro.analyzers.value_analysis` re-exports it).
* :class:`AbstractInt` — a *typed*, bounded interval-with-congruence value:
  every member is ``≡ offset (mod stride)`` and inside ``[lo, hi]``.  This
  is the element the abstract evaluator pushes through expressions.
* The transfer functions (:func:`abstract_convert`, :func:`abstract_binary`,
  :func:`abstract_negate`, ...) — these consume the *same*
  :class:`repro.core.lowering.IntTypeFacts` / ``IntBinaryFacts`` objects
  that specialize the concrete engines' closures, so the abstract semantics
  can never disagree with the dynamic semantics about a bound, a wrap mask
  or whether a check is armed.  Each ``check_*`` family maps to an interval
  test; the result is the surviving abstract value plus a list of
  :class:`PossibleUB` records (``certain=True`` when *every* concretization
  triggers the behavior).

A small relational layer, :class:`ConstraintStore`, tracks difference
bounds ``y - x ∈ [lo, hi]`` between named cells; the evaluator consults it
to decide comparisons that plain intervals cannot (``i < n`` after
``n = i + 3``), and the search engine's path merging uses the same joined
intervals over differing cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cfront import ctypes as ct
from repro.core.lowering import IntBinaryFacts, IntTypeFacts, int_type_facts
from repro.errors import UBKind


# ---------------------------------------------------------------------------
# The unbounded interval (shared with the value-analysis baseline)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded) integer interval ``[low, high]``.

    ``None`` bounds represent minus/plus infinity.  The bottom interval is
    represented by ``Interval.bottom()`` (low > high convention).
    """

    low: int | None = None
    high: int | None = None
    is_bottom: bool = False

    # -- constructors -------------------------------------------------------
    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def bottom() -> "Interval":
        return Interval(0, 0, is_bottom=True)

    @staticmethod
    def constant(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def range(low: int | None, high: int | None) -> "Interval":
        if low is not None and high is not None and low > high:
            return Interval.bottom()
        return Interval(low, high)

    # -- queries ------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.is_bottom and self.low is not None and self.low == self.high

    def contains(self, value: int) -> bool:
        if self.is_bottom:
            return False
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def may_be_zero(self) -> bool:
        return self.contains(0)

    def may_exceed(self, low: int, high: int) -> bool:
        """Could a value in this interval fall outside ``[low, high]``?"""
        if self.is_bottom:
            return False
        if self.low is None or self.low < low:
            return True
        if self.high is None or self.high > high:
            return True
        return False

    # -- lattice operations --------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        low = (
            None if self.low is None or other.low is None else min(self.low, other.low)
        )
        high = (
            None
            if self.high is None or other.high is None
            else max(self.high, other.high)
        )
        return Interval(low, high)

    def meet(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        low = (
            self.low
            if other.low is None
            else (other.low if self.low is None else max(self.low, other.low))
        )
        high = (
            self.high
            if other.high is None
            else (other.high if self.high is None else min(self.high, other.high))
        )
        return Interval.range(low, high)

    def widen(self, other: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to infinity."""
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        low = self.low
        if self.low is None or other.low is None or other.low < self.low:
            low = None
        high = self.high
        if self.high is None or other.high is None or other.high > self.high:
            high = None
        return Interval(low, high)

    # -- arithmetic -----------------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        low = None if self.low is None or other.low is None else self.low + other.low
        high = (
            None if self.high is None or other.high is None else self.high + other.high
        )
        return Interval(low, high)

    def negate(self) -> "Interval":
        if self.is_bottom:
            return self
        low = None if self.high is None else -self.high
        high = None if self.low is None else -self.low
        return Interval(low, high)

    def subtract(self, other: "Interval") -> "Interval":
        return self.add(other.negate())

    def multiply(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if None in (self.low, self.high, other.low, other.high):
            return Interval.top()
        products = [
            self.low * other.low,
            self.low * other.high,
            self.high * other.low,
            self.high * other.high,
        ]
        return Interval(min(products), max(products))

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥"
        low = "-inf" if self.low is None else str(self.low)
        high = "+inf" if self.high is None else str(self.high)
        return f"[{low}, {high}]"


# ---------------------------------------------------------------------------
# Typed interval-with-congruence values
# ---------------------------------------------------------------------------

class AbstractInt:
    """A finite integer interval with congruence, tagged with its C type.

    Concretization: ``{ v | lo <= v <= hi  and  v ≡ offset (mod stride) }``.
    ``stride == 1`` is the plain interval.  Instances are normalized on
    construction: the offset is reduced, and the bounds are tightened onto
    the congruence class, so ``lo`` and ``hi`` are always themselves members
    — which is what lets the soundness oracle sample *endpoints* of every
    proved range and know they are concretizable.
    """

    __slots__ = ("type", "lo", "hi", "stride", "offset")

    def __init__(
        self, lo: int, hi: int, ctype: ct.CType, stride: int = 1, offset: int = 0
    ) -> None:
        if stride < 1:
            stride = 1
        offset %= stride
        if stride > 1:
            # Tighten the bounds onto the congruence class.
            lo += (offset - lo) % stride
            hi -= (hi - offset) % stride
        if lo > hi:
            raise ValueError(f"empty abstract value [{lo}, {hi}] stride {stride}")
        if lo == hi:
            stride, offset = 1, 0
        self.type = ctype
        self.lo = lo
        self.hi = hi
        self.stride = stride
        self.offset = offset

    # -- constructors -------------------------------------------------------
    @staticmethod
    def constant(value: int, ctype: ct.CType) -> "AbstractInt":
        return AbstractInt(value, value, ctype)

    @staticmethod
    def from_range(lo: int, hi: int, ctype: ct.CType) -> "AbstractInt":
        return AbstractInt(lo, hi, ctype)

    @staticmethod
    def top(facts: IntTypeFacts) -> "AbstractInt":
        return AbstractInt(facts.lo, facts.hi, facts.type)

    # -- queries ------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi

    @property
    def value(self) -> int:
        assert self.is_constant
        return self.lo

    def contains(self, value: int) -> bool:
        return (self.lo <= value <= self.hi and value % self.stride == self.offset)

    def count(self) -> int:
        """How many concrete values this abstract value covers."""
        return (self.hi - self.lo) // self.stride + 1

    def interval(self) -> Interval:
        return Interval(self.lo, self.hi)

    def values(self, limit: int = 64) -> Optional[list[int]]:
        """The concrete members, if there are at most ``limit`` of them."""
        if self.count() > limit:
            return None
        return list(range(self.lo, self.hi + 1, self.stride))

    # -- lattice ------------------------------------------------------------
    def join(self, other: "AbstractInt") -> "AbstractInt":
        stride = math.gcd(self.stride, other.stride, abs(self.offset - other.offset))
        if stride < 1:
            stride = 1
        return AbstractInt(
            min(self.lo, other.lo),
            max(self.hi, other.hi),
            self.type,
            stride,
            self.lo % stride if stride > 1 else 0,
        )

    def widen(self, other: "AbstractInt", facts: IntTypeFacts) -> "AbstractInt":
        """Widen ``self`` by ``other``: unstable bounds jump to the type range."""
        lo = self.lo if other.lo >= self.lo else facts.lo
        hi = self.hi if other.hi <= self.hi else facts.hi
        stride = math.gcd(self.stride, other.stride)
        if stride > 1 and self.offset % stride != other.offset % stride:
            stride = 1
        return AbstractInt(
            lo, hi, self.type, stride, self.lo % stride if stride > 1 else 0
        )

    def meet_range(self, lo: int, hi: int) -> Optional["AbstractInt"]:
        """Intersect with ``[lo, hi]``; None if empty."""
        new_lo, new_hi = max(self.lo, lo), min(self.hi, hi)
        if new_lo > new_hi:
            return None
        try:
            return AbstractInt(new_lo, new_hi, self.type, self.stride, self.offset)
        except ValueError:
            return None

    def same_set(self, other: "AbstractInt") -> bool:
        return (
            self.lo == other.lo
            and self.hi == other.hi
            and self.stride == other.stride
            and self.offset == other.offset
        )

    def retype(self, ctype: ct.CType) -> "AbstractInt":
        return AbstractInt(self.lo, self.hi, ctype, self.stride, self.offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cong = f" ≡{self.offset} (mod {self.stride})" if self.stride > 1 else ""
        return f"AbstractInt([{self.lo}, {self.hi}]{cong}: {self.type})"


#: Abstract booleans, as the concrete comparisons produce them (``int`` 0/1).
def abstract_bool(definitely: Optional[bool]) -> AbstractInt:
    if definitely is True:
        return AbstractInt.constant(1, ct.INT)
    if definitely is False:
        return AbstractInt.constant(0, ct.INT)
    return AbstractInt(0, 1, ct.INT)


# ---------------------------------------------------------------------------
# Possible / certain undefined behaviors found by a transfer function
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PossibleUB:
    """One undefined behavior an abstract operation could not rule out.

    ``certain=True`` means *every* concretization of the operands triggers
    the behavior — the ingredient of a ``PROVED_UNDEFINED`` verdict when it
    happens on a path whose reachability is itself definite.  ``witness``
    is the interval of offending values (the out-of-range results, the zero
    divisor, the bad shift amounts ...).
    """

    kind: UBKind
    message: str
    line: int
    certain: bool
    witness: Interval = Interval.top()


# ---------------------------------------------------------------------------
# Transfer functions over the lowering facts
# ---------------------------------------------------------------------------

def abstract_wrap(
    facts: IntTypeFacts, lo: int, hi: int, stride: int = 1, offset: int = 0
) -> AbstractInt:
    """The interval image of ``conversions._int_to_int`` (modular wrap).

    A single wrapped segment keeps the congruence exactly; a straddling
    range collapses to the type range with the congruence reduced to
    ``gcd(stride, 2**bits)`` (the wrap distance is a multiple of
    ``2**bits``, so that much of the congruence survives).
    """
    if facts.lo <= lo and hi <= facts.hi:
        return AbstractInt(lo, hi, facts.type, stride, offset)
    span = 1 << facts.bits
    k_lo, k_hi = (lo - facts.lo) // span, (hi - facts.lo) // span
    if k_lo == k_hi:
        shift = k_lo * span
        return AbstractInt(
            lo - shift,
            hi - shift,
            facts.type,
            stride,
            (offset - shift) % stride if stride > 1 else 0,
        )
    stride = math.gcd(stride, span)
    if stride < 1:
        stride = 1
    return AbstractInt(
        facts.lo + (offset - facts.lo) % stride if stride > 1 else facts.lo,
        facts.hi,
        facts.type,
        stride,
        offset % stride,
    )


def abstract_convert(facts: IntTypeFacts, value: AbstractInt) -> AbstractInt:
    """Convert an abstract integer to the type described by ``facts``.

    Mirrors ``_int_conversion_plan``: in-range values are retyped, anything
    else wraps modularly.  Integer conversions never raise in this
    semantics, so no :class:`PossibleUB` can come out of here.
    """
    if facts.lo <= value.lo and value.hi <= facts.hi:
        return value.retype(facts.type)
    return abstract_wrap(facts, value.lo, value.hi, value.stride, value.offset)


def abstract_to_bool(value: AbstractInt) -> AbstractInt:
    """``_Bool`` conversion / truth test: ``1 if v != 0 else 0``."""
    if not value.contains(0):
        return AbstractInt.constant(1, ct.BOOL)
    if value.is_constant:
        return AbstractInt.constant(0, ct.BOOL)
    return AbstractInt(0, 1, ct.BOOL)


def _certainly(kind: UBKind, message: str, line: int, witness: Interval) -> PossibleUB:
    return PossibleUB(kind, message, line, certain=True, witness=witness)


def _possibly(kind: UBKind, message: str, line: int, witness: Interval) -> PossibleUB:
    return PossibleUB(kind, message, line, certain=False, witness=witness)


def _arith_result_abs(
    facts: IntBinaryFacts,
    lo: int,
    hi: int,
    stride: int,
    offset: int,
    overflow_possible: bool,
    ubs: list[PossibleUB],
) -> Optional[AbstractInt]:
    """Abstract twin of the plans' ``arith_result`` closure.

    Returns the surviving abstract result (executions that raised are dead,
    so a straddling signed result is refined to the in-range part), or None
    when *no* execution survives — every concretization overflows.
    """
    common = facts.common
    if common.lo <= lo and hi <= common.hi:
        return AbstractInt(lo, hi, common.type, stride, offset)
    if common.signed:
        if facts.check_arithmetic and overflow_possible:
            certain = hi < common.lo or lo > common.hi
            ubs.append(
                PossibleUB(
                    UBKind.SIGNED_OVERFLOW,
                    f"Signed integer overflow: result does not fit in {common.type}.",
                    facts.line,
                    certain=certain,
                    witness=Interval(lo, hi),
                )
            )
            if certain:
                return None
            survivor = AbstractInt(lo, hi, common.type, stride, offset)
            return survivor.meet_range(common.lo, common.hi)
        return abstract_wrap(common, lo, hi, stride, offset)
    return abstract_wrap(common, lo, hi, stride, offset)


def _trunc_div(a: int, b: int) -> int:
    """C's truncating division (round toward zero)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _div_bounds(a: AbstractInt, b_lo: int, b_hi: int) -> tuple[int, int]:
    """Bounds of ``a / b`` (truncating) for a divisor range excluding 0.

    Truncating division is monotone in the dividend for a fixed divisor and
    extremal at the divisor endpoints within each sign, so endpoint
    combinations over each divisor sign segment suffice.
    """
    candidates: list[int] = []
    segments = []
    if b_lo <= -1:
        segments.append((b_lo, min(b_hi, -1)))
    if b_hi >= 1:
        segments.append((max(b_lo, 1), b_hi))
    for seg_lo, seg_hi in segments:
        for a_end in (a.lo, a.hi):
            for b_end in (seg_lo, seg_hi):
                candidates.append(_trunc_div(a_end, b_end))
    return min(candidates), max(candidates)


def _refine_nonzero(value: AbstractInt) -> Optional[AbstractInt]:
    """The subset of ``value`` excluding 0; None if that is empty."""
    if not value.contains(0):
        return value
    if value.is_constant:
        return None
    lo, hi = value.lo, value.hi
    if lo == 0:
        lo += value.stride if value.offset == 0 else 1
    if hi == 0:
        hi -= value.stride if value.offset == 0 else 1
    if lo > hi:
        return None
    try:
        return AbstractInt(lo, hi, value.type, value.stride, value.offset)
    except ValueError:
        return None


def _shift_candidates(a: AbstractInt, b_lo: int, b_hi: int, left: bool) -> tuple[
    int, int
]:
    results = []
    for a_end in (a.lo, a.hi):
        for b_end in (b_lo, b_hi):
            results.append(a_end << b_end if left else a_end >> b_end)
    return min(results), max(results)


def abstract_binary(facts: IntBinaryFacts, left: AbstractInt,
                    right: AbstractInt,
                    ) -> tuple[Optional[AbstractInt], list[PossibleUB]]:
    """Abstract twin of ``_int_binary_plan``'s specialized closures.

    Returns ``(survivor, ubs)``: the abstract result for the executions
    that did not stop at a check, plus every undefined behavior the
    operation may (or must — ``certain=True``) trigger.  A ``None``
    survivor means no execution gets past this operation.

    Soundness contract (pinned by ``tests/symbolic/test_domain_properties``):
    for any concrete operands in the operands' concretizations, the concrete
    plan either raises a UB whose kind appears in ``ubs``, or produces a
    value contained in ``survivor``.
    """
    common = facts.common
    op = facts.op
    line = facts.line
    ubs: list[PossibleUB] = []
    a = abstract_convert(common, left)
    b = abstract_convert(common, right)

    if op in ("<", ">", "<=", ">=", "==", "!="):
        return _abstract_compare(op, a, b), ubs

    if op == "+":
        result = _arith_result_abs(
            facts,
            a.lo + b.lo,
            a.hi + b.hi,
            math.gcd(a.stride, b.stride),
            a.offset + b.offset,
            True,
            ubs,
        )
        return result, ubs
    if op == "-":
        result = _arith_result_abs(
            facts,
            a.lo - b.hi,
            a.hi - b.lo,
            math.gcd(a.stride, b.stride),
            a.offset - b.offset,
            True,
            ubs,
        )
        return result, ubs
    if op == "*":
        products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
        # v1*v2 ≡ o1*o2 (mod gcd(s1, s2)); multiplying by a constant c
        # scales the other operand's congruence to c*v ≡ c*o (mod |c|*s).
        stride = math.gcd(a.stride, b.stride)
        offset = a.offset * b.offset
        if a.is_constant and a.value != 0:
            stride, offset = abs(a.value) * b.stride, a.value * b.offset
        elif b.is_constant and b.value != 0:
            stride, offset = abs(b.value) * a.stride, b.value * a.offset
        result = _arith_result_abs(
            facts, min(products), max(products), max(stride, 1), offset, True, ubs
        )
        return result, ubs

    if op in ("/", "%"):
        divisor = b
        if divisor.contains(0):
            certain = divisor.is_constant
            if facts.check_arithmetic:
                ubs.append(
                    PossibleUB(
                        UBKind.DIVISION_BY_ZERO,
                        "Division or modulus by zero.",
                        line,
                        certain=certain,
                        witness=Interval.constant(0),
                    )
                )
                if certain:
                    return None, ubs
                divisor = _refine_nonzero(divisor)
            else:
                # Check disabled: b == 0 concretely yields 0, the rest divide.
                refined = _refine_nonzero(divisor)
                if refined is None:
                    return AbstractInt.constant(0, common.type), ubs
                result, more = abstract_binary(facts, a, refined)
                ubs.extend(more)
                if result is None:
                    return AbstractInt.constant(0, common.type), ubs
                return result.join(AbstractInt.constant(0, common.type)), ubs
        if divisor is None:
            return None, ubs
        if op == "/":
            q_lo, q_hi = _div_bounds(a, divisor.lo, divisor.hi)
            return _arith_result_abs(facts, q_lo, q_hi, 1, 0, True, ubs), ubs
        # Remainder: |r| < max|b| and |r| <= max|a|, sign follows the dividend.
        magnitude = min(
            max(abs(divisor.lo), abs(divisor.hi)) - 1, max(abs(a.lo), abs(a.hi))
        )
        r_lo = 0 if a.lo >= 0 else -magnitude
        r_hi = 0 if a.hi <= 0 else magnitude
        if a.is_constant and divisor.is_constant:
            exact = a.value - _trunc_div(a.value, divisor.value) * divisor.value
            r_lo = r_hi = exact
        return _arith_result_abs(facts, r_lo, r_hi, 1, 0, True, ubs), ubs

    if op in ("&", "|", "^"):
        return _abstract_bitwise(facts, op, a, b, ubs), ubs

    if op in ("<<", ">>"):
        return _abstract_shift(facts, op, a, b, ubs), ubs

    raise ValueError(f"unplanned integer operator {op!r}")


def _abstract_compare(op: str, a: AbstractInt, b: AbstractInt) -> AbstractInt:
    definite: Optional[bool] = None
    if op == "<":
        definite = True if a.hi < b.lo else (False if a.lo >= b.hi else None)
    elif op == ">":
        definite = True if a.lo > b.hi else (False if a.hi <= b.lo else None)
    elif op == "<=":
        definite = True if a.hi <= b.lo else (False if a.lo > b.hi else None)
    elif op == ">=":
        definite = True if a.lo >= b.hi else (False if a.hi < b.lo else None)
    elif op == "==":
        if a.is_constant and b.is_constant:
            definite = a.value == b.value
        elif a.hi < b.lo or b.hi < a.lo:
            definite = False
        else:
            g = math.gcd(a.stride, b.stride)
            if g > 1 and a.offset % g != b.offset % g:
                definite = False
    elif op == "!=":
        if a.is_constant and b.is_constant:
            definite = a.value != b.value
        elif a.hi < b.lo or b.hi < a.lo:
            definite = True
        else:
            g = math.gcd(a.stride, b.stride)
            if g > 1 and a.offset % g != b.offset % g:
                definite = True
    return abstract_bool(definite)


def _abstract_bitwise(
    facts: IntBinaryFacts,
    op: str,
    a: AbstractInt,
    b: AbstractInt,
    ubs: list[PossibleUB],
) -> Optional[AbstractInt]:
    common = facts.common
    if a.is_constant and b.is_constant:
        value = {
            "&": a.value & b.value,
            "|": a.value | b.value,
            "^": a.value ^ b.value,
        }[op]
        return _arith_result_abs(facts, value, value, 1, 0, False, ubs)
    if a.lo >= 0 and b.lo >= 0:
        if op == "&":
            lo, hi = 0, min(a.hi, b.hi)
        else:
            bound = (1 << max(a.hi, b.hi).bit_length()) - 1
            lo, hi = (max(a.lo, b.lo), bound) if op == "|" else (0, bound)
        return _arith_result_abs(facts, lo, hi, 1, 0, False, ubs)
    # A negative operand: the exact bit-level bounds are fiddly; fall back
    # to the whole type range (bitwise ops cannot raise, so this is sound,
    # just imprecise).
    return AbstractInt.top(common)


def _abstract_shift(
    facts: IntBinaryFacts,
    op: str,
    a: AbstractInt,
    b: AbstractInt,
    ubs: list[PossibleUB],
) -> Optional[AbstractInt]:
    common = facts.common
    bits = common.bits
    line = facts.line
    if facts.check_arithmetic and (b.lo < 0 or b.hi >= bits):
        certain = b.hi < 0 or b.lo >= bits
        ubs.append(
            PossibleUB(
                UBKind.SHIFT_TOO_FAR,
                f"Shift amount is negative or >= width of the type ({bits} bits).",
                line,
                certain=certain,
                witness=Interval(b.lo, b.hi),
            )
        )
        if certain:
            return None
        b = b.meet_range(0, bits - 1)
        if b is None:
            return None
    else:
        # The concrete plan clamps each value with max(0, min(b, bits-1))
        # before shifting; clamping breaks congruence, so keep bounds only.
        b = AbstractInt(
            max(0, min(b.lo, bits - 1)), max(0, min(b.hi, bits - 1)), common.type
        )
    if op == "<<":
        if facts.check_arithmetic and common.signed and a.lo < 0:
            certain = a.hi < 0
            ubs.append(
                PossibleUB(
                    UBKind.SHIFT_NEGATIVE,
                    "Left shift of a negative value.",
                    line,
                    certain=certain,
                    witness=Interval(a.lo, min(a.hi, -1)),
                )
            )
            if certain:
                return None
            a = a.meet_range(0, a.hi)
            if a is None:
                return None
        lo, hi = _shift_candidates(a, b.lo, b.hi, left=True)
        if (
            common.signed
            and facts.check_arithmetic
            and (lo < common.lo or hi > common.hi)
        ):
            certain = hi < common.lo or lo > common.hi
            ubs.append(
                PossibleUB(
                    UBKind.SHIFT_OVERFLOW,
                    f"Left shift overflows {common.type}.",
                    line,
                    certain=certain,
                    witness=Interval(lo, hi),
                )
            )
            if certain:
                return None
            lo, hi = max(lo, common.lo), min(hi, common.hi)
        stride = (a.stride << b.lo) if b.is_constant else 1
        offset = (a.offset << b.lo) if b.is_constant else 0
        return _arith_result_abs(
            facts, lo, hi, max(stride, 1), offset, not common.signed, ubs
        )
    lo, hi = _shift_candidates(a, b.lo, b.hi, left=False)
    return AbstractInt(lo, hi, common.type)


def abstract_negate(facts: IntTypeFacts, check_arithmetic: bool,
                    value: AbstractInt, line: int,
                    ) -> tuple[Optional[AbstractInt], list[PossibleUB]]:
    """Abstract twin of unary minus (``_arith_result(-v, promoted)``)."""
    ubs: list[PossibleUB] = []
    v = abstract_convert(facts, value)
    lo, hi = -v.hi, -v.lo
    if facts.lo <= lo and hi <= facts.hi:
        return AbstractInt(lo, hi, facts.type, v.stride, -v.offset), ubs
    if facts.signed and check_arithmetic:
        certain = hi < facts.lo or lo > facts.hi
        ubs.append(
            PossibleUB(
                UBKind.SIGNED_OVERFLOW,
                f"Signed integer overflow: result does not fit in {facts.type}.",
                line,
                certain=certain,
                witness=Interval(lo, hi),
            )
        )
        if certain:
            return None, ubs
        survivor = AbstractInt(lo, hi, facts.type, v.stride, -v.offset)
        return survivor.meet_range(facts.lo, facts.hi), ubs
    return abstract_wrap(facts, lo, hi, v.stride, -v.offset), ubs


def abstract_complement(facts: IntTypeFacts, value: AbstractInt) -> AbstractInt:
    """Abstract ``~v`` (== ``-v - 1``; always in range for promoted types)."""
    v = abstract_convert(facts, value)
    return abstract_wrap(facts, -v.hi - 1, -v.lo - 1, v.stride, -v.offset - 1)


# ---------------------------------------------------------------------------
# The relational constraint store
# ---------------------------------------------------------------------------

class ConstraintStore:
    """Difference bounds ``y - x ∈ [lo, hi]`` over named integer cells.

    A deliberately small relational domain: enough to decide ``i < n``
    when the program established ``n = i + 3``, which plain intervals lose
    the moment ``i`` widens.  Every write to a cell must ``forget`` it.
    """

    __slots__ = ("relations",)

    def __init__(self, relations: Optional[dict] = None) -> None:
        #: {(x, y): (lo, hi)} with x < y lexicographically, meaning
        #: y - x ∈ [lo, hi]; None bounds are infinities.
        self.relations: dict[tuple[str, str], tuple[Optional[int], Optional[int]]] = (
            dict(relations) if relations else {}
        )

    def copy(self) -> "ConstraintStore":
        return ConstraintStore(self.relations)

    @staticmethod
    def _key(x: str, y: str) -> tuple[tuple[str, str], int]:
        """Canonical key plus orientation (+1 if stored as y-x, else -1)."""
        return ((x, y), 1) if x < y else ((y, x), -1)

    def relate(self, x: str, y: str, lo: Optional[int], hi: Optional[int]) -> None:
        """Assert ``y - x ∈ [lo, hi]`` (intersected with what is known)."""
        if x == y:
            return
        key, sign = self._key(x, y)
        if sign < 0:
            lo, hi = (None if hi is None else -hi), (None if lo is None else -lo)
        old_lo, old_hi = self.relations.get(key, (None, None))
        new_lo = lo if old_lo is None else (old_lo if lo is None else max(lo, old_lo))
        new_hi = hi if old_hi is None else (old_hi if hi is None else min(hi, old_hi))
        self.relations[key] = (new_lo, new_hi)

    def difference(self, x: str, y: str) -> tuple[Optional[int], Optional[int]]:
        """Known bounds of ``y - x``; ``(None, None)`` when unrelated."""
        key, sign = self._key(x, y)
        lo, hi = self.relations.get(key, (None, None))
        if sign < 0:
            lo, hi = (None if hi is None else -hi), (None if lo is None else -lo)
        return lo, hi

    def forget(self, name: str) -> None:
        """Drop every relation involving ``name`` (it was overwritten)."""
        self.relations = {
            key: bounds for key, bounds in self.relations.items() if name not in key
        }

    def join(self, other: "ConstraintStore") -> "ConstraintStore":
        """Keep only relations both stores agree on, with joined bounds."""
        joined: dict = {}
        for key, (lo, hi) in self.relations.items():
            if key not in other.relations:
                continue
            olo, ohi = other.relations[key]
            jlo = None if lo is None or olo is None else min(lo, olo)
            jhi = None if hi is None or ohi is None else max(hi, ohi)
            if jlo is not None or jhi is not None:
                joined[key] = (jlo, jhi)
        return ConstraintStore(joined)

    def compare(self, op: str, x: str, y: str) -> Optional[bool]:
        """Decide ``x op y`` from the difference bounds, if possible."""
        lo, hi = self.difference(x, y)  # y - x
        if op == "<":  # x < y  <=>  y - x >= 1
            if lo is not None and lo >= 1:
                return True
            if hi is not None and hi <= 0:
                return False
        elif op == "<=":
            if lo is not None and lo >= 0:
                return True
            if hi is not None and hi < 0:
                return False
        elif op == ">":
            if hi is not None and hi <= -1:
                return True
            if lo is not None and lo >= 0:
                return False
        elif op == ">=":
            if hi is not None and hi <= 0:
                return True
            if lo is not None and lo > 0:
                return False
        elif op == "==":
            if lo == hi == 0:
                return True
            if (lo is not None and lo > 0) or (hi is not None and hi < 0):
                return False
        elif op == "!=":
            if lo == hi == 0:
                return False
            if (lo is not None and lo > 0) or (hi is not None and hi < 0):
                return True
        return None

    def assume_compare(self, op: str, x: str, y: str, truth: bool) -> None:
        """Refine the store with the knowledge that ``x op y`` is ``truth``."""
        negated = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}
        effective = op if truth else negated[op]
        if effective == "<":
            self.relate(x, y, 1, None)
        elif effective == "<=":
            self.relate(x, y, 0, None)
        elif effective == ">":
            self.relate(x, y, None, -1)
        elif effective == ">=":
            self.relate(x, y, None, 0)
        elif effective == "==":
            self.relate(x, y, 0, 0)
        # "!=" carries no difference-bound information.


def join_cells(values: Iterable[AbstractInt]) -> AbstractInt:
    """Join a non-empty iterable of abstract values."""
    result: Optional[AbstractInt] = None
    for value in values:
        result = value if result is None else result.join(value)
    assert result is not None
    return result


__all__ = [
    "Interval",
    "AbstractInt",
    "PossibleUB",
    "ConstraintStore",
    "abstract_binary",
    "abstract_bool",
    "abstract_complement",
    "abstract_convert",
    "abstract_negate",
    "abstract_to_bool",
    "abstract_wrap",
    "int_type_facts",
    "join_cells",
]
