"""FuzzCorpusSuite: generated ground-truth programs as an evaluation suite.

The PR-3 harness scores analyzer probes against hand-written suites; this
adapter feeds it *generated* ground truth instead: every clean program is a
"good" control case and every injected program a "bad" case labeled with
its check family and expected kinds, so `EvaluationHarness.run_suite` (and
therefore the Figure 2/3 tables) work unchanged over an arbitrarily large
seeded corpus::

    from repro.suites.fuzzcorpus import generate_fuzz_suite
    suite = generate_fuzz_suite(seed=0, count=200)
    comparison = run_comparison(suite)

Category strings are ``fuzz:<family>`` (or ``fuzz:clean``), so fuzz rows
are visually distinct from the hand-written suites' class names.
"""

from __future__ import annotations

from typing import Optional

from repro.fuzz.generator import FuzzCase, GeneratorConfig, generate_case
from repro.suites.harness import TestCase, TestSuite


class FuzzCorpusSuite(TestSuite):
    """A :class:`TestSuite` built from generated, ground-truth-labeled cases."""

    def families(self) -> list[str]:
        """The injected check families present in this corpus, sorted."""
        return sorted({case.category.removeprefix("fuzz:")
                       for case in self.cases if case.is_bad})


def _to_test_case(case: FuzzCase) -> TestCase:
    family = case.family or ("terminal" if case.is_bad else "clean")
    return TestCase(
        name=case.name,
        source=case.source,
        is_bad=case.is_bad,
        category=f"fuzz:{family}",
        behavior=case.injected or "well-defined",
        stage="dynamic",
        description=(f"generated; planted {case.injected}" if case.is_bad
                     else "generated; well-defined by construction"),
        expected_kinds=tuple(kind.name for kind in case.expected_kinds),
    )


def generate_fuzz_suite(seed: int = 0, count: int = 100, *,
                        inject: Optional[str] = "mixed",
                        config: GeneratorConfig = GeneratorConfig()) -> FuzzCorpusSuite:
    """Generate a seeded corpus suite: deterministic in ``(seed, count)``."""
    suite = FuzzCorpusSuite(name=f"fuzz corpus (seed={seed}, n={count})")
    for index in range(count):
        suite.add(_to_test_case(generate_case(seed, index, config=config,
                                              inject=inject)))
    return suite


__all__ = ["FuzzCorpusSuite", "generate_fuzz_suite"]
