"""The evaluation harness: run analysis tools over test suites, score them.

This reproduces the methodology of Section 5 of the paper:

* every test is a **separate program** containing at most one undefined
  behavior (so behaviors cannot interact),
* every undefined ("bad") test has a corresponding defined ("good") control
  test, which makes false positives measurable — "without such tests, a tool
  could simply say all programs were undefined and receive full marks",
* Figure 2 groups tests by undefined-behavior class and reports the
  percentage of bad tests each tool catches per class,
* Figure 3 averages *across undefined behaviors* ("no behavior is weighted
  more than another"), split into statically and dynamically detectable
  behaviors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.analyzers.base import (
    AnalysisTool,
    SemanticsBasedTool,
    ToolResult,
    run_probe_group,
    sharing_signature,
)
from repro.reporting import format_percent, render_table


@dataclass
class TestCase:
    """One test program."""

    __test__ = False  # not a pytest test class, despite the (paper's) name

    name: str
    source: str
    is_bad: bool
    category: str = ""            # UB class (Figure 2) or behavior id (Figure 3)
    behavior: str = ""            # fine-grained behavior identifier
    stage: str = "dynamic"        # "static" or "dynamic" detectability
    description: str = ""
    expected_kinds: tuple = ()

    @property
    def kind_label(self) -> str:
        return "bad" if self.is_bad else "good"


@dataclass
class TestSuite:
    """A named collection of test cases."""

    __test__ = False  # not a pytest test class, despite the (paper's) name

    name: str
    cases: list[TestCase] = field(default_factory=list)

    def add(self, case: TestCase) -> None:
        self.cases.append(case)

    def categories(self) -> list[str]:
        seen: list[str] = []
        for case in self.cases:
            if case.category not in seen:
                seen.append(case.category)
        return seen

    def behaviors(self) -> list[str]:
        seen: list[str] = []
        for case in self.cases:
            if case.behavior and case.behavior not in seen:
                seen.append(case.behavior)
        return seen

    def bad_cases(self) -> list[TestCase]:
        return [case for case in self.cases if case.is_bad]

    def good_cases(self) -> list[TestCase]:
        return [case for case in self.cases if not case.is_bad]

    def cases_in(self, category: str) -> list[TestCase]:
        return [case for case in self.cases if case.category == category]

    def __len__(self) -> int:
        return len(self.cases)


@dataclass
class CaseRecord:
    """The verdict of one tool on one test case."""

    case: TestCase
    result: ToolResult

    @property
    def correct(self) -> bool:
        if self.case.is_bad:
            return self.result.flagged
        return not self.result.flagged

    @property
    def false_positive(self) -> bool:
        return (not self.case.is_bad) and self.result.flagged

    @property
    def false_negative(self) -> bool:
        return self.case.is_bad and not self.result.flagged


@dataclass
class SuiteScore:
    """Scores of one tool over one suite."""

    tool: str
    records: list[CaseRecord] = field(default_factory=list)

    # -- aggregate scores -----------------------------------------------------
    #
    # Rates over an empty denominator return ``None`` (rendered as ``—`` in
    # the tables), keeping "there were no such tests" distinguishable from
    # "the tool caught none of them".

    def detection_rate(self, category: Optional[str] = None) -> Optional[float]:
        """Fraction of *bad* tests flagged (the paper's "% passed")."""
        bad = [r for r in self.records
               if r.case.is_bad and (category is None or r.case.category == category)]
        if not bad:
            return None
        return sum(1 for r in bad if r.result.flagged) / len(bad)

    def false_positive_rate(self, category: Optional[str] = None) -> Optional[float]:
        good = [r for r in self.records
                if not r.case.is_bad and (category is None or r.case.category == category)]
        if not good:
            return None
        return sum(1 for r in good if r.result.flagged) / len(good)

    def per_behavior_rate(self, stage: Optional[str] = None) -> Optional[float]:
        """Average detection over behaviors, each behavior weighted equally
        (the Figure 3 metric)."""
        by_behavior: dict[str, list[CaseRecord]] = {}
        for record in self.records:
            if not record.case.is_bad:
                continue
            if stage is not None and record.case.stage != stage:
                continue
            by_behavior.setdefault(record.case.behavior or record.case.name, []).append(record)
        if not by_behavior:
            return None
        rates = []
        for records in by_behavior.values():
            rates.append(sum(1 for r in records if r.result.flagged) / len(records))
        return sum(rates) / len(rates)

    def mean_runtime(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.result.runtime_seconds for r in self.records) / len(self.records)

    def inconclusive_count(self) -> int:
        return sum(1 for r in self.records if r.result.inconclusive)


@dataclass
class ComparisonResult:
    """Scores of several tools over one suite."""

    suite: TestSuite
    scores: list[SuiteScore] = field(default_factory=list)

    def score_for(self, tool_name: str) -> SuiteScore:
        for score in self.scores:
            if score.tool == tool_name:
                return score
        raise KeyError(f"no score recorded for tool {tool_name!r}")

    # -- table rendering --------------------------------------------------------
    def figure2_table(self) -> str:
        """Per-class detection table in the shape of the paper's Figure 2.

        Test counts come from the cases that actually ran (the scores'
        records), not the whole suite, so a subset run — ``bench --smoke``,
        or ``run_suite(cases=...)`` — never pairs a full-suite count with a
        subset rate.
        """
        headers = ["Undefined Behavior", "No. Tests"] + [s.tool for s in self.scores]
        cases_run = [r.case for r in self.scores[0].records] if self.scores else []
        categories: list[str] = []
        for case in cases_run:
            if case.category not in categories:
                categories.append(case.category)
        rows = []
        for category in categories:
            bad_count = sum(1 for c in cases_run if c.category == category and c.is_bad)
            row = [category, bad_count]
            for score in self.scores:
                row.append(format_percent(score.detection_rate(category)))
            rows.append(row)
        total_row = ["all classes", sum(1 for c in cases_run if c.is_bad)]
        for score in self.scores:
            total_row.append(format_percent(score.detection_rate()))
        rows.append(total_row)
        fp_row = ["false positives (good tests)",
                  sum(1 for c in cases_run if not c.is_bad)]
        for score in self.scores:
            fp_row.append(format_percent(score.false_positive_rate()))
        rows.append(fp_row)
        return render_table(headers, rows,
                            title=f"Comparison of analysis tools on {self.suite.name} (% of bad tests flagged)")

    def figure3_table(self) -> str:
        """Static/dynamic per-behavior averages in the shape of Figure 3."""
        headers = ["Tools", "Static (% Passed)", "Dynamic (% Passed)"]
        rows = []
        for score in self.scores:
            rows.append([score.tool,
                         format_percent(score.per_behavior_rate("static")),
                         format_percent(score.per_behavior_rate("dynamic"))])
        return render_table(
            headers, rows,
            title=f"Comparison of analysis tools against {self.suite.name} "
                  "(averaged across behaviors)")

    def runtime_table(self) -> str:
        # Milliseconds: with compiles warmed outside the timed window, the
        # per-test dynamic times are sub-millisecond and a seconds column
        # would round every tool to 0.000.
        headers = ["Tool", "mean ms/test", "inconclusive"]
        rows = [[score.tool, f"{score.mean_runtime() * 1000.0:.3f}",
                 score.inconclusive_count()]
                for score in self.scores]
        return render_table(
            headers, rows,
            title="Mean analysis time per test (dynamic stage; compile cached)")


def analyze_case(tools: Sequence[AnalysisTool], source: str,
                 filename: str) -> list[ToolResult]:
    """All tools' verdicts on one program, sharing executions where possible.

    Semantics-based tools that can share an execution (everything but the
    evaluation-order search) are grouped into one observed run of the
    engine: the probes of :mod:`repro.analyzers.base` filter its event
    stream, so N tool verdicts cost one parse and one execution.  Any
    remaining tools run individually through ``timed_analyze``.
    """
    groups: dict[object, list[SemanticsBasedTool]] = {}
    for tool in tools:
        if isinstance(tool, SemanticsBasedTool) and tool.can_share_execution:
            # Tools share an execution only when they agree on everything
            # outside the check flags (profile, resource limits, ...); a
            # mixed lineup simply runs one execution per signature.
            groups.setdefault(sharing_signature(tool.options), []).append(tool)
    results: dict[int, ToolResult] = {}
    for group in groups.values():
        for tool, result in zip(group,
                                run_probe_group(group, source, filename=filename)):
            results[id(tool)] = result
    for tool in tools:
        if id(tool) not in results:
            results[id(tool)] = tool.timed_analyze(source, filename=filename)
    return [results[id(tool)] for tool in tools]


def _analyze_case_task(tools: Sequence[AnalysisTool],
                       case: tuple[str, str]) -> list[ToolResult]:
    """Pool worker: one case, all tools.  Must stay module-level (picklable).

    ``tools`` is the staged-chunk header: the warm pool pickles the lineup
    once per chunk, so a grid of N cases ships the tool objects ``ceil(N /
    chunksize)`` times instead of N times.
    """
    source, filename = case
    return analyze_case(tools, source, filename)


class EvaluationHarness:
    """Runs tools over suites and produces :class:`ComparisonResult` objects."""

    def __init__(self, tools: Sequence[AnalysisTool]) -> None:
        self.tools = list(tools)

    def run_suite(self, suite: TestSuite, *,
                  cases: Optional[Iterable[TestCase]] = None,
                  jobs: Optional[int] = 1) -> ComparisonResult:
        """Run every tool over every (selected) case.

        With ``jobs > 1`` cases fan out over a process pool; record order —
        and therefore every score and table — is identical to the serial
        path.  Either way, each case costs one shared execution for all the
        probe-backed tools (see :func:`analyze_case`).
        """
        selected = list(cases) if cases is not None else suite.cases
        comparison = ComparisonResult(suite=suite)
        results = self._run_grid(selected, jobs=jobs)
        for index, tool in enumerate(self.tools):
            score = SuiteScore(tool=tool.name)
            for case_index, case in enumerate(selected):
                score.records.append(CaseRecord(
                    case=case, result=results[case_index][index]))
            comparison.scores.append(score)
        return comparison

    def _run_grid(self, selected: Sequence[TestCase], *,
                  jobs: Optional[int]) -> list[list[ToolResult]]:
        from repro.service.pool import run_staged

        cases = [(case.source, case.name) for case in selected]
        return run_staged(_analyze_case_task, self.tools, cases, jobs=jobs)


def run_comparison(suite: TestSuite, tools: Optional[Sequence[AnalysisTool]] = None,
                   *, cases: Optional[Iterable[TestCase]] = None,
                   jobs: Optional[int] = 1) -> ComparisonResult:
    """Convenience wrapper: run the default tools over ``suite``."""
    from repro.analyzers.registry import default_tools

    harness = EvaluationHarness(tools if tools is not None else default_tools())
    return harness.run_suite(suite, cases=cases, jobs=jobs)
