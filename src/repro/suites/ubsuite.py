"""The undefinedness test suite (Section 5.2 of the paper).

The paper's authors built their own suite because no existing benchmark
covered undefined behavior broadly: 178 tests over 70 of the 221 undefined
behaviors, each behavior tested by a separate small program paired with a
defined "control" program, classified as statically or dynamically
detectable.  This module is our version of that suite: a hand-written
catalog of undefined/defined program pairs, each tagged with the C11 section
that makes the bad program undefined and with its static/dynamic
classification.

The suite leans toward the non-library, dynamically detectable behaviors,
exactly as the paper's does, and includes all four of the example behaviors
the paper calls out as absent from the Juliet tests (modifying a string
literal, effective-type violations, subtraction of unrelated pointers, and
unsequenced side effects).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.suites.harness import TestCase, TestSuite

GROUP_ARITHMETIC = "arithmetic"
GROUP_POINTERS = "pointers and memory"
GROUP_LIFETIME = "object lifetime"
GROUP_SEQUENCING = "sequencing and const"
GROUP_TYPES = "types and lvalues"
GROUP_FUNCTIONS = "functions"
GROUP_LIBRARY = "library"
GROUP_DECLARATIONS = "declarations (static)"


@dataclass(frozen=True)
class BehaviorTest:
    """One undefined behavior: its metadata plus a bad/good program pair."""

    behavior: str
    section: str
    stage: str              # "static" or "dynamic"
    group: str
    description: str
    bad: str
    good: str


#: The suite proper.  Each entry contributes two test programs.
BEHAVIOR_TESTS: list[BehaviorTest] = [
    # ------------------------------------------------------------------
    # Arithmetic (dynamic)
    # ------------------------------------------------------------------
    BehaviorTest(
        behavior="division-by-zero", section="6.5.5:5", stage="dynamic", group=GROUP_ARITHMETIC,
        description="Integer division by zero.",
        bad="""
int main(void) {
    int d = 0;
    return 5 / d;
}
""",
        good="""
int main(void) {
    int d = 5;
    return 5 / d;
}
"""),
    BehaviorTest(
        behavior="modulo-by-zero", section="6.5.5:5", stage="dynamic", group=GROUP_ARITHMETIC,
        description="Integer remainder by zero.",
        bad="""
int main(void) {
    int d = 0;
    return 17 % d;
}
""",
        good="""
int main(void) {
    int d = 5;
    return 17 % d;
}
"""),
    BehaviorTest(
        behavior="int-min-divided-by-minus-one", section="6.5.5:6", stage="dynamic",
        group=GROUP_ARITHMETIC,
        description="INT_MIN / -1 is not representable.",
        bad="""
#include <limits.h>
int main(void) {
    int numerator = INT_MIN;
    int denominator = -1;
    return (int)(numerator / denominator == 0);
}
""",
        good="""
#include <limits.h>
int main(void) {
    int numerator = INT_MIN + 1;
    int denominator = -1;
    return (int)(numerator / denominator == 0);
}
"""),
    BehaviorTest(
        behavior="signed-addition-overflow", section="6.5:5", stage="dynamic",
        group=GROUP_ARITHMETIC,
        description="Signed integer overflow in addition.",
        bad="""
#include <limits.h>
int main(void) {
    int x = INT_MAX;
    int y = x + 1;
    return y < x;
}
""",
        good="""
#include <limits.h>
int main(void) {
    int x = INT_MAX - 1;
    int y = x + 1;
    return y < x;
}
"""),
    BehaviorTest(
        behavior="signed-multiplication-overflow", section="6.5:5", stage="dynamic",
        group=GROUP_ARITHMETIC,
        description="Signed integer overflow in multiplication.",
        bad="""
int main(void) {
    int x = 1000000;
    int y = x * 10000;
    return y > 0;
}
""",
        good="""
int main(void) {
    int x = 1000;
    int y = x * 1000;
    return y > 0;
}
"""),
    BehaviorTest(
        behavior="signed-negation-overflow", section="6.5:5", stage="dynamic",
        group=GROUP_ARITHMETIC,
        description="Negating INT_MIN overflows.",
        bad="""
#include <limits.h>
int main(void) {
    int x = INT_MIN;
    int y = -x;
    return y > 0;
}
""",
        good="""
#include <limits.h>
int main(void) {
    int x = INT_MIN + 1;
    int y = -x;
    return y > 0;
}
"""),
    BehaviorTest(
        behavior="shift-amount-too-large", section="6.5.7:3", stage="dynamic",
        group=GROUP_ARITHMETIC,
        description="Shift by an amount >= the width of the promoted operand.",
        bad="""
int main(void) {
    int x = 1;
    int amount = 40;
    return x << amount;
}
""",
        good="""
int main(void) {
    int x = 1;
    int amount = 20;
    return (x << amount) != 0;
}
"""),
    BehaviorTest(
        behavior="shift-negative-amount", section="6.5.7:3", stage="dynamic",
        group=GROUP_ARITHMETIC,
        description="Shift by a negative amount.",
        bad="""
int main(void) {
    int x = 4;
    int amount = -2;
    return x >> amount;
}
""",
        good="""
int main(void) {
    int x = 4;
    int amount = 2;
    return x >> amount;
}
"""),
    BehaviorTest(
        behavior="left-shift-of-negative", section="6.5.7:4", stage="dynamic",
        group=GROUP_ARITHMETIC,
        description="Left shift of a negative value.",
        bad="""
int main(void) {
    int x = -1;
    int y = x << 2;
    return y != 0;
}
""",
        good="""
int main(void) {
    int x = 1;
    int y = x << 2;
    return y != 4;
}
"""),
    BehaviorTest(
        behavior="left-shift-overflow", section="6.5.7:4", stage="dynamic",
        group=GROUP_ARITHMETIC,
        description="Left shift whose result is not representable.",
        bad="""
int main(void) {
    int x = 1;
    int y = x << 31;
    return y != 0;
}
""",
        good="""
int main(void) {
    unsigned int x = 1;
    unsigned int y = x << 31;
    return y == 0;
}
"""),
    BehaviorTest(
        behavior="float-to-int-overflow", section="6.3.1.4:1", stage="dynamic",
        group=GROUP_ARITHMETIC,
        description="Conversion of an out-of-range floating value to an integer type.",
        bad="""
int main(void) {
    double huge = 1e30;
    int truncated = (int)huge;
    return truncated != 0;
}
""",
        good="""
int main(void) {
    double small = 1e3;
    int truncated = (int)small;
    return truncated != 1000;
}
"""),

    # ------------------------------------------------------------------
    # Pointers and memory (dynamic)
    # ------------------------------------------------------------------
    BehaviorTest(
        behavior="null-pointer-dereference", section="6.5.3.2:4", stage="dynamic",
        group=GROUP_POINTERS,
        description="Dereference of a null pointer.",
        bad="""
#include <stddef.h>
int main(void) {
    int *p = NULL;
    return *p;
}
""",
        good="""
#include <stddef.h>
int main(void) {
    int x = 3;
    int *p = &x;
    return *p;
}
"""),
    BehaviorTest(
        behavior="array-read-out-of-bounds", section="6.5.6:8", stage="dynamic",
        group=GROUP_POINTERS,
        description="Read past the end of an array.",
        bad="""
int main(void) {
    int data[4] = {1, 2, 3, 4};
    int i = 4;
    return data[i];
}
""",
        good="""
int main(void) {
    int data[4] = {1, 2, 3, 4};
    int i = 3;
    return data[i];
}
"""),
    BehaviorTest(
        behavior="array-write-out-of-bounds", section="6.5.6:8", stage="dynamic",
        group=GROUP_POINTERS,
        description="Write past the end of an array.",
        bad="""
int main(void) {
    int data[4] = {0, 0, 0, 0};
    int i = 5;
    data[i] = 1;
    return data[0];
}
""",
        good="""
int main(void) {
    int data[4] = {0, 0, 0, 0};
    int i = 2;
    data[i] = 1;
    return data[0];
}
"""),
    BehaviorTest(
        behavior="pointer-arithmetic-out-of-object", section="6.5.6:8", stage="dynamic",
        group=GROUP_POINTERS,
        description="Pointer arithmetic producing a pointer more than one past the end.",
        bad="""
int main(void) {
    int data[4] = {0, 1, 2, 3};
    int *p = data;
    p = p + 6;
    return p != data;
}
""",
        good="""
int main(void) {
    int data[4] = {0, 1, 2, 3};
    int *p = data;
    p = p + 4;
    return p != data;
}
"""),
    BehaviorTest(
        behavior="dereference-one-past-end", section="6.5.6:8", stage="dynamic",
        group=GROUP_POINTERS,
        description="Dereferencing the one-past-the-end pointer.",
        bad="""
int main(void) {
    int data[4] = {0, 1, 2, 3};
    int *end = data + 4;
    return *end;
}
""",
        good="""
int main(void) {
    int data[4] = {0, 1, 2, 3};
    int *end = data + 4;
    return *(end - 1);
}
"""),
    BehaviorTest(
        behavior="relational-comparison-unrelated-pointers", section="6.5.8:5", stage="dynamic",
        group=GROUP_POINTERS,
        description="Relational comparison of pointers to different objects.",
        bad="""
int main(void) {
    int a, b;
    a = 1; b = 2;
    if (&a < &b) { return 1; }
    return 0;
}
""",
        good="""
int main(void) {
    struct { int a; int b; } s;
    s.a = 1; s.b = 2;
    if (&s.a < &s.b) { return 1; }
    return 0;
}
"""),
    BehaviorTest(
        behavior="subtraction-unrelated-pointers", section="6.5.6:9", stage="dynamic",
        group=GROUP_POINTERS,
        description="Subtraction of pointers into different array objects.",
        bad="""
int main(void) {
    int a[4]; int b[4];
    a[0] = 0; b[0] = 0;
    return (int)(&a[1] - &b[0]);
}
""",
        good="""
int main(void) {
    int a[4];
    a[0] = 0;
    return (int)(&a[3] - &a[0]);
}
"""),
    BehaviorTest(
        behavior="dereference-void-pointer", section="6.3.2.1:1", stage="dynamic",
        group=GROUP_POINTERS,
        description="Dereference of a pointer to void.",
        bad="""
int main(void) {
    int x = 3;
    void *p = &x;
    *p;
    return 0;
}
""",
        good="""
int main(void) {
    int x = 3;
    void *p = &x;
    return *(int *)p;
}
"""),
    BehaviorTest(
        behavior="misaligned-pointer-access", section="6.3.2.3:7", stage="dynamic",
        group=GROUP_POINTERS,
        description="Access through a pointer that is not suitably aligned.",
        bad="""
int main(void) {
    char buffer[16];
    for (int i = 0; i < 16; i++) buffer[i] = (char)i;
    int *p = (int *)(buffer + 1);
    return *p;
}
""",
        good="""
int main(void) {
    char buffer[16];
    for (int i = 0; i < 16; i++) buffer[i] = (char)i;
    char *p = buffer + 1;
    return *p;
}
"""),
    BehaviorTest(
        behavior="null-pointer-arithmetic", section="6.5.6:8", stage="dynamic",
        group=GROUP_POINTERS,
        description="Arithmetic on a null pointer.",
        bad="""
#include <stddef.h>
int main(void) {
    char *p = NULL;
    char *q = p + 4;
    return q != NULL;
}
""",
        good="""
#include <stddef.h>
int main(void) {
    char buffer[8];
    buffer[4] = 0;
    char *q = buffer + 4;
    return q == NULL;
}
"""),
    BehaviorTest(
        behavior="modify-string-literal", section="6.4.5:7", stage="dynamic",
        group=GROUP_POINTERS,
        description="Attempt to modify a string literal.",
        bad="""
int main(void) {
    char *s = "hello";
    s[0] = 'H';
    return 0;
}
""",
        good="""
int main(void) {
    char s[] = "hello";
    s[0] = 'H';
    return s[0] == 'H' ? 0 : 1;
}
"""),

    # ------------------------------------------------------------------
    # Object lifetime (dynamic)
    # ------------------------------------------------------------------
    BehaviorTest(
        behavior="use-after-free", section="6.2.4:2", stage="dynamic", group=GROUP_LIFETIME,
        description="Use of heap memory after free().",
        bad="""
#include <stdlib.h>
int main(void) {
    int *p = malloc(sizeof(int));
    if (!p) return 0;
    *p = 1;
    free(p);
    return *p;
}
""",
        good="""
#include <stdlib.h>
int main(void) {
    int *p = malloc(sizeof(int));
    if (!p) return 0;
    *p = 1;
    int result = *p;
    free(p);
    return result;
}
"""),
    BehaviorTest(
        behavior="double-free", section="7.22.3.3:2", stage="dynamic", group=GROUP_LIFETIME,
        description="free() called twice on the same allocation.",
        bad="""
#include <stdlib.h>
int main(void) {
    char *p = malloc(8);
    if (!p) return 0;
    free(p);
    free(p);
    return 0;
}
""",
        good="""
#include <stdlib.h>
int main(void) {
    char *p = malloc(8);
    if (!p) return 0;
    free(p);
    p = NULL;
    free(p);
    return 0;
}
"""),
    BehaviorTest(
        behavior="free-of-non-heap-pointer", section="7.22.3.3:2", stage="dynamic",
        group=GROUP_LIFETIME,
        description="free() of a pointer not returned by an allocation function.",
        bad="""
#include <stdlib.h>
int main(void) {
    int local = 1;
    free(&local);
    return 0;
}
""",
        good="""
#include <stdlib.h>
int main(void) {
    int *p = malloc(sizeof(int));
    if (!p) return 0;
    free(p);
    return 0;
}
"""),
    BehaviorTest(
        behavior="free-of-interior-pointer", section="7.22.3.3:2", stage="dynamic",
        group=GROUP_LIFETIME,
        description="free() of a pointer into the middle of an allocation.",
        bad="""
#include <stdlib.h>
int main(void) {
    char *p = malloc(16);
    if (!p) return 0;
    free(p + 8);
    return 0;
}
""",
        good="""
#include <stdlib.h>
int main(void) {
    char *p = malloc(16);
    if (!p) return 0;
    free(p);
    return 0;
}
"""),
    BehaviorTest(
        behavior="use-of-dead-automatic-object", section="6.2.4:2", stage="dynamic",
        group=GROUP_LIFETIME,
        description="Use of a pointer to an automatic object whose lifetime has ended.",
        bad="""
static int *escape(void) {
    int local = 7;
    return &local;
}
int main(void) {
    int *p = escape();
    return *p;
}
""",
        good="""
static int *escape(void) {
    static int persistent = 7;
    return &persistent;
}
int main(void) {
    int *p = escape();
    return *p;
}
"""),
    BehaviorTest(
        behavior="use-of-pointer-to-exited-block", section="6.2.4:2", stage="dynamic",
        group=GROUP_LIFETIME,
        description="Use of a pointer to a block-scoped object after the block exits.",
        bad="""
int main(void) {
    int *p;
    {
        int inner = 9;
        p = &inner;
    }
    return *p;
}
""",
        good="""
int main(void) {
    int outer = 9;
    int *p;
    {
        p = &outer;
    }
    return *p;
}
"""),
    BehaviorTest(
        behavior="read-of-uninitialized-object", section="6.3.2.1:2", stage="dynamic",
        group=GROUP_LIFETIME,
        description="Use of the value of an uninitialized automatic object.",
        bad="""
int main(void) {
    int value;
    return value + 1;
}
""",
        good="""
int main(void) {
    int value = 0;
    return value + 1;
}
"""),
    BehaviorTest(
        behavior="read-of-uninitialized-heap", section="6.3.2.1:2", stage="dynamic",
        group=GROUP_LIFETIME,
        description="Use of an indeterminate value read from malloc'd storage.",
        bad="""
#include <stdlib.h>
int main(void) {
    int *p = malloc(sizeof(int) * 2);
    if (!p) return 0;
    int value = p[1];
    free(p);
    return value;
}
""",
        good="""
#include <stdlib.h>
int main(void) {
    int *p = calloc(2, sizeof(int));
    if (!p) return 0;
    int value = p[1];
    free(p);
    return value;
}
"""),
    BehaviorTest(
        behavior="dereference-of-uninitialized-pointer", section="6.3.2.1:2", stage="dynamic",
        group=GROUP_LIFETIME,
        description="Dereference of an uninitialized pointer.",
        bad="""
int main(void) {
    int *p;
    return *p;
}
""",
        good="""
int main(void) {
    int x = 2;
    int *p = &x;
    return *p;
}
"""),

    # ------------------------------------------------------------------
    # Sequencing and const (dynamic)
    # ------------------------------------------------------------------
    BehaviorTest(
        behavior="unsequenced-writes-to-scalar", section="6.5:2", stage="dynamic",
        group=GROUP_SEQUENCING,
        description="Two unsequenced side effects on the same scalar object.",
        bad="""
int main(void) {
    int x = 0;
    return (x = 1) + (x = 2);
}
""",
        good="""
int main(void) {
    int x = 0;
    x = 1;
    int first = x;
    x = 2;
    return first + x;
}
"""),
    BehaviorTest(
        behavior="unsequenced-write-and-read", section="6.5:2", stage="dynamic",
        group=GROUP_SEQUENCING,
        description="A side effect unsequenced with a value computation of the same object.",
        bad="""
int main(void) {
    int i = 1;
    int result = (i = 5) + i;
    return result;
}
""",
        good="""
int main(void) {
    int i = 1;
    i = 5;
    int result = i + i;
    return result;
}
"""),
    BehaviorTest(
        behavior="unsequenced-increment-in-assignment", section="6.5:2", stage="dynamic",
        group=GROUP_SEQUENCING,
        description="i = i++ modifies i twice without a sequence point.",
        bad="""
int main(void) {
    int i = 0;
    i = i++;
    return i;
}
""",
        good="""
int main(void) {
    int i = 0;
    i++;
    return i;
}
"""),
    BehaviorTest(
        behavior="unsequenced-increments-in-call", section="6.5:2", stage="dynamic",
        group=GROUP_SEQUENCING,
        description="The same object modified twice in unsequenced function arguments.",
        bad="""
static int combine(int a, int b) { return a * 10 + b; }
int main(void) {
    int i = 1;
    return combine(i++, i++);
}
""",
        good="""
static int combine(int a, int b) { return a * 10 + b; }
int main(void) {
    int i = 1;
    int first = i++;
    int second = i++;
    return combine(first, second);
}
"""),
    BehaviorTest(
        behavior="write-to-const-object", section="6.7.3:6", stage="dynamic",
        group=GROUP_SEQUENCING,
        description="Modification of an object defined with a const-qualified type.",
        bad="""
int main(void) {
    const int limit = 10;
    int *p = (int *)&limit;
    *p = 20;
    return limit;
}
""",
        good="""
int main(void) {
    int limit = 10;
    int *p = &limit;
    *p = 20;
    return limit;
}
"""),
    BehaviorTest(
        behavior="write-to-const-through-strchr", section="6.7.3:6", stage="dynamic",
        group=GROUP_SEQUENCING,
        description="The paper's strchr example: const dropped by the library, then written.",
        bad="""
#include <string.h>
int main(void) {
    const char p[] = "hello";
    char *q = strchr(p, p[0]);
    *q = 'H';
    return 0;
}
""",
        good="""
#include <string.h>
int main(void) {
    char p[] = "hello";
    char *q = strchr(p, p[0]);
    *q = 'H';
    return p[0] == 'H' ? 0 : 1;
}
"""),
    BehaviorTest(
        behavior="write-to-const-struct-member", section="6.7.3:6", stage="dynamic",
        group=GROUP_SEQUENCING,
        description="Modification of a member of a const-qualified structure.",
        bad="""
struct settings { int verbose; };
int main(void) {
    const struct settings defaults = { 1 };
    struct settings *p = (struct settings *)&defaults;
    p->verbose = 0;
    return defaults.verbose;
}
""",
        good="""
struct settings { int verbose; };
int main(void) {
    struct settings defaults = { 1 };
    struct settings *p = &defaults;
    p->verbose = 0;
    return defaults.verbose;
}
"""),

    # ------------------------------------------------------------------
    # Types and lvalues (dynamic)
    # ------------------------------------------------------------------
    BehaviorTest(
        behavior="effective-type-violation", section="6.5:7", stage="dynamic",
        group=GROUP_TYPES,
        description="Object accessed through an lvalue of incompatible type.",
        bad="""
int main(void) {
    int value = 0x01020304;
    short *p = (short *)&value;
    return p[0];
}
""",
        good="""
int main(void) {
    int value = 0x01020304;
    unsigned char *p = (unsigned char *)&value;
    return p[0];
}
"""),
    BehaviorTest(
        behavior="heap-type-punning", section="6.5:7", stage="dynamic", group=GROUP_TYPES,
        description="Allocated object written as one type and read as an incompatible one.",
        bad="""
#include <stdlib.h>
int main(void) {
    void *storage = malloc(8);
    if (!storage) return 0;
    *(long *)storage = 1;
    double reinterpreted = *(double *)storage;
    free(storage);
    return reinterpreted > 0.0;
}
""",
        good="""
#include <stdlib.h>
int main(void) {
    void *storage = malloc(8);
    if (!storage) return 0;
    *(long *)storage = 1;
    long read_back = *(long *)storage;
    free(storage);
    return read_back != 1;
}
"""),
    BehaviorTest(
        behavior="partial-pointer-copy-use", section="6.2.6.1:5", stage="dynamic",
        group=GROUP_TYPES,
        description="Using a pointer object only some of whose bytes were copied.",
        bad="""
int main(void) {
    int x = 5, y = 6;
    int *p = &x, *q = &y;
    char *a = (char *)&p, *b = (char *)&q;
    a[0] = b[0]; a[1] = b[1]; a[2] = b[2];
    return *p;
}
""",
        good="""
int main(void) {
    int x = 5, y = 6;
    int *p = &x, *q = &y;
    char *a = (char *)&p, *b = (char *)&q;
    a[0] = b[0]; a[1] = b[1]; a[2] = b[2];
    a[3] = b[3]; a[4] = b[4]; a[5] = b[5]; a[6] = b[6]; a[7] = b[7];
    return *p;
}
"""),

    # ------------------------------------------------------------------
    # Functions (dynamic)
    # ------------------------------------------------------------------
    BehaviorTest(
        behavior="call-with-wrong-argument-count", section="6.5.2.2:6", stage="dynamic",
        group=GROUP_FUNCTIONS,
        description="Function called with the wrong number of arguments.",
        bad="""
int add(int a, int b);
int add(int a, int b) { return a + b; }
int main(void) {
    return add(1);
}
""",
        good="""
int add(int a, int b);
int add(int a, int b) { return a + b; }
int main(void) {
    return add(1, 2);
}
"""),
    BehaviorTest(
        behavior="call-with-wrong-argument-type", section="6.5.2.2:6", stage="dynamic",
        group=GROUP_FUNCTIONS,
        description="Function called with an argument of incompatible type.",
        bad="""
static int deref(int *p) { return *p; }
int main(void) {
    return deref(42);
}
""",
        good="""
static int deref(int *p) { return *p; }
int main(void) {
    int value = 42;
    return deref(&value);
}
"""),
    BehaviorTest(
        behavior="call-through-incompatible-function-pointer", section="6.5.2.2:9",
        stage="dynamic", group=GROUP_FUNCTIONS,
        description="Function called through a pointer to an incompatible function type.",
        bad="""
static int add(int a, int b) { return a + b; }
int main(void) {
    int (*f)(int) = (int (*)(int))add;
    return f(3);
}
""",
        good="""
static int add(int a, int b) { return a + b; }
int main(void) {
    int (*f)(int, int) = add;
    return f(3, 4);
}
"""),
    BehaviorTest(
        behavior="use-of-missing-return-value", section="6.9.1:12", stage="dynamic",
        group=GROUP_FUNCTIONS,
        description="Using the value of a function that fell off its end without returning one.",
        bad="""
static int maybe_answer(int want) {
    if (want) { return 42; }
}
int main(void) {
    return maybe_answer(0) + 1;
}
""",
        good="""
static int maybe_answer(int want) {
    if (want) { return 42; }
    return 0;
}
int main(void) {
    return maybe_answer(0) + 1;
}
"""),
    BehaviorTest(
        behavior="call-through-null-function-pointer", section="6.5.3.2:4", stage="dynamic",
        group=GROUP_FUNCTIONS,
        description="Call through a null function pointer.",
        bad="""
#include <stddef.h>
int main(void) {
    int (*f)(void) = NULL;
    return f();
}
""",
        good="""
#include <stddef.h>
static int zero(void) { return 0; }
int main(void) {
    int (*f)(void) = zero;
    return f();
}
"""),

    # ------------------------------------------------------------------
    # Library (dynamic)
    # ------------------------------------------------------------------
    BehaviorTest(
        behavior="strcpy-buffer-overflow", section="7.24.2.3", stage="dynamic",
        group=GROUP_LIBRARY,
        description="strcpy into a destination that is too small.",
        bad="""
#include <string.h>
int main(void) {
    char small[4];
    strcpy(small, "overflowing");
    return small[0];
}
""",
        good="""
#include <string.h>
int main(void) {
    char big[16];
    strcpy(big, "fits");
    return big[0];
}
"""),
    BehaviorTest(
        behavior="strlen-of-unterminated-buffer", section="7.24.6.3", stage="dynamic",
        group=GROUP_LIBRARY,
        description="strlen applied to a buffer with no terminating NUL.",
        bad="""
#include <string.h>
int main(void) {
    char letters[4];
    letters[0] = 'a'; letters[1] = 'b'; letters[2] = 'c'; letters[3] = 'd';
    return (int)strlen(letters);
}
""",
        good="""
#include <string.h>
int main(void) {
    char letters[4];
    letters[0] = 'a'; letters[1] = 'b'; letters[2] = 'c'; letters[3] = 0;
    return (int)strlen(letters);
}
"""),
    BehaviorTest(
        behavior="memcpy-overlapping-objects", section="7.24.2.1:2", stage="dynamic",
        group=GROUP_LIBRARY,
        description="memcpy with overlapping source and destination.",
        bad="""
#include <string.h>
int main(void) {
    char buffer[16] = "abcdefgh";
    memcpy(buffer + 2, buffer, 8);
    return buffer[2];
}
""",
        good="""
#include <string.h>
int main(void) {
    char buffer[16] = "abcdefgh";
    memmove(buffer + 2, buffer, 8);
    return buffer[2];
}
"""),
    BehaviorTest(
        behavior="memcpy-out-of-bounds", section="7.24.2.1", stage="dynamic",
        group=GROUP_LIBRARY,
        description="memcpy reading past the end of the source object.",
        bad="""
#include <string.h>
int main(void) {
    char source[4] = {1, 2, 3, 4};
    char destination[16];
    memcpy(destination, source, 8);
    return destination[0];
}
""",
        good="""
#include <string.h>
int main(void) {
    char source[4] = {1, 2, 3, 4};
    char destination[16];
    memcpy(destination, source, 4);
    return destination[0];
}
"""),
    BehaviorTest(
        behavior="printf-format-mismatch", section="7.21.6.1:9", stage="dynamic",
        group=GROUP_LIBRARY,
        description="printf conversion specification incompatible with its argument.",
        bad="""
#include <stdio.h>
int main(void) {
    int value = 7;
    printf("%s\\n", value);
    return 0;
}
""",
        good="""
#include <stdio.h>
int main(void) {
    int value = 7;
    printf("%d\\n", value);
    return 0;
}
"""),
    BehaviorTest(
        behavior="printf-missing-argument", section="7.21.6.1:2", stage="dynamic",
        group=GROUP_LIBRARY,
        description="printf with fewer arguments than conversion specifications.",
        bad="""
#include <stdio.h>
int main(void) {
    printf("%d %d\\n", 1);
    return 0;
}
""",
        good="""
#include <stdio.h>
int main(void) {
    printf("%d %d\\n", 1, 2);
    return 0;
}
"""),
    BehaviorTest(
        behavior="negative-abs-overflow", section="7.22.6.1", stage="dynamic",
        group=GROUP_LIBRARY,
        description="abs(INT_MIN) is not representable.",
        bad="""
#include <stdlib.h>
#include <limits.h>
int main(void) {
    int value = INT_MIN;
    return abs(value) < 0;
}
""",
        good="""
#include <stdlib.h>
#include <limits.h>
int main(void) {
    int value = INT_MIN + 1;
    return abs(value) < 0;
}
"""),

    # ------------------------------------------------------------------
    # Behaviors the default checker configuration does NOT catch.
    # They are included deliberately (the paper's suite likewise contains
    # behaviors its own tool missed): a benchmark that only contains what
    # one tool detects cannot measure that tool.
    # ------------------------------------------------------------------
    BehaviorTest(
        behavior="unsequenced-conflict-on-other-order", section="6.5:2", stage="dynamic",
        group=GROUP_SEQUENCING,
        description="Write/read conflict that only manifests under right-to-left evaluation "
                    "(requires the evaluation-order search of Section 2.5.2).",
        bad="""
int main(void) {
    int i = 1;
    int r = i + (i = 2);
    return r;
}
""",
        good="""
int main(void) {
    int i = 1;
    int first = i;
    i = 2;
    return first + i;
}
"""),
    BehaviorTest(
        behavior="evaluation-order-dependent-division", section="6.5.5:5", stage="dynamic",
        group=GROUP_SEQUENCING,
        description="The paper's setDenom example: division by zero reachable only under "
                    "some evaluation orders of the call and the division.",
        bad="""
static int d = 5;
static int setDenom(int x) { return d = x; }
int main(void) {
    return (10 / d) + setDenom(0);
}
""",
        good="""
static int d = 5;
static int setDenom(int x) { return d = x; }
int main(void) {
    int quotient = 10 / d;
    return quotient + setDenom(0);
}
"""),
    BehaviorTest(
        behavior="restrict-qualifier-violation", section="6.7.3.1", stage="dynamic",
        group=GROUP_TYPES,
        description="Two restrict-qualified pointers alias the same object.",
        bad="""
static void scale(int * restrict out, int * restrict in) {
    out[0] = in[0] * 2;
    out[1] = in[1] * 2;
}
int main(void) {
    int data[2] = {1, 2};
    scale(data, data);
    return data[0];
}
""",
        good="""
static void scale(int * restrict out, int * restrict in) {
    out[0] = in[0] * 2;
    out[1] = in[1] * 2;
}
int main(void) {
    int source[2] = {1, 2};
    int target[2] = {0, 0};
    scale(target, source);
    return target[0];
}
"""),
    BehaviorTest(
        behavior="volatile-accessed-through-nonvolatile", section="6.7.3:7", stage="dynamic",
        group=GROUP_TYPES,
        description="Volatile object referred to through a non-volatile lvalue.",
        bad="""
int main(void) {
    volatile int sensor = 3;
    int *plain = (int *)&sensor;
    return *plain;
}
""",
        good="""
int main(void) {
    volatile int sensor = 3;
    volatile int *typed = &sensor;
    return *typed;
}
"""),

    # ------------------------------------------------------------------
    # Statically detectable behaviors
    # ------------------------------------------------------------------
    BehaviorTest(
        behavior="array-of-zero-length", section="6.7.6.2:1", stage="static",
        group=GROUP_DECLARATIONS,
        description="Array declared with length zero (the paper's Section 3.2 example).",
        bad="""
int main(void) {
    int empty[0];
    return 0;
}
""",
        good="""
int main(void) {
    int single[1];
    single[0] = 0;
    return single[0];
}
"""),
    BehaviorTest(
        behavior="array-of-negative-length", section="6.7.6.2:1", stage="static",
        group=GROUP_DECLARATIONS,
        description="Array declared with a negative length.",
        bad="""
int main(void) {
    int impossible[-4];
    return 0;
}
""",
        good="""
int main(void) {
    int possible[4];
    possible[0] = 0;
    return possible[0];
}
"""),
    BehaviorTest(
        behavior="qualified-function-type", section="6.7.3:9", stage="static",
        group=GROUP_DECLARATIONS,
        description="A function type specified with type qualifiers.",
        bad="""
typedef int handler(void);
const handler process;
int main(void) {
    return 0;
}
""",
        good="""
typedef int handler(void);
handler process;
int main(void) {
    return 0;
}
"""),
    BehaviorTest(
        behavior="duplicate-label", section="6.8.1:3", stage="static",
        group=GROUP_DECLARATIONS,
        description="The same label defined twice in one function.",
        bad="""
int main(void) {
    int x = 0;
retry:
    x++;
    if (x < 2) goto retry;
retry:
    return x;
}
""",
        good="""
int main(void) {
    int x = 0;
retry:
    x++;
    if (x < 2) goto retry;
    return x;
}
"""),
    BehaviorTest(
        behavior="goto-undefined-label", section="6.8.6.1", stage="static",
        group=GROUP_DECLARATIONS,
        description="goto to a label that does not exist in the function.",
        bad="""
int main(void) {
    int x = 0;
    if (x) goto missing;
    return x;
}
""",
        good="""
int main(void) {
    int x = 0;
    if (x) goto done;
done:
    return x;
}
"""),
    BehaviorTest(
        behavior="return-with-value-in-void-function", section="6.8.6.4:1", stage="static",
        group=GROUP_DECLARATIONS,
        description="return with an expression in a function returning void.",
        bad="""
static void report(int code) {
    return code;
}
int main(void) {
    report(3);
    return 0;
}
""",
        good="""
static void report(int code) {
    (void)code;
    return;
}
int main(void) {
    report(3);
    return 0;
}
"""),
    BehaviorTest(
        behavior="bad-main-signature", section="5.1.2.2.1:1", stage="static",
        group=GROUP_DECLARATIONS,
        description="main defined with a non-conforming signature.",
        bad="""
float main(void) {
    return 0;
}
""",
        good="""
int main(void) {
    return 0;
}
"""),
    BehaviorTest(
        behavior="incompatible-redeclaration", section="6.2.7:2", stage="static",
        group=GROUP_DECLARATIONS,
        description="The same identifier declared twice with incompatible types.",
        bad="""
extern int shared;
extern long shared;
int main(void) {
    return 0;
}
""",
        good="""
extern int shared;
extern int shared;
int main(void) {
    return 0;
}
"""),
    BehaviorTest(
        behavior="object-of-incomplete-type", section="6.9.2:3", stage="static",
        group=GROUP_DECLARATIONS,
        description="An object defined with an incomplete structure type.",
        bad="""
struct unknown;
struct unknown blob;
int main(void) {
    return 0;
}
""",
        good="""
struct known { int field; };
struct known blob;
int main(void) {
    return blob.field;
}
"""),
    BehaviorTest(
        behavior="constant-division-by-zero", section="6.5.5:5", stage="static",
        group=GROUP_DECLARATIONS,
        description="Division by a literal zero, visible at translation time.",
        bad="""
int main(void) {
    return 5 / 0;
}
""",
        good="""
int main(void) {
    return 5 / 1;
}
"""),
    BehaviorTest(
        behavior="constant-shift-too-far", section="6.5.7:3", stage="static",
        group=GROUP_DECLARATIONS,
        description="Shift by a constant amount larger than the type width.",
        bad="""
int main(void) {
    int x = 1;
    return x << 40;
}
""",
        good="""
int main(void) {
    int x = 1;
    return (x << 4) == 16 ? 0 : 1;
}
"""),
    BehaviorTest(
        behavior="assignment-to-const-lvalue", section="6.5.16.1", stage="static",
        group=GROUP_DECLARATIONS,
        description="Direct assignment to an identifier declared const.",
        bad="""
int main(void) {
    const int limit = 5;
    limit = 6;
    return limit;
}
""",
        good="""
int main(void) {
    int limit = 5;
    limit = 6;
    return limit;
}
"""),
    BehaviorTest(
        behavior="constant-index-out-of-bounds", section="6.5.6:8", stage="static",
        group=GROUP_DECLARATIONS,
        description="Array subscript with a constant index far outside the array.",
        bad="""
int main(void) {
    int data[4];
    data[0] = 1;
    return data[10];
}
""",
        good="""
int main(void) {
    int data[4];
    data[0] = 1;
    return data[0];
}
"""),
    BehaviorTest(
        behavior="void-value-used", section="6.3.2.2:1", stage="static",
        group=GROUP_DECLARATIONS,
        description="The (nonexistent) value of a void expression is converted.",
        bad="""
int main(void) {
    if (0) { (int)(void)5; }
    return 0;
}
""",
        good="""
int main(void) {
    if (0) { (void)5; }
    return 0;
}
"""),
    BehaviorTest(
        behavior="reserved-identifier-definition", section="7.1.3:2", stage="static",
        group=GROUP_DECLARATIONS,
        description="Definition of an identifier in the reserved namespace.",
        bad="""
int __internal_state = 1;
int main(void) {
    return __internal_state - 1;
}
""",
        good="""
int internal_state = 1;
int main(void) {
    return internal_state - 1;
}
"""),
    BehaviorTest(
        behavior="internal-and-external-linkage", section="6.2.2:7", stage="static",
        group=GROUP_DECLARATIONS,
        description="An identifier declared with both internal and external linkage "
                    "(not detected by the current translation-time checks).",
        bad="""
extern int flag;
static int flag = 1;
int main(void) {
    return flag - 1;
}
""",
        good="""
static int flag = 1;
int main(void) {
    return flag - 1;
}
"""),
    BehaviorTest(
        behavior="empty-character-constant-spelling", section="6.4.4.4", stage="static",
        group=GROUP_DECLARATIONS,
        description="Identifier spellings differing only in non-significant characters "
                    "(a historically undefined case, not detected by the current checks).",
        bad="""
int an_extremely_long_identifier_name_that_goes_on_and_on_and_on_and_on_version_a = 1;
int an_extremely_long_identifier_name_that_goes_on_and_on_and_on_and_on_version_b = 2;
int main(void) {
    return an_extremely_long_identifier_name_that_goes_on_and_on_and_on_and_on_version_a;
}
""",
        good="""
int short_name_a = 1;
int short_name_b = 2;
int main(void) {
    return short_name_a;
}
"""),
    BehaviorTest(
        behavior="static-assert-failure", section="6.7.10", stage="static",
        group=GROUP_DECLARATIONS,
        description="A failing _Static_assert (a constraint the implementation must diagnose).",
        bad="""
_Static_assert(sizeof(int) == 2, "int must be 2 bytes");
int main(void) {
    return 0;
}
""",
        good="""
_Static_assert(sizeof(int) == 4, "int must be 4 bytes");
int main(void) {
    return 0;
}
"""),
]


class UndefinednessSuite(TestSuite):
    """The paper-style undefinedness test suite (Figure 3 substrate)."""

    def behavior_count(self) -> int:
        return len({case.behavior for case in self.cases})

    def search_cases(self) -> list:
        """The search-mode slice of the suite (§2.5.2).

        Dynamic sequencing-group cases: the behaviors whose detection can
        depend on the evaluation order chosen for unsequenced
        subexpressions, which is what the evaluation-order search (and its
        parallel/serial equivalence tests) exercises.
        """
        return [case for case in self.cases
                if case.stage == "dynamic" and case.category == GROUP_SEQUENCING]

    def static_behaviors(self) -> list[str]:
        return sorted({case.behavior for case in self.cases if case.stage == "static"})

    def dynamic_behaviors(self) -> list[str]:
        return sorted({case.behavior for case in self.cases if case.stage == "dynamic"})


def generate_undefinedness_suite() -> UndefinednessSuite:
    """Build the undefinedness suite: one bad and one good test per behavior."""
    suite = UndefinednessSuite(name="our undefinedness suite")
    for entry in BEHAVIOR_TESTS:
        suite.add(TestCase(
            name=f"{entry.behavior}_bad", source=entry.bad, is_bad=True,
            category=entry.group, behavior=entry.behavior, stage=entry.stage,
            description=f"{entry.description} (C11 {entry.section})"))
        suite.add(TestCase(
            name=f"{entry.behavior}_good", source=entry.good, is_bad=False,
            category=entry.group, behavior=entry.behavior, stage=entry.stage,
            description=f"Defined control for {entry.behavior}."))
    return suite
