"""A Juliet-style undefinedness benchmark generator.

The paper extracts 4113 tests from the NIST Juliet suite, covering six
classes of undefined behavior, each test a separate small program with one
flaw and a paired "good" control (Section 5.1.2).  The original suite is not
redistributable here, so this module *generates* an equivalent benchmark:

* the same six classes (use of invalid pointer, division by zero, bad
  argument to ``free()``, uninitialized memory, bad function call, integer
  overflow),
* one undefined behavior per bad test, with a paired good test,
* Juliet-style data-flow variants: the flawed value is used directly, flows
  through a local variable, or flows through a helper function — so purely
  syntactic detectors cannot score well.

Absolute test counts differ from NIST's; the class structure, pairing and
scoring methodology match the paper's use of the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.suites.harness import TestCase, TestSuite

CLASS_INVALID_POINTER = "Use of invalid pointer"
CLASS_DIVISION_BY_ZERO = "Division by zero"
CLASS_BAD_FREE = "Bad argument to free()"
CLASS_UNINITIALIZED = "Uninitialized memory"
CLASS_BAD_CALL = "Bad function call"
CLASS_INTEGER_OVERFLOW = "Integer overflow"

ALL_CLASSES = (
    CLASS_INVALID_POINTER,
    CLASS_DIVISION_BY_ZERO,
    CLASS_BAD_FREE,
    CLASS_UNINITIALIZED,
    CLASS_BAD_CALL,
    CLASS_INTEGER_OVERFLOW,
)

#: Juliet-style data-flow variants.  ``{decl}`` declares the flaw-controlling
#: value, ``{use}`` is the expression that reads it.
_FLOW_VARIANTS = ("direct", "variable", "helper")


@dataclass(frozen=True)
class _Template:
    """A bad/good program pair, parameterized by a data-flow variant."""

    name: str
    category: str
    behavior: str
    bad: str
    good: str
    description: str = ""


def _flow_wrap(body: str, flow: str, flaw_value: str, safe_value: str, use_bad: bool) -> str:
    """Wrap ``body`` so the interesting value reaches it via ``flow``."""
    value = flaw_value if use_bad else safe_value
    if flow == "direct":
        return body.replace("@VALUE@", value)
    if flow == "variable":
        # The controlling value flows through an extra local variable declared
        # at the top of main (a Juliet-style local data-flow variant).
        declaration = f"int main(void) {{\n    int flaw_source = {value};\n"
        wrapped = body.replace("int main(void) {\n", declaration, 1)
        return wrapped.replace("@VALUE@", "flaw_source")
    # helper: the value comes back from a function call
    return body.replace("@VALUE@", "flaw_helper()")


def _helper_function(flow: str, flaw_value: str, safe_value: str, use_bad: bool) -> str:
    if flow != "helper":
        return ""
    value = flaw_value if use_bad else safe_value
    return f"static int flaw_helper(void) {{ return {value}; }}\n"


# ---------------------------------------------------------------------------
# Class 1: use of invalid pointer
# ---------------------------------------------------------------------------

def _invalid_pointer_templates() -> list[_Template]:
    templates: list[_Template] = []
    templates.append(_Template(
        name="stack_overflow_write",
        category=CLASS_INVALID_POINTER,
        behavior="stack-buffer-overflow-write",
        description="Write one element past the end of a stack array (CWE-121).",
        bad="""
#include <string.h>
{helper}int main(void) {{
    int data[8];
    memset(data, 0, sizeof(data));
    int index = @VALUE@;
    data[index] = 42;
    return data[0];
}}
""",
        good="""
#include <string.h>
{helper}int main(void) {{
    int data[8];
    memset(data, 0, sizeof(data));
    int index = @VALUE@;
    data[index] = 42;
    return data[0];
}}
"""))
    templates.append(_Template(
        name="heap_overflow_write",
        category=CLASS_INVALID_POINTER,
        behavior="heap-buffer-overflow-write",
        description="Write past the end of a heap allocation (CWE-122).",
        bad="""
#include <stdlib.h>
{helper}int main(void) {{
    int *data = malloc(8 * sizeof(int));
    if (!data) return 0;
    for (int i = 0; i < 8; i++) data[i] = i;
    int index = @VALUE@;
    data[index] = 7;
    int result = data[0];
    free(data);
    return result;
}}
""",
        good="""
#include <stdlib.h>
{helper}int main(void) {{
    int *data = malloc(8 * sizeof(int));
    if (!data) return 0;
    for (int i = 0; i < 8; i++) data[i] = i;
    int index = @VALUE@;
    data[index] = 7;
    int result = data[0];
    free(data);
    return result;
}}
"""))
    templates.append(_Template(
        name="heap_overflow_read",
        category=CLASS_INVALID_POINTER,
        behavior="heap-buffer-overflow-read",
        description="Read past the end of a heap allocation (CWE-126).",
        bad="""
#include <stdlib.h>
{helper}int main(void) {{
    int *data = malloc(4 * sizeof(int));
    if (!data) return 0;
    for (int i = 0; i < 4; i++) data[i] = i;
    int index = @VALUE@;
    int result = data[index];
    free(data);
    return result;
}}
""",
        good="""
#include <stdlib.h>
{helper}int main(void) {{
    int *data = malloc(4 * sizeof(int));
    if (!data) return 0;
    for (int i = 0; i < 4; i++) data[i] = i;
    int index = @VALUE@;
    int result = data[index];
    free(data);
    return result;
}}
"""))
    templates.append(_Template(
        name="null_dereference",
        category=CLASS_INVALID_POINTER,
        behavior="null-pointer-dereference",
        description="Dereference a pointer that may be null (CWE-476).",
        bad="""
#include <stdlib.h>
{helper}static int *pick(int use_null) {{
    static int storage = 5;
    if (use_null) return NULL;
    return &storage;
}}
int main(void) {{
    int *p = pick(@VALUE@);
    return *p;
}}
""",
        good="""
#include <stdlib.h>
{helper}static int *pick(int use_null) {{
    static int storage = 5;
    if (use_null) return NULL;
    return &storage;
}}
int main(void) {{
    int *p = pick(@VALUE@);
    return *p;
}}
"""))
    templates.append(_Template(
        name="use_after_free",
        category=CLASS_INVALID_POINTER,
        behavior="use-after-free",
        description="Use heap memory after it was freed (CWE-416).",
        bad="""
#include <stdlib.h>
{helper}int main(void) {{
    int *data = malloc(sizeof(int));
    if (!data) return 0;
    *data = 9;
    int early_free = @VALUE@;
    if (early_free) free(data);
    int result = *data;
    if (!early_free) free(data);
    return result;
}}
""",
        good="""
#include <stdlib.h>
{helper}int main(void) {{
    int *data = malloc(sizeof(int));
    if (!data) return 0;
    *data = 9;
    int early_free = @VALUE@;
    if (early_free) free(data);
    int result = *data;
    if (!early_free) free(data);
    return result;
}}
"""))
    templates.append(_Template(
        name="return_stack_address",
        category=CLASS_INVALID_POINTER,
        behavior="return-of-stack-address",
        description="Return the address of a local and use it after return (CWE-562).",
        bad="""
{helper}static int *make_value(int which) {{
    static int persistent = 11;
    int local = 11;
    if (which) return &local;
    return &persistent;
}}
int main(void) {{
    int *p = make_value(@VALUE@);
    return *p;
}}
""",
        good="""
{helper}static int *make_value(int which) {{
    static int persistent = 11;
    int local = 11;
    if (which) return &local;
    return &persistent;
}}
int main(void) {{
    int *p = make_value(@VALUE@);
    return *p;
}}
"""))
    templates.append(_Template(
        name="string_copy_overflow",
        category=CLASS_INVALID_POINTER,
        behavior="string-copy-overflow",
        description="strcpy into a buffer that is too small (CWE-121).",
        bad="""
#include <string.h>
#include <stdlib.h>
{helper}int main(void) {{
    int size = @VALUE@;
    char *buffer = malloc(size);
    if (!buffer) return 0;
    strcpy(buffer, "0123456789");
    int result = buffer[0];
    free(buffer);
    return result;
}}
""",
        good="""
#include <string.h>
#include <stdlib.h>
{helper}int main(void) {{
    int size = @VALUE@;
    char *buffer = malloc(size);
    if (!buffer) return 0;
    strcpy(buffer, "0123456789");
    int result = buffer[0];
    free(buffer);
    return result;
}}
"""))
    templates.append(_Template(
        name="off_by_one_loop",
        category=CLASS_INVALID_POINTER,
        behavior="off-by-one-loop-overflow",
        description="Loop bound one past the end of a stack array (CWE-193).",
        bad="""
{helper}int main(void) {{
    int data[10];
    int bound = @VALUE@;
    for (int i = 0; i < bound; i++) {{
        data[i] = i;
    }}
    return data[9];
}}
""",
        good="""
{helper}int main(void) {{
    int data[10];
    int bound = @VALUE@;
    for (int i = 0; i < bound; i++) {{
        data[i] = i;
    }}
    return data[9];
}}
"""))
    return templates


_INVALID_POINTER_VALUES = {
    "stack_overflow_write": ("8", "7"),
    "heap_overflow_write": ("8", "7"),
    "heap_overflow_read": ("4", "3"),
    "null_dereference": ("1", "0"),
    "use_after_free": ("1", "0"),
    "return_stack_address": ("1", "0"),
    "string_copy_overflow": ("4", "16"),
    "off_by_one_loop": ("11", "10"),
}


# ---------------------------------------------------------------------------
# Class 2: division by zero
# ---------------------------------------------------------------------------

def _division_templates() -> list[_Template]:
    shared_bad_good = {
        "int_division": ("0", "2"),
        "int_modulus": ("0", "3"),
        "division_in_loop": ("0", "5"),
    }
    body = {
        "int_division": """
{helper}int main(void) {{
    int denominator = @VALUE@;
    int result = 100 / denominator;
    return result;
}}
""",
        "int_modulus": """
{helper}int main(void) {{
    int denominator = @VALUE@;
    int result = 100 % denominator;
    return result;
}}
""",
        "division_in_loop": """
{helper}int main(void) {{
    int denominator = @VALUE@;
    int total = 0;
    for (int i = 1; i <= 3; i++) {{
        total += i / denominator;
    }}
    return total;
}}
""",
    }
    templates = []
    for name, source in body.items():
        templates.append(_Template(
            name=name, category=CLASS_DIVISION_BY_ZERO, behavior=f"div-zero-{name}",
            description="Integer division or modulus by zero (CWE-369).",
            bad=source, good=source))
    return templates, shared_bad_good


# ---------------------------------------------------------------------------
# Class 3: bad argument to free()
# ---------------------------------------------------------------------------

def _bad_free_templates() -> list[tuple[str, str, str]]:
    """Returns (name, bad_source, good_source) triples (no flow variants)."""
    cases = []
    cases.append(("free_stack_pointer", """
#include <stdlib.h>
int main(void) {
    int value = 5;
    int *p = &value;
    free(p);
    return 0;
}
""", """
#include <stdlib.h>
int main(void) {
    int *p = malloc(sizeof(int));
    if (!p) return 0;
    *p = 5;
    free(p);
    return 0;
}
"""))
    cases.append(("free_interior_pointer", """
#include <stdlib.h>
int main(void) {
    char *block = malloc(16);
    if (!block) return 0;
    free(block + 4);
    return 0;
}
""", """
#include <stdlib.h>
int main(void) {
    char *block = malloc(16);
    if (!block) return 0;
    free(block);
    return 0;
}
"""))
    cases.append(("double_free", """
#include <stdlib.h>
int main(void) {
    int *p = malloc(sizeof(int));
    if (!p) return 0;
    free(p);
    free(p);
    return 0;
}
""", """
#include <stdlib.h>
int main(void) {
    int *p = malloc(sizeof(int));
    if (!p) return 0;
    free(p);
    p = NULL;
    free(p);
    return 0;
}
"""))
    cases.append(("free_global", """
#include <stdlib.h>
int global_value = 3;
int main(void) {
    free(&global_value);
    return 0;
}
""", """
#include <stdlib.h>
int global_value = 3;
int main(void) {
    int *p = malloc(sizeof(int));
    if (!p) return 0;
    *p = global_value;
    free(p);
    return 0;
}
"""))
    cases.append(("free_string_literal", """
#include <stdlib.h>
int main(void) {
    char *text = "constant";
    free(text);
    return 0;
}
""", """
#include <stdlib.h>
#include <string.h>
int main(void) {
    char *text = malloc(9);
    if (!text) return 0;
    strcpy(text, "constant");
    free(text);
    return 0;
}
"""))
    cases.append(("double_free_via_alias", """
#include <stdlib.h>
int main(void) {
    char *a = malloc(8);
    if (!a) return 0;
    char *b = a;
    free(a);
    free(b);
    return 0;
}
""", """
#include <stdlib.h>
int main(void) {
    char *a = malloc(8);
    if (!a) return 0;
    char *b = a;
    b[0] = 1;
    free(a);
    return 0;
}
"""))
    return cases


# ---------------------------------------------------------------------------
# Class 4: uninitialized memory
# ---------------------------------------------------------------------------

def _uninitialized_templates() -> list[tuple[str, str, str]]:
    cases = []
    cases.append(("uninit_int_use", """
int main(void) {
    int value;
    int doubled = value * 2;
    return doubled;
}
""", """
int main(void) {
    int value = 21;
    int doubled = value * 2;
    return doubled;
}
"""))
    cases.append(("uninit_array_element", """
int main(void) {
    int data[4];
    data[0] = 1;
    data[1] = 2;
    data[2] = 3;
    return data[3];
}
""", """
int main(void) {
    int data[4];
    data[0] = 1;
    data[1] = 2;
    data[2] = 3;
    data[3] = 4;
    return data[3];
}
"""))
    cases.append(("uninit_struct_field", """
struct config { int width; int height; };
int main(void) {
    struct config c;
    c.width = 640;
    return c.height;
}
""", """
struct config { int width; int height; };
int main(void) {
    struct config c;
    c.width = 640;
    c.height = 480;
    return c.height;
}
"""))
    cases.append(("uninit_pointer_deref", """
int main(void) {
    int *pointer;
    return *pointer;
}
""", """
int main(void) {
    int target = 7;
    int *pointer = &target;
    return *pointer;
}
"""))
    cases.append(("uninit_heap_read", """
#include <stdlib.h>
int main(void) {
    int *data = malloc(4 * sizeof(int));
    if (!data) return 0;
    int result = data[2];
    free(data);
    return result;
}
""", """
#include <stdlib.h>
int main(void) {
    int *data = calloc(4, sizeof(int));
    if (!data) return 0;
    int result = data[2];
    free(data);
    return result;
}
"""))
    cases.append(("uninit_passed_to_function", """
static int consume(int value) { return value + 1; }
int main(void) {
    int value;
    return consume(value);
}
""", """
static int consume(int value) { return value + 1; }
int main(void) {
    int value = 41;
    return consume(value);
}
"""))
    cases.append(("uninit_condition", """
int main(void) {
    int flag;
    if (flag) {
        return 1;
    }
    return 0;
}
""", """
int main(void) {
    int flag = 0;
    if (flag) {
        return 1;
    }
    return 0;
}
"""))
    return cases


# ---------------------------------------------------------------------------
# Class 5: bad function call
# ---------------------------------------------------------------------------

def _bad_call_templates() -> list[tuple[str, str, str]]:
    cases = []
    cases.append(("too_few_arguments", """
int add(int a, int b);
int add(int a, int b) { return a + b; }
int main(void) {
    return add(1);
}
""", """
int add(int a, int b);
int add(int a, int b) { return a + b; }
int main(void) {
    return add(1, 2);
}
"""))
    cases.append(("too_many_arguments", """
int identity(int a);
int identity(int a) { return a; }
int main(void) {
    return identity(1, 2, 3);
}
""", """
int identity(int a);
int identity(int a) { return a; }
int main(void) {
    return identity(1);
}
"""))
    cases.append(("int_passed_for_pointer", """
#include <string.h>
int main(void) {
    return (int)strlen(1234);
}
""", """
#include <string.h>
int main(void) {
    return (int)strlen("1234");
}
"""))
    cases.append(("pointer_passed_for_int", """
static int square(int x) { return x * x; }
int main(void) {
    int value = 3;
    int *p = &value;
    return square(p);
}
""", """
static int square(int x) { return x * x; }
int main(void) {
    int value = 3;
    int *p = &value;
    return square(*p);
}
"""))
    cases.append(("incompatible_function_pointer", """
static int add(int a, int b) { return a + b; }
int main(void) {
    int (*f)(int) = (int (*)(int))add;
    return f(1);
}
""", """
static int add(int a, int b) { return a + b; }
int main(void) {
    int (*f)(int, int) = add;
    return f(1, 2);
}
"""))
    cases.append(("format_string_mismatch", """
#include <stdio.h>
int main(void) {
    int value = 3;
    printf("%s\\n", value);
    return 0;
}
""", """
#include <stdio.h>
int main(void) {
    int value = 3;
    printf("%d\\n", value);
    return 0;
}
"""))
    return cases


# ---------------------------------------------------------------------------
# Class 6: integer overflow
# ---------------------------------------------------------------------------

def _overflow_templates() -> list[_Template]:
    shared = {
        "addition_overflow": ("2147483647", "2147483646 - 41"),
        "multiplication_overflow": ("65536", "1024"),
        "increment_overflow": ("2147483647", "100"),
        "subtraction_overflow": ("-2147483647 - 1", "-100"),
    }
    body = {
        "addition_overflow": """
{helper}int main(void) {{
    int value = @VALUE@;
    int result = value + 42;
    return result > 0 ? 0 : 1;
}}
""",
        "multiplication_overflow": """
{helper}int main(void) {{
    int value = @VALUE@;
    int result = value * 65536;
    return result > 0 ? 0 : 1;
}}
""",
        "increment_overflow": """
{helper}int main(void) {{
    int value = @VALUE@;
    value++;
    return value > 0 ? 0 : 1;
}}
""",
        "subtraction_overflow": """
{helper}int main(void) {{
    int value = @VALUE@;
    int result = value - 42;
    return result < 0 ? 0 : 1;
}}
""",
    }
    templates = []
    for name, source in body.items():
        templates.append(_Template(
            name=name, category=CLASS_INTEGER_OVERFLOW, behavior=f"overflow-{name}",
            description="Signed integer overflow (CWE-190).",
            bad=source, good=source))
    return templates, shared


# ---------------------------------------------------------------------------
# Suite assembly
# ---------------------------------------------------------------------------

class JulietLikeSuite(TestSuite):
    """The generated Juliet-style benchmark (Figure 2 substrate)."""


def _add_flow_cases(suite: TestSuite, template: _Template,
                    flaw_value: str, safe_value: str) -> None:
    for flow in _FLOW_VARIANTS:
        for is_bad in (True, False):
            helper = _helper_function(flow, flaw_value, safe_value, is_bad)
            body = template.bad if is_bad else template.good
            source = body.format(helper=helper)
            source = _flow_wrap(source, flow, flaw_value, safe_value, is_bad)
            suite.add(TestCase(
                name=f"{template.name}_{flow}_{'bad' if is_bad else 'good'}",
                source=source,
                is_bad=is_bad,
                category=template.category,
                behavior=template.behavior,
                stage="dynamic",
                description=template.description,
            ))


def _add_pair_cases(suite: TestSuite, category: str,
                    cases: Iterable[tuple[str, str, str]]) -> None:
    for name, bad_source, good_source in cases:
        suite.add(TestCase(name=f"{name}_bad", source=bad_source, is_bad=True,
                           category=category, behavior=name, stage="dynamic"))
        suite.add(TestCase(name=f"{name}_good", source=good_source, is_bad=False,
                           category=category, behavior=name, stage="dynamic"))


def generate_juliet_suite() -> JulietLikeSuite:
    """Generate the full Juliet-style benchmark."""
    suite = JulietLikeSuite(name="the Juliet-style suite")

    for template in _invalid_pointer_templates():
        flaw, safe = _INVALID_POINTER_VALUES[template.name]
        _add_flow_cases(suite, template, flaw, safe)

    division_templates, division_values = _division_templates()
    for template in division_templates:
        flaw, safe = division_values[template.name]
        _add_flow_cases(suite, template, flaw, safe)

    _add_pair_cases(suite, CLASS_BAD_FREE, _bad_free_templates())
    _add_pair_cases(suite, CLASS_UNINITIALIZED, _uninitialized_templates())
    _add_pair_cases(suite, CLASS_BAD_CALL, _bad_call_templates())

    overflow_templates, overflow_values = _overflow_templates()
    for template in overflow_templates:
        flaw, safe = overflow_values[template.name]
        _add_flow_cases(suite, template, flaw, safe)

    return suite
