"""Test suites and the evaluation harness (Section 5 of the paper)."""

from repro.suites.juliet import JulietLikeSuite, generate_juliet_suite
from repro.suites.ubsuite import UndefinednessSuite, generate_undefinedness_suite
from repro.suites.harness import (
    EvaluationHarness,
    SuiteScore,
    TestCase,
    TestSuite,
    run_comparison,
)

__all__ = [
    "JulietLikeSuite",
    "generate_juliet_suite",
    "UndefinednessSuite",
    "generate_undefinedness_suite",
    "EvaluationHarness",
    "SuiteScore",
    "TestCase",
    "TestSuite",
    "run_comparison",
]
