"""Error model shared by every component of the reproduction.

The paper's tool (kcc) reports undefined behavior with a numbered error code,
a human readable description, and the location (function / line) where the
behavior was triggered (see the sample report in Section 3.2 of the paper).
This module defines:

* :class:`UBKind` -- the categories of undefined behavior our checker and the
  baseline analyzers can report.  Each kind carries the C11 section that makes
  the behavior undefined and a kcc-style error number.
* :class:`UndefinedBehaviorError` -- the exception raised by the dynamic
  semantics when execution reaches an undefined state (a rule "gets stuck").
* :class:`StaticViolation` -- a statically detected undefinedness / constraint
  violation (the 92 statically detectable behaviors of Section 5.2.1).
* :class:`Outcome` -- the result of running a tool on a program: defined
  (with exit code and output), undefined (with the error), or inconclusive
  (resource limits, unsupported construct).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class UBKind(enum.Enum):
    """Categories of undefined behavior recognized by the checker.

    The value tuple is ``(error_code, c11_section, description)``.  Error
    codes mimic kcc's zero-padded numbering; the numbers themselves are ours,
    only the style is the paper's.
    """

    # Arithmetic
    DIVISION_BY_ZERO = (1, "6.5.5:5", "Division or modulus by zero.")
    SIGNED_OVERFLOW = (2, "6.5:5", "Signed integer overflow.")
    SHIFT_TOO_FAR = (3, "6.5.7:3", "Shift amount negative or >= width of the type.")
    SHIFT_NEGATIVE = (4, "6.5.7:4", "Left shift of a negative value.")
    SHIFT_OVERFLOW = (5, "6.5.7:4", "Left shift overflows the result type.")
    CONVERSION_OVERFLOW = (6, "6.3.1.4:1", "Conversion of out-of-range value to integer type.")

    # Pointers and memory
    NULL_DEREFERENCE = (10, "6.5.3.2:4", "Dereference of a null pointer.")
    VOID_DEREFERENCE = (11, "6.3.2.1:1", "Dereference of a void pointer.")
    DANGLING_DEREFERENCE = (12, "6.2.4:2", "Use of a pointer to an object whose lifetime has ended.")
    OUT_OF_BOUNDS = (13, "6.5.6:8", "Pointer arithmetic or access outside the bounds of an object.")
    BUFFER_OVERFLOW = (14, "6.5.6:8", "Read or write outside the bounds of an object.")
    INVALID_POINTER_ARITHMETIC = (15, "6.5.6:8", "Pointer arithmetic producing a pointer not into the object.")
    POINTER_COMPARE_UNRELATED = (16, "6.5.8:5", "Relational comparison of pointers to different objects.")
    POINTER_SUBTRACT_UNRELATED = (17, "6.5.6:9", "Subtraction of pointers to different objects.")
    BAD_FREE = (18, "7.22.3.3:2", "Invalid argument to free(): not a pointer returned by allocation.")
    DOUBLE_FREE = (19, "7.22.3.3:2", "free() called on already-freed memory.")
    USE_AFTER_FREE = (20, "6.2.4:2", "Use of memory after it has been freed.")
    UNALIGNED_ACCESS = (21, "6.3.2.3:7", "Conversion to a pointer type with stricter alignment.")
    MODIFY_STRING_LITERAL = (22, "6.4.5:7", "Attempt to modify a string literal.")
    NULL_POINTER_ARITHMETIC = (23, "6.5.6:8", "Arithmetic on a null pointer.")

    # Reads of bad values
    UNINITIALIZED_READ = (30, "6.3.2.1:2", "Use of an indeterminate (uninitialized) value.")
    EFFECTIVE_TYPE_VIOLATION = (31, "6.5:7", "Object accessed through an lvalue of incompatible type.")
    VOID_VALUE_USED = (32, "6.3.2.2:1", "The (nonexistent) value of a void expression is used.")

    # Sequencing and const
    UNSEQUENCED_SIDE_EFFECT = (
        16, "6.5:2", "Unsequenced side effect on scalar object with side effect or value computation of same object.")
    CONST_VIOLATION = (41, "6.7.3:6", "Modification of an object defined with a const-qualified type.")

    # Functions
    BAD_FUNCTION_CALL = (50, "6.5.2.2:9", "Function called with wrong number or incompatible types of arguments.")
    BAD_FUNCTION_TYPE = (51, "6.5.2.2:9", "Function called through a pointer of incompatible type.")
    MISSING_RETURN_VALUE = (52, "6.9.1:12", "Value of a function call used although the function returned without a value.")
    NO_MAIN_RETURN_USE = (53, "6.9.1:12", "Use of return value of a function falling off the end without returning one.")
    RECURSIVE_MAIN_EXIT = (54, "7.22.4.4", "exit() semantics violated.")
    VARIADIC_MISUSE = (55, "7.16.1.1:2", "va_arg with incompatible type or no corresponding argument.")

    # Static / declaration-level undefinedness
    ARRAY_SIZE_NOT_POSITIVE = (60, "6.7.6.2:1", "Array declared with a size that is not greater than zero.")
    INCOMPATIBLE_DECLARATIONS = (61, "6.2.7:2", "Two declarations of the same object or function with incompatible types.")
    QUALIFIED_FUNCTION_TYPE = (62, "6.7.3:9", "Function type specified with type qualifiers.")
    DUPLICATE_LABEL = (63, "6.8.1:3", "Duplicate label in a function.")
    GOTO_INTO_VLA_SCOPE = (64, "6.8.6.1:1", "Jump into the scope of a variably modified declaration.")
    VOID_RETURN_WITH_VALUE = (65, "6.8.6.4:1", "return with an expression in a function returning void.")
    IDENTIFIER_LINKAGE_MISMATCH = (66, "6.2.2:7", "Identifier declared with both internal and external linkage.")
    MAIN_BAD_SIGNATURE = (67, "5.1.2.2.1:1", "main declared with an invalid signature.")
    INCOMPLETE_TYPE_OBJECT = (68, "6.9.2:3", "Object defined with an incomplete type.")
    NEGATIVE_ARRAY_INDEX_CONSTANT = (69, "6.5.6:8", "Constant array index outside the bounds of the array.")
    RESERVED_IDENTIFIER = (70, "7.1.3:2", "Definition of a reserved identifier.")
    EMPTY_CHAR_CONSTANT = (71, "6.4.4.4", "Empty or malformed character constant.")

    # Other dynamic behaviors
    STACK_EXHAUSTION = (80, "5.2.4.1", "Program exceeded the translation/execution limits of the implementation.")
    UNTERMINATED_STRING_OP = (81, "7.24.1:1", "String function applied to a buffer that is not null-terminated.")
    OVERLAPPING_COPY = (82, "7.24.2.1:2", "memcpy/strcpy with overlapping source and destination.")
    NEGATIVE_SIZE_ALLOCATION = (83, "7.22.3:1", "Allocation request with a pathological size.")
    FORMAT_MISMATCH = (84, "7.21.6.1:9", "printf/scanf conversion specification does not match its argument.")
    OFFSET_PAST_END_USE = (85, "6.5.6:8", "Dereference of the one-past-the-end pointer.")

    def __init__(self, code: int, section: str, description: str) -> None:
        self.code = int(code)
        self.section = section
        self.description = description

    @property
    def error_code(self) -> str:
        """kcc-style zero padded error code, e.g. ``"00016"``."""
        return f"{self.code:05d}"


# The paper's sample report uses error 00016 for the unsequenced side effect
# case; we keep the same number for fidelity of the quickstart example.
assert UBKind.UNSEQUENCED_SIDE_EFFECT.code == 16


class UndefinedBehaviorError(Exception):
    """Raised by the dynamic semantics when an undefined state is reached.

    Carrying the :class:`UBKind`, a human readable message, and the source
    position lets the front end produce kcc-style reports.
    """

    def __init__(self, kind: UBKind, message: str = "", *,
                 function: str | None = None, line: int | None = None,
                 column: int | None = None) -> None:
        self.kind = kind
        self.message = message or kind.description
        self.function = function
        self.line = line
        self.column = column
        super().__init__(self.message)

    def report(self) -> str:
        """Render a kcc-style error report (cf. paper Section 3.2)."""
        lines = [
            "ERROR! KCC encountered an error.",
            "=" * 47,
            f"Error: {self.kind.error_code}",
            f"Description: {self.message}",
            f"Section: C11 {self.kind.section}",
            "=" * 47,
        ]
        if self.function is not None:
            lines.append(f"Function: {self.function}")
        if self.line is not None:
            lines.append(f"Line: {self.line}")
        return "\n".join(lines)

    def __reduce__(self):
        # Exception's default pickling calls ``cls(*self.args)``, which would
        # drop the kind/location; batch checking ships these across process
        # boundaries, so reconstruct explicitly.
        return (_rebuild_ub_error,
                (self.kind, self.message, self.function, self.line, self.column))

    def to_diagnostic(self) -> "Diagnostic":
        return Diagnostic(
            severity="error",
            stage="dynamic",
            code=self.kind.error_code,
            kind=self.kind.name,
            message=self.message,
            section=self.kind.section,
            function=self.function,
            line=self.line,
            column=self.column,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f" at line {self.line}" if self.line is not None else ""
        return f"UndefinedBehaviorError({self.kind.name}{where}: {self.message!r})"


def _rebuild_ub_error(kind, message, function, line, column) -> "UndefinedBehaviorError":
    return UndefinedBehaviorError(kind, message, function=function, line=line, column=column)


@dataclass(frozen=True)
class StaticViolation:
    """A statically detected undefined behavior or constraint violation."""

    kind: UBKind
    message: str
    line: int | None = None
    column: int | None = None
    function: str | None = None

    def report(self) -> str:
        loc = f" (line {self.line})" if self.line is not None else ""
        return f"static error {self.kind.error_code}: {self.message}{loc}"

    def to_diagnostic(self) -> "Diagnostic":
        return Diagnostic(
            severity="error",
            stage="static",
            code=self.kind.error_code,
            kind=self.kind.name,
            message=self.message,
            section=self.kind.section,
            function=self.function,
            line=self.line,
            column=self.column,
        )


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding of the checker.

    Every way the tool can complain — a dynamic undefined-behavior report, a
    translation-time (static) violation, a parse failure, an inconclusive
    analysis — normalizes to this shape, so downstream consumers (the JSON
    CLI output, the batch API, dashboards) never have to parse the kcc-style
    text reports.
    """

    severity: str                       # "error" | "warning" | "note"
    stage: str                          # "parse" | "static" | "dynamic" | "analysis"
    message: str
    code: Optional[str] = None          # kcc-style zero-padded error number
    kind: Optional[str] = None          # UBKind name, when one applies
    section: Optional[str] = None       # the C11 section that applies
    function: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict; ``None`` fields are omitted."""
        data: dict[str, Any] = {"severity": self.severity, "stage": self.stage,
                                "message": self.message}
        for key in ("code", "kind", "section", "function", "line", "column"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Diagnostic":
        missing = [key for key in ("severity", "stage", "message")
                   if not data.get(key)]
        if missing:
            raise ValueError(
                f"diagnostic missing required field(s): {', '.join(missing)}")
        return cls(**{key: data.get(key) for key in
                      ("severity", "stage", "message", "code", "kind",
                       "section", "function", "line", "column")})

    def render(self) -> str:
        """One-line human-readable form (``error 00016: ... (line 3) [C11 6.5:2]``)."""
        parts = [self.severity]
        if self.code is not None:
            parts.append(self.code)
        text = " ".join(parts) + f": {self.message}"
        if self.line is not None:
            text += f" (line {self.line})"
        if self.section is not None:
            text += f" [C11 {self.section}]"
        return text


class OutcomeKind(enum.Enum):
    """Classification of a single program run / analysis result."""

    DEFINED = "defined"
    UNDEFINED = "undefined"
    STATIC_ERROR = "static-error"
    INCONCLUSIVE = "inconclusive"


@dataclass
class Outcome:
    """Result of running a tool on one program."""

    kind: OutcomeKind
    exit_code: int | None = None
    stdout: str = ""
    error: UndefinedBehaviorError | None = None
    static_violations: list[StaticViolation] = field(default_factory=list)
    detail: str = ""
    #: True when an INCONCLUSIVE outcome stems from a parse failure, so the
    #: structured diagnostic keeps the same severity/stage labels the compile
    #: stage (:meth:`CompiledUnit.diagnostics`) gives the identical error.
    parse_failed: bool = False

    @property
    def flagged(self) -> bool:
        """True if the tool reported *any* undefinedness for the program."""
        return self.kind in (OutcomeKind.UNDEFINED, OutcomeKind.STATIC_ERROR)

    @property
    def ub_kinds(self) -> list[UBKind]:
        kinds: list[UBKind] = []
        if self.error is not None:
            kinds.append(self.error.kind)
        kinds.extend(v.kind for v in self.static_violations)
        return kinds

    def describe(self) -> str:
        if self.kind is OutcomeKind.DEFINED:
            return f"defined (exit code {self.exit_code})"
        if self.kind is OutcomeKind.UNDEFINED and self.error is not None:
            return f"undefined: {self.error.kind.name}: {self.error.message}"
        if self.kind is OutcomeKind.STATIC_ERROR and self.static_violations:
            return "static error: " + "; ".join(v.message for v in self.static_violations)
        return self.detail or self.kind.value

    def diagnostics(self) -> list[Diagnostic]:
        """Every finding of this outcome in structured form."""
        found: list[Diagnostic] = []
        if self.error is not None:
            found.append(self.error.to_diagnostic())
        found.extend(v.to_diagnostic() for v in self.static_violations)
        if self.kind is OutcomeKind.INCONCLUSIVE:
            if self.parse_failed:
                found.append(Diagnostic(severity="error", stage="parse",
                                        message=self.detail or "parse error"))
            else:
                found.append(Diagnostic(severity="note", stage="analysis",
                                        message=self.detail or "analysis inconclusive"))
        return found

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready summary of the outcome."""
        data: dict[str, Any] = {
            "kind": self.kind.value,
            "flagged": self.flagged,
            "diagnostics": [d.to_dict() for d in self.diagnostics()],
        }
        if self.exit_code is not None:
            data["exit_code"] = self.exit_code
        if self.stdout:
            data["stdout"] = self.stdout
        if self.detail:
            data["detail"] = self.detail
        return data


class CParseError(Exception):
    """Raised by the front end for programs we cannot parse."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        self.line = line
        self.column = column
        where = f" at line {line}" if line is not None else ""
        super().__init__(f"{message}{where}")


class UnsupportedFeatureError(Exception):
    """Raised when a program uses a C feature outside the supported subset."""


class ResourceLimitError(Exception):
    """Raised when an execution exceeds the configured step/memory limits."""


class InconclusiveAnalysis(Exception):
    """Raised by :func:`repro.run_program` when the analysis cannot classify
    the program (parse failure, resource limits, unsupported construct).

    Before this exception existed, ``run_program`` fabricated a successful
    ``ExecutionResult(exit_code=0)`` for inconclusive analyses, silently
    conflating "we could not tell" with "the program ran fine".
    """

    def __init__(self, detail: str = "", outcome: Optional["Outcome"] = None) -> None:
        self.detail = detail or "analysis inconclusive"
        self.outcome = outcome
        super().__init__(self.detail)
