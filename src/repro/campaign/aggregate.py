"""The incremental results plane: what a campaign knows while it runs.

:class:`CampaignAggregate` folds unit results in **any arrival order** —
live completion order during a run, unit order during a journal replay,
shard order during a merge — and produces two views:

* :meth:`snapshot` — the live view (units done, throughput, per-family
  rates so far, distinct findings, regression deltas against a committed
  baseline).  This is the payload of the service's ``campaign-progress``
  frames and of ``kcc-check campaign status``.  It may include wall-clock
  throughput, which is honest telemetry but not deterministic.
* :meth:`to_dict` — the canonical view: strictly order-independent and
  timing-free, so an interrupted-and-resumed campaign, a merged pair of
  half-campaigns, and an uninterrupted run all produce **byte-identical**
  JSON.  Family counters are sums (commutative), findings are deduped by
  signature keeping the lowest ``(unit index, case)`` sighting, and the
  campaign result digest hashes the per-unit result digests in partition
  order.

Regression deltas compare per-family correct rates against a committed
baseline (``benchmarks/results/campaign_baseline.json`` by default), the
same stance as ``benchmarks/compare_results.py``: the trajectory of the
checker is part of the result, not a separate report.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Any, Optional

from repro.campaign.workunit import canonical_json

#: The default committed baseline the deltas compare against.
BASELINE_NAME = "campaign_baseline.json"


def load_baseline(path: Optional[str | Path]) -> Optional[dict[str, Any]]:
    """Read a committed family-rate baseline; ``None`` when absent."""
    if path is None:
        return None
    target = Path(path)
    if not target.exists():
        return None
    try:
        data = json.loads(target.read_text())
    except ValueError:
        return None
    return data if isinstance(data, dict) else None


class CampaignAggregate:
    """Order-independent accumulator over unit results."""

    def __init__(
        self,
        spec_digest: str,
        units_total: int,
        *,
        baseline: Optional[dict[str, Any]] = None,
    ) -> None:
        self.spec_digest = spec_digest
        self.units_total = units_total
        self.baseline = baseline
        self.cases = 0
        self._families: dict[str, dict[str, int]] = {}
        #: unit index -> result digest (partition order reconstructs).
        self._digests: dict[int, str] = {}
        #: signature -> ((unit index, case), finding dict); min order wins.
        self._findings: dict[str, tuple[tuple[int, int], dict[str, Any]]] = {}
        self._started = time.monotonic()

    # -- folding -------------------------------------------------------------

    def add_unit(self, result: dict[str, Any]) -> None:
        """Fold one unit result (live, replayed, or merged — same effect)."""
        index = int(result["index"])
        if index in self._digests:
            if self._digests[index] != result["digest"]:
                raise ValueError(
                    f"unit index {index} folded twice with different digests"
                )
            return
        self._digests[index] = result["digest"]
        self.cases += int(result["cases"])
        for family, row in result.get("summary", {}).items():
            mine = self._families.setdefault(family, {"cases": 0, "correct": 0})
            mine["cases"] += int(row["cases"])
            mine["correct"] += int(row["correct"])
        for finding in result.get("findings", ()):
            self.add_finding(index, finding)

    def add_finding(self, unit_index: int, finding: dict[str, Any]) -> None:
        signature = finding.get("signature", "unknown")
        order = (unit_index, int(finding.get("case", 0)))
        current = self._findings.get(signature)
        if current is None or order < current[0]:
            self._findings[signature] = (order, finding)

    # -- views ---------------------------------------------------------------

    @property
    def units_done(self) -> int:
        return len(self._digests)

    def family_table(self) -> dict[str, dict[str, Any]]:
        """Per-family counters with rates, keys sorted (deterministic)."""
        table: dict[str, dict[str, Any]] = {}
        for family in sorted(self._families):
            row = self._families[family]
            table[family] = {
                "cases": row["cases"],
                "correct": row["correct"],
                "rate": round(row["correct"] / row["cases"], 6)
                if row["cases"]
                else None,
            }
        return table

    def findings(self) -> list[dict[str, Any]]:
        """Distinct findings, sorted by signature (deterministic)."""
        return [
            dict(self._findings[signature][1], signature=signature)
            for signature in sorted(self._findings)
        ]

    def families_with_fewest_findings(self) -> list[str]:
        """Families ordered by distinct-signature count, fewest first.

        The scheduler's coverage bias: spend the remaining budget where
        the campaign has surfaced the least diversity so far.  Ties break
        alphabetically so the ordering is reproducible.
        """
        per_family: dict[str, int] = {}
        for _, finding in self._findings.values():
            family = finding.get("family") or "unknown"
            per_family[family] = per_family.get(family, 0) + 1
        known = set(per_family) | set(self._families)
        return sorted(known, key=lambda family: (per_family.get(family, 0), family))

    def deltas(self) -> Optional[dict[str, Any]]:
        """Per-family rate deltas against the committed baseline."""
        if not self.baseline:
            return None
        base_families = self.baseline.get("families", {})
        table = self.family_table()
        out: dict[str, Any] = {}
        for family in sorted(set(table) | set(base_families)):
            current = table.get(family, {}).get("rate")
            base = base_families.get(family, {}).get("rate")
            entry: dict[str, Any] = {"rate": current, "baseline": base}
            if current is not None and base is not None:
                entry["delta"] = round(current - base, 6)
            out[family] = entry
        return out

    def result_digest(self) -> str:
        """Hash of the per-unit result digests, in partition order."""
        ordered = [self._digests[index] for index in sorted(self._digests)]
        return hashlib.sha256(canonical_json(ordered).encode("utf-8")).hexdigest()

    def snapshot(self) -> dict[str, Any]:
        """The live view: progress + rates + throughput (not canonical)."""
        elapsed = time.monotonic() - self._started
        payload = self.to_dict()
        payload["elapsed_seconds"] = round(elapsed, 3)
        payload["throughput"] = round(self.cases / elapsed, 2) if elapsed else None
        return payload

    def to_dict(self) -> dict[str, Any]:
        """The canonical, order-independent, timing-free result view."""
        payload: dict[str, Any] = {
            "campaign": self.spec_digest,
            "units_total": self.units_total,
            "units_done": self.units_done,
            "cases": self.cases,
            "families": self.family_table(),
            "findings": self.findings(),
            "result_digest": self.result_digest(),
        }
        deltas = self.deltas()
        if deltas is not None:
            payload["deltas"] = deltas
        return payload


__all__ = ["BASELINE_NAME", "CampaignAggregate", "load_baseline"]
