"""``repro.campaign``: journaled, resumable, distributed work-unit campaigns.

The fuzz/suite/search drivers of earlier PRs run a whole workload inside
one process invocation: kill the process and everything already computed is
gone.  This package converts a campaign into **relocatable work units** —
serializable slices of a deterministic workload, each with a stable
content-addressed id — plus an **append-only journal** that records every
unit claimed and completed, so a campaign survives restarts (replay the
journal, re-dispatch only what is missing), shards across processes and
machines (run disjoint ``--units`` slices, then ``merge`` the journals),
and reports continuously (``campaign-progress`` events stream per-family
rates and throughput over the PR-6 NDJSON protocol while units complete).

Layer map:

* :mod:`repro.campaign.workunit` — :class:`CampaignSpec` (what the campaign
  is), :class:`WorkUnit` (one slice of it), :func:`campaign_units`
  (partition), :func:`execute_unit` (run one unit anywhere);
* :mod:`repro.campaign.journal` — the JSONL journal: fsync batching,
  crash-safe truncated-tail recovery, replay, merge;
* :mod:`repro.campaign.scheduler` — dispatch units over the warm pool or
  ``kcc-check serve`` endpoints, with retries, backoff, global finding
  dedup, and coverage-guided family bias;
* :mod:`repro.campaign.aggregate` — the incremental results plane.

Every guarantee rests on PR 5's per-item seed derivation: a unit's result
depends only on the unit's identity, never on where or when it ran, which
is what makes resumed, sharded, and merged campaigns byte-identical to an
uninterrupted serial run.
"""

from repro.campaign.aggregate import CampaignAggregate
from repro.campaign.journal import (
    JournalError,
    JournalState,
    JournalWriter,
    merge_journals,
    read_journal,
    recover_journal,
    replay,
)
from repro.campaign.scheduler import (
    CampaignError,
    CampaignOutcome,
    ScheduleConfig,
    resume_campaign,
    run_campaign_spec,
)
from repro.campaign.workunit import (
    CampaignSpec,
    WorkUnit,
    campaign_units,
    execute_unit,
    unit_result_digest,
)

__all__ = [
    "CampaignAggregate",
    "CampaignError",
    "CampaignOutcome",
    "CampaignSpec",
    "JournalError",
    "JournalState",
    "JournalWriter",
    "ScheduleConfig",
    "WorkUnit",
    "campaign_units",
    "execute_unit",
    "merge_journals",
    "read_journal",
    "recover_journal",
    "replay",
    "resume_campaign",
    "run_campaign_spec",
    "unit_result_digest",
]
