"""The campaign scheduler: partition, dispatch, retry, dedup, resume.

:func:`run_campaign_spec` turns a :class:`CampaignSpec` into work units,
journals the partition, then drives every unit to completion over one of
three backends — inline (``jobs=1``: execute in this process, the
deterministic reference), the PR-6 warm pool (``jobs>1``: one staged chunk
per unit, completion-ordered collection), or remote ``kcc-check serve``
endpoints (one client per endpoint, whole units over the wire).  Because a
unit's result depends only on its identity, the three backends produce
byte-identical campaigns; the journal records which one ran nothing at all.

Failure policy: a unit attempt that raises is journaled (``failed`` record,
error text preserved) and retried with capped exponential backoff up to
``retries`` times; a unit that exhausts its retries aborts the campaign
with :class:`CampaignError` — the journal keeps everything completed, so a
later ``resume`` continues from exactly there.

Findings are deduplicated **globally**: the first unit to journal a
signature owns it; later sightings update counters only.  With
``bias=True`` and a rotating-injection spec the dispatcher also weights
pending units toward the injection families with the fewest distinct
signatures so far — coverage-guided scheduling that only reorders
*execution*; the canonical result is order-independent either way.

:func:`resume_campaign` recovers the journal (dropping a crash-truncated
tail), replays it into exact state, and re-enters the same drive loop with
only the missing units pending — zero completed units re-execute, which
the journal's ``duplicate_done`` counter proves.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.campaign.aggregate import CampaignAggregate, load_baseline
from repro.campaign.journal import (
    FSYNC_EVERY,
    JournalState,
    JournalWriter,
    campaign_record,
    claim_record,
    done_record,
    failed_record,
    finding_record,
    load_journal,
    merge_journals,
    replay,
    unit_record,
    write_journal,
)
from repro.campaign.workunit import CampaignSpec, campaign_units, execute_unit


class CampaignError(Exception):
    """A campaign could not run to completion; the journal holds progress."""


def backoff_delay(attempt: int, *, base: float, cap: float) -> float:
    """Capped exponential backoff: ``min(cap, base * 2**(attempt-1))``."""
    return min(cap, base * (2 ** max(0, attempt - 1)))


@dataclass(frozen=True)
class ScheduleConfig:
    """How to drive a campaign (orthogonal to *what* the campaign is)."""

    #: Warm-pool width; 1 means inline execution in this process.
    jobs: int = 1
    #: ``kcc-check serve`` endpoints; non-empty switches to remote dispatch.
    endpoints: tuple[str, ...] = ()
    #: Retries per unit after the first attempt.
    retries: int = 2
    backoff_base: float = 0.25
    backoff_cap: float = 5.0
    #: Coverage-guided bias: prefer families with the fewest signatures.
    bias: bool = False
    #: Journal full per-case records (byte-exact reconstruction) or only
    #: summaries/findings (millions-of-programs scale).
    store_records: bool = True
    fsync_every: int = FSYNC_EVERY
    #: Run only units with partition index in ``[lo, hi)`` — the sharding
    #: knob: disjoint slices on different machines, then ``merge``.
    units_slice: Optional[tuple[int, int]] = None
    #: Baseline JSON path for regression deltas (``None``: no deltas).
    baseline: Optional[str] = None
    #: Called with an aggregate snapshot after every completed unit.
    progress: Optional[Callable[[dict[str, Any]], None]] = None


@dataclass
class CampaignOutcome:
    """What a drive loop returns: exact state plus the canonical result."""

    spec: CampaignSpec
    state: JournalState
    aggregate: CampaignAggregate
    #: Units executed by *this* invocation (a resume executes only the gap).
    executed: int = 0
    #: Units already complete when this invocation started.
    skipped: int = 0
    journal_path: Optional[str] = None
    #: Crash-truncated tail bytes dropped by recovery (resume only).
    recovered_bytes: int = 0

    @property
    def complete(self) -> bool:
        return self.state.complete

    def to_dict(self) -> dict[str, Any]:
        """The canonical order-independent result view (byte-comparable)."""
        return self.aggregate.to_dict()


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_campaign_spec(
    spec: CampaignSpec,
    journal_path: str | Path,
    config: Optional[ScheduleConfig] = None,
) -> CampaignOutcome:
    """Partition a fresh campaign, journal it, and drive it to completion."""
    config = config or ScheduleConfig()
    path = Path(journal_path)
    if path.exists() and path.stat().st_size > 0:
        raise CampaignError(
            f"journal {path} already exists; use resume_campaign() "
            "(CLI: kcc-check campaign resume / run --resume-from)"
        )
    units = campaign_units(spec)
    records = [campaign_record(spec, len(units))]
    records.extend(unit_record(unit) for unit in units)
    state = replay(records)
    with JournalWriter(path, fsync_every=config.fsync_every) as writer:
        for record in records:
            writer.append(record)
        writer.sync()  # the partition is the resume contract; pin it now
        return _drive(state, writer, config, journal_path=str(path))


def resume_campaign(
    journal_path: str | Path,
    config: Optional[ScheduleConfig] = None,
) -> CampaignOutcome:
    """Recover a journal, replay it, and finish whatever is missing."""
    config = config or ScheduleConfig()
    path = Path(journal_path)
    if not path.exists():
        raise CampaignError(f"no journal at {path}")
    state, dropped = load_journal(path)
    if state.spec is None:
        raise CampaignError(f"journal {path} has no campaign header")
    with JournalWriter(path, fsync_every=config.fsync_every) as writer:
        outcome = _drive(state, writer, config, journal_path=str(path))
    outcome.recovered_bytes = dropped
    return outcome


def campaign_status(
    journal_path: str | Path,
    *,
    baseline: Optional[str] = None,
) -> CampaignOutcome:
    """Read-only view of a journal: state + aggregate, nothing executed."""
    if not Path(journal_path).exists():
        raise CampaignError(f"no journal at {journal_path}")
    state, _ = load_journal(journal_path)
    if state.spec is None:
        raise CampaignError(f"journal {journal_path} has no campaign header")
    aggregate = _fold_state(state, baseline)
    return CampaignOutcome(
        spec=state.spec,
        state=state,
        aggregate=aggregate,
        skipped=state.done_units,
        journal_path=str(journal_path),
    )


def merge_campaign_journals(
    inputs: list[str | Path],
    out: str | Path,
    *,
    baseline: Optional[str] = None,
) -> CampaignOutcome:
    """Merge shard journals into ``out`` and return the merged view."""
    missing = [str(path) for path in inputs if not Path(path).exists()]
    if missing:
        raise CampaignError(f"no journal at {', '.join(missing)}")
    records = merge_journals(inputs)
    write_journal(out, records)
    return campaign_status(out, baseline=baseline)


# ---------------------------------------------------------------------------
# The drive loop
# ---------------------------------------------------------------------------


def _fold_state(state: JournalState, baseline: Optional[str]) -> CampaignAggregate:
    aggregate = CampaignAggregate(
        state.spec_digest or "?",
        state.units_total,
        baseline=load_baseline(baseline),
    )
    for unit_id, unit in state.units.items():
        result = state.results.get(unit_id)
        if result is not None:
            aggregate.add_unit(result)
    return aggregate


def _family_counts(state: JournalState) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in state.findings.values():
        family = finding.get("family") or "unknown"
        counts[family] = counts.get(family, 0) + 1
    return counts


@dataclass
class _Dispatcher:
    """Shared bookkeeping between the three execution backends."""

    spec: CampaignSpec
    state: JournalState
    writer: JournalWriter
    config: ScheduleConfig
    aggregate: CampaignAggregate
    executed: int = 0
    attempts: dict[str, int] = field(default_factory=dict)

    @property
    def header(self) -> tuple:
        return (self.spec.to_dict(), self.spec.options or None)

    def pick(self, pending: list[dict[str, Any]]) -> dict[str, Any]:
        """Next unit to dispatch; coverage-biased when configured."""
        if not (self.config.bias and len(pending) > 1):
            return pending.pop(0)
        counts = _family_counts(self.state)
        best = min(
            range(len(pending)),
            key=lambda i: (
                counts.get(pending[i]["params"].get("inject"), 0),
                pending[i]["index"],
            ),
        )
        return pending.pop(best)

    def claim(self, unit: dict[str, Any], worker: str) -> int:
        unit_id = unit["id"]
        attempt = self.attempts.get(unit_id, 0) + 1
        self.attempts[unit_id] = attempt
        self.writer.append(claim_record(unit_id, attempt, worker))
        return attempt

    def commit(self, unit: dict[str, Any], result: dict[str, Any]) -> None:
        unit_id = unit["id"]
        self.writer.append(
            done_record(unit_id, result, store_records=self.config.store_records)
        )
        for finding in result.get("findings", ()):
            signature = finding.get("signature", "unknown")
            if signature not in self.state.findings:
                self.state.findings[signature] = finding
                self.writer.append(finding_record(unit_id, finding))
        self.state.digests[unit_id] = result["digest"]
        self.state.results[unit_id] = result
        self.aggregate.add_unit(result)
        self.executed += 1
        if self.config.progress is not None:
            snapshot = self.aggregate.snapshot()
            snapshot["unit"] = unit_id
            self.config.progress(snapshot)

    def fail(self, unit: dict[str, Any], error: Exception) -> bool:
        """Journal a failed attempt; returns whether to retry."""
        unit_id = unit["id"]
        attempt = self.attempts.get(unit_id, 1)
        self.writer.append(
            failed_record(unit_id, attempt, f"{type(error).__name__}: {error}")
        )
        if attempt > self.config.retries:
            return False
        time.sleep(
            backoff_delay(
                attempt,
                base=self.config.backoff_base,
                cap=self.config.backoff_cap,
            )
        )
        return True


def _drive(
    state: JournalState,
    writer: JournalWriter,
    config: ScheduleConfig,
    *,
    journal_path: Optional[str] = None,
) -> CampaignOutcome:
    spec = state.spec
    assert spec is not None
    aggregate = _fold_state(state, config.baseline)
    pending = state.pending
    if config.units_slice is not None:
        lo, hi = config.units_slice
        pending = [unit for unit in pending if lo <= unit["index"] < hi]
    dispatcher = _Dispatcher(spec, state, writer, config, aggregate)
    skipped = state.done_units
    if pending:
        if config.endpoints:
            _drive_endpoints(dispatcher, pending)
        elif config.jobs > 1:
            _drive_pool(dispatcher, pending)
        else:
            _drive_inline(dispatcher, pending)
    writer.sync()
    return CampaignOutcome(
        spec=spec,
        state=state,
        aggregate=aggregate,
        executed=dispatcher.executed,
        skipped=skipped,
        journal_path=journal_path,
    )


def _drive_inline(dispatcher: _Dispatcher, pending: list[dict[str, Any]]) -> None:
    while pending:
        unit = dispatcher.pick(pending)
        while True:
            dispatcher.claim(unit, "inline")
            try:
                result = execute_unit(dispatcher.header, unit)
            except Exception as error:
                if dispatcher.fail(unit, error):
                    continue
                raise CampaignError(
                    f"unit {unit['id']} failed after "
                    f"{dispatcher.attempts[unit['id']]} attempt(s): {error}"
                ) from error
            dispatcher.commit(unit, result)
            break


def _drive_pool(dispatcher: _Dispatcher, pending: list[dict[str, Any]]) -> None:
    from repro.service.pool import get_pool

    pool = get_pool(dispatcher.config.jobs)
    if pool is None:  # host cannot spawn processes; the guarantee holds
        _drive_inline(dispatcher, pending)
        return
    jobs = max(1, dispatcher.config.jobs)
    in_flight: dict[concurrent.futures.Future, dict[str, Any]] = {}
    pending = list(pending)

    def dispatch(unit: dict[str, Any]) -> None:
        dispatcher.claim(unit, "pool")
        future = pool.submit_staged_chunk(execute_unit, dispatcher.header, [unit])
        in_flight[future] = unit

    while pending or in_flight:
        while pending and len(in_flight) < jobs:
            dispatch(dispatcher.pick(pending))
        done, _ = concurrent.futures.wait(
            in_flight,
            return_when=concurrent.futures.FIRST_COMPLETED,
        )
        for future in done:
            unit = in_flight.pop(future)
            try:
                result = future.result()[0]
            except Exception as error:
                if dispatcher.fail(unit, error):
                    dispatch(unit)
                    continue
                for open_future in in_flight:
                    open_future.cancel()
                raise CampaignError(
                    f"unit {unit['id']} failed after "
                    f"{dispatcher.attempts[unit['id']]} attempt(s): {error}"
                ) from error
            dispatcher.commit(unit, result)


def _drive_endpoints(dispatcher: _Dispatcher, pending: list[dict[str, Any]]) -> None:
    """Remote dispatch: one :class:`ServiceClient` per endpoint, one unit
    in flight per client (the service multiplexes many clients over its
    own warm pool, so per-connection pipelining buys nothing)."""
    from repro.service.client import ServiceClient

    endpoints = list(dispatcher.config.endpoints)
    clients = [ServiceClient(endpoint) for endpoint in endpoints]
    spec_dict, options = dispatcher.header
    try:
        with concurrent.futures.ThreadPoolExecutor(len(clients)) as executor:
            in_flight: dict[concurrent.futures.Future, dict[str, Any]] = {}
            idle = list(range(len(clients)))
            owner: dict[concurrent.futures.Future, int] = {}
            pending = list(pending)
            while pending or in_flight:
                while pending and idle:
                    slot = idle.pop()
                    unit = dispatcher.pick(pending)
                    dispatcher.claim(unit, endpoints[slot])
                    future = executor.submit(
                        clients[slot].run_unit,
                        spec_dict,
                        unit,
                        options=None,
                    )
                    in_flight[future] = unit
                    owner[future] = slot
                done, _ = concurrent.futures.wait(
                    in_flight,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    unit = in_flight.pop(future)
                    idle.append(owner.pop(future))
                    try:
                        result = future.result()
                    except Exception as error:
                        if dispatcher.fail(unit, error):
                            pending.insert(0, unit)
                            continue
                        raise CampaignError(
                            f"unit {unit['id']} failed after "
                            f"{dispatcher.attempts[unit['id']]} attempt(s): "
                            f"{error}"
                        ) from error
                    dispatcher.commit(unit, result)
    finally:
        for client in clients:
            try:
                client.close()
            except Exception:
                pass


__all__ = [
    "CampaignError",
    "CampaignOutcome",
    "ScheduleConfig",
    "backoff_delay",
    "campaign_status",
    "merge_campaign_journals",
    "resume_campaign",
    "run_campaign_spec",
]
