"""Work units: serializable, content-addressed slices of a campaign.

A :class:`CampaignSpec` describes a whole deterministic workload — a fuzz
campaign (seed + count + injection mode), a suite sweep (every case of the
ubsuite or Juliet suite), or an evaluation-order search (one program's root
shards).  :func:`campaign_units` partitions a spec into :class:`WorkUnit`
slices; :func:`execute_unit` runs one slice anywhere — the calling process,
a warm-pool worker, or a ``kcc-check serve`` worker on another machine —
and returns a plain-dict result whose bytes depend only on the unit's
identity (PR 5's per-item seed derivation), never on placement or timing.

Identity is content-addressed: ``WorkUnit.unit_id`` is a SHA-256 digest of
the canonical JSON of ``(spec digest, kind, index, params)``, so the same
slice of the same campaign has the same id on every machine, and a journal
line naming a unit id is unambiguous across shards.  Results carry their
own digest (:func:`unit_result_digest`) over the deterministic payload, so
replays and merges can verify that two executions of one unit agreed.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.service.protocol import options_from_dict

#: Schema tags, embedded so future layout changes stay readable.
SPEC_SCHEMA = "repro.campaign.spec/1"
UNIT_SCHEMA = "repro.campaign.unit/1"
RESULT_SCHEMA = "repro.campaign.result/1"

#: Cases (or search scripts) per work unit when the spec does not say.
DEFAULT_UNIT_SIZE = 25

#: The campaign kinds :func:`campaign_units` knows how to partition.
KINDS = ("fuzz", "suite", "search")

#: ``inject="rotate"`` assigns each fuzz unit one injection family
#: round-robin, which is what gives the scheduler's coverage bias distinct
#: families to weigh.
ROTATE = "rotate"


def canonical_json(payload: Any) -> str:
    """The one canonical JSON encoding digests and comparisons use."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload: Any) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# CampaignSpec: everything a campaign depends on, JSON-safe and digestible
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """The full description of one campaign (JSON-safe, digestible).

    ``options`` travels in the wire form of
    :func:`repro.service.protocol.options_to_dict`, so a spec serialized on
    one machine reconstructs the same :class:`CheckerOptions` on another.
    """

    kind: str = "fuzz"
    seed: int = 0
    #: fuzz: programs to generate; suite: case cap (0 means every case).
    count: int = 200
    unit_size: int = DEFAULT_UNIT_SIZE
    #: fuzz injection mode; :data:`ROTATE` assigns one family per unit.
    inject: Optional[str] = "mixed"
    #: ``GeneratorConfig.to_dict()`` overrides (empty: defaults).
    generator: dict = field(default_factory=dict)
    #: ``OracleConfig.to_dict()`` overrides (empty: defaults).
    oracles: dict = field(default_factory=dict)
    #: Checker options in wire form (empty: :data:`DEFAULT_OPTIONS`).
    options: dict = field(default_factory=dict)
    #: suite kind: which suite to sweep.
    suite: str = "ubsuite"
    #: search kind: the program whose evaluation orders are explored.
    source: Optional[str] = None
    filename: str = "<input>"
    budget: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown campaign kind {self.kind!r}; expected one of {KINDS}"
            )
        # Canonicalize the options wire form so that semantically equal
        # specs digest equally: ``options_to_dict`` already omits non-default
        # fields, but always emits ``profile`` — drop it when it names the
        # default, so ``{}`` and ``{"profile": "lp64"}`` are the same spec.
        options = dict(self.options)
        if options.get("profile") == DEFAULT_OPTIONS.profile.name:
            del options["profile"]
        object.__setattr__(self, "options", options)
        if self.count < 0:
            raise ValueError("campaign count must be non-negative")
        if self.unit_size < 1:
            raise ValueError("campaign unit_size must be >= 1")
        if self.kind == "search" and not self.source:
            raise ValueError("search campaigns need 'source' (the program text)")

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SPEC_SCHEMA,
            "kind": self.kind,
            "seed": self.seed,
            "count": self.count,
            "unit_size": self.unit_size,
            "inject": self.inject,
            "generator": dict(self.generator),
            "oracles": dict(self.oracles),
            "options": dict(self.options),
            "suite": self.suite,
            "source": self.source,
            "filename": self.filename,
            "budget": self.budget,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise ValueError("campaign spec must be a JSON object")
        known = {key for key in cls().to_dict() if key != "schema"}
        unknown = set(data) - known - {"schema"}
        if unknown:
            raise ValueError(f"unknown campaign spec fields: {sorted(unknown)}")
        return cls(**{key: data[key] for key in known if key in data})

    def digest(self) -> str:
        """Content digest of the spec; the campaign's identity everywhere."""
        return _digest(self.to_dict())

    def checker_options(self) -> CheckerOptions:
        return options_from_dict(self.options or None)

    def units_estimate(self) -> int:
        """How many units :func:`campaign_units` will produce (search: >=1)."""
        if self.kind == "search":
            return 1
        total = self.count if self.count else self._suite_size()
        return max(1, math.ceil(total / self.unit_size))

    def _suite_size(self) -> int:
        return len(_suite_cases(self))


# ---------------------------------------------------------------------------
# WorkUnit: one content-addressed slice
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkUnit:
    """One relocatable slice of a campaign."""

    spec_digest: str
    kind: str
    index: int
    #: Kind-specific slice parameters (JSON-safe): fuzz/suite carry
    #: ``{"lo", "hi"}`` case spans (fuzz optionally ``"inject"``); search
    #: carries ``{"scripts": [...]}`` — the sibling order scripts to run.
    params: dict = field(default_factory=dict)

    @property
    def unit_id(self) -> str:
        payload = {
            "spec": self.spec_digest,
            "kind": self.kind,
            "index": self.index,
            "params": self.params,
        }
        return "wu-" + _digest(payload)[:16]

    @property
    def cases(self) -> int:
        if "lo" in self.params:
            return int(self.params["hi"]) - int(self.params["lo"])
        return len(self.params.get("scripts", ())) or 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": UNIT_SCHEMA,
            "id": self.unit_id,
            "spec": self.spec_digest,
            "kind": self.kind,
            "index": self.index,
            "params": self.params,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WorkUnit":
        if not isinstance(data, dict):
            raise ValueError("work unit must be a JSON object")
        try:
            unit = cls(
                spec_digest=data["spec"],
                kind=data["kind"],
                index=int(data["index"]),
                params=dict(data["params"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"malformed work unit: {error}") from None
        claimed = data.get("id")
        if claimed is not None and claimed != unit.unit_id:
            raise ValueError(
                f"work unit id {claimed!r} does not match its content "
                f"({unit.unit_id}); the unit was altered in transit"
            )
        return unit


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


def _spans(total: int, size: int) -> list[tuple[int, int]]:
    return [(lo, min(lo + size, total)) for lo in range(0, total, size)]


def _fuzz_units(spec: CampaignSpec) -> list[WorkUnit]:
    from repro.fuzz.generator import injection_families

    digest = spec.digest()
    families = injection_families()
    units = []
    for index, (lo, hi) in enumerate(_spans(spec.count, spec.unit_size)):
        params: dict[str, Any] = {"lo": lo, "hi": hi}
        if spec.inject == ROTATE:
            params["inject"] = families[index % len(families)]
        units.append(WorkUnit(digest, "fuzz", index, params))
    return units


def _suite_cases(spec: CampaignSpec) -> list:
    if spec.suite == "juliet":
        from repro.suites.juliet import generate_juliet_suite

        cases = generate_juliet_suite().cases
    elif spec.suite == "ubsuite":
        from repro.suites.ubsuite import generate_undefinedness_suite

        cases = generate_undefinedness_suite().cases
    else:
        raise ValueError(f"unknown suite {spec.suite!r}")
    if spec.count:
        cases = cases[: spec.count]
    return cases


def _suite_units(spec: CampaignSpec) -> list[WorkUnit]:
    digest = spec.digest()
    total = len(_suite_cases(spec))
    return [
        WorkUnit(digest, "suite", index, {"lo": lo, "hi": hi})
        for index, (lo, hi) in enumerate(_spans(total, spec.unit_size))
    ]


def _search_units(spec: CampaignSpec) -> list[WorkUnit]:
    """Root shards as units: the root order plus round-robin sibling shards.

    Partitioning a search campaign runs the root evaluation order once (in
    this process) to discover the decision arities — exactly what the PR-4
    parallel driver does — then every sibling script becomes schedulable
    work.  Unit 0 re-runs the root script so the merged exploration covers
    the identical path set the serial engine reports.
    """
    from repro.core.kcc import search_root_expansion
    from repro.kframework.engine import shard_scripts

    digest = spec.digest()
    root_script, scripts = search_root_expansion(
        spec.source,
        filename=spec.filename,
        options=spec.checker_options(),
    )
    shards = shard_scripts(scripts, math.ceil(len(scripts) / spec.unit_size))
    all_shards = [[root_script]] + shards
    return [
        WorkUnit(digest, "search", index, {"scripts": [list(s) for s in shard]})
        for index, shard in enumerate(all_shards)
    ]


def campaign_units(spec: CampaignSpec) -> list[WorkUnit]:
    """Partition a campaign spec into its work units (deterministic)."""
    if spec.kind == "fuzz":
        return _fuzz_units(spec)
    if spec.kind == "suite":
        return _suite_units(spec)
    return _search_units(spec)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def unit_result_digest(records: list[dict[str, Any]]) -> str:
    """The result digest journals pin: canonical JSON of the records."""
    return _digest(records)


def fuzz_campaign_config(spec: CampaignSpec, unit: Optional[WorkUnit] = None):
    """The :class:`repro.fuzz.campaign.CampaignConfig` a fuzz unit runs under."""
    from repro.fuzz.campaign import CampaignConfig
    from repro.fuzz.generator import GeneratorConfig
    from repro.fuzz.oracles import OracleConfig

    inject = spec.inject
    if unit is not None and "inject" in unit.params:
        inject = unit.params["inject"]
    elif inject == ROTATE:
        inject = "mixed"
    return CampaignConfig(
        seed=spec.seed,
        count=spec.count,
        inject=inject,
        generator=GeneratorConfig.from_dict(spec.generator),
        oracles=OracleConfig.from_dict(spec.oracles),
    )


def _fuzz_records(
    spec: CampaignSpec, unit: WorkUnit, options: CheckerOptions
) -> list[dict[str, Any]]:
    from repro.fuzz.campaign import examine_case, worker_config

    config = fuzz_campaign_config(spec, unit)
    header = (worker_config(config), options)
    lo, hi = int(unit.params["lo"]), int(unit.params["hi"])
    return [examine_case(header, index).to_dict() for index in range(lo, hi)]


def _suite_records(
    spec: CampaignSpec, unit: WorkUnit, options: CheckerOptions
) -> list[dict[str, Any]]:
    from repro.api.session import compile_shared, tool_for

    cases = _suite_cases(spec)
    tool = tool_for(options)
    records = []
    lo, hi = int(unit.params["lo"]), int(unit.params["hi"])
    for index in range(lo, hi):
        case = cases[index]
        compiled = compile_shared(case.source, filename=case.name, options=options)
        report = tool.run_unit(compiled)
        flagged = report.flagged
        record = {
            "index": index,
            "name": case.name,
            "family": case.category or "suite",
            "injected": case.behavior if case.is_bad else None,
            "verdict": report.outcome.kind.name.lower(),
            "detected_kind": None,
            "ok": flagged == case.is_bad,
        }
        if not record["ok"]:
            record["failures"] = [
                {
                    "oracle": "suite-expectation",
                    "signature": f"suite:{case.name}:{record['verdict']}",
                    "detail": (
                        f"expected {'bad' if case.is_bad else 'good'}, "
                        f"verdict {record['verdict']}"
                    ),
                }
            ]
        records.append(record)
    return records


def _search_records(
    spec: CampaignSpec, unit: WorkUnit, options: CheckerOptions
) -> list[dict[str, Any]]:
    from repro.core.kcc import run_search_shard
    from repro.kframework.search import SearchBudget, SearchOptions

    budget = SearchBudget.parse(spec.budget) if spec.budget else SearchBudget()
    search_options = SearchOptions(budget=budget, checkpoint="replay")
    header = (spec.source, spec.filename, options, None, "", search_options)
    scripts = [tuple(script) for script in unit.params["scripts"]]
    result = run_search_shard(header, scripts)
    undefined = sorted(
        (list(path.script), path.description) for path in result.undefined_paths
    )
    record = {
        "index": unit.index,
        "name": f"shard-{unit.index}",
        "family": "search",
        "injected": "order" if undefined else None,
        "verdict": "undefined" if undefined else "defined",
        "detected_kind": None,
        "scripts": len(scripts),
        "explored": result.explored,
        "undefined_orders": undefined,
        "ok": True,
    }
    if undefined:
        record["failures"] = [
            {
                "oracle": "order-search",
                "signature": f"search:{description}",
                "detail": f"order {script} is undefined: {description}",
            }
            for script, description in undefined
        ]
    return [record]


def _summarize(records: list[dict[str, Any]]) -> dict[str, dict[str, int]]:
    """The per-family table fragment of one unit (mergeable, deterministic).

    Mirrors :meth:`repro.fuzz.campaign.CampaignResult.family_table` exactly,
    so an aggregate over unit summaries is byte-identical to the table a
    monolithic campaign run computes from its records.
    """
    table: dict[str, dict[str, int]] = {}
    for record in records:
        family = record.get("family") or (
            "terminal" if record.get("injected") else "clean"
        )
        row = table.setdefault(family, {"cases": 0, "correct": 0})
        row["cases"] += 1
        if record.get("injected"):
            correct = record.get("verdict") != "defined"
        else:
            correct = record.get("verdict") == "defined"
        if correct and record.get("ok", True):
            row["correct"] += 1
    return table


def _findings(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Mismatch records condensed into dedupable findings."""
    findings = []
    for record in records:
        for failure in record.get("failures", ()):
            findings.append(
                {
                    "signature": failure.get("signature", "unknown"),
                    "case": record.get("index", 0),
                    "family": record.get("family"),
                    "oracle": failure.get("oracle"),
                    "detail": failure.get("detail"),
                }
            )
    return findings


def execute_unit(header: tuple, unit_dict: dict[str, Any]) -> dict[str, Any]:
    """Run one work unit; module-level and picklable (pool/staged worker).

    ``header`` is ``(spec_dict, options_wire_dict_or_None)`` — shipped once
    per chunk by the warm pool's staged submission, and exactly what the
    ``unit`` service op carries over the wire.  The result is a plain dict
    whose ``digest`` covers only deterministic payload (records), never
    timing, so any two executions of one unit can be checked for agreement.
    """
    import time

    spec_dict, options_dict = header
    spec = CampaignSpec.from_dict(spec_dict)
    options = options_from_dict(options_dict) if options_dict else DEFAULT_OPTIONS
    unit = WorkUnit.from_dict(unit_dict)
    if unit.spec_digest != spec.digest():
        raise ValueError(
            f"unit {unit.unit_id} belongs to spec {unit.spec_digest[:12]}..., "
            f"not {spec.digest()[:12]}..."
        )
    start = time.perf_counter()
    if unit.kind == "fuzz":
        records = _fuzz_records(spec, unit, options)
    elif unit.kind == "suite":
        records = _suite_records(spec, unit, options)
    elif unit.kind == "search":
        records = _search_records(spec, unit, options)
    else:
        raise ValueError(f"unknown unit kind {unit.kind!r}")
    return {
        "schema": RESULT_SCHEMA,
        "unit": unit.unit_id,
        "index": unit.index,
        "kind": unit.kind,
        "cases": len(records),
        "digest": unit_result_digest(records),
        "summary": _summarize(records),
        "findings": _findings(records),
        "records": records,
        "elapsed": time.perf_counter() - start,
    }


def strip_result(result: dict[str, Any]) -> dict[str, Any]:
    """A result without its per-case records (summary/findings retained).

    Campaigns at the millions-of-programs scale journal stripped results
    (``store_records=False`` in the scheduler) — the aggregate only ever
    reads summaries and findings; full records exist for byte-exact
    :class:`~repro.fuzz.campaign.CampaignResult` reconstruction.
    """
    slim = dict(result)
    slim.pop("records", None)
    return slim


__all__ = [
    "DEFAULT_UNIT_SIZE",
    "KINDS",
    "RESULT_SCHEMA",
    "ROTATE",
    "SPEC_SCHEMA",
    "UNIT_SCHEMA",
    "CampaignSpec",
    "WorkUnit",
    "campaign_units",
    "canonical_json",
    "execute_unit",
    "fuzz_campaign_config",
    "strip_result",
    "unit_result_digest",
]
