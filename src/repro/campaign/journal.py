"""The campaign journal: append-only JSONL, crash-safe, replayable.

Every campaign writes one journal file.  Each line is a self-contained JSON
record; the file is only ever appended to, so a reader can follow it live
and a crash can at worst leave a **truncated tail** — half a line where the
process died mid-write.  :func:`recover_journal` handles exactly that case:
it drops the partial tail (and truncates the file back to the last complete
record, so subsequent appends produce a well-formed file again) and returns
every intact record.  Anything worse — garbage in the *middle* of the file
— is corruption, not a crash artifact, and raises :class:`JournalError`.

Record vocabulary (the ``t`` field):

==========  =============================================================
``campaign``  Journal header: the full campaign spec, its digest, and the
              unit count.  First record, exactly once per journal.
``unit``      One work unit of the partition (``unit.to_dict()``).  The
              journal is self-contained: resuming never re-partitions
              (search partitioning runs the root program — not something
              a resume should repeat).
``claim``     A unit was handed to a worker (attempt counter rides along).
``done``      A unit completed: result digest always, full result payload
              unless the campaign runs ``store_records=False``.
``finding``   A deduplicated finding (first sighting of a signature).
``failed``    A unit attempt raised; the error text is preserved.
``merged``    A merge pulled in another journal (provenance note).
==========  =============================================================

Durability: every append is written and flushed to the kernel immediately
(a SIGKILL after :meth:`JournalWriter.append` returns never loses the
record), while ``fsync`` is batched — every ``fsync_every`` appends or
``fsync_interval`` seconds, whichever comes first — so power-loss exposure
is bounded without paying a disk sync per record.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional

from repro.campaign.workunit import CampaignSpec, WorkUnit, canonical_json

#: Journal format identifier, embedded in the ``campaign`` header record.
JOURNAL_SCHEMA = "repro.campaign.journal/1"

#: Default fsync batching: at most this many appends between syncs...
FSYNC_EVERY = 16
#: ...and at most this many seconds.
FSYNC_INTERVAL = 0.5

RECORD_TYPES = ("campaign", "unit", "claim", "done", "finding", "failed", "merged")


class JournalError(Exception):
    """The journal is corrupt or inconsistent with the campaign spec."""


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


class JournalWriter:
    """Append-only writer with kernel-flush-per-record and batched fsync."""

    def __init__(
        self,
        path: str | Path,
        *,
        fsync_every: int = FSYNC_EVERY,
        fsync_interval: float = FSYNC_INTERVAL,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self._fsync_every = max(1, int(fsync_every))
        self._fsync_interval = fsync_interval
        self._unsynced = 0
        self._last_sync = time.monotonic()

    def append(self, record: dict[str, Any]) -> None:
        kind = record.get("t")
        if kind not in RECORD_TYPES:
            raise JournalError(f"refusing to journal unknown record type {kind!r}")
        line = (canonical_json(record) + "\n").encode("utf-8")
        self._file.write(line)
        # Flush to the kernel unconditionally: a SIGKILL from here on
        # cannot lose this record.  fsync (power-loss durability) batches.
        self._file.flush()
        self._unsynced += 1
        now = time.monotonic()
        if (
            self._unsynced >= self._fsync_every
            or now - self._last_sync >= self._fsync_interval
        ):
            self.sync()

    def sync(self) -> None:
        """Force an fsync of everything appended so far."""
        self._file.flush()
        os.fsync(self._file.fileno())
        self._unsynced = 0
        self._last_sync = time.monotonic()

    def close(self) -> None:
        if not self._file.closed:
            self.sync()
            self._file.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Record constructors (one place decides the field names)
# ---------------------------------------------------------------------------


def campaign_record(spec: CampaignSpec, units: int) -> dict[str, Any]:
    return {
        "t": "campaign",
        "schema": JOURNAL_SCHEMA,
        "spec": spec.to_dict(),
        "digest": spec.digest(),
        "units": units,
    }


def unit_record(unit: WorkUnit) -> dict[str, Any]:
    return {"t": "unit", "unit": unit.to_dict()}


def claim_record(unit_id: str, attempt: int, worker: str) -> dict[str, Any]:
    return {"t": "claim", "unit": unit_id, "attempt": attempt, "worker": worker}


def done_record(
    unit_id: str,
    result: dict[str, Any],
    *,
    store_records: bool = True,
) -> dict[str, Any]:
    from repro.campaign.workunit import strip_result

    payload = result if store_records else strip_result(result)
    return {
        "t": "done",
        "unit": unit_id,
        "digest": result["digest"],
        "result": payload,
    }


def finding_record(unit_id: str, finding: dict[str, Any]) -> dict[str, Any]:
    return {"t": "finding", "unit": unit_id, "finding": finding}


def failed_record(unit_id: str, attempt: int, error: str) -> dict[str, Any]:
    return {"t": "failed", "unit": unit_id, "attempt": attempt, "error": error}


def merged_record(source: str, units: int) -> dict[str, Any]:
    return {"t": "merged", "source": source, "units": units}


# ---------------------------------------------------------------------------
# Reading and recovery
# ---------------------------------------------------------------------------


def read_journal(path: str | Path) -> list[dict[str, Any]]:
    """Every record of a well-formed journal; strict (no tail tolerance)."""
    records = []
    with open(path, "rb") as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise JournalError(f"{path}:{number}: bad record: {error}") from None
            if not isinstance(record, dict):
                raise JournalError(f"{path}:{number}: record is not an object")
            records.append(record)
    return records


def recover_journal(
    path: str | Path,
    *,
    truncate: bool = True,
) -> tuple[list[dict[str, Any]], int]:
    """Read a journal tolerating a crash-truncated tail.

    Returns ``(records, dropped_bytes)``.  A partial or unparseable *final*
    line is the signature of a process killed mid-append: it is dropped,
    and with ``truncate=True`` (the default) the file itself is truncated
    back to the last complete record so the journal is clean for appends.
    An unparseable line anywhere *before* the final one means real
    corruption and raises :class:`JournalError`.
    """
    raw = Path(path).read_bytes()
    records: list[dict[str, Any]] = []
    offset = 0
    good_end = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            break  # partial tail: no terminating newline
        line = raw[offset:newline]
        if line.strip():
            try:
                record = json.loads(line)
            except ValueError:
                record = None
            if not isinstance(record, dict):
                if raw.find(b"\n", newline + 1) >= 0 or newline + 1 < len(raw):
                    raise JournalError(
                        f"{path}: corrupt record at byte {offset} "
                        "(not the final line; refusing to recover)"
                    )
                break  # final complete line is garbage: crash artifact
            records.append(record)
        offset = newline + 1
        good_end = offset
    dropped = len(raw) - good_end
    if dropped and truncate:
        with open(path, "rb+") as handle:
            handle.truncate(good_end)
    return records, dropped


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


@dataclass
class JournalState:
    """Exact campaign state reconstructed from a journal's records."""

    spec: Optional[CampaignSpec] = None
    spec_digest: Optional[str] = None
    units_total: int = 0
    #: unit id -> unit dict, in partition (index) order.
    units: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: unit id -> attempts claimed so far.
    claims: dict[str, int] = field(default_factory=dict)
    #: unit id -> result digest of the completed unit.
    digests: dict[str, str] = field(default_factory=dict)
    #: unit id -> journaled result payload (stripped or full).
    results: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: signature -> finding dict, first sighting wins.
    findings: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: unit id -> error strings from failed attempts.
    failures: dict[str, list[str]] = field(default_factory=dict)
    #: provenance notes from ``merge``.
    merged_from: list[str] = field(default_factory=list)
    #: ``done`` records seen for already-completed units.  The scheduler
    #: never re-executes a completed unit, so after any resume this must
    #: still be zero — the acceptance test pins it.
    duplicate_done: int = 0

    @property
    def done_units(self) -> int:
        return len(self.digests)

    @property
    def pending(self) -> list[dict[str, Any]]:
        """Unit dicts not yet completed, in partition order."""
        return [
            unit
            for unit_id, unit in self.units.items()
            if unit_id not in self.digests
        ]

    @property
    def complete(self) -> bool:
        return self.units_total > 0 and self.done_units >= len(self.units)

    def apply(self, record: dict[str, Any]) -> None:
        kind = record.get("t")
        if kind == "campaign":
            if self.spec is not None:
                raise JournalError("second campaign header in one journal")
            self.spec = CampaignSpec.from_dict(record["spec"])
            self.spec_digest = record["digest"]
            if self.spec.digest() != self.spec_digest:
                raise JournalError(
                    "campaign header digest does not match its own spec"
                )
            self.units_total = int(record["units"])
        elif self.spec is None:
            raise JournalError(f"{kind!r} record before the campaign header")
        elif kind == "unit":
            unit = record["unit"]
            unit_id = unit["id"]
            if unit.get("spec") != self.spec_digest:
                raise JournalError(
                    f"unit {unit_id} belongs to a different campaign"
                )
            self.units.setdefault(unit_id, unit)
        elif kind == "claim":
            self._known(record)
            self.claims[record["unit"]] = max(
                self.claims.get(record["unit"], 0), int(record["attempt"])
            )
        elif kind == "done":
            unit_id = self._known(record)
            previous = self.digests.get(unit_id)
            if previous is not None:
                if previous != record["digest"]:
                    raise JournalError(
                        f"unit {unit_id} completed twice with different "
                        f"result digests ({previous[:12]} vs "
                        f"{record['digest'][:12]}): determinism violation"
                    )
                self.duplicate_done += 1
                return
            self.digests[unit_id] = record["digest"]
            self.results[unit_id] = record["result"]
        elif kind == "finding":
            signature = record["finding"].get("signature", "unknown")
            self.findings.setdefault(signature, record["finding"])
        elif kind == "failed":
            self._known(record)
            self.failures.setdefault(record["unit"], []).append(record["error"])
        elif kind == "merged":
            self.merged_from.append(record["source"])
        else:
            raise JournalError(f"unknown journal record type {kind!r}")

    def _known(self, record: dict[str, Any]) -> str:
        unit_id = record["unit"]
        if unit_id not in self.units:
            raise JournalError(
                f"{record.get('t')!r} record for unknown unit {unit_id}"
            )
        return unit_id


def replay(records: Iterable[dict[str, Any]]) -> JournalState:
    """Fold journal records into the campaign state they describe."""
    state = JournalState()
    for record in records:
        state.apply(record)
    return state


def load_journal(path: str | Path) -> tuple[JournalState, int]:
    """Recover a journal file and replay it: ``(state, dropped_bytes)``."""
    records, dropped = recover_journal(path)
    return replay(records), dropped


# ---------------------------------------------------------------------------
# Merge
# ---------------------------------------------------------------------------


def merge_journals(paths: Iterable[str | Path]) -> list[dict[str, Any]]:
    """Combine journals of one campaign into a canonical record stream.

    The inputs are shards — e.g. two machines that each ran a disjoint
    ``--units`` slice — and must share the campaign spec digest.  The
    output is deterministic regardless of input order or interleaving:
    header first, units in partition order, ``done`` records in unit
    order (ties broken by digest equality — a unit completed by two shards
    must agree, anything else raises), findings sorted by signature with
    the lowest ``(unit index, case)`` sighting kept.  Replaying the merged
    stream therefore yields the same :class:`JournalState` no matter how
    the campaign was split.
    """
    paths = list(paths)
    if not paths:
        raise JournalError("merge needs at least one journal")
    header: Optional[dict[str, Any]] = None
    units: dict[str, dict[str, Any]] = {}
    dones: dict[str, dict[str, Any]] = {}
    findings: dict[str, tuple[tuple[int, int], dict[str, Any], str]] = {}
    sources: list[str] = []
    for path in paths:
        records, _ = recover_journal(path, truncate=False)
        state = replay(records)  # validates internal consistency
        if state.spec is None:
            raise JournalError(f"{path}: journal has no campaign header")
        for record in records:
            kind = record["t"]
            if kind == "campaign":
                if header is None:
                    header = record
                elif record["digest"] != header["digest"]:
                    raise JournalError(
                        f"{path}: campaign {record['digest'][:12]} does not "
                        f"match {header['digest'][:12]}; refusing to merge "
                        "different campaigns"
                    )
            elif kind == "unit":
                units.setdefault(record["unit"]["id"], record)
            elif kind == "done":
                previous = dones.get(record["unit"])
                if previous is None:
                    dones[record["unit"]] = record
                elif previous["digest"] != record["digest"]:
                    raise JournalError(
                        f"unit {record['unit']} has conflicting results "
                        "across journals: determinism violation"
                    )
            elif kind == "finding":
                finding = record["finding"]
                signature = finding.get("signature", "unknown")
                unit_index = units.get(record["unit"], {}).get("unit", {})
                order = (
                    int(unit_index.get("index", 1 << 30)),
                    int(finding.get("case", 0)),
                )
                current = findings.get(signature)
                if current is None or order < current[0]:
                    findings[signature] = (order, finding, record["unit"])
        sources.append(str(path))
    assert header is not None
    by_index = sorted(units.values(), key=lambda r: r["unit"]["index"])
    merged: list[dict[str, Any]] = [header]
    merged.extend(by_index)
    merged.extend(
        {"t": "merged", "source": source, "units": len(units)}
        for source in sorted(sources)
    )
    for record in by_index:
        done = dones.get(record["unit"]["id"])
        if done is not None:
            merged.append(done)
    for signature in sorted(findings):
        _, finding, unit_id = findings[signature]
        merged.append({"t": "finding", "unit": unit_id, "finding": finding})
    return merged


def write_journal(path: str | Path, records: Iterable[dict[str, Any]]) -> None:
    """Write a fresh journal file from a record stream (used by merge)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "wb") as handle:
        for record in records:
            handle.write((canonical_json(record) + "\n").encode("utf-8"))
        handle.flush()
        os.fsync(handle.fileno())


__all__ = [
    "FSYNC_EVERY",
    "FSYNC_INTERVAL",
    "JOURNAL_SCHEMA",
    "RECORD_TYPES",
    "JournalError",
    "JournalState",
    "JournalWriter",
    "campaign_record",
    "claim_record",
    "done_record",
    "failed_record",
    "finding_record",
    "load_journal",
    "merge_journals",
    "merged_record",
    "read_journal",
    "recover_journal",
    "replay",
    "unit_record",
    "write_journal",
]
