"""``python -m repro.campaign.smoke``: the CI crash-resume gauntlet.

One command that proves the campaign subsystem's whole contract on a small
fixed-seed workload:

1. run an uninterrupted reference campaign in-process;
2. launch the same campaign as a subprocess (the real CLI), **SIGKILL** it
   when its journal shows roughly half the units complete;
3. resume the killed journal and assert the canonical result is
   **byte-identical** to the reference, with **zero completed units
   re-executed** (the resume's executed count plus the units that survived
   the kill must equal the partition exactly, and the journal's
   ``duplicate_done`` counter must be zero);
4. run the campaign again as two disjoint ``--units`` half-slices, merge
   the two journals both ways, and assert both merged journals are
   byte-identical to each other and canonically identical to the reference.

Exit status 0 on success.  On failure the journals are left in the work
directory (``--dir``), which CI uploads as an artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path


def _count_done(journal: Path) -> int:
    """Completed units in a (possibly mid-write) journal; cheap and safe."""
    if not journal.exists():
        return 0
    done = 0
    for line in journal.read_bytes().split(b"\n"):
        if line.startswith(b'{"digest"') and b'"t":"done"' in line:
            done += 1
    return done


def _cli(args: list[str]) -> subprocess.Popen:
    env = dict(os.environ)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", *args],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default="campaign-smoke",
                        help="work directory (journals land here)")
    parser.add_argument("--count", type=int, default=200,
                        help="campaign size (programs)")
    parser.add_argument("--unit-size", type=int, default=10, dest="unit_size")
    parser.add_argument("--seed", type=int, default=20260808)
    arguments = parser.parse_args(argv)

    from repro.campaign import CampaignSpec, resume_campaign, run_campaign_spec
    from repro.campaign.journal import load_journal
    from repro.campaign.scheduler import ScheduleConfig, merge_campaign_journals

    work = Path(arguments.dir)
    work.mkdir(parents=True, exist_ok=True)
    spec = CampaignSpec(
        kind="fuzz",
        seed=arguments.seed,
        count=arguments.count,
        unit_size=arguments.unit_size,
        inject="rotate",
    )
    units_total = spec.units_estimate()
    print(f"campaign-smoke: {arguments.count} programs, {units_total} units")

    # 1. The uninterrupted reference.
    reference_path = work / "reference.jsonl"
    reference_path.unlink(missing_ok=True)
    started = time.perf_counter()
    reference = run_campaign_spec(spec, reference_path)
    canonical = reference.to_dict()
    print(f"  reference: {canonical['cases']} cases, "
          f"{len(canonical['findings'])} finding(s), "
          f"digest {canonical['result_digest'][:16]} "
          f"({time.perf_counter() - started:.1f}s)")

    # 2. Kill the same campaign at ~50% of its units.
    killed_path = work / "killed.jsonl"
    killed_path.unlink(missing_ok=True)
    child = _cli([
        "run", "--journal", str(killed_path), "--kind", "fuzz",
        "--seed", str(arguments.seed), "--count", str(arguments.count),
        "--unit-size", str(arguments.unit_size), "--inject", "rotate",
        "--quiet",
    ])
    target = max(1, units_total // 2)
    deadline = time.monotonic() + 600
    while time.monotonic() < deadline:
        if child.poll() is not None:
            print("  FAIL: campaign finished before the kill point")
            return 1
        if _count_done(killed_path) >= target:
            break
        time.sleep(0.05)
    else:
        print("  FAIL: campaign never reached the kill point")
        child.kill()
        return 1
    child.send_signal(signal.SIGKILL)
    child.wait()
    survived = _count_done(killed_path)
    print(f"  SIGKILLed at {survived}/{units_total} units")

    # 3. Resume and compare byte-for-byte.
    resumed = resume_campaign(killed_path)
    state, _ = load_journal(killed_path)
    resumed_canonical = resumed.to_dict()
    if resumed_canonical != canonical:
        print("  FAIL: resumed result differs from the uninterrupted run")
        return 1
    if state.duplicate_done != 0:
        print(f"  FAIL: {state.duplicate_done} completed unit(s) re-executed")
        return 1
    if resumed.executed + resumed.skipped != units_total:
        print(f"  FAIL: executed {resumed.executed} + skipped "
              f"{resumed.skipped} != {units_total}")
        return 1
    print(f"  resume: byte-identical; {resumed.skipped} units skipped, "
          f"{resumed.executed} executed, 0 re-executed")

    # 4. Two independent half-campaigns merge to the same result.
    half = max(1, units_total // 2)
    half_a, half_b = work / "half-a.jsonl", work / "half-b.jsonl"
    half_a.unlink(missing_ok=True)
    half_b.unlink(missing_ok=True)
    run_campaign_spec(spec, half_a, ScheduleConfig(units_slice=(0, half)))
    run_campaign_spec(spec, half_b,
                      ScheduleConfig(units_slice=(half, units_total)))
    merged_ab, merged_ba = work / "merged-ab.jsonl", work / "merged-ba.jsonl"
    outcome_ab = merge_campaign_journals([half_a, half_b], merged_ab)
    merge_campaign_journals([half_b, half_a], merged_ba)
    if merged_ab.read_bytes() != merged_ba.read_bytes():
        print("  FAIL: merge is input-order dependent")
        return 1
    if outcome_ab.to_dict() != canonical:
        print("  FAIL: merged halves differ from the uninterrupted run")
        return 1
    print("  merge: two half-campaigns merge byte-identically, both orders")

    summary = {
        "cases": canonical["cases"],
        "units": units_total,
        "findings": len(canonical["findings"]),
        "result_digest": canonical["result_digest"],
        "killed_at_units": survived,
        "resume_executed": resumed.executed,
        "duplicate_done": state.duplicate_done,
    }
    (work / "summary.json").write_text(json.dumps(summary, indent=2) + "\n")
    print("campaign-smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
