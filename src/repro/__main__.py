"""``python -m repro`` — the ``kcc-check`` CLI in module form."""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())
