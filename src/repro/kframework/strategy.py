"""Evaluation-order strategies.

C leaves the evaluation order of most subexpressions unspecified (§2.5.2 of
the paper), and whether a program is undefined may depend on the order chosen.
The interpreter asks its strategy for the order in which to evaluate each
group of unsequenced subexpressions; the search driver
(:mod:`repro.kframework.search`) enumerates strategies to cover all orders.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence


class EvaluationStrategy:
    """Decides the evaluation order of ``n`` unsequenced siblings."""

    name = "abstract"

    def order(self, count: int, site: object = None) -> Sequence[int]:
        raise NotImplementedError

    def reset(self) -> None:
        """Called before each program run."""

    def note_operand(self, site: object, position: int) -> None:
        """Hook: operand ``position`` of the group at ``site`` starts now.

        The interpreter calls this between the operands of an unsequenced
        group so a strategy that tracks per-operand effects (the search
        engine's commutativity filter) can segment the event stream.  The
        default is a no-op; fixed-order strategies never need it.
        """

    def note_group_end(self, site: object) -> None:
        """Hook: the unsequenced group at ``site`` finished evaluating."""


class LeftToRightStrategy(EvaluationStrategy):
    """The order virtually every compiler uses for simple expressions."""

    name = "left-to-right"

    def order(self, count: int, site: object = None) -> Sequence[int]:
        return range(count)


class RightToLeftStrategy(EvaluationStrategy):
    """The reverse order (used by some compilers for call arguments)."""

    name = "right-to-left"

    def order(self, count: int, site: object = None) -> Sequence[int]:
        return range(count - 1, -1, -1)


@dataclass
class ScriptedStrategy(EvaluationStrategy):
    """Replays a scripted sequence of permutation choices.

    Each time the interpreter reaches a group of ``n`` unsequenced siblings,
    the strategy consumes the next decision from ``decisions`` (an index into
    the lexicographically ordered permutations of ``range(n)``).  Once the
    script is exhausted it defaults to left-to-right and records how many
    decision points were seen and how many alternatives each had, which the
    search driver uses to enumerate the next script.
    """

    decisions: list[int] = field(default_factory=list)
    name: str = "scripted"
    position: int = 0
    observed_arity: list[int] = field(default_factory=list)

    def reset(self) -> None:
        self.position = 0
        self.observed_arity = []

    def order(self, count: int, site: object = None) -> Sequence[int]:
        alternatives = permutation_count(count)
        self.observed_arity.append(alternatives)
        if self.position < len(self.decisions):
            choice = self.decisions[self.position]
        else:
            choice = 0
        self.position += 1
        choice = min(choice, alternatives - 1)
        return nth_permutation(count, choice)


def permutation_count(n: int) -> int:
    """How many orders ``n`` unsequenced siblings admit (n!)."""
    result = 1
    for i in range(2, n + 1):
        result *= i
    return result


def nth_permutation(count: int, index: int) -> tuple[int, ...]:
    """The ``index``-th lexicographic permutation of ``range(count)``."""
    if count <= 1:
        return tuple(range(count))
    if count == 2:
        return (0, 1) if index == 0 else (1, 0)
    permutations = list(itertools.permutations(range(count)))
    return permutations[index % len(permutations)]


def strategy_for(name: str) -> EvaluationStrategy:
    """Look up a strategy by its configuration name."""
    if name == "left-to-right":
        return LeftToRightStrategy()
    if name == "right-to-left":
        return RightToLeftStrategy()
    if name == "search":
        return ScriptedStrategy()
    raise ValueError(f"unknown evaluation order strategy {name!r}")
