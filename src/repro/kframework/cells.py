"""Labeled-cell configurations in the style of the K framework.

The paper's Figure 1 shows a subset of the C configuration: nested, labeled
cells holding the computation (``k``), environments, memory, the undefinedness
bookkeeping cells (``locsWrittenTo``, ``notWritable``) and the call stack.
The real kcc configuration has over 90 cells; ours is smaller but keeps the
same structure so that tests and documentation can talk about the state in the
paper's vocabulary.

Cells are a lightweight tree of name/content pairs.  The interpreter exposes
its state as a :class:`Configuration` (see
:meth:`repro.core.interpreter.Interpreter.configuration`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

CellContent = Union["Cell", str, int, list, dict, set, tuple, None]


@dataclass
class Cell:
    """A labeled cell: ``<content>label``."""

    label: str
    content: CellContent = None
    children: list["Cell"] = field(default_factory=list)

    def add(self, child: "Cell") -> "Cell":
        self.children.append(child)
        return child

    def find(self, label: str) -> Optional["Cell"]:
        """Find the first (depth-first) descendant cell with ``label``."""
        for cell in self.walk():
            if cell.label == label:
                return cell
        return None

    def walk(self) -> Iterator["Cell"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        if not self.children:
            return f"{pad}<{self.label}> {self._render_content()} </{self.label}>"
        lines = [f"{pad}<{self.label}>"]
        if self.content not in (None, "", [], {}, set()):
            lines.append(f"{pad}  {self._render_content()}")
        for child in self.children:
            lines.append(child.render(indent + 1))
        lines.append(f"{pad}</{self.label}>")
        return "\n".join(lines)

    def _render_content(self) -> str:
        if isinstance(self.content, dict):
            inner = ", ".join(f"{k} |-> {v}" for k, v in self.content.items())
            return f"{{{inner}}}"
        if isinstance(self.content, (set, frozenset)):
            inner = ", ".join(str(v) for v in sorted(self.content, key=str))
            return f"{{{inner}}}"
        if isinstance(self.content, (list, tuple)):
            return " ~> ".join(str(v) for v in self.content) or ".K"
        if self.content is None:
            return "."
        return str(self.content)

    def __str__(self) -> str:
        return self.render()


@dataclass
class Configuration:
    """The top-level ``<T>`` cell of a program state."""

    root: Cell = field(default_factory=lambda: Cell("T"))

    def cell(self, label: str) -> Optional[Cell]:
        return self.root.find(label)

    def render(self) -> str:
        return self.root.render()

    def __str__(self) -> str:
        return self.render()


def make_configuration(*, k: list, genv: dict, mem_summary: dict,
                       locs_written: set, not_writable: set,
                       call_stack: list, local_env: dict,
                       local_types: dict, output: str = "") -> Configuration:
    """Build the Figure-1-shaped configuration from interpreter state."""
    config = Configuration()
    root = config.root
    root.add(Cell("k", k))
    root.add(Cell("genv", genv))
    root.add(Cell("gtypes", {name: str(t) for name, t in local_types.items()
                             if name in genv}))
    root.add(Cell("locsWrittenTo", locs_written))
    root.add(Cell("notWritable", not_writable))
    root.add(Cell("mem", mem_summary))
    local = root.add(Cell("local"))
    control = local.add(Cell("control"))
    control.add(Cell("env", local_env))
    control.add(Cell("types", {name: str(t) for name, t in local_types.items()}))
    local.add(Cell("callStack", call_stack))
    root.add(Cell("out", output))
    return config
