"""The evaluation-order search engine: checkpoints, dedup, commutativity.

The seed driver re-executed the whole program from ``main`` for every
explored evaluation order.  This engine is built like an explicit-state
model checker instead:

* **Prefix checkpoints** (``checkpoint="fork"``, the default where the
  platform has ``os.fork``): at each interleaving decision the engine forks
  one paused process per sibling alternative.  A checkpoint is a genuine
  copy-on-write snapshot of the whole abstract machine — memory, environment,
  output, and the strategy cursor — so a sibling order *resumes from the
  decision point* instead of re-running from ``main``.  Sleeping siblings
  are woken (or cancelled) in LIFO order, which makes the exploration a
  deterministic depth-first search with exactly one process running at a
  time.  On platforms without ``fork`` the engine transparently falls back
  to scripted replay (``checkpoint="replay"``): sibling orders re-execute a
  decision prefix from ``main``, exactly like the seed, but still benefit
  from deduplication and pruning.

* **State deduplication**: at every decision point the machine state
  (memory store, locals, control site, output, input cursor) is hashed.  A
  path arriving at a state already seen at the same choice site (and the
  same control progress) merges with the earlier interleaving — its suffix
  has been (or will be) explored once — and is cut immediately.

* **Commutativity filter**: while a group of unsequenced operands
  evaluates, the engine segments the run's execution-event stream (the
  ``read``/``write`` payloads of :mod:`repro.events`) into per-operand
  footprints.  If the footprints are pairwise non-conflicting and the group
  performed no allocation, I/O, or nested interleaving, every sibling order
  provably reaches the same state: the siblings are cancelled and counted
  as covered-by-equivalence.

Every bound lives in a :class:`~repro.kframework.search.SearchBudget`, and
the result reports *why* the search stopped (``stop_reason``) and what
fraction of the discovered alternatives was covered (``coverage``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import time
from typing import Any, Optional

from repro.cfront.headers import BUILTIN_FUNCTIONS
from repro.events import Event, Probe, ProbeSet
from repro.kframework.search import (
    STOP_FIRST_UNDEFINED,
    STOP_MAX_PATHS,
    STOP_MAX_STATES,
    STOP_WALL_CLOCK,
    PathOutcome,
    SearchOptions,
    SearchResult,
    make_frontier,
)
from repro.kframework.strategy import (
    EvaluationStrategy,
    nth_permutation,
    permutation_count,
)


class PathMerged(Exception):
    """Internal: this run's state merged with an explored interleaving.

    ``symbolic`` distinguishes an exact-state merge (the dedup table) from
    an interval absorption (the symbolic merge layer, see
    :class:`_MergeFamily`); they are counted separately in the result.
    """

    def __init__(self, decision_index: int, *, symbolic: bool = False) -> None:
        self.decision_index = decision_index
        self.symbolic = symbolic
        kind = "interval-absorbed" if symbolic else "state merged"
        super().__init__(f"{kind} at decision {decision_index}")


def checkpoint_supported() -> bool:
    """Whether this platform can fork prefix checkpoints."""
    return hasattr(os, "fork")


def reap_stray_children() -> int:
    """Reap any already-exited forked children; returns how many were reaped.

    The engine waits on every checkpoint child it forks, but a task that
    dies between ``fork`` and ``waitpid`` (a crashing oracle, a cancelled
    pool future) can leave zombies behind.  A short-lived worker took those
    zombies down with it; the warm pool's workers are long-lived
    (:mod:`repro.service.pool`), so chunk tasks sweep here between batches.
    Non-blocking: live children are left alone.  Call this only from
    processes whose children you own (pool workers) — in a parent that also
    manages executor workers it would race their own ``waitpid``.
    """
    if not hasattr(os, "waitpid") or not hasattr(os, "WNOHANG"):
        return 0  # pragma: no cover - non-POSIX hosts fork nothing anyway
    reaped = 0
    while True:
        try:
            pid, _status = os.waitpid(-1, os.WNOHANG)
        except (ChildProcessError, OSError):
            return reaped
        if pid == 0:
            return reaped
        reaped += 1


def resolve_checkpoint(options: SearchOptions) -> bool:
    """Validate a checkpoint configuration; True means fork mode.

    Raises ``ValueError`` on conflicts (fork without :func:`os.fork`,
    fork with a non-DFS frontier, unknown mode).  Public so callers that
    dispatch work elsewhere — the CLI's usage errors, the parallel
    driver's pool workers — can fail fast with the same message the
    engine constructor would raise.
    """
    if options.checkpoint == "replay":
        return False
    if options.checkpoint == "fork":
        if not checkpoint_supported():
            raise ValueError(
                "checkpoint='fork' requires os.fork; use 'replay' or 'auto'"
            )
        if options.strategy != "dfs":
            # Checkpoints are resumed LIFO, which is depth-first by
            # construction; honoring a BFS/random frontier requires
            # scripted replay.
            raise ValueError(
                f"checkpoint='fork' explores depth-first and cannot honor "
                f"strategy={options.strategy!r}; use strategy='dfs' or "
                f"checkpoint='replay'"
            )
        return True
    if options.checkpoint != "auto":
        raise ValueError(
            f"unknown checkpoint mode {options.checkpoint!r}; "
            f"expected auto, fork, or replay"
        )
    # Checkpoint exploration is inherently depth-first: sleeping siblings
    # are resumed in LIFO order.
    return checkpoint_supported() and options.strategy == "dfs"


def shard_scripts(scripts: list, shards: int) -> list[list]:
    """Partition sibling scripts into round-robin shards (deterministic).

    Round-robin (``scripts[i::shards]``) rather than contiguous slices:
    sibling scripts adjacent in expansion order tend to share subtree
    shape and cost, so striding balances shard work.  The partition is a
    pure function of ``(scripts, shards)`` — the parallel search driver
    and the campaign work-unit partitioner both rely on that to produce
    identical shards for the same program on every machine.
    """
    shards = max(1, int(shards))
    return [scripts[i::shards] for i in range(shards) if scripts[i::shards]]


# ---------------------------------------------------------------------------
# State fingerprinting
# ---------------------------------------------------------------------------


def _byte_token(byte: Any) -> Any:
    kind = type(byte).__name__
    if kind == "ConcreteByte":
        return byte.value
    if kind == "UnknownByte":
        # Indeterminate bytes are semantically interchangeable; their
        # freshness counter must not keep equal states apart.
        return "u"
    if kind == "PointerByte":
        pointer = byte.pointer
        return (
            "p",
            pointer.base,
            pointer.offset,
            pointer.function,
            str(pointer.type),
            byte.index,
            byte.size,
        )
    if kind == "FloatByte":
        return ("f", byte.value, byte.kind, byte.index, byte.size)
    return repr(byte)


def state_fingerprint(interp: Any) -> bytes:
    """A 128-bit digest of the abstract machine state.

    Covers everything the continuation of a run can observe: the memory
    store (object liveness, bytes, effective types), the const and
    sequencing cells, the environment (frame stack, scopes, bindings), the
    program output, the stdin cursor, and the PRNG state.  The step counter
    is included as a control-progress proxy: the interpreter has no
    explicit program counter, and two runs at the same choice site with the
    same data state can still differ in how much of the program remains
    (``f(); f();``).  Interleavings that do the same work in a different
    order execute the same nodes, so their step counts agree exactly where
    merging is wanted.
    """
    memory = interp.memory
    tokens: list[Any] = [
        interp._steps,
        memory._next_base,
        memory.heap_allocations,
        interp._stdin_pos,
        interp._rand_state,
        interp.stdout,
    ]
    for base, obj in memory.objects.items():
        tokens.append(
            (base, obj.size, obj.kind.value, obj.alive, obj.freed, obj.is_const)
        )
        data = obj.data
        if type(data).__name__ == "SparseBytes":
            # A sparse store is fully determined by its default byte plus the
            # overlay; tokenizing per byte would be O(object size) — for the
            # multi-exabyte objects SparseBytes exists for, that never
            # terminates.  Overlay writes that equal the default are dropped
            # so explicitly-written-default and never-written states merge.
            default_token = _byte_token(data.default)
            tokens.append(
                (
                    "sparse",
                    data.size,
                    default_token,
                    tuple(
                        sorted(
                            (offset, token)
                            for offset, byte in data.overlay.items()
                            if (token := _byte_token(byte)) != default_token
                        )
                    ),
                )
            )
        else:
            tokens.append(tuple(_byte_token(b) for b in data))
        if obj.effective_types:
            tokens.append(
                tuple(
                    sorted(
                        (offset, str(ctype))
                        for offset, ctype in obj.effective_types.items()
                    )
                )
            )
    tokens.append(tuple(sorted(memory.not_writable)))
    tokens.append(tuple(sorted(memory.locs_written)))
    for frame in interp.frames:
        tokens.append((frame.function_name, frame.call_line))
        for scope in frame.scopes:
            tokens.append(
                tuple(sorted((name, b.base) for name, b in scope.bindings.items()))
            )
            tokens.append(tuple(scope.owned_bases))
    tokens.append(
        tuple(
            sorted(
                (key, value.base, value.offset)
                for key, value in interp.pointer_registry.items()
            )
        )
    )
    tokens.append(
        tuple(sorted((key, b.base) for key, b in interp._static_locals.items()))
    )
    return hashlib.blake2b(repr(tokens).encode("utf-8"), digest_size=16).digest()


#: Maximum number of integer memory cells over which two interleaving states
#: may differ and still be absorbed into one symbolic merge family.
SYMBOLIC_MERGE_CELLS = 8


def _coarse_state(interp: Any) -> tuple[bytes, dict]:
    """The state split for symbolic merging: (structural digest, int cells).

    The digest covers everything :func:`state_fingerprint` covers *except*
    the values of concrete bytes in live objects; those are returned
    separately as ``{(base, offset): value}`` so arrivals whose states
    differ only in a few integer cells can be compared cell-wise and
    joined into intervals.  Byte positions themselves stay in the digest
    (as a shape marker), so two states only share a coarse key when the
    same cells hold concrete data.
    """
    memory = interp.memory
    cells: dict[tuple[int, int], int] = {}
    tokens: list[Any] = [
        interp._steps,
        memory._next_base,
        memory.heap_allocations,
        interp._stdin_pos,
        interp._rand_state,
        interp.stdout,
    ]
    for base, obj in memory.objects.items():
        tokens.append(
            (base, obj.size, obj.kind.value, obj.alive, obj.freed, obj.is_const)
        )
        data = obj.data
        if type(data).__name__ == "SparseBytes":
            # Sparse (huge) objects are never absorption targets; their
            # exact token stream keeps them in the structural digest.
            default_token = _byte_token(data.default)
            tokens.append(
                (
                    "sparse",
                    data.size,
                    default_token,
                    tuple(
                        sorted(
                            (offset, token)
                            for offset, byte in data.overlay.items()
                            if (token := _byte_token(byte)) != default_token
                        )
                    ),
                )
            )
        elif not (obj.alive and not obj.freed):
            # A dead object's bytes cannot influence the continuation (any
            # access is flagged from the liveness flags, not the data), but
            # different interleavings leave different stale values behind.
            # Keeping them out of both the digest and the cells stops dead
            # frames from forever splitting otherwise-equal coarse states.
            tokens.append(("dead", len(data)))
        else:
            shape: list[Any] = []
            for offset, byte in enumerate(data):
                if type(byte).__name__ == "ConcreteByte":
                    shape.append("c")
                    cells[(base, offset)] = byte.value
                else:
                    shape.append(_byte_token(byte))
            tokens.append(tuple(shape))
        if obj.effective_types:
            tokens.append(
                tuple(
                    sorted(
                        (offset, str(ctype))
                        for offset, ctype in obj.effective_types.items()
                    )
                )
            )
    tokens.append(tuple(sorted(memory.not_writable)))
    tokens.append(tuple(sorted(memory.locs_written)))
    for frame in interp.frames:
        tokens.append((frame.function_name, frame.call_line))
        for scope in frame.scopes:
            tokens.append(
                tuple(sorted((name, b.base) for name, b in scope.bindings.items()))
            )
            tokens.append(tuple(scope.owned_bases))
    tokens.append(
        tuple(
            sorted(
                (key, value.base, value.offset)
                for key, value in interp.pointer_registry.items()
            )
        )
    )
    tokens.append(
        tuple(sorted((key, b.base) for key, b in interp._static_locals.items()))
    )
    digest = hashlib.blake2b(repr(tokens).encode("utf-8"), digest_size=16).digest()
    return digest, cells


class _MergeFamily:
    """Explored arrivals at one coarse state, joined cell-wise to intervals.

    An arriving path may be *absorbed* (cut, counted ``merged_symbolic``)
    when the family has at least two completed member runs with a uniform
    verdict, members disagree on at most :data:`SYMBOLIC_MERGE_CELLS`
    cells, and the arrival's value at every cell lies inside the family's
    joined interval — i.e. the arrival is covered by the interval
    generalization of suffixes already explored.  Anything that breaks the
    premise (differing cell sets, mixed member verdicts, too many
    differing cells) poisons the family permanently: poisoned families
    never absorb, so the layer degrades to plain exact dedup.
    """

    __slots__ = ("cells", "diff", "completed", "outcomes", "poisoned")

    def __init__(self, cells: dict) -> None:
        self.cells = {cell: (value, value) for cell, value in cells.items()}
        self.diff: set = set()
        self.completed = 0
        self.outcomes: set = set()
        self.poisoned = False

    def can_absorb(self, cells: dict) -> bool:
        if self.poisoned or self.completed < 2 or len(self.outcomes) != 1:
            return False
        if cells.keys() != self.cells.keys():
            return False
        if len(self.diff) > SYMBOLIC_MERGE_CELLS:
            return False
        for cell, value in cells.items():
            lo, hi = self.cells[cell]
            if not lo <= value <= hi:
                return False
        return True

    def join(self, cells: dict) -> None:
        if cells.keys() != self.cells.keys():
            self.poisoned = True
            return
        for cell, value in cells.items():
            lo, hi = self.cells[cell]
            if value < lo or value > hi:
                self.cells[cell] = (min(lo, value), max(hi, value))
                self.diff.add(cell)
        if len(self.diff) > SYMBOLIC_MERGE_CELLS:
            self.poisoned = True

    def complete(self, undefined: bool) -> None:
        self.completed += 1
        self.outcomes.add(undefined)
        if len(self.outcomes) > 1:
            self.poisoned = True


# ---------------------------------------------------------------------------
# The engine-driven strategy and the footprint tracker
# ---------------------------------------------------------------------------


class EngineStrategy(EvaluationStrategy):
    """Consults the search engine at every interleaving decision."""

    name = "engine"

    def __init__(self, engine: "SearchEngine", script: tuple[int, ...]) -> None:
        self.engine = engine
        self.script = script
        self.decisions: list[int] = []
        self.observed_arity: list[int] = []
        self.interp: Any = None

    def reset(self) -> None:
        self.decisions = []
        self.observed_arity = []

    def order(self, count: int, site: object = None):
        alternatives = permutation_count(count)
        index = len(self.observed_arity)
        self.observed_arity.append(alternatives)
        choice = self.engine.on_choice(self, index, alternatives, site)
        self.decisions.append(choice)
        return nth_permutation(count, choice)

    def note_operand(self, site: object, position: int) -> None:
        self.engine.on_operand(site, position)

    def note_group_end(self, site: object) -> None:
        self.engine.on_group_end(site)


class _Group:
    """One open unsequenced group: per-operand footprints plus checkpoints."""

    __slots__ = (
        "site",
        "index",
        "choice",
        "tracked",
        "tainted",
        "current",
        "reads",
        "writes",
        "sleepers",
    )

    def __init__(self, site: object, index: int, choice: int, tracked: bool) -> None:
        self.site = site
        self.index = index
        self.choice = choice
        self.tracked = tracked
        self.tainted = False
        self.current: Optional[int] = None
        self.reads: dict[int, set] = {}
        self.writes: dict[int, set] = {}
        self.sleepers: list[_Sleeper] = []


class _FootprintProbe(Probe):
    """Segments read/write events into per-operand footprints."""

    name = "search-footprints"

    def __init__(self, engine: "SearchEngine") -> None:
        self.engine = engine

    def on_event(self, event: Event) -> None:
        groups = self.engine._groups
        if not groups:
            return
        kind = event.kind
        if kind == "read" or kind == "write":
            base = event.base
            start = event.offset
            # Built lazily: during scripted-replay prefixes every group is
            # untracked, and this runs for every memory event the search
            # executes.
            cells = None
            for group in groups:
                if not group.tracked:
                    continue
                operand = group.current
                if operand is None:
                    group.tainted = True
                    continue
                if cells is None:
                    cells = {(base, start + i) for i in range(event.size)}
                target = group.writes if kind == "write" else group.reads
                bucket = target.get(operand)
                if bucket is None:
                    target[operand] = set(cells)
                else:
                    bucket |= cells
        elif kind in ("alloc", "free", "ub"):
            for group in groups:
                group.tainted = True
        elif kind == "call" and event.function in BUILTIN_FUNCTIONS:
            # Builtin calls can touch state the event stream does not carry
            # (program output, the allocator, the PRNG, stdin).
            for group in groups:
                group.tainted = True


class _Sleeper:
    """A forked sibling order, parked at its decision point.

    ``log_mark`` is the length of the engine's visited-state log at fork
    time: the child inherited everything before it, so a wake only ships
    the log tail discovered since.
    """

    __slots__ = ("pid", "alt", "ctrl_w", "res_r", "log_mark")

    def __init__(
        self, pid: int, alt: int, ctrl_w: int, res_r: int, log_mark: int
    ) -> None:
        self.pid = pid
        self.alt = alt
        self.ctrl_w = ctrl_w
        self.res_r = res_r
        self.log_mark = log_mark


_GO = b"G"
_CANCEL = b"X"

#: Checkpoints forked per decision; alternatives beyond the cap fall back to
#: scripted replay through the frontier (a correctness-neutral overflow).
FORK_CAP = 16


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, size: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < size:
        chunk = os.read(fd, size - len(chunks))
        if not chunk:
            raise EOFError("search checkpoint pipe closed early")
        chunks += chunk
    return bytes(chunks)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class SearchEngine:
    """Explores evaluation orders of one compiled program.

    ``host`` supplies the execution machinery: ``new_interpreter(strategy)``
    builds a fresh interpreter for one run, and ``run(interp)`` executes it
    and classifies the result as a :class:`PathOutcome` (see
    ``repro.core.kcc._SearchHost``).  Everything else — frontier, budget,
    dedup table, checkpoints — lives here.
    """

    def __init__(
        self,
        host: Any,
        options: SearchOptions,
        *,
        initial_scripts: Optional[list[tuple[int, ...]]] = None,
    ) -> None:
        self.host = host
        self.options = options
        self.budget = options.budget
        self.result = SearchResult()
        self.frontier = make_frontier(options.strategy, options.seed)
        self._initial = [tuple(s) for s in (initial_scripts or [()])]
        self.use_fork = resolve_checkpoint(options)
        self.visited: set = set()
        self._visited_log: list = []
        # Symbolic merge families (replay mode only; see _MergeFamily).
        self._families: dict = {}
        self._sym_arrivals: list = []
        self._paths_count = 0
        self._stop = False
        self._stop_reason: Optional[str] = None
        self._deadline: Optional[float] = None
        self._probe = _FootprintProbe(self) if options.prune_commuting else None
        self._child_mode = False
        self._res_w: Optional[int] = None
        # Per-run state.
        self._groups: list[_Group] = []
        self._closed_groups: list[_Group] = []
        self._prune: dict[int, bool] = {}
        self._overflow: list[tuple[int, int]] = []
        self._cut_index: Optional[int] = None
        self._resumed_run = False

    # -- driver loop --------------------------------------------------------

    def run(self) -> SearchResult:
        if self.budget.max_seconds is not None:
            self._deadline = time.monotonic() + self.budget.max_seconds
        for script in self._initial:
            self.frontier.push(script)
        while True:
            if self._stop:
                break
            if self._deadline is not None and time.monotonic() > self._deadline:
                self._request_stop(STOP_WALL_CLOCK)
                break
            script = self.frontier.pop()
            if script is None:
                break
            if self._paths_budget_spent():
                self.result.skipped_alternatives += 1
                self._request_stop(STOP_MAX_PATHS)
                break
            try:
                self._execute_script(script)
            except BaseException as exc:
                if self._child_mode:
                    self._ship_failure(exc)
                raise
            if self._child_mode:
                self._ship_bundle()
        self._finalize()
        return self.result

    def _paths_budget_spent(self) -> bool:
        limit = self.budget.max_paths
        return limit is not None and self._paths_count >= max(1, limit)

    def _request_stop(self, reason: str) -> None:
        self._stop = True
        if self._stop_reason is None:
            self._stop_reason = reason

    def _finalize(self) -> None:
        self.result.states_seen = len(self.visited)
        if not self._stop:
            return
        self.result.skipped_alternatives += len(self.frontier)
        reason = self._stop_reason or STOP_FIRST_UNDEFINED
        if reason == STOP_FIRST_UNDEFINED and self.result.skipped_alternatives == 0:
            # The short-circuit landed on the very last pending order: the
            # search was, in fact, exhaustive.
            return
        self.result.stop_reason = reason

    # -- one execution ------------------------------------------------------

    def _execute_script(self, script: tuple[int, ...]) -> None:
        strategy = EngineStrategy(self, script)
        interp = self.host.new_interpreter(strategy)
        strategy.interp = interp
        if self._probe is not None:
            interp.attach_probes(ProbeSet([self._probe]))
        self._groups = []
        self._closed_groups = []
        self._prune = {}
        self._overflow = []
        self._cut_index = None
        self._resumed_run = False
        self._sym_arrivals = []
        merged = False
        outcome: Optional[PathOutcome] = None
        crashed = True
        try:
            try:
                outcome = self.host.run(interp)
            except PathMerged as cut:
                merged = True
                self._cut_index = cut.decision_index
                if cut.symbolic:
                    self.result.merged_symbolic += 1
                else:
                    self.result.merged_paths += 1
                if not self._resumed_run:
                    self.result.partial_replays += 1
            if not merged and outcome is not None:
                outcome.script = tuple(strategy.decisions)
                outcome.resumed = self._resumed_run
                self._record_path(outcome)
                for family in self._sym_arrivals:
                    family.complete(outcome.undefined)
            crashed = False
        finally:
            # This run's path is recorded (or merged); now explore the
            # checkpoints it parked, deepest decision first — classic DFS.
            self._resolve_run_sleepers(cancel_all=crashed)
        self._enqueue_expansions(strategy, script)

    def _record_path(self, outcome: PathOutcome) -> None:
        if self._paths_budget_spent():
            self.result.skipped_alternatives += 1
            self._request_stop(STOP_MAX_PATHS)
            return
        self.result.paths.append(outcome)
        self._paths_count += 1
        if outcome.resumed:
            self.result.resumed_executions += 1
        else:
            self.result.full_executions += 1
        if outcome.undefined and self.options.stop_at_first:
            self._request_stop(STOP_FIRST_UNDEFINED)

    def _enqueue_expansions(
        self, strategy: EngineStrategy, script: tuple[int, ...]
    ) -> None:
        arity = strategy.observed_arity
        end = self._cut_index if self._cut_index is not None else len(arity)
        decisions = strategy.decisions
        if self.use_fork:
            # Siblings were explored through checkpoints; only overflow
            # alternatives (fork cap, fork failure) go through the frontier.
            # They still honor the commutativity verdict — a group proven
            # commuting prunes its overflow siblings exactly like its
            # cancelled sleepers, instead of re-running them from main.
            for index, choice in self._overflow:
                if index >= end:
                    continue
                if self._prune.get(index):
                    self.result.pruned_orders += 1
                    continue
                self.frontier.push(tuple(decisions[:index]) + (choice,))
            return
        for index in range(len(script), end):
            count = arity[index]
            if count <= 1:
                continue
            if self._prune.get(index):
                self.result.pruned_orders += count - 1
                continue
            prefix = tuple(decisions[:index])
            for choice in range(1, count):
                self.frontier.push(prefix + (choice,))

    # -- decision-point callbacks -------------------------------------------

    def on_choice(
        self, strategy: EngineStrategy, index: int, alternatives: int, site: object
    ) -> int:
        script = strategy.script
        if index < len(script):
            # Forced prefix of a scripted replay: these decisions' siblings
            # belong to the run that discovered them.
            choice = min(script[index], alternatives - 1)
            self._push_group(site, index, choice, tracked=False)
            return choice
        if self._deadline is not None and time.monotonic() > self._deadline:
            self._request_stop(STOP_WALL_CLOCK)
        if self.options.dedup_states and strategy.interp is not None:
            # The key carries the open-group progress (which sibling order
            # each enclosing group chose and which operand is running): two
            # arrivals at the same site and state still differ when one has
            # more of an enclosing group left to evaluate.
            progress = tuple((id(g.site), g.choice, g.current) for g in self._groups)
            key = (id(site), progress, state_fingerprint(strategy.interp))
            if key in self.visited:
                raise PathMerged(index)
            if (
                self.budget.max_states is not None
                and len(self.visited) >= self.budget.max_states
            ):
                self._request_stop(STOP_MAX_STATES)
            else:
                self.visited.add(key)
                if self.use_fork:
                    # The log exists to ship dedup-table deltas between
                    # forked checkpoints; replay mode never reads it.
                    self._visited_log.append(key)
            if self.options.merge_symbolic and not self.use_fork:
                # Exact dedup missed; try the interval absorption layer.
                # Fork mode is excluded: a cut would have to cancel a live
                # process tree whose siblings assume their parent ran.
                self._symbolic_arrival(site, progress, index, strategy.interp)
        if self._stop:
            if self.use_fork:
                # No checkpoints are forked past a stop, so these siblings
                # are lost here; in replay mode they still reach the
                # frontier through the run's expansions and are counted
                # once when the drained frontier is tallied.
                self.result.skipped_alternatives += alternatives - 1
            self._push_group(site, index, 0, tracked=False)
            return 0
        resumed: Optional[int] = None
        sleepers: list[_Sleeper] = []
        if self.use_fork:
            resumed, sleepers = self._fork_siblings(index, alternatives)
        choice = resumed if resumed is not None else 0
        group = self._push_group(site, index, choice, tracked=True)
        group.sleepers = sleepers
        return choice

    def _symbolic_arrival(
        self, site: object, progress: tuple, index: int, interp: Any
    ) -> None:
        digest, cells = _coarse_state(interp)
        key = (id(site), progress, digest)
        family = self._families.get(key)
        if family is None:
            self._families[key] = family = _MergeFamily(cells)
            self._sym_arrivals.append(family)
            return
        if family.can_absorb(cells):
            raise PathMerged(index, symbolic=True)
        family.join(cells)
        self._sym_arrivals.append(family)

    def _push_group(
        self, site: object, index: int, choice: int, *, tracked: bool
    ) -> _Group:
        for open_group in self._groups:
            # A nested interleaving point: the enclosing groups' orders no
            # longer provably commute.
            open_group.tainted = True
        group = _Group(site, index, choice, tracked)
        self._groups.append(group)
        return group

    def on_operand(self, site: object, position: int) -> None:
        groups = self._groups
        if groups and groups[-1].site is site:
            groups[-1].current = position

    def on_group_end(self, site: object) -> None:
        groups = self._groups
        if not groups or groups[-1].site is not site:
            return
        group = groups.pop()
        if not group.tracked:
            return
        # The prune verdict is known here, but parked siblings are resumed
        # only after the current path finishes (depth-first, parent first).
        self._prune[group.index] = self._group_prunable(group)
        if group.sleepers:
            self._closed_groups.append(group)

    def _group_prunable(self, group: _Group) -> bool:
        if self._probe is None or group.tainted:
            return False
        operands = sorted(set(group.reads) | set(group.writes))
        empty: frozenset = frozenset()
        for position, left in enumerate(operands):
            left_writes = group.writes.get(left, empty)
            left_reads = group.reads.get(left, empty)
            for right in operands[position + 1 :]:
                right_writes = group.writes.get(right, empty)
                right_reads = group.reads.get(right, empty)
                if left_writes & (right_writes | right_reads):
                    return False
                if right_writes & left_reads:
                    return False
        return True

    # -- checkpoint (fork) machinery ----------------------------------------

    def _fork_siblings(
        self, index: int, alternatives: int
    ) -> tuple[Optional[int], list[_Sleeper]]:
        sleepers: list[_Sleeper] = []
        for alt in range(1, alternatives):
            if len(sleepers) >= FORK_CAP:
                self._overflow.append((index, alt))
                continue
            opened: list[int] = []
            try:
                ctrl_r, ctrl_w = os.pipe()
                opened += [ctrl_r, ctrl_w]
                res_r, res_w = os.pipe()
                opened += [res_r, res_w]
                pid = os.fork()
            except OSError:
                # A host at its fd/process limit (EMFILE, EAGAIN): fall
                # back to scripted replay for this alternative, but close
                # whatever pipe ends were already created — leaking them
                # here would only march the process toward EMFILE faster.
                for fd in opened:
                    os.close(fd)
                self._overflow.append((index, alt))
                continue
            if pid == 0:
                os.close(ctrl_w)
                os.close(res_r)
                woken = self._become_sleeper(ctrl_r, res_w, sleepers)
                if not woken:  # pragma: no cover - cancelled in _become_sleeper
                    os._exit(0)
                return alt, []
            os.close(ctrl_r)
            os.close(res_w)
            sleepers.append(_Sleeper(pid, alt, ctrl_w, res_r, len(self._visited_log)))
        return None, sleepers

    def _become_sleeper(
        self, ctrl_r: int, res_w: int, pending_local: list[_Sleeper]
    ) -> bool:
        # The inherited checkpoint fds belong to the parent's pending
        # siblings; holding copies open would keep their result pipes from
        # ever reaching EOF.
        for group in self._groups + self._closed_groups:
            for sleeper in group.sleepers:
                os.close(sleeper.ctrl_w)
                os.close(sleeper.res_r)
            group.sleepers = []
        for sleeper in pending_local:
            os.close(sleeper.ctrl_w)
            os.close(sleeper.res_r)
        try:
            header = _read_exact(ctrl_r, 1)
            if header != _GO:
                os._exit(0)
            # A truncated wake message (the parent was interrupted between
            # its writes, or died) must also end this process: letting the
            # EOFError unwind would release a forked copy of the whole
            # program into the caller's code.
            size = struct.unpack("!Q", _read_exact(ctrl_r, 8))[0]
            message = pickle.loads(_read_exact(ctrl_r, size))
        except EOFError:
            os._exit(0)
        os.close(ctrl_r)
        self._child_mode = True
        self._resumed_run = True
        self._res_w = res_w
        # The fork inherited the parent's dedup table as of fork time; the
        # wake message carries only the states discovered since.
        self.visited.update(message["visited_new"])
        self._visited_log = []
        self._paths_count = message["paths_count"]
        self._stop = message["stop"]
        self._stop_reason = message["stop_reason"]
        # From here on this process accumulates *deltas*: its result and
        # frontier ship back to the parent when its subtree is done.
        self.result = SearchResult()
        self.frontier = make_frontier("dfs")
        self._overflow = []
        return True

    def _resolve_sleepers(self, sleepers: list[_Sleeper], *, pruned: bool) -> None:
        for position, sleeper in enumerate(sleepers):
            if pruned:
                self._cancel_sleeper(sleeper)
                self.result.pruned_orders += 1
            elif self._stop or self._paths_budget_spent():
                if self._paths_budget_spent():
                    self._request_stop(STOP_MAX_PATHS)
                self._cancel_sleeper(sleeper)
                self.result.skipped_alternatives += 1
            elif self._deadline is not None and time.monotonic() > self._deadline:
                self._request_stop(STOP_WALL_CLOCK)
                self._cancel_sleeper(sleeper)
                self.result.skipped_alternatives += 1
            else:
                try:
                    self._wake_sleeper(sleeper)
                except BaseException:
                    # A dead or failing child must not leak its parked
                    # siblings (blocked processes + open fds) on the way up.
                    for leftover in sleepers[position + 1 :]:
                        self._cancel_sleeper(leftover)
                    raise

    def _resolve_run_sleepers(self, *, cancel_all: bool) -> None:
        # Checkpoints parked during this run: groups that closed normally
        # (with a prune verdict) plus groups the run unwound past (an
        # undefined operation inside the group, exit(), a merge cut — no
        # verdict, so never pruned).  Resolve deepest decision first.
        pending = self._closed_groups + self._groups
        self._closed_groups = []
        self._groups = []
        pending.sort(key=lambda group: group.index)
        ordered = list(reversed(pending))
        for position, group in enumerate(ordered):
            if not group.sleepers:
                continue
            if cancel_all:
                for sleeper in group.sleepers:
                    self._cancel_sleeper(sleeper)
                    self.result.skipped_alternatives += 1
            else:
                pruned = bool(self._prune.get(group.index))
                try:
                    self._resolve_sleepers(group.sleepers, pruned=pruned)
                except BaseException:
                    for leftover_group in ordered[position + 1 :]:
                        for sleeper in leftover_group.sleepers:
                            self._cancel_sleeper(sleeper)
                        leftover_group.sleepers = []
                    raise
            group.sleepers = []

    def _wake_sleeper(self, sleeper: _Sleeper) -> None:
        mark = sleeper.log_mark
        message = pickle.dumps(
            {
                "visited_new": self._visited_log[mark:],
                "paths_count": self._paths_count,
                "stop": self._stop,
                "stop_reason": self._stop_reason,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        try:
            _write_all(sleeper.ctrl_w, _GO + struct.pack("!Q", len(message)))
            _write_all(sleeper.ctrl_w, message)
        except BaseException:
            # The parked child died while sleeping (killed externally):
            # reap it and close both pipe ends so the failure does not
            # leak an fd and a zombie on its way up.
            os.close(sleeper.ctrl_w)
            os.close(sleeper.res_r)
            os.waitpid(sleeper.pid, 0)
            raise
        os.close(sleeper.ctrl_w)
        chunks = bytearray()
        while True:
            chunk = os.read(sleeper.res_r, 65536)
            if not chunk:
                break
            chunks += chunk
        os.close(sleeper.res_r)
        os.waitpid(sleeper.pid, 0)
        if not chunks:
            raise RuntimeError("evaluation-order checkpoint died without a result")
        bundle = pickle.loads(bytes(chunks))
        error = bundle.get("error")
        if error is not None:
            if isinstance(error, BaseException):
                raise error
            raise RuntimeError(f"evaluation-order checkpoint failed: {error}")
        self._merge_bundle(bundle)

    def _merge_bundle(self, bundle: dict) -> None:
        child: SearchResult = bundle["result"]
        self.result.absorb(child)
        self._paths_count += len(child.paths)
        for key in bundle["visited_new"]:
            if key not in self.visited:
                self.visited.add(key)
                self._visited_log.append(key)
        for script in bundle["scripts"]:
            self.frontier.push(script)
        if bundle["stop"]:
            self._request_stop(bundle["stop_reason"] or STOP_FIRST_UNDEFINED)
        elif any(p.undefined for p in child.paths) and self.options.stop_at_first:
            self._request_stop(STOP_FIRST_UNDEFINED)

    def _cancel_sleeper(self, sleeper: _Sleeper) -> None:
        try:
            os.write(sleeper.ctrl_w, _CANCEL)
        except OSError:  # pragma: no cover - the child died first
            pass
        os.close(sleeper.ctrl_w)
        os.close(sleeper.res_r)
        os.waitpid(sleeper.pid, 0)

    def _drain_frontier(self) -> list[tuple[int, ...]]:
        scripts = []
        while True:
            script = self.frontier.pop()
            if script is None:
                return scripts
            scripts.append(script)

    def _ship_bundle(self) -> None:
        bundle = {
            "result": self.result,
            "visited_new": self._visited_log,
            "scripts": self._drain_frontier(),
            "stop": self._stop,
            "stop_reason": self._stop_reason,
        }
        self._ship(bundle)
        os._exit(0)

    def _ship_failure(self, exc: BaseException) -> None:
        try:
            payload: Any = exc
            pickle.dumps(payload)
        except Exception:
            payload = repr(exc)
        try:
            self._ship({"error": payload})
        finally:
            os._exit(1)

    def _ship(self, bundle: dict) -> None:
        assert self._res_w is not None
        try:
            _write_all(self._res_w, pickle.dumps(bundle, pickle.HIGHEST_PROTOCOL))
        finally:
            os.close(self._res_w)
