"""Bounded search over evaluation orders: budgets, frontiers, results.

Section 2.5.2 of the paper observes that a tool seeking to identify all
undefined behaviors "must search all possible evaluation strategies", because
an implementation may pick any order for unsequenced subexpressions (the
``setDenom`` example is defined under left-to-right evaluation but divides by
zero under right-to-left).

This module holds the *vocabulary* of that search: the budget that bounds it
(:class:`SearchBudget`), the knobs that configure it (:class:`SearchOptions`),
the frontier disciplines that order it (:class:`DepthFirstFrontier`,
:class:`BreadthFirstFrontier`, :class:`RandomFrontier`), and the result type
that reports — honestly — how it ended (:class:`SearchResult`, whose
``stop_reason`` says *why* exploration stopped and whose ``coverage`` says
what fraction of the discovered interleaving space was covered).

The engine that executes the search lives in
:mod:`repro.kframework.engine`; the callback-style driver of the seed,
:func:`search_evaluation_orders`, is kept for callers that enumerate orders
of an arbitrary run function without an interpreter attached.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.kframework.strategy import ScriptedStrategy
from repro.seeding import derive_rng

#: ``SearchResult.stop_reason`` values.  ``exhausted`` is the only one that
#: means every discovered alternative was explored (or proven equivalent to
#: an explored one); everything else names the resource or short-circuit
#: that ended the search early.
STOP_EXHAUSTED = "exhausted"
STOP_FIRST_UNDEFINED = "first-undefined"
STOP_MAX_PATHS = "max-paths"
STOP_MAX_STATES = "max-states"
STOP_WALL_CLOCK = "wall-clock"


@dataclass(frozen=True)
class SearchBudget:
    """Explicit bounds on an evaluation-order search.

    ``max_paths`` bounds recorded path outcomes, ``max_states`` bounds the
    deduplication table (distinct machine states seen at choice points), and
    ``max_seconds`` bounds wall-clock time.  ``None`` means unbounded.  The
    engine reports which bound fired through ``SearchResult.stop_reason``
    instead of silently truncating.
    """

    max_paths: Optional[int] = 64
    max_states: Optional[int] = None
    max_seconds: Optional[float] = None

    @classmethod
    def parse(cls, text: str) -> "SearchBudget":
        """Parse a ``paths=256,states=10000,seconds=5`` CLI budget spec."""
        values: dict[str, Optional[float]] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad budget component {part!r}; expected key=value with "
                    f"keys paths, states, seconds"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key not in ("paths", "states", "seconds"):
                raise ValueError(f"unknown budget key {key!r}")
            if raw in ("none", "inf"):
                values[key] = None
                continue
            try:
                value = float(raw) if key == "seconds" else int(raw)
            except ValueError:
                expected = "a number" if key == "seconds" else "an integer"
                raise ValueError(
                    f"bad budget value {key}={raw!r}; expected {expected} or none"
                ) from None
            values[key] = value
        paths = values.get("paths", 64)
        states = values.get("states")
        seconds = values.get("seconds")
        return cls(
            max_paths=None if paths is None else int(paths),
            max_states=None if states is None else int(states),
            max_seconds=seconds,
        )


@dataclass(frozen=True)
class SearchOptions:
    """Configuration of one evaluation-order search.

    ``strategy`` picks the frontier discipline (``dfs``, ``bfs``, or
    ``random`` with ``seed``).  ``checkpoint`` picks the execution mechanism:
    ``fork`` resumes sibling orders from a process checkpoint taken at the
    decision point (POSIX only), ``replay`` re-executes scripted prefixes
    from ``main``, and ``auto`` (the default) forks where the platform
    allows it and the frontier is depth-first.  ``dedup_states`` merges
    interleavings that reach an identical machine state at the same choice
    site; ``prune_commuting`` skips sibling orders whose operand read/write
    footprints are disjoint (observed through the execution-event stream).
    ``merge_symbolic`` goes one step further where exact dedup saturates:
    an arrival whose state matches an explored interleaving family
    everywhere except a few integer memory cells — with its values at
    those cells inside the family's joined intervals — is absorbed
    (replay mode only; counted as ``merged_symbolic`` and pinned
    verdict-identical against no-merge by the test suite).
    """

    strategy: str = "dfs"
    budget: SearchBudget = field(default_factory=SearchBudget)
    seed: int = 0
    jobs: int = 1
    dedup_states: bool = True
    prune_commuting: bool = True
    checkpoint: str = "auto"
    stop_at_first: bool = True
    merge_symbolic: bool = False


@dataclass
class PathOutcome:
    """The result of one explored evaluation order."""

    script: tuple[int, ...]
    undefined: bool
    description: str = ""
    payload: object = None
    resumed: bool = False


@dataclass
class SearchResult:
    """Aggregate result of the evaluation-order search.

    ``stop_reason`` says why exploration ended (see the ``STOP_*``
    constants); ``exhausted`` is derived from it.  The execution counters
    separate *full* executions (a run from ``main`` to termination) from
    *partial replays* (runs cut early because their state merged with an
    already-explored interleaving) and *resumed* executions (sibling orders
    continued from a checkpoint instead of re-running from ``main``).
    """

    paths: list[PathOutcome] = field(default_factory=list)
    stop_reason: str = STOP_EXHAUSTED
    full_executions: int = 0
    partial_replays: int = 0
    resumed_executions: int = 0
    merged_paths: int = 0
    merged_symbolic: int = 0
    pruned_orders: int = 0
    skipped_alternatives: int = 0
    states_seen: int = 0

    @property
    def exhausted(self) -> bool:
        return self.stop_reason == STOP_EXHAUSTED

    @property
    def explored(self) -> int:
        return len(self.paths)

    @property
    def runs_from_main(self) -> int:
        """How many times the program was (re)started from ``main``."""
        return self.full_executions + self.partial_replays

    @property
    def undefined_paths(self) -> list[PathOutcome]:
        return [p for p in self.paths if p.undefined]

    @property
    def any_undefined(self) -> bool:
        return any(p.undefined for p in self.paths)

    @property
    def first_undefined(self) -> Optional[PathOutcome]:
        for path in self.paths:
            if path.undefined:
                return path
        return None

    def absorb(self, child: "SearchResult") -> None:
        """Fold another result's paths and execution counters into this one.

        Shared by the checkpoint machinery (forked children ship result
        deltas back to the parent) and the parallel driver (shards return
        whole results).  ``stop_reason`` and ``states_seen`` are *not*
        merged here — each caller has its own semantics for them.
        """
        self.paths.extend(child.paths)
        self.full_executions += child.full_executions
        self.partial_replays += child.partial_replays
        self.resumed_executions += child.resumed_executions
        self.merged_paths += child.merged_paths
        self.merged_symbolic += child.merged_symbolic
        self.pruned_orders += child.pruned_orders
        self.skipped_alternatives += child.skipped_alternatives

    def coverage(self) -> float:
        """Covered fraction of the *discovered* interleaving alternatives.

        Explored paths, merged interleavings, and orders proven equivalent
        by the commutativity filter all count as covered; alternatives that
        were skipped (budget, short-circuit) count against coverage.  Each
        skipped alternative counts once even though it roots a subtree, so
        this is an upper bound under early stops — but it is exactly 1.0
        only when nothing was skipped.
        """
        covered = (
            len(self.paths)
            + self.merged_paths
            + self.merged_symbolic
            + self.pruned_orders
        )
        known = covered + self.skipped_alternatives
        if known <= 0:
            return 1.0
        return covered / known

    def to_dict(self) -> dict:
        return {
            "explored": self.explored,
            "exhausted": self.exhausted,
            "stop_reason": self.stop_reason,
            "undefined_paths": len(self.undefined_paths),
            "full_executions": self.full_executions,
            "partial_replays": self.partial_replays,
            "resumed_executions": self.resumed_executions,
            "merged_paths": self.merged_paths,
            "merged_symbolic": self.merged_symbolic,
            "pruned_orders": self.pruned_orders,
            "skipped_alternatives": self.skipped_alternatives,
            "states_seen": self.states_seen,
            "coverage": self.coverage(),
        }


# ---------------------------------------------------------------------------
# Frontiers
# ---------------------------------------------------------------------------


class Frontier:
    """Holds the scripts (decision prefixes) still to be explored."""

    name = "abstract"

    def __init__(self) -> None:
        self._seen: set[tuple[int, ...]] = set()

    def push(self, script: tuple[int, ...]) -> bool:
        if script in self._seen:
            return False
        self._seen.add(script)
        self._push(script)
        return True

    def _push(self, script: tuple[int, ...]) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[tuple[int, ...]]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class DepthFirstFrontier(Frontier):
    """LIFO exploration: dives into one interleaving's variations first."""

    name = "dfs"

    def __init__(self) -> None:
        super().__init__()
        self._stack: list[tuple[int, ...]] = []

    def _push(self, script: tuple[int, ...]) -> None:
        self._stack.append(script)

    def pop(self) -> Optional[tuple[int, ...]]:
        return self._stack.pop() if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)


class BreadthFirstFrontier(Frontier):
    """FIFO exploration: covers shallow divergences before deep ones."""

    name = "bfs"

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[tuple[int, ...]] = deque()

    def _push(self, script: tuple[int, ...]) -> None:
        self._queue.append(script)

    def pop(self) -> Optional[tuple[int, ...]]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class RandomFrontier(Frontier):
    """Seeded random sampling of pending scripts (reproducible)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        # Derived through the shared helper (repro.seeding) so `search --seed`
        # and `fuzz --seed` expand one master seed the same documented way.
        self._rng = derive_rng(seed, "search", "frontier")
        self._items: list[tuple[int, ...]] = []

    def _push(self, script: tuple[int, ...]) -> None:
        self._items.append(script)

    def pop(self) -> Optional[tuple[int, ...]]:
        if not self._items:
            return None
        index = self._rng.randrange(len(self._items))
        self._items[index], self._items[-1] = self._items[-1], self._items[index]
        return self._items.pop()

    def __len__(self) -> int:
        return len(self._items)


FRONTIERS = ("dfs", "bfs", "random")


def make_frontier(name: str, seed: int = 0) -> Frontier:
    if name == "dfs":
        return DepthFirstFrontier()
    if name == "bfs":
        return BreadthFirstFrontier()
    if name == "random":
        return RandomFrontier(seed)
    raise ValueError(f"unknown search strategy {name!r}; expected one of {FRONTIERS}")


# ---------------------------------------------------------------------------
# The callback-style driver (the seed's API, with honest exhaustion)
# ---------------------------------------------------------------------------

RunCallback = Callable[[ScriptedStrategy], PathOutcome]


def expand_scripts(script: tuple[int, ...], arity: list[int]) -> list[tuple[int, ...]]:
    """Sibling scripts diverging from ``script``'s default continuation."""
    out = []
    for index in range(len(script), len(arity)):
        pad = (0,) * (index - len(script))
        for choice in range(1, arity[index]):
            out.append(script + pad + (choice,))
    return out


def search_evaluation_orders(
    run: RunCallback, *, max_paths: int = 64, stop_at_first: bool = False
) -> SearchResult:
    """Explore evaluation orders depth-first through a run callback.

    ``run`` executes the program with the given scripted strategy and
    returns a :class:`PathOutcome` (the strategy's ``observed_arity`` after
    the run tells the driver how many alternatives each decision point had).

    Unlike the seed driver, the result reports honest exhaustion semantics:
    ``stop_reason`` is ``max-paths`` only when genuinely unexplored
    alternatives were dropped, and a ``stop_at_first`` short-circuit that
    happens to land on the last pending order still reports ``exhausted``.
    """
    result = SearchResult()
    frontier = DepthFirstFrontier()
    frontier.push(())
    while True:
        script = frontier.pop()
        if script is None:
            break
        if max_paths is not None and len(result.paths) >= max_paths:
            # The cap is enforced against *pending* work: this script (and
            # whatever is still queued) is genuinely unexplored.
            result.stop_reason = STOP_MAX_PATHS
            result.skipped_alternatives += 1 + len(frontier)
            break
        strategy = ScriptedStrategy(decisions=list(script))
        strategy.reset()
        outcome = run(strategy)
        outcome.script = script
        result.paths.append(outcome)
        result.full_executions += 1
        for sibling in expand_scripts(script, strategy.observed_arity):
            frontier.push(sibling)
        if outcome.undefined and stop_at_first:
            # Honest short-circuit: only a stop that leaves work behind is
            # a non-exhausted stop.
            if len(frontier):
                result.stop_reason = STOP_FIRST_UNDEFINED
                result.skipped_alternatives += len(frontier)
            break
    return result
