"""Bounded exhaustive search over evaluation orders.

Section 2.5.2 of the paper observes that a tool seeking to identify all
undefined behaviors "must search all possible evaluation strategies", because
an implementation may pick any order for unsequenced subexpressions (the
``setDenom`` example is defined under left-to-right evaluation but divides by
zero under right-to-left).  This module implements that search as a DFS over
the decision points recorded by :class:`ScriptedStrategy`.

The driver is generic: it takes a callable that runs the program under a given
strategy and reports whether the run was undefined, so it can drive the kcc
interpreter (its normal use) or any other execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.kframework.strategy import ScriptedStrategy


@dataclass
class PathOutcome:
    """The result of one explored evaluation order."""

    script: tuple[int, ...]
    undefined: bool
    description: str = ""
    payload: object = None


@dataclass
class SearchResult:
    """Aggregate result of the evaluation-order search."""

    paths: list[PathOutcome] = field(default_factory=list)
    exhausted: bool = True

    @property
    def explored(self) -> int:
        return len(self.paths)

    @property
    def undefined_paths(self) -> list[PathOutcome]:
        return [p for p in self.paths if p.undefined]

    @property
    def any_undefined(self) -> bool:
        return any(p.undefined for p in self.paths)

    @property
    def first_undefined(self) -> Optional[PathOutcome]:
        for path in self.paths:
            if path.undefined:
                return path
        return None


RunCallback = Callable[[ScriptedStrategy], PathOutcome]


def search_evaluation_orders(run: RunCallback, *, max_paths: int = 64,
                             stop_at_first: bool = False) -> SearchResult:
    """Explore evaluation orders depth-first.

    ``run`` executes the program with the given scripted strategy and returns
    a :class:`PathOutcome` (the strategy's ``observed_arity`` after the run
    tells the driver how many alternatives each decision point had).
    """
    result = SearchResult()
    pending: list[list[int]] = [[]]
    seen: set[tuple[int, ...]] = set()
    while pending:
        if len(result.paths) >= max_paths:
            result.exhausted = False
            break
        script = pending.pop()
        key = tuple(script)
        if key in seen:
            continue
        seen.add(key)
        strategy = ScriptedStrategy(decisions=list(script))
        strategy.reset()
        outcome = run(strategy)
        outcome.script = key
        result.paths.append(outcome)
        if outcome.undefined and stop_at_first:
            result.exhausted = False
            break
        arity = strategy.observed_arity
        for index in range(len(script), len(arity)):
            for choice in range(1, arity[index]):
                new_script = list(script) + [0] * (index - len(script)) + [choice]
                pending.append(new_script)
    return result
