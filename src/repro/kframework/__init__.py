"""A small K-style substrate: configurations, evaluation strategies, search.

The paper's semantics is written in the K framework, where program state is a
nested multiset of labeled cells (Figure 1) and evaluation is rewriting.  We
do not reimplement rewriting-logic matching; instead this package provides the
pieces of K that the paper's *techniques* rely on:

* :mod:`repro.kframework.cells` — the labeled-cell configuration view of the
  interpreter state (``k``, ``env``, ``mem``, ``locsWrittenTo``,
  ``notWritable``, ``callStack``, ...),
* :mod:`repro.kframework.strategy` — evaluation-order strategies standing in
  for the nondeterministic choice of rewrite redexes in unsequenced
  subexpressions,
* :mod:`repro.kframework.search` — the vocabulary of the bounded search over
  those choices (budgets, frontiers, results), the analogue of K's search
  mode that the paper says is required to find undefinedness reachable only
  under some evaluation orders (§2.5.2),
* :mod:`repro.kframework.engine` — the search engine itself: prefix
  checkpoints (sibling orders resume from the decision point), state
  deduplication, and a commutativity filter over execution-event footprints.
"""

from repro.kframework.cells import Cell, Configuration
from repro.kframework.engine import SearchEngine, checkpoint_supported
from repro.kframework.search import (
    BreadthFirstFrontier,
    DepthFirstFrontier,
    PathOutcome,
    RandomFrontier,
    SearchBudget,
    SearchOptions,
    SearchResult,
    search_evaluation_orders,
)
from repro.kframework.strategy import (
    EvaluationStrategy,
    LeftToRightStrategy,
    RightToLeftStrategy,
    ScriptedStrategy,
)

__all__ = [
    "BreadthFirstFrontier",
    "Cell",
    "Configuration",
    "DepthFirstFrontier",
    "EvaluationStrategy",
    "LeftToRightStrategy",
    "PathOutcome",
    "RandomFrontier",
    "RightToLeftStrategy",
    "ScriptedStrategy",
    "SearchBudget",
    "SearchEngine",
    "SearchOptions",
    "SearchResult",
    "checkpoint_supported",
    "search_evaluation_orders",
]
