"""A small K-style substrate: configurations, evaluation strategies, search.

The paper's semantics is written in the K framework, where program state is a
nested multiset of labeled cells (Figure 1) and evaluation is rewriting.  We
do not reimplement rewriting-logic matching; instead this package provides the
pieces of K that the paper's *techniques* rely on:

* :mod:`repro.kframework.cells` — the labeled-cell configuration view of the
  interpreter state (``k``, ``env``, ``mem``, ``locsWrittenTo``,
  ``notWritable``, ``callStack``, ...),
* :mod:`repro.kframework.strategy` — evaluation-order strategies standing in
  for the nondeterministic choice of rewrite redexes in unsequenced
  subexpressions,
* :mod:`repro.kframework.search` — bounded exhaustive search over those
  choices, the analogue of K's search mode that the paper says is required to
  find undefinedness reachable only under some evaluation orders (§2.5.2).
"""

from repro.kframework.cells import Cell, Configuration
from repro.kframework.strategy import (
    EvaluationStrategy,
    LeftToRightStrategy,
    RightToLeftStrategy,
    ScriptedStrategy,
)
from repro.kframework.search import SearchResult, search_evaluation_orders

__all__ = [
    "Cell",
    "Configuration",
    "EvaluationStrategy",
    "LeftToRightStrategy",
    "RightToLeftStrategy",
    "ScriptedStrategy",
    "SearchResult",
    "search_evaluation_orders",
]
