"""Static semantics: symbol tables and statically detectable undefinedness.

The paper classifies 92 of the 221 undefined behaviors of C11 as statically
detectable (§5.2.1).  This package implements the translation-time side of the
checker: constraint violations and undefined behaviors that can be reported
without executing the program (zero-length arrays, qualified function types,
duplicate labels, constant division by zero, writes to const-qualified
lvalues, obviously out-of-bounds constant indices, bad ``main`` signatures,
incompatible redeclarations, ...).
"""

from repro.sema.symtab import SymbolTable, SymbolInfo
from repro.sema.static_checks import StaticChecker, check_translation_unit

__all__ = [
    "SymbolTable",
    "SymbolInfo",
    "StaticChecker",
    "check_translation_unit",
]
