"""Statically detectable undefined behavior and constraint violations.

These checks run at "translation time", before the program is executed, and
mirror the statically detectable portion of the paper's classification
(§5.2.1: 92 of the 221 undefined behaviors are statically detectable).  They
are deliberately conservative: a check only fires when the violation is
certain from the program text, never on a heuristic, so the defined control
tests of the suites do not produce false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct
from repro.cfront.parser import fold_constant
from repro.errors import StaticViolation, UBKind
from repro.sema.symtab import SymbolInfo, SymbolTable

_RESERVED_PREFIXES = ("__",)

#: Names declared by our builtin headers that are allowed to use the reserved
#: namespace (they belong to the implementation, not the program under test).
_LIBRARY_INTERNAL_NAMES = frozenset({"__assert_fail"})


@dataclass
class StaticChecker:
    """Walks a translation unit and collects :class:`StaticViolation` reports."""

    profile: ct.ImplementationProfile = field(default_factory=lambda: ct.LP64)
    violations: list[StaticViolation] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.symbols = SymbolTable()
        self._current_function: Optional[c_ast.FunctionDef] = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def check(self, unit: c_ast.TranslationUnit) -> list[StaticViolation]:
        for declaration in unit.declarations:
            if isinstance(declaration, c_ast.FunctionDef):
                self._check_function(declaration)
            elif isinstance(declaration, c_ast.Declaration):
                self._check_declaration(declaration, file_scope=True)
            elif isinstance(declaration, c_ast.StaticAssert):
                self._check_static_assert(declaration)
        return self.violations

    def _report(self, kind: UBKind, message: str, line: int,
                function: Optional[str] = None) -> None:
        self.violations.append(StaticViolation(
            kind=kind, message=message, line=line,
            function=function or (self._current_function.name
                                  if self._current_function else None)))

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _check_declaration(self, declaration: c_ast.Declaration, *, file_scope: bool) -> None:
        name = declaration.name
        ctype = declaration.type
        line = declaration.line
        if ctype is None:
            return
        if (name and any(name.startswith(p) for p in _RESERVED_PREFIXES)
                and not isinstance(ctype, ct.FunctionType)
                and declaration.is_definition):
            self._report(UBKind.RESERVED_IDENTIFIER,
                         f"Definition of reserved identifier '{name}'.", line)
        self._check_type(ctype, name, line)
        previous = self.symbols.lookup_innermost(name) if name else None
        if name:
            info = SymbolInfo(name=name, type=ctype, storage=declaration.storage, line=line,
                              is_function=isinstance(ctype, ct.FunctionType),
                              is_definition=declaration.is_definition)
            if previous is not None and not self._redeclaration_allowed(previous, info):
                self._report(
                    UBKind.INCOMPATIBLE_DECLARATIONS,
                    f"'{name}' redeclared with incompatible type "
                    f"({previous.type} vs {ctype}).", line)
            self.symbols.declare(info)
        if (file_scope and declaration.is_definition
                and not isinstance(ctype, ct.FunctionType)
                and not self._is_complete_object_type(ctype)
                and declaration.storage != "extern"):
            self._report(UBKind.INCOMPLETE_TYPE_OBJECT,
                         f"Object '{name}' defined with an incomplete type {ctype}.", line)
        if declaration.initializer is not None:
            self._check_expression(declaration.initializer)
            self._check_constant_initializer(declaration, ctype)

    def _redeclaration_allowed(self, previous: SymbolInfo, new: SymbolInfo) -> bool:
        if previous.is_function and new.is_function:
            return ct.types_compatible(previous.type.unqualified(), new.type.unqualified())
        if self.symbols.at_file_scope():
            # Tentative definitions of objects are allowed if types agree.
            return ct.types_compatible(previous.type.unqualified(), new.type.unqualified())
        return False

    def _is_complete_object_type(self, ctype: ct.CType) -> bool:
        if isinstance(ctype, ct.VoidType):
            return False
        if isinstance(ctype, (ct.StructType, ct.UnionType)):
            return ctype.fields is not None
        if isinstance(ctype, ct.ArrayType):
            return self._is_complete_object_type(ctype.element)
        return True

    def _check_type(self, ctype: ct.CType, name: str, line: int) -> None:
        """Structural checks on a declared type."""
        if isinstance(ctype, ct.ArrayType):
            if ctype.length is not None and ctype.length <= 0:
                self._report(
                    UBKind.ARRAY_SIZE_NOT_POSITIVE,
                    f"Array '{name}' declared with non-positive length {ctype.length} "
                    "(arrays must have length at least 1, C11 6.7.6.2).", line)
            self._check_type(ctype.element, name, line)
        elif isinstance(ctype, ct.PointerType):
            self._check_type(ctype.pointee, name, line)
        elif isinstance(ctype, ct.FunctionType):
            if ctype.const or ctype.volatile:
                self._report(
                    UBKind.QUALIFIED_FUNCTION_TYPE,
                    f"Function type of '{name}' includes type qualifiers (C11 6.7.3:9).", line)
            if ctype.return_type.const or ctype.return_type.volatile:
                # Qualified return types are merely useless, not undefined.
                pass
            self._check_type(ctype.return_type, name, line)
            for parameter in ctype.parameters:
                self._check_type(parameter, name, line)

    def _check_constant_initializer(self, declaration: c_ast.Declaration,
                                    ctype: ct.CType) -> None:
        if not ctype.is_integer or declaration.initializer is None:
            return
        if isinstance(declaration.initializer, c_ast.InitList):
            return
        value = fold_constant(declaration.initializer, self.profile)
        if value is None:
            return
        if not ct.fits_in(value, ctype, self.profile) and ct.is_signed_type(ctype, self.profile):
            # Out-of-range conversion is implementation-defined, not undefined;
            # only report overflow *within* the constant expression itself,
            # which fold_constant cannot distinguish — so stay silent here.
            return

    def _check_static_assert(self, assertion: c_ast.StaticAssert) -> None:
        if assertion.condition is None:
            return
        value = fold_constant(assertion.condition, self.profile)
        if value == 0:
            self._report(UBKind.INCOMPATIBLE_DECLARATIONS,
                         f"_Static_assert failed: {assertion.message or 'condition is false'}",
                         assertion.line)

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def _check_function(self, function: c_ast.FunctionDef) -> None:
        self._current_function = function
        assert isinstance(function.type, ct.FunctionType)
        line = function.line
        if function.name == "main":
            self._check_main_signature(function)
        if (any(function.name.startswith(p) for p in _RESERVED_PREFIXES)
                and function.name not in _LIBRARY_INTERNAL_NAMES):
            self._report(UBKind.RESERVED_IDENTIFIER,
                         f"Definition of reserved identifier '{function.name}'.", line)
        previous = self.symbols.lookup_innermost(function.name)
        info = SymbolInfo(name=function.name, type=function.type, line=line, is_function=True)
        if previous is not None and previous.is_function and not ct.types_compatible(
                previous.type.unqualified(), function.type.unqualified()):
            self._report(UBKind.INCOMPATIBLE_DECLARATIONS,
                         f"Function '{function.name}' redeclared with an incompatible type.",
                         line)
        self.symbols.declare(info)
        self.symbols.push()
        for index, parameter_type in enumerate(function.type.parameters):
            if index < len(function.parameter_names) and function.parameter_names[index]:
                self.symbols.declare(SymbolInfo(
                    name=function.parameter_names[index], type=parameter_type, line=line))
        self._check_labels(function)
        if function.body is not None:
            self._check_statement(function.body, function.type.return_type)
        self.symbols.pop()
        self._current_function = None

    def _check_main_signature(self, function: c_ast.FunctionDef) -> None:
        assert isinstance(function.type, ct.FunctionType)
        return_type = function.type.return_type
        parameters = function.type.parameters
        ok_return = isinstance(return_type, ct.IntType) and return_type.kind == "int"
        ok_params = len(parameters) in (0, 2)
        if len(parameters) == 2:
            first, second = parameters
            ok_params = (first.unqualified().is_integer
                         and isinstance(second, ct.PointerType))
        if not (ok_return and ok_params):
            self._report(UBKind.MAIN_BAD_SIGNATURE,
                         "main is declared with a signature different from "
                         "'int main(void)' or 'int main(int, char**)'.", function.line)

    def _check_labels(self, function: c_ast.FunctionDef) -> None:
        if function.body is None:
            return
        labels: dict[str, int] = {}
        gotos: list[c_ast.Goto] = []
        for node in c_ast.walk(function.body):
            if isinstance(node, c_ast.Label):
                if node.name in labels:
                    self._report(UBKind.DUPLICATE_LABEL,
                                 f"Duplicate label '{node.name}' in function "
                                 f"'{function.name}'.", node.line)
                labels[node.name] = node.line
            elif isinstance(node, c_ast.Goto):
                gotos.append(node)
        for goto in gotos:
            if goto.label not in labels:
                self._report(UBKind.DUPLICATE_LABEL,
                             f"goto to undefined label '{goto.label}'.", goto.line)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _check_statement(self, stmt: c_ast.Node, return_type: ct.CType) -> None:
        if isinstance(stmt, c_ast.Compound):
            self.symbols.push()
            for item in stmt.items:
                if isinstance(item, c_ast.Declaration):
                    self._check_declaration(item, file_scope=False)
                elif isinstance(item, c_ast.StaticAssert):
                    self._check_static_assert(item)
                else:
                    self._check_statement(item, return_type)
            self.symbols.pop()
            return
        if isinstance(stmt, c_ast.Return):
            if stmt.value is not None and return_type.is_void:
                self._report(UBKind.VOID_RETURN_WITH_VALUE,
                             "return with an expression in a function returning void.",
                             stmt.line)
            if stmt.value is not None:
                self._check_expression(stmt.value)
            return
        if isinstance(stmt, c_ast.ExpressionStmt):
            if stmt.expression is not None:
                self._check_expression(stmt.expression)
            return
        if isinstance(stmt, c_ast.If):
            self._check_expression(stmt.condition)
            if stmt.then is not None:
                self._check_statement(stmt.then, return_type)
            if stmt.otherwise is not None:
                self._check_statement(stmt.otherwise, return_type)
            return
        if isinstance(stmt, (c_ast.While, c_ast.DoWhile)):
            if stmt.condition is not None:
                self._check_expression(stmt.condition)
            if stmt.body is not None:
                self._check_statement(stmt.body, return_type)
            return
        if isinstance(stmt, c_ast.For):
            self.symbols.push()
            if isinstance(stmt.init, list):
                for declaration in stmt.init:
                    if isinstance(declaration, c_ast.Declaration):
                        self._check_declaration(declaration, file_scope=False)
            elif isinstance(stmt.init, c_ast.Declaration):
                self._check_declaration(stmt.init, file_scope=False)
            elif isinstance(stmt.init, c_ast.Expression):
                self._check_expression(stmt.init)
            if stmt.condition is not None:
                self._check_expression(stmt.condition)
            if stmt.step is not None:
                self._check_expression(stmt.step)
            if stmt.body is not None:
                self._check_statement(stmt.body, return_type)
            self.symbols.pop()
            return
        if isinstance(stmt, c_ast.Switch):
            self._check_expression(stmt.expression)
            if stmt.body is not None:
                self._check_statement(stmt.body, return_type)
            return
        if isinstance(stmt, (c_ast.Case, c_ast.Default, c_ast.Label)):
            inner = getattr(stmt, "statement", None)
            if isinstance(stmt, c_ast.Case) and stmt.expression is not None:
                self._check_expression(stmt.expression)
            if inner is not None:
                self._check_statement(inner, return_type)
            return
        # Break/Continue/Goto need no expression-level checking here.

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _check_expression(self, expr: c_ast.Expression) -> None:
        for node in c_ast.walk(expr):
            if isinstance(node, c_ast.BinaryOp):
                self._check_binary(node)
            elif isinstance(node, c_ast.Assignment):
                self._check_assignment(node)
            elif isinstance(node, c_ast.Cast):
                self._check_cast(node)
            elif isinstance(node, c_ast.ArraySubscript):
                self._check_subscript(node)
            elif isinstance(node, c_ast.UnaryOp) and node.op in ("++pre", "--pre",
                                                                 "++post", "--post"):
                self._check_modification_target(node.operand, node.line)

    def _check_binary(self, node: c_ast.BinaryOp) -> None:
        if node.op in ("/", "%") and node.right is not None:
            divisor = fold_constant(node.right, self.profile)
            if divisor == 0:
                self._report(UBKind.DIVISION_BY_ZERO,
                             "Division or modulus by a constant zero.", node.line)
        if node.op in ("<<", ">>") and node.right is not None and node.left is not None:
            amount = fold_constant(node.right, self.profile)
            if amount is not None:
                left_type = self._expression_type(node.left)
                width = ct.integer_bits(left_type, self.profile) if left_type.is_integer else 32
                width = max(width, ct.integer_bits(ct.INT, self.profile))
                if amount < 0 or amount >= width:
                    self._report(UBKind.SHIFT_TOO_FAR,
                                 f"Shift by constant {amount} is negative or >= the width "
                                 f"of the promoted type ({width} bits).", node.line)
        if node.op in ("+", "-", "*") and node.left is not None and node.right is not None:
            value = fold_constant(node, self.profile)
            left_value = fold_constant(node.left, self.profile)
            right_value = fold_constant(node.right, self.profile)
            if value is not None and left_value is not None and right_value is not None:
                result_type = self._constant_expression_type(node)
                if (result_type.is_integer and ct.is_signed_type(result_type, self.profile)
                        and ct.fits_in(left_value, result_type, self.profile)
                        and ct.fits_in(right_value, result_type, self.profile)
                        and not ct.fits_in(value, result_type, self.profile)):
                    self._report(UBKind.SIGNED_OVERFLOW,
                                 "Signed integer overflow in a constant expression.", node.line)

    def _check_assignment(self, node: c_ast.Assignment) -> None:
        self._check_modification_target(node.target, node.line)

    def _check_modification_target(self, target: Optional[c_ast.Expression], line: int) -> None:
        if target is None:
            return
        target_type = self._expression_type(target)
        if target_type.const:
            self._report(UBKind.CONST_VIOLATION,
                         "Modification of an lvalue with const-qualified type.", line)

    def _check_cast(self, node: c_ast.Cast) -> None:
        if node.target_type is None or node.operand is None:
            return
        operand_type = self._expression_type(node.operand)
        if operand_type.is_void and not node.target_type.is_void:
            self._report(UBKind.VOID_VALUE_USED,
                         "A void expression is converted to a non-void type "
                         "(its nonexistent value is used).", node.line)

    def _check_subscript(self, node: c_ast.ArraySubscript) -> None:
        if node.array is None or node.index is None:
            return
        index = fold_constant(node.index, self.profile)
        if index is None:
            return
        array_type = self._expression_type(node.array)
        if isinstance(array_type, ct.ArrayType) and array_type.length is not None:
            if index < 0 or index >= array_type.length:
                # x[N] for an array of length N is only valid in address-of
                # context; as a conservative static check we flag strictly
                # negative indices and indices beyond one-past-the-end.
                if index < 0 or index > array_type.length:
                    self._report(
                        UBKind.NEGATIVE_ARRAY_INDEX_CONSTANT,
                        f"Constant index {index} is outside array of length "
                        f"{array_type.length}.", node.line)

    # ------------------------------------------------------------------
    # Lightweight expression typing
    # ------------------------------------------------------------------
    def _expression_type(self, expr: c_ast.Expression) -> ct.CType:
        if isinstance(expr, c_ast.IntegerLiteral):
            return expr.type or ct.INT
        if isinstance(expr, c_ast.FloatLiteral):
            return expr.type or ct.DOUBLE
        if isinstance(expr, c_ast.CharLiteral):
            return ct.INT
        if isinstance(expr, c_ast.StringLiteral):
            return ct.ArrayType(element=ct.CHAR, length=len(expr.value) + 1)
        if isinstance(expr, c_ast.Identifier):
            info = self.symbols.lookup(expr.name)
            return info.type if info is not None else ct.INT
        if isinstance(expr, c_ast.UnaryOp):
            if expr.op == "&":
                return ct.PointerType(pointee=self._expression_type(expr.operand))
            if expr.op == "*":
                inner = ct.decay(self._expression_type(expr.operand))
                if isinstance(inner, ct.PointerType):
                    return inner.pointee
                return ct.INT
            if expr.op == "sizeof":
                return ct.ULONG
            return self._expression_type(expr.operand) if expr.operand is not None else ct.INT
        if isinstance(expr, c_ast.SizeofType):
            return ct.ULONG
        if isinstance(expr, c_ast.Cast):
            return expr.target_type or ct.INT
        if isinstance(expr, c_ast.Call):
            callee_type = self._expression_type(expr.function) if expr.function else ct.INT
            if isinstance(callee_type, ct.PointerType):
                callee_type = callee_type.pointee
            if isinstance(callee_type, ct.FunctionType):
                return callee_type.return_type
            return ct.INT
        if isinstance(expr, c_ast.ArraySubscript):
            array_type = self._expression_type(expr.array) if expr.array else ct.INT
            if isinstance(array_type, ct.ArrayType):
                return array_type.element
            if isinstance(array_type, ct.PointerType):
                return array_type.pointee
            return ct.INT
        if isinstance(expr, c_ast.Member):
            record = self._expression_type(expr.object) if expr.object else ct.INT
            if expr.arrow and isinstance(record, ct.PointerType):
                record = record.pointee
            if isinstance(record, (ct.StructType, ct.UnionType)):
                member = record.field_named(expr.member)
                if member is not None:
                    member_type = member.type
                    if record.const:
                        member_type = member_type.with_qualifiers(const=True)
                    return member_type
            return ct.INT
        if isinstance(expr, c_ast.Assignment):
            return self._expression_type(expr.target) if expr.target else ct.INT
        if isinstance(expr, c_ast.Conditional):
            return self._expression_type(expr.then) if expr.then else ct.INT
        if isinstance(expr, c_ast.Comma):
            return self._expression_type(expr.right) if expr.right else ct.INT
        if isinstance(expr, c_ast.BinaryOp):
            if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
                return ct.INT
            left = self._expression_type(expr.left) if expr.left else ct.INT
            right = self._expression_type(expr.right) if expr.right else ct.INT
            left, right = ct.decay(left), ct.decay(right)
            if isinstance(left, ct.PointerType):
                return left
            if isinstance(right, ct.PointerType):
                return right
            if left.is_arithmetic and right.is_arithmetic:
                return ct.usual_arithmetic_conversions(left, right, self.profile)
            return ct.INT
        return ct.INT

    def _constant_expression_type(self, expr: c_ast.BinaryOp) -> ct.CType:
        left = self._expression_type(expr.left) if expr.left else ct.INT
        right = self._expression_type(expr.right) if expr.right else ct.INT
        if left.is_arithmetic and right.is_arithmetic:
            return ct.usual_arithmetic_conversions(left, right, self.profile)
        return ct.INT


def check_translation_unit(unit: c_ast.TranslationUnit,
                           profile: ct.ImplementationProfile = ct.LP64) -> list[StaticViolation]:
    """Run all static checks on a parsed translation unit."""
    return StaticChecker(profile=profile).check(unit)
