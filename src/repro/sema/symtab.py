"""A lexically scoped symbol table used by the static checks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfront import ctypes as ct


@dataclass
class SymbolInfo:
    """Information recorded about one declared identifier."""

    name: str
    type: ct.CType
    storage: Optional[str] = None
    line: int = 0
    is_function: bool = False
    is_definition: bool = True


@dataclass
class SymbolTable:
    """A stack of scopes mapping identifiers to :class:`SymbolInfo`."""

    scopes: list[dict[str, SymbolInfo]] = field(default_factory=lambda: [{}])

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, info: SymbolInfo) -> Optional[SymbolInfo]:
        """Declare ``info`` in the innermost scope.

        Returns the previous declaration *in the same scope* if there was one
        (the caller decides whether the redeclaration is legal).
        """
        scope = self.scopes[-1]
        previous = scope.get(info.name)
        scope[info.name] = info
        return previous

    def lookup(self, name: str) -> Optional[SymbolInfo]:
        for scope in reversed(self.scopes):
            info = scope.get(name)
            if info is not None:
                return info
        return None

    def lookup_innermost(self, name: str) -> Optional[SymbolInfo]:
        return self.scopes[-1].get(name)

    @property
    def depth(self) -> int:
        return len(self.scopes)

    def at_file_scope(self) -> bool:
        return len(self.scopes) == 1
