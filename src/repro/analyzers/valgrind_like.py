"""A Valgrind/memcheck-style dynamic memory checker.

Valgrind instruments the *compiled binary*: it sees loads, stores and heap
calls, and tracks addressability and definedness bits per byte.  That model
has characteristic strengths and blind spots that show up clearly in the
paper's Figure 2 and Figure 3:

* heap errors (overflow into redzones, use after free, bad ``free``) are
  caught reliably;
* accesses that stay *within the program's own stack frame or globals* are
  invisible — a stack buffer overflow lands in adjacent, perfectly
  addressable memory, so many "use of invalid pointer" tests pass unnoticed;
* purely arithmetic undefinedness (division by zero, signed overflow,
  shifts) is not memory behavior and is not checked at all;
* language-level undefinedness (unsequenced side effects, const violations,
  pointer-provenance comparisons, strict aliasing) has no binary-level
  signature and is never reported.

We reproduce that model by running the program on the dynamic semantics with
only the memory and definedness checks enabled, and with a memory model that
gives automatic/static objects a surrounding "stack slack" region that is
addressable (so in-frame overflows are not reported) while heap objects keep
exact redzones.
"""

from __future__ import annotations

from typing import Optional

from repro.cfront import ctypes as ct
from repro.core.config import CheckerOptions
from repro.core.interpreter import Interpreter
from repro.core.memory import Memory, MemoryObject, StorageKind
from repro.core.values import PointerValue
from repro.analyzers.base import SemanticsBasedTool, ToolResult, UBVerdictProbe
from repro.analyzers.registry import register_tool
from repro.errors import UBKind, UndefinedBehaviorError
from repro.events import UBEvent

#: Number of bytes beyond an automatic/static object that a binary-level
#: checker cannot distinguish from the object itself (they are part of the
#: same stack frame / data segment and therefore addressable).
STACK_SLACK_BYTES = 64


class BinaryLevelMemory(Memory):
    """Memory model of a binary-instrumentation checker (memcheck)."""

    def check_access(self, pointer: PointerValue, size: int, *, write: bool,
                     line: Optional[int] = None,
                     lvalue_type: Optional[ct.CType] = None) -> Optional[MemoryObject]:
        if pointer.is_null:
            raise UndefinedBehaviorError(
                UBKind.NULL_DEREFERENCE, "Invalid read/write at address 0x0.", line=line)
        obj = self.object_for(pointer.base)
        if obj is None:
            raise UndefinedBehaviorError(
                UBKind.DANGLING_DEREFERENCE, "Invalid read/write of unaddressable memory.",
                line=line)
        if obj.kind is StorageKind.HEAP:
            # Heap blocks are surrounded by redzones: exact checking, and
            # freed blocks are marked unaddressable.
            if obj.freed or not obj.alive:
                raise UndefinedBehaviorError(
                    UBKind.USE_AFTER_FREE, "Invalid read/write of freed heap memory.", line=line)
            if pointer.offset < 0 or pointer.offset + size > obj.size:
                raise UndefinedBehaviorError(
                    UBKind.BUFFER_OVERFLOW if write else UBKind.OUT_OF_BOUNDS,
                    f"Invalid {'write' if write else 'read'} of size {size} "
                    f"just past a heap block of size {obj.size}.", line=line)
            return obj
        # Automatic / static / string-literal storage: the surrounding frame
        # or data segment is addressable, so small overflows and accesses to
        # out-of-scope (but not yet reused) stack objects are not reported.
        if pointer.offset < -STACK_SLACK_BYTES or \
                pointer.offset + size > obj.size + STACK_SLACK_BYTES:
            raise UndefinedBehaviorError(
                UBKind.BUFFER_OVERFLOW if write else UBKind.OUT_OF_BOUNDS,
                "Invalid read/write far outside any object.", line=line)
        return obj

    def check_effective_type(self, obj, lvalue_type, *, write, offset=0, line=None) -> None:
        return  # no type information at the binary level

    def check_alignment(self, pointer, ctype, line=None) -> None:
        return  # alignment faults are architecture-specific; x86 allows them


#: The detection profile of a binary-level memory checker: only memory and
#: definedness tracking; no language-level checks.
VALGRIND_OPTIONS = CheckerOptions(
    check_arithmetic=False,
    check_memory=True,
    check_sequencing=False,
    check_const=False,
    check_pointer_provenance=False,
    check_uninitialized=True,
    check_effective_types=False,
    check_functions=False,
)


class ValgrindProbe(UBVerdictProbe):
    """The binary-level detection model as an event filter.

    Most of the profile is plain family filtering (``VALGRIND_OPTIONS``);
    what needs a custom judgment is exactly what :class:`BinaryLevelMemory`
    customizes on the isolated path:

    * **access checks** are re-decided from the event payload with the same
      rules — heap blocks are exact (redzones, freed-marking), while
      automatic/static/string-literal objects carry an addressable
      ``STACK_SLACK_BYTES`` halo, so in-frame overflows and accesses to
      out-of-scope (but not reused) stack objects go unreported;
    * **alignment checks** never fire at the binary level (x86 allows
      unaligned access);

    and every reported access rewrites the kind/message to the memcheck-style
    wording the isolated model raises, keeping the two paths verdict- and
    message-equivalent.
    """

    def judge(self, event: UBEvent):
        if event.family == "memory" and event.check == "alignment":
            return None                      # no alignment faults at binary level
        if event.family == "memory" and event.check == "access":
            return self._judge_access(event.data or {})
        return super().judge(event)

    @staticmethod
    def _judge_access(data: dict):
        reason = data.get("reason")
        if reason == "null":
            return (UBKind.NULL_DEREFERENCE, "Invalid read/write at address 0x0.")
        if reason in ("no-object", "function"):
            return (UBKind.DANGLING_DEREFERENCE,
                    "Invalid read/write of unaddressable memory.")
        write = bool(data.get("write"))
        size = data.get("size", 0)
        offset = data.get("offset", 0)
        object_size = data.get("object_size", 0)
        if data.get("storage") == StorageKind.HEAP.value:
            if data.get("freed") or not data.get("alive", True):
                return (UBKind.USE_AFTER_FREE,
                        "Invalid read/write of freed heap memory.")
            if offset < 0 or offset + size > object_size:
                return (UBKind.BUFFER_OVERFLOW if write else UBKind.OUT_OF_BOUNDS,
                        f"Invalid {'write' if write else 'read'} of size {size} "
                        f"just past a heap block of size {object_size}.")
            return None
        # Automatic / static / string-literal storage: the surrounding frame
        # or data segment is addressable, so small overflows and accesses to
        # dead (but not reused) stack objects are not reported.
        if offset < -STACK_SLACK_BYTES or offset + size > object_size + STACK_SLACK_BYTES:
            return (UBKind.BUFFER_OVERFLOW if write else UBKind.OUT_OF_BOUNDS,
                    "Invalid read/write far outside any object.")
        return None


@register_tool("valgrind", aliases=("memcheck",), figure_order=0)
class ValgrindLikeTool(SemanticsBasedTool):
    """Dynamic binary-instrumentation memory checker (models Valgrind memcheck 3.5)."""

    name = "Valgrind"
    models = "Valgrind memcheck"

    def __init__(self, options: CheckerOptions = VALGRIND_OPTIONS) -> None:
        super().__init__(options, run_static_checks=False)

    def make_probe(self) -> ValgrindProbe:
        return ValgrindProbe(self.name, self.options)

    def result_from_probe(self, probe, compiled) -> ToolResult:
        # memcheck-style verdict wording: the message alone, and a plain
        # "no errors detected" for clean runs (as the isolated path reports).
        result = super().result_from_probe(probe, compiled)
        if result.flagged and probe.matched is not None:
            result.detail = probe.matched[1]
        elif not result.flagged and not result.inconclusive:
            result.detail = "no errors detected"
        return result

    def analyze_compiled(self, compiled) -> ToolResult:
        # The isolated (pre-probe) path: a dedicated run with the
        # binary-level memory model swapped in.
        if not compiled.ok:
            return ToolResult(tool=self.name, flagged=False, inconclusive=True,
                              detail=compiled.parse_error or "parse error")
        interpreter = Interpreter(compiled.unit, self.options)
        interpreter.memory = BinaryLevelMemory(self.options)
        try:
            interpreter.run()
        except UndefinedBehaviorError as error:
            return ToolResult(tool=self.name, flagged=True, kinds=[error.kind],
                              detail=error.message)
        except Exception as error:  # resource limits, unsupported constructs
            return ToolResult(tool=self.name, flagged=False, inconclusive=True,
                              detail=f"{type(error).__name__}: {error}")
        return ToolResult(tool=self.name, flagged=False, detail="no errors detected")
