"""A Frama-C "Value Analysis"-style abstract interpreter in C-interpreter mode.

The paper runs Frama-C's value analysis plugin in its *C interpreter* mode
(footnote 10): on a deterministic test the abstract domains collapse to
singletons and the analysis behaves like a concrete interpreter that emits an
alarm for every operation whose precondition it cannot prove — division by
zero, signed overflow, invalid memory accesses, and reads of uninitialized
data.  That is why it scores highly on every class of the Juliet-derived
benchmark (Figure 2) after the authors' fixes.

What the value analysis does *not* model (and what separates it from kcc on
the broader undefinedness suite of Figure 3) is language-level undefinedness
with no arithmetic/memory signature: unsequenced side effects, const
violations reached through pointers, relational comparison of pointers to
different objects, strict-aliasing violations, and most statically undefined
constructs (it assumes the program was accepted by a compiler).

The tool below reproduces that alarm profile on our dynamic semantics, in
interpreter mode for the benchmark tables.  The interval abstraction the
real tool is built on is no longer a standalone illustration: it lives in
:mod:`repro.symbolic.domain` (re-exported here as :class:`Interval` for
compatibility) where it powers the actual abstract engine, and
:meth:`ValueAnalysisTool.prove` exposes the non-interpreter mode — genuine
range proofs over input intervals — through that engine.
"""

from __future__ import annotations

from typing import Optional

from repro.analyzers.base import SemanticsBasedTool
from repro.analyzers.registry import register_tool
from repro.core.config import CheckerOptions

# The interval domain moved to the symbolic package, where the abstract
# evaluator uses it for real; this module keeps the historical import path.
from repro.symbolic.domain import Interval

#: Alarm profile of the value analysis in C-interpreter mode.
VALUE_ANALYSIS_OPTIONS = CheckerOptions(
    check_arithmetic=True,
    check_memory=True,
    check_sequencing=False,
    check_const=False,
    check_pointer_provenance=False,
    check_uninitialized=True,
    check_effective_types=False,
    check_functions=True,
)


@register_tool("value-analysis", aliases=("va", "frama-c"), figure_order=2)
class ValueAnalysisTool(SemanticsBasedTool):
    """Abstract-interpretation value analysis (models Frama-C Value, Nitrogen)."""

    name = "V. Analysis"
    models = "Frama-C Value Analysis plugin (C interpreter mode)"

    def __init__(self, options: CheckerOptions = VALUE_ANALYSIS_OPTIONS) -> None:
        super().__init__(options, run_static_checks=False)

    def prove(self, source: str, *,
              inputs: Optional[dict[str, tuple[int, int]]] = None,
              filename: str = "<input>"):
        """The non-interpreter mode: a range proof over ``inputs``.

        Runs the abstract interval engine (:mod:`repro.symbolic`) under this
        tool's alarm profile and returns its
        :class:`~repro.symbolic.prove.ProveReport`; classification via
        :meth:`classify` is unchanged and stays in interpreter mode.
        """
        from repro.symbolic.prove import prove_source

        return prove_source(source, inputs=inputs, options=self.options,
                            filename=filename)


__all__ = ["Interval", "VALUE_ANALYSIS_OPTIONS", "ValueAnalysisTool"]
