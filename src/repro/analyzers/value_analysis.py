"""A Frama-C "Value Analysis"-style abstract interpreter in C-interpreter mode.

The paper runs Frama-C's value analysis plugin in its *C interpreter* mode
(footnote 10): on a deterministic test the abstract domains collapse to
singletons and the analysis behaves like a concrete interpreter that emits an
alarm for every operation whose precondition it cannot prove — division by
zero, signed overflow, invalid memory accesses, and reads of uninitialized
data.  That is why it scores highly on every class of the Juliet-derived
benchmark (Figure 2) after the authors' fixes.

What the value analysis does *not* model (and what separates it from kcc on
the broader undefinedness suite of Figure 3) is language-level undefinedness
with no arithmetic/memory signature: unsequenced side effects, const
violations reached through pointers, relational comparison of pointers to
different objects, strict-aliasing violations, and most statically undefined
constructs (it assumes the program was accepted by a compiler).

The tool below reproduces that alarm profile on our dynamic semantics.  The
:class:`IntervalDomain` class provides the value-set abstraction the real
tool uses; it is exercised by the unit tests and available for building
non-interpreter-mode analyses, keeping the substitution honest about what the
original tool is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyzers.base import SemanticsBasedTool
from repro.analyzers.registry import register_tool
from repro.core.config import CheckerOptions

#: Alarm profile of the value analysis in C-interpreter mode.
VALUE_ANALYSIS_OPTIONS = CheckerOptions(
    check_arithmetic=True,
    check_memory=True,
    check_sequencing=False,
    check_const=False,
    check_pointer_provenance=False,
    check_uninitialized=True,
    check_effective_types=False,
    check_functions=True,
)


@register_tool("value-analysis", aliases=("va", "frama-c"), figure_order=2)
class ValueAnalysisTool(SemanticsBasedTool):
    """Abstract-interpretation value analysis (models Frama-C Value, Nitrogen)."""

    name = "V. Analysis"
    models = "Frama-C Value Analysis plugin (C interpreter mode)"

    def __init__(self, options: CheckerOptions = VALUE_ANALYSIS_OPTIONS) -> None:
        super().__init__(options, run_static_checks=False)


# ---------------------------------------------------------------------------
# The interval abstraction used by the value analysis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded) integer interval ``[low, high]``.

    ``None`` bounds represent minus/plus infinity.  The bottom interval is
    represented by ``Interval.bottom()`` (low > high convention).
    """

    low: int | None = None
    high: int | None = None
    is_bottom: bool = False

    # -- constructors -------------------------------------------------------
    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def bottom() -> "Interval":
        return Interval(0, 0, is_bottom=True)

    @staticmethod
    def constant(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def range(low: int | None, high: int | None) -> "Interval":
        if low is not None and high is not None and low > high:
            return Interval.bottom()
        return Interval(low, high)

    # -- queries ------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.is_bottom and self.low is not None and self.low == self.high

    def contains(self, value: int) -> bool:
        if self.is_bottom:
            return False
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def may_be_zero(self) -> bool:
        return self.contains(0)

    def may_exceed(self, low: int, high: int) -> bool:
        """Could a value in this interval fall outside ``[low, high]``?"""
        if self.is_bottom:
            return False
        if self.low is None or self.low < low:
            return True
        if self.high is None or self.high > high:
            return True
        return False

    # -- lattice operations --------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        low = None if self.low is None or other.low is None else min(self.low, other.low)
        high = None if self.high is None or other.high is None else max(self.high, other.high)
        return Interval(low, high)

    def meet(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        low = self.low if other.low is None else (
            other.low if self.low is None else max(self.low, other.low))
        high = self.high if other.high is None else (
            other.high if self.high is None else min(self.high, other.high))
        return Interval.range(low, high)

    def widen(self, other: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to infinity."""
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        low = self.low if (self.low is not None and other.low is not None
                           and other.low >= self.low) else None
        high = self.high if (self.high is not None and other.high is not None
                             and other.high <= self.high) else None
        return Interval(low, high)

    # -- arithmetic -----------------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        low = None if self.low is None or other.low is None else self.low + other.low
        high = None if self.high is None or other.high is None else self.high + other.high
        return Interval(low, high)

    def negate(self) -> "Interval":
        if self.is_bottom:
            return self
        low = None if self.high is None else -self.high
        high = None if self.low is None else -self.low
        return Interval(low, high)

    def subtract(self, other: "Interval") -> "Interval":
        return self.add(other.negate())

    def multiply(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if None in (self.low, self.high, other.low, other.high):
            return Interval.top()
        products = [self.low * other.low, self.low * other.high,
                    self.high * other.low, self.high * other.high]
        return Interval(min(products), max(products))

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥"
        low = "-inf" if self.low is None else str(self.low)
        high = "+inf" if self.high is None else str(self.high)
        return f"[{low}, {high}]"
