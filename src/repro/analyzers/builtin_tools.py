"""Registration of the paper's four analysis tools.

Importing this module runs the :func:`repro.analyzers.registry.register_tool`
decorators for the three baseline tools (each registers in its own module)
and registers kcc itself — which lives in :mod:`repro.analyzers.base` and
cannot self-register there without a circular import.
"""

from repro.analyzers import checkpointer_like, valgrind_like, value_analysis  # noqa: F401
from repro.analyzers.base import KccAnalysisTool
from repro.analyzers.registry import register_tool

register_tool("kcc", figure_order=3, takes_options=True)(KccAnalysisTool)
