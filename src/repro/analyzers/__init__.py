"""Baseline analysis tools the paper compares against.

Each analyzer reimplements the *detection model* of one of the tools used in
Section 5 of the paper (Valgrind, CheckPointer, Frama-C Value Analysis) on our
own substrate, so that the Figure 2 / Figure 3 comparisons arise from genuine
capability differences rather than hard-coded scores.
"""

from repro.analyzers.base import (
    AnalysisTool,
    KccAnalysisTool,
    SemanticsBasedTool,
    ToolResult,
    UBVerdictProbe,
    run_probe_group,
)
from repro.analyzers.valgrind_like import ValgrindLikeTool
from repro.analyzers.checkpointer_like import CheckPointerLikeTool
from repro.analyzers.value_analysis import ValueAnalysisTool
from repro.analyzers.registry import (
    all_tools,
    available_tool_names,
    default_tools,
    make_tools,
    register_tool,
    registered_tools,
    tool_by_name,
)

__all__ = [
    "AnalysisTool",
    "KccAnalysisTool",
    "SemanticsBasedTool",
    "ToolResult",
    "UBVerdictProbe",
    "ValgrindLikeTool",
    "CheckPointerLikeTool",
    "ValueAnalysisTool",
    "all_tools",
    "available_tool_names",
    "default_tools",
    "make_tools",
    "register_tool",
    "registered_tools",
    "run_probe_group",
    "tool_by_name",
]
