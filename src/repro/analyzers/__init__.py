"""Baseline analysis tools the paper compares against.

Each analyzer reimplements the *detection model* of one of the tools used in
Section 5 of the paper (Valgrind, CheckPointer, Frama-C Value Analysis) on our
own substrate, so that the Figure 2 / Figure 3 comparisons arise from genuine
capability differences rather than hard-coded scores.
"""

from repro.analyzers.base import AnalysisTool, ToolResult
from repro.analyzers.valgrind_like import ValgrindLikeTool
from repro.analyzers.checkpointer_like import CheckPointerLikeTool
from repro.analyzers.value_analysis import ValueAnalysisTool
from repro.analyzers.registry import all_tools, default_tools, tool_by_name

__all__ = [
    "AnalysisTool",
    "ToolResult",
    "ValgrindLikeTool",
    "CheckPointerLikeTool",
    "ValueAnalysisTool",
    "all_tools",
    "default_tools",
    "tool_by_name",
]
