"""A CheckPointer-style source-level pointer access validator.

CheckPointer (Semantic Designs) instruments the *source* with fat pointers
carrying bounds and validity metadata, so unlike a binary-level checker it
catches out-of-bounds accesses to stack and global objects, uses of dangling
pointers, and frees of invalid pointers.  However it is a pointer-safety
checker only:

* division by zero, signed overflow and the other arithmetic undefined
  behaviors are outside its scope;
* uninitialized *non-pointer* data is not tracked (it catches a dereference
  of an uninitialized pointer, because the fat pointer has no valid bounds,
  but not the use of an uninitialized integer) — this is the partial score
  the paper's Figure 2 shows for the "uninitialized memory" class;
* sequencing, const-correctness, pointer-provenance comparisons, and
  strict-aliasing violations are not modeled.
"""

from __future__ import annotations

from repro.analyzers.base import SemanticsBasedTool
from repro.analyzers.registry import register_tool
from repro.core.config import CheckerOptions

#: Detection profile of a fat-pointer bounds checker.
CHECKPOINTER_OPTIONS = CheckerOptions(
    check_arithmetic=False,
    check_memory=True,
    check_sequencing=False,
    check_const=False,
    # Fat pointers carry their provenance, so arithmetic that walks out of an
    # object is detected, but relational comparison of unrelated pointers is
    # answered (not reported) by comparing the raw addresses.
    check_pointer_provenance=False,
    check_uninitialized=False,
    check_effective_types=False,
    check_functions=True,
)


@register_tool("checkpointer", aliases=("check-pointer",), figure_order=1)
class CheckPointerLikeTool(SemanticsBasedTool):
    """Source-level pointer-safety checker (models CheckPointer 1.1.5)."""

    name = "CheckPointer"
    models = "Semantic Designs CheckPointer"

    def __init__(self, options: CheckerOptions = CHECKPOINTER_OPTIONS) -> None:
        super().__init__(options, run_static_checks=False)
