"""Common interface for all analysis tools compared in the evaluation.

The harness (:mod:`repro.suites.harness`) only needs two things from a tool:
its name, and whether it flags a given program as containing undefined
behavior.  Tools also report *what* they found so the per-class tables of
Figure 2 can be broken down, and how long the analysis took (the paper quotes
mean per-test runtimes in Section 5.1.2).

Since the execution-event redesign, the semantics-based tools are **probes**
on the engine rather than separate executions: one observed run of the
dynamic semantics emits the event stream (:mod:`repro.events`) and each
tool's :class:`UBVerdictProbe` decides which fired checks *its* model
reports.  Comparing N tools on a program therefore costs one parse and one
execution — :func:`run_probe_group` is the shared entry point, and
``analyze`` on a single tool is just a group of one.  The seed's
dedicated-execution path survives as :meth:`SemanticsBasedTool.analyze_isolated`
so the equivalence tests can hold probe verdicts to the legacy ones.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.api.session import SHARED_COMPILE_CACHE, Checker, compile_shared
from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.core.kcc import CompiledUnit, KccTool
from repro.errors import OutcomeKind, UBKind
from repro.events import FAMILIES, Probe, RunEnd, UBEvent


@dataclass
class ToolResult:
    """The verdict of one tool on one program."""

    tool: str
    flagged: bool
    kinds: list[UBKind] = field(default_factory=list)
    detail: str = ""
    inconclusive: bool = False
    #: Time the tool itself attributes to the analysis (the dynamic stage for
    #: semantics-based tools; a shared execution reports the same figure to
    #: every tool it fed).  Zero means "not yet measured" — ``timed_analyze``
    #: then fills it with its own wall-clock measurement.
    runtime_seconds: float = 0.0
    #: Wall-clock time ``timed_analyze`` observed *beyond* a tool-reported
    #: ``runtime_seconds`` (verdict extraction, bookkeeping).
    overhead_seconds: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready view, mirroring ``CheckReport.to_dict``'s style."""
        return {
            "tool": self.tool,
            "flagged": self.flagged,
            "kinds": [kind.name for kind in self.kinds],
            "detail": self.detail,
            "inconclusive": self.inconclusive,
            "runtime_seconds": self.runtime_seconds,
            "overhead_seconds": self.overhead_seconds,
        }


class AnalysisTool:
    """Base class: an analysis tool that classifies C programs."""

    #: Human-readable tool name used in the reproduced tables.
    name = "tool"
    #: Name of the real tool whose detection model this reimplements.
    models = ""

    def analyze(self, source: str, *, filename: str = "<input>") -> ToolResult:
        """Analyze ``source``; must be overridden."""
        raise NotImplementedError

    def warm_compile(self, source: str, *, filename: str = "<input>") -> None:
        """Populate any compile cache before the timed window (no-op default).

        With a shared compile cache, whichever tool analyzed a case first
        would otherwise be billed for the parse while the rest got free
        cache hits — inverting the reproduced per-tool runtime table.
        Warming the cache outside the clock makes every tool's timing cover
        the same work: its own dynamic analysis.
        """

    def timed_analyze(self, source: str, *, filename: str = "<input>") -> ToolResult:
        """``analyze`` with timing.

        If the tool reported its own ``runtime_seconds`` (a shared probe
        execution does), that breakdown is preserved and the extra
        wall-clock time lands in ``overhead_seconds``; otherwise the whole
        measured time is the runtime.
        """
        self.warm_compile(source, filename=filename)
        start = time.perf_counter()
        result = self.analyze(source, filename=filename)
        measured = time.perf_counter() - start
        if result.runtime_seconds:
            result.overhead_seconds = max(0.0, measured - result.runtime_seconds)
        else:
            result.runtime_seconds = measured
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# ---------------------------------------------------------------------------
# Verdict probes: a detection model as an event filter
# ---------------------------------------------------------------------------

class UBVerdictProbe(Probe):
    """A tool's detection model as a filter over the engine's UB events.

    The observed execution runs every check and records the ones that fire;
    this probe keeps the first event whose check family its
    :class:`CheckerOptions` profile enables.  Terminal events
    (``family=None`` — checks no profile can disable) always match.  A
    subclass can override :meth:`judge` to re-decide family-enabled events
    with a custom model (the Valgrind probe re-judges memory access checks
    with its stack-slack rules).
    """

    continue_past_ub = True

    def __init__(self, tool_name: str, options: CheckerOptions) -> None:
        self.name = tool_name
        self.options = options
        #: First matching event, rewritten by :meth:`judge` if applicable.
        self.matched: Optional[tuple[UBKind, str]] = None
        self.end: Optional[RunEnd] = None

    def on_event(self, event) -> None:
        if self.matched is not None or event.kind != "ub":
            return
        verdict = self.judge(event)
        if verdict is not None:
            self.matched = verdict

    def judge(self, event: UBEvent) -> Optional[tuple[UBKind, str]]:
        """Decide whether this model reports a fired check; None = ignore."""
        if event.family is None:
            return (event.ub_kind, event.message)
        if getattr(self.options, "check_" + event.family, False):
            return (event.ub_kind, event.message)
        return None

    def finish(self, end: RunEnd) -> None:
        self.end = end


# ---------------------------------------------------------------------------
# Shared-execution probe groups
# ---------------------------------------------------------------------------

#: The ``check_*`` flag per check family — derived from the event
#: vocabulary's family list so the two can never diverge.
_CHECK_FLAGS = tuple(f"check_{family}" for family in FAMILIES)


def merge_options(profiles: Sequence[CheckerOptions]) -> CheckerOptions:
    """The union profile a shared execution must run with: every check
    family any participating tool enables is enabled (observed checks fall
    back to the check-disabled semantics when they fire, so enabling more
    families never changes the trajectory — only what gets recorded)."""
    base = profiles[0]
    flags = {flag: any(getattr(options, flag) for options in profiles)
             for flag in _CHECK_FLAGS}
    return base.without(**flags)


def sharing_signature(options: CheckerOptions) -> CheckerOptions:
    """Everything a shared execution inherits from its tools *besides* the
    check flags: implementation profile, resource limits, lowering,
    evaluation order.  Tools may share one execution only when their
    signatures are equal — a tool with a different ``max_steps`` (say)
    genuinely runs a different analysis."""
    return options.without(**dict.fromkeys(_CHECK_FLAGS, False))


#: Checkers backing shared probe executions, one per union options profile;
#: they share the process-wide compile cache, and their ``stats`` expose the
#: one-run-feeds-N-verdicts property (``run_count`` moves once per program).
_PROBE_CHECKERS: dict[CheckerOptions, Checker] = {}
_PROBE_CHECKERS_LOCK = threading.Lock()


def probe_checker_for(options: CheckerOptions) -> Checker:
    with _PROBE_CHECKERS_LOCK:
        checker = _PROBE_CHECKERS.get(options)
        if checker is None:
            checker = Checker(options, run_static_checks=False,
                              cache=SHARED_COMPILE_CACHE)
            _PROBE_CHECKERS[options] = checker
        return checker


def run_probe_group(tools: Sequence["SemanticsBasedTool"], source: str, *,
                    filename: str = "<input>",
                    checker: Optional[Checker] = None) -> list[ToolResult]:
    """Run one observed execution of ``source`` feeding every tool's probe.

    Returns one :class:`ToolResult` per tool, in order.  All results carry
    the same ``runtime_seconds`` — the dynamic stage they shared.
    """
    for tool in tools:
        if not tool.can_share_execution:
            raise ValueError(f"tool {tool.name!r} cannot share an execution "
                             "(evaluation-order search is per-tool)")
    signature = sharing_signature(tools[0].options)
    mismatched = [tool.name for tool in tools[1:]
                  if sharing_signature(tool.options) != signature]
    if mismatched:
        raise ValueError(
            "tools in one probe group must agree on every option outside the "
            f"check_* flags (profile, resource limits, lowering, evaluation "
            f"order); {', '.join(mismatched)} differ{'s' if len(mismatched) == 1 else ''} "
            f"from {tools[0].name} — group by repro.analyzers.base.sharing_signature")
    union = merge_options([tool.options for tool in tools])
    if checker is None:
        checker = probe_checker_for(union)
    compiled = checker.compile(source, filename=filename)
    if not compiled.ok:
        return [tool._parse_failure_result(compiled) for tool in tools]
    if union.enable_lowering:
        # Warm the instrumented IR with the compile, outside the timed window.
        compiled.lowered_for(union, instrument=True)
    probes = [tool.make_probe() for tool in tools]
    start = time.perf_counter()
    try:
        checker.run(compiled, probes=probes)  # the probes carry the verdicts
    except Exception as error:  # resource limits, unsupported constructs
        elapsed = time.perf_counter() - start
        return [ToolResult(tool=tool.name, flagged=False, inconclusive=True,
                           detail=f"{type(error).__name__}: {error}",
                           runtime_seconds=elapsed)
                for tool in tools]
    elapsed = time.perf_counter() - start
    results = []
    for tool, probe in zip(tools, probes):
        result = tool.result_from_probe(probe, compiled)
        result.runtime_seconds = elapsed
        results.append(result)
    return results


class SemanticsBasedTool(AnalysisTool):
    """An analysis tool built on the dynamic semantics with a given profile.

    This is the shared machinery for kcc itself and for the baseline tools
    that are modeled as restricted runtime monitors: each tool supplies the
    :class:`CheckerOptions` describing which classes of undefined behavior its
    real counterpart can observe, whether it performs translation-time checks,
    and (optionally) a custom event filter (:meth:`make_probe`).

    ``analyze`` runs the tool as a probe over an observed execution — a
    group of one, sharing the same machinery the harness uses to feed all
    tools from a single run.  ``analyze_isolated`` is the seed's dedicated
    execution (own engine, own options, custom memory model), kept for the
    probe-vs-legacy equivalence tests and for search mode.
    """

    def __init__(self, options: CheckerOptions, *, run_static_checks: bool,
                 search_evaluation_order: bool = False) -> None:
        self.options = options
        self.run_static_checks = run_static_checks
        self.search_evaluation_order = search_evaluation_order
        self._tool = KccTool(options, run_static_checks=run_static_checks,
                             search_evaluation_order=search_evaluation_order)

    # -- probe interface -----------------------------------------------------
    @property
    def can_share_execution(self) -> bool:
        """Whether this tool's verdict can come from a shared execution."""
        return not self.search_evaluation_order

    def make_probe(self) -> UBVerdictProbe:
        """A fresh one-run verdict probe implementing this tool's model."""
        return UBVerdictProbe(self.name, self.options)

    def result_from_probe(self, probe: UBVerdictProbe,
                          compiled: CompiledUnit) -> ToolResult:
        """Turn a finished probe (plus compile-stage facts) into a verdict."""
        if self.run_static_checks and compiled.static_violations:
            # Mirrors the legacy STATIC_ERROR outcome: translation-time
            # undefinedness flags the program before the dynamic stage.
            violations = compiled.static_violations
            return ToolResult(
                tool=self.name, flagged=True,
                kinds=[v.kind for v in violations],
                detail="static error: " + "; ".join(v.message for v in violations))
        if probe.matched is not None:
            kind, message = probe.matched
            return ToolResult(tool=self.name, flagged=True, kinds=[kind],
                              detail=f"undefined: {kind.name}: {message}")
        end = probe.end
        if end is None or end.status == "inconclusive":
            return ToolResult(tool=self.name, flagged=False, inconclusive=True,
                              detail=(end.detail if end is not None else
                                      "analysis did not finish"))
        return ToolResult(tool=self.name, flagged=False,
                          detail=f"defined (exit code {end.exit_code})")

    def _parse_failure_result(self, compiled: CompiledUnit) -> ToolResult:
        return ToolResult(tool=self.name, flagged=False, inconclusive=True,
                          detail=compiled.parse_error or "parse error")

    # -- compile stage -------------------------------------------------------
    def compile(self, source: str, *, filename: str = "<input>") -> CompiledUnit:
        """Compile through the process-wide shared cache.

        All semantics-based tools with the same implementation profile share
        one parse per program, so comparing N tools over a suite costs one
        compile — not N — per test case.
        """
        return compile_shared(source, filename=filename, options=self.options)

    def warm_compile(self, source: str, *, filename: str = "<input>") -> None:
        compiled = self.compile(source, filename=filename)
        if not compiled.ok or not self.options.enable_lowering:
            return
        if self.can_share_execution:
            # The probe path runs the instrumented IR under the (single-tool)
            # union profile — which is this tool's own options.
            compiled.lowered_for(self.options, instrument=True)
        else:
            compiled.lowered_for(
                self.options, fold=not self.search_evaluation_order)

    # -- analysis ------------------------------------------------------------
    def analyze(self, source: str, *, filename: str = "<input>") -> ToolResult:
        if not self.can_share_execution:
            return self.analyze_isolated(source, filename=filename)
        return run_probe_group([self], source, filename=filename)[0]

    def analyze_isolated(self, source: str, *, filename: str = "<input>") -> ToolResult:
        """The pre-probe path: a dedicated engine run under this tool's own
        options (and memory model, for subclasses that swap one in)."""
        return self.analyze_compiled(self.compile(source, filename=filename))

    def analyze_compiled(self, compiled: CompiledUnit) -> ToolResult:
        """Analyze an already-compiled unit on a dedicated engine run."""
        report = self._tool.run_unit(compiled)
        outcome = report.outcome
        return ToolResult(
            tool=self.name,
            flagged=outcome.flagged,
            kinds=outcome.ub_kinds,
            detail=outcome.describe(),
            inconclusive=outcome.kind is OutcomeKind.INCONCLUSIVE,
        )


class KccAnalysisTool(SemanticsBasedTool):
    """The paper's own tool: the full semantics-based undefinedness checker."""

    name = "kcc"
    models = "kcc (this paper)"

    def __init__(self, options: Optional[CheckerOptions] = None, *,
                 search_evaluation_order: bool = False) -> None:
        super().__init__(options or DEFAULT_OPTIONS, run_static_checks=True,
                         search_evaluation_order=search_evaluation_order)
