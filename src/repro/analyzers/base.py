"""Common interface for all analysis tools compared in the evaluation.

The harness (:mod:`repro.suites.harness`) only needs two things from a tool:
its name, and whether it flags a given program as containing undefined
behavior.  Tools also report *what* they found so the per-class tables of
Figure 2 can be broken down, and how long the analysis took (the paper quotes
mean per-test runtimes in Section 5.1.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.api.session import compile_shared
from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.core.kcc import CompiledUnit, KccTool
from repro.errors import OutcomeKind, UBKind


@dataclass
class ToolResult:
    """The verdict of one tool on one program."""

    tool: str
    flagged: bool
    kinds: list[UBKind] = field(default_factory=list)
    detail: str = ""
    inconclusive: bool = False
    runtime_seconds: float = 0.0


class AnalysisTool:
    """Base class: an analysis tool that classifies C programs."""

    #: Human-readable tool name used in the reproduced tables.
    name = "tool"
    #: Name of the real tool whose detection model this reimplements.
    models = ""

    def analyze(self, source: str, *, filename: str = "<input>") -> ToolResult:
        """Analyze ``source``; must be overridden."""
        raise NotImplementedError

    def warm_compile(self, source: str, *, filename: str = "<input>") -> None:
        """Populate any compile cache before the timed window (no-op default).

        With a shared compile cache, whichever tool analyzed a case first
        would otherwise be billed for the parse while the rest got free
        cache hits — inverting the reproduced per-tool runtime table.
        Warming the cache outside the clock makes every tool's timing cover
        the same work: its own dynamic analysis.
        """

    def timed_analyze(self, source: str, *, filename: str = "<input>") -> ToolResult:
        self.warm_compile(source, filename=filename)
        start = time.perf_counter()
        result = self.analyze(source, filename=filename)
        result.runtime_seconds = time.perf_counter() - start
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class SemanticsBasedTool(AnalysisTool):
    """An analysis tool built on the dynamic semantics with a given profile.

    This is the shared machinery for kcc itself and for the baseline tools
    that are modeled as restricted runtime monitors: each tool supplies the
    :class:`CheckerOptions` describing which classes of undefined behavior its
    real counterpart can observe, whether it performs translation-time checks,
    and (optionally) a custom memory model.
    """

    def __init__(self, options: CheckerOptions, *, run_static_checks: bool,
                 search_evaluation_order: bool = False) -> None:
        self.options = options
        self.run_static_checks = run_static_checks
        self.search_evaluation_order = search_evaluation_order
        self._tool = KccTool(options, run_static_checks=run_static_checks,
                             search_evaluation_order=search_evaluation_order)

    def compile(self, source: str, *, filename: str = "<input>") -> CompiledUnit:
        """Compile through the process-wide shared cache.

        All semantics-based tools with the same implementation profile share
        one parse per program, so comparing N tools over a suite costs one
        compile — not N — per test case.
        """
        return compile_shared(source, filename=filename, options=self.options)

    def warm_compile(self, source: str, *, filename: str = "<input>") -> None:
        compiled = self.compile(source, filename=filename)
        if self.options.enable_lowering:
            # The lowered IR is part of the compile stage: materialize it
            # (memoized per options) outside the timed dynamic-stage window,
            # matching how the parse itself is warmed.
            compiled.lowered_for(
                self.options, fold=not self.search_evaluation_order)

    def analyze(self, source: str, *, filename: str = "<input>") -> ToolResult:
        return self.analyze_compiled(self.compile(source, filename=filename))

    def analyze_compiled(self, compiled: CompiledUnit) -> ToolResult:
        """Analyze an already-compiled unit (the staged entry point)."""
        report = self._tool.run_unit(compiled)
        outcome = report.outcome
        return ToolResult(
            tool=self.name,
            flagged=outcome.flagged,
            kinds=outcome.ub_kinds,
            detail=outcome.describe(),
            inconclusive=outcome.kind is OutcomeKind.INCONCLUSIVE,
        )


class KccAnalysisTool(SemanticsBasedTool):
    """The paper's own tool: the full semantics-based undefinedness checker."""

    name = "kcc"
    models = "kcc (this paper)"

    def __init__(self, options: Optional[CheckerOptions] = None, *,
                 search_evaluation_order: bool = False) -> None:
        super().__init__(options or DEFAULT_OPTIONS, run_static_checks=True,
                         search_evaluation_order=search_evaluation_order)
