"""Registry of the analysis tools used in the paper's evaluation."""

from __future__ import annotations

from typing import Optional

from repro.analyzers.base import AnalysisTool, KccAnalysisTool
from repro.analyzers.checkpointer_like import CheckPointerLikeTool
from repro.analyzers.valgrind_like import ValgrindLikeTool
from repro.analyzers.value_analysis import ValueAnalysisTool
from repro.core.config import CheckerOptions


def default_tools(kcc_options: Optional[CheckerOptions] = None) -> list[AnalysisTool]:
    """The four tools compared in Figures 2 and 3, in the paper's column order."""
    return [
        ValgrindLikeTool(),
        CheckPointerLikeTool(),
        ValueAnalysisTool(),
        KccAnalysisTool(kcc_options),
    ]


def all_tools() -> list[AnalysisTool]:
    return default_tools()


def tool_by_name(name: str) -> AnalysisTool:
    for tool in default_tools():
        if tool.name.lower() == name.lower():
            return tool
    raise KeyError(f"unknown analysis tool {name!r}")
