"""Registry of analysis tools: decorator-based registration, CLI discovery.

The seed hard-coded the four-tool lineup of the paper's evaluation; the
registry now discovers tools through the :func:`register_tool` decorator, so
adding an analyzer is writing a probe class and decorating its tool::

    from repro.analyzers.registry import register_tool
    from repro.analyzers.base import SemanticsBasedTool

    @register_tool("my-checker", aliases=("mc",))
    class MyCheckerTool(SemanticsBasedTool):
        name = "MyChecker"
        ...

Registered tools are discoverable from the CLI (``kcc-check tools``,
``kcc-check bench --tools NAME,NAME``) and through :func:`make_tools`.  The
paper's four tools register themselves on import with explicit ``figure_order``
values so :func:`default_tools` reproduces the Figure 2/3 column order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analyzers.base import AnalysisTool
from repro.core.config import CheckerOptions


@dataclass(frozen=True)
class ToolEntry:
    """One registered tool: its factory plus discovery metadata."""

    key: str                       # canonical registry key (lowercase slug)
    factory: Callable[..., AnalysisTool]
    aliases: tuple[str, ...] = ()
    #: Position in the default lineup (the paper's column order); None keeps
    #: the tool out of ``default_tools()`` but resolvable by name.
    figure_order: Optional[int] = None
    #: Whether the factory accepts a ``CheckerOptions`` positional argument.
    takes_options: bool = False

    def build(self, options: Optional[CheckerOptions] = None) -> AnalysisTool:
        if self.takes_options:
            return self.factory(options) if options is not None else self.factory()
        return self.factory()

    def describe(self) -> dict:
        probe = self.factory.__doc__ or ""
        instance = self.build()
        return {
            "key": self.key,
            "name": instance.name,
            "models": instance.models,
            "aliases": list(self.aliases),
            "default_lineup": self.figure_order is not None,
            "summary": probe.strip().splitlines()[0] if probe.strip() else "",
        }


_REGISTRY: dict[str, ToolEntry] = {}
_ALIASES: dict[str, str] = {}
_BUILTINS_LOADED = False


def register_tool(key: str, *, aliases: tuple[str, ...] = (),
                  figure_order: Optional[int] = None,
                  takes_options: bool = False):
    """Class decorator: make a tool constructible by name.

    ``key`` is the canonical (lowercase) registry name; ``aliases`` add
    alternate spellings.  The decorated class's ``name`` attribute (the
    display name used in the tables) is registered as an alias too, so
    ``--tools "V. Analysis"`` and ``--tools value-analysis`` both resolve.
    """

    def decorate(cls):
        entry = ToolEntry(key=key.lower(), factory=cls, aliases=tuple(aliases),
                          figure_order=figure_order, takes_options=takes_options)
        _REGISTRY[entry.key] = entry
        for alias in entry.aliases:
            _ALIASES[alias.lower()] = entry.key
        display = getattr(cls, "name", None)
        if isinstance(display, str) and display.lower() != entry.key:
            _ALIASES[display.lower()] = entry.key
        return cls

    return decorate


def _ensure_builtin_tools() -> None:
    """Import the built-in tool modules so their decorators run."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.analyzers.builtin_tools  # noqa: F401  (registers on import)

    _BUILTINS_LOADED = True


def registered_tools() -> list[ToolEntry]:
    """Every registered tool, default lineup first (in figure order)."""
    _ensure_builtin_tools()
    entries = list(_REGISTRY.values())
    entries.sort(key=lambda e: (e.figure_order is None,
                                e.figure_order if e.figure_order is not None else 0,
                                e.key))
    return entries


def available_tool_names() -> list[str]:
    """Canonical names accepted by ``make_tools`` / the CLI ``--tools`` flag."""
    return [entry.key for entry in registered_tools()]


def default_tools(kcc_options: Optional[CheckerOptions] = None) -> list[AnalysisTool]:
    """The four tools compared in Figures 2 and 3, in the paper's column order."""
    _ensure_builtin_tools()
    lineup = [entry for entry in registered_tools() if entry.figure_order is not None]
    return [entry.build(kcc_options) for entry in lineup]


def all_tools() -> list[AnalysisTool]:
    return default_tools()


def resolve_entry(name: str) -> Optional[ToolEntry]:
    _ensure_builtin_tools()
    key = name.lower()
    key = _ALIASES.get(key, key)
    return _REGISTRY.get(key)


def tool_by_name(name: str) -> AnalysisTool:
    return make_tools([name])[0]


def make_tools(names: Optional[list[str]] = None,
               kcc_options: Optional[CheckerOptions] = None) -> list[AnalysisTool]:
    """Build a tool lineup by name; ``None`` means all default tools.

    Unknown names are reported **all at once** — a batch invocation with two
    typos should not fail twice.
    """
    if names is None:
        return default_tools(kcc_options)
    _ensure_builtin_tools()
    entries = [(name, resolve_entry(name)) for name in names]
    missing = [name for name, entry in entries if entry is None]
    if missing:
        known = ", ".join(sorted(set(available_tool_names())))
        raise KeyError(f"unknown analysis tool{'s' if len(missing) > 1 else ''} "
                       f"{', '.join(repr(name) for name in missing)} "
                       f"(choose from {known})")
    return [entry.build(kcc_options) for _name, entry in entries]
