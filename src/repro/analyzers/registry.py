"""Registry of the analysis tools used in the paper's evaluation."""

from __future__ import annotations

from typing import Optional

from repro.analyzers.base import AnalysisTool, KccAnalysisTool
from repro.analyzers.checkpointer_like import CheckPointerLikeTool
from repro.analyzers.valgrind_like import ValgrindLikeTool
from repro.analyzers.value_analysis import ValueAnalysisTool
from repro.core.config import CheckerOptions


def default_tools(kcc_options: Optional[CheckerOptions] = None) -> list[AnalysisTool]:
    """The four tools compared in Figures 2 and 3, in the paper's column order."""
    return [
        ValgrindLikeTool(),
        CheckPointerLikeTool(),
        ValueAnalysisTool(),
        KccAnalysisTool(kcc_options),
    ]


def all_tools() -> list[AnalysisTool]:
    return default_tools()


def tool_by_name(name: str) -> AnalysisTool:
    return make_tools([name])[0]


def make_tools(names: Optional[list[str]] = None,
               kcc_options: Optional[CheckerOptions] = None) -> list[AnalysisTool]:
    """Build a tool lineup by name; ``None`` means all default tools."""
    if names is None:
        return default_tools(kcc_options)
    by_name = {tool.name.lower(): tool for tool in default_tools(kcc_options)}
    missing = [name for name in names if name.lower() not in by_name]
    if missing:
        raise KeyError(f"unknown analysis tool {missing[0]!r} "
                       f"(choose from {', '.join(sorted(by_name))})")
    return [by_name[name.lower()] for name in names]
