"""The dynamic semantics driver: program setup, function calls, execution.

The :class:`Interpreter` is the Python counterpart of running a program under
the paper's executable semantics: it owns the configuration (memory, global
environment, call stack, output), executes ``main``, and either produces a
defined result (exit code plus program output) or raises
:class:`UndefinedBehaviorError` at the first undefined operation it reaches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.cfront import ast as c_ast
from repro.cfront import ctypes as ct
from repro.cfront.headers import BUILTIN_FUNCTIONS
from repro.core.config import CheckerOptions, DEFAULT_OPTIONS
from repro.core.conversions import convert
from repro.core.environment import (
    ExitSignal,
    Frame,
    FunctionBinding,
    GotoSignal,
    LValue,
    ObjectBinding,
    ReturnSignal,
)
from repro.core.eval_expr import ExpressionEvaluatorMixin
from repro.core.eval_stmt import StatementExecutorMixin
from repro.core.memory import Memory, StorageKind
from repro.core.stdlib import BUILTIN_IMPLEMENTATIONS
from repro.core.vm import run_native
from repro.core.values import (
    Byte,
    ConcreteByte,
    CValue,
    IndeterminateValue,
    IntValue,
    PointerValue,
    StructValue,
    VoidValue,
    encode_value,
    unknown_bytes,
)
from repro.errors import (
    ResourceLimitError,
    UBKind,
    UndefinedBehaviorError,
    UnsupportedFeatureError,
)
from repro.events import (
    FAMILY_FUNCTIONS,
    CallEvent,
    ChoiceEvent,
    ProbeSet,
    ReturnEvent,
    report_undefined,
)
from repro.kframework.cells import Configuration, make_configuration
from repro.kframework.strategy import (
    EvaluationStrategy,
    LeftToRightStrategy,
    RightToLeftStrategy,
    strategy_for,
)


_BUILTIN_FALLBACK_BINDINGS: dict[str, FunctionBinding] = {
    name: FunctionBinding(
        name=name,
        type=ct.FunctionType(return_type=ct.INT, parameters=(), variadic=True,
                             has_prototype=False),
        has_definition=True, is_builtin=True)
    for name in BUILTIN_FUNCTIONS
}


@dataclass
class ExecutionResult:
    """The observable result of running a program to completion."""

    exit_code: int = 0
    stdout: str = ""
    steps: int = 0
    aborted: bool = False
    returned_from_main: bool = True


class Interpreter(ExpressionEvaluatorMixin, StatementExecutorMixin):
    """Executes a parsed translation unit on the symbolic abstract machine."""

    def __init__(self, unit: c_ast.TranslationUnit,
                 options: CheckerOptions = DEFAULT_OPTIONS, *,
                 strategy: Optional[EvaluationStrategy] = None,
                 stdin: str = "", lowered=None, compiled=None) -> None:
        self.unit = unit
        self.options = options
        self.profile = options.profile
        # The compiled engine addresses object bytes as flat integer offsets,
        # so pair it with the contiguous arena store; everything else keeps
        # the per-object dict store.
        self.memory = Memory(options,
                             store="arena" if compiled is not None else "dict")
        #: Compiled register-bytecode of the unit
        #: (:class:`repro.core.bytecode.CompiledProgram`), or None.  Functions
        #: present in ``compiled.functions`` run on the VM; everything else
        #: falls back to the lowered closures (or the walker).
        self.compiled = compiled
        #: Attached :class:`repro.events.ProbeSet`, or None (the common case).
        #: Set via :meth:`attach_probes`; every emission site is guarded on it.
        self.events: Optional[ProbeSet] = None
        self.strategy = strategy or strategy_for(options.evaluation_order)
        #: Lowered IR of the unit (:class:`repro.core.lowering.LoweredUnit`),
        #: or None to interpret raw AST nodes (the legacy walker).
        self.lowered = lowered
        #: Pre-resolved evaluation order for the lowered fast path: 0 for
        #: left-to-right, 1 for right-to-left, None to consult the strategy
        #: at every unsequenced group (scripted strategies / search).
        if type(self.strategy) is LeftToRightStrategy:
            self.order_mode: Optional[int] = 0
        elif type(self.strategy) is RightToLeftStrategy:
            self.order_mode = 1
        else:
            self.order_mode = None
        self.functions: dict[str, c_ast.FunctionDef] = {}
        self.function_bindings: dict[str, FunctionBinding] = {}
        self.global_bindings: dict[str, ObjectBinding] = {}
        self.frames: list[Frame] = []
        self.pointer_registry: dict[int, PointerValue] = {}
        self._string_literals: dict[str, tuple[PointerValue, ct.ArrayType]] = {}
        self._static_locals: dict[int, ObjectBinding] = {}
        self._output: list[str] = []
        self._stdin = stdin
        self._stdin_pos = 0
        self._steps = 0
        self._frame_counter = 0
        self._rand_state = 1
        self.current_function = "<startup>"
        self.current_line = 0
        self._register_builtins()
        self._register_translation_unit()

    # ------------------------------------------------------------------
    # Program setup
    # ------------------------------------------------------------------
    def _register_builtins(self) -> None:
        # The fallback bindings are identical for every run and are only ever
        # *replaced* (never mutated) when the program or the builtin headers
        # declare a real signature, so one shared set serves all interpreters.
        self.function_bindings.update(_BUILTIN_FALLBACK_BINDINGS)

    def _register_translation_unit(self) -> None:
        # First pass: function definitions and prototypes, so that globals can
        # take the address of functions defined later in the file.
        for declaration in self.unit.declarations:
            if isinstance(declaration, c_ast.FunctionDef):
                self.functions[declaration.name] = declaration
                assert isinstance(declaration.type, ct.FunctionType)
                self.function_bindings[declaration.name] = FunctionBinding(
                    name=declaration.name, type=declaration.type, has_definition=True,
                    is_builtin=declaration.name in BUILTIN_FUNCTIONS and False)
            elif isinstance(declaration, c_ast.Declaration) and isinstance(
                    declaration.type, ct.FunctionType):
                existing = self.function_bindings.get(declaration.name)
                is_builtin = declaration.name in BUILTIN_FUNCTIONS
                if is_builtin:
                    # The builtin header prototype supplies the real signature
                    # (so bad calls to library functions are type-checked).
                    self.function_bindings[declaration.name] = FunctionBinding(
                        name=declaration.name, type=declaration.type,
                        has_definition=True, is_builtin=True)
                elif existing is None or not existing.has_definition:
                    self.function_bindings[declaration.name] = FunctionBinding(
                        name=declaration.name, type=declaration.type,
                        has_definition=False, is_builtin=False)

    def _initialize_globals(self) -> None:
        """Allocate and initialize every file-scope object (static storage)."""
        startup = Frame(frame_id=self._next_frame_id(), function_name="<startup>",
                        return_type=ct.INT)
        startup.push_scope()
        self.frames.append(startup)
        try:
            for declaration in self.unit.declarations:
                if not isinstance(declaration, c_ast.Declaration):
                    continue
                if isinstance(declaration.type, ct.FunctionType):
                    continue
                if declaration.storage == "extern" and declaration.initializer is None:
                    continue
                self._define_global(declaration)
        finally:
            self.frames.pop()

    def _define_global(self, declaration: c_ast.Declaration) -> None:
        ctype = declaration.type
        assert ctype is not None
        existing = self.global_bindings.get(declaration.name)
        if existing is not None and declaration.initializer is None:
            return
        if existing is not None:
            obj = self.memory.objects[existing.base]
        else:
            size = self._object_size(ctype, declaration)
            obj = self.memory.allocate(size, StorageKind.STATIC, name=declaration.name,
                                       declared_type=ctype,
                                       is_const=self._is_const_object(ctype))
            self.global_bindings[declaration.name] = ObjectBinding(
                name=declaration.name, base=obj.base, type=ctype,
                is_const=self._is_const_object(ctype))
        # Static storage duration objects start out zero-initialized (§6.7.9:10).
        obj.zero_fill()
        if declaration.initializer is not None:
            pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ctype))
            was_const = obj.base in self.memory.not_writable
            self.memory.not_writable.discard(obj.base)
            try:
                self._initialize_into(pointer, ctype, declaration.initializer, declaration.line)
            finally:
                if was_const:
                    self.memory.not_writable.add(obj.base)
            self.memory.sequence_point()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, argv: Optional[list[str]] = None) -> ExecutionResult:
        """Execute the program's ``main`` function and return its result."""
        self._initialize_globals()
        main_def = self.functions.get("main")
        if main_def is None:
            raise UnsupportedFeatureError("program has no main() function")
        arguments: list[CValue] = []
        assert isinstance(main_def.type, ct.FunctionType)
        if len(main_def.type.parameters) >= 2:
            arguments = self._build_main_arguments(argv or ["a.out"])
        try:
            value = self.call_function("main", arguments, main_def.line)
        except ExitSignal as signal:
            return ExecutionResult(exit_code=signal.status, stdout=self.stdout,
                                   steps=self._steps, aborted=signal.aborted,
                                   returned_from_main=False)
        except UndefinedBehaviorError as error:
            self._annotate(error)
            raise
        exit_code = 0
        if isinstance(value, IntValue):
            exit_code = value.value & 0xFF if value.value >= 0 else value.value % 256
        return ExecutionResult(exit_code=exit_code, stdout=self.stdout, steps=self._steps)

    def _build_main_arguments(self, argv: list[str]) -> list[CValue]:
        pointers: list[PointerValue] = []
        for argument in argv:
            data: list[Byte] = [ConcreteByte(ord(c) & 0xFF) for c in argument] + [ConcreteByte(0)]
            obj = self.memory.allocate(len(data), StorageKind.STATIC, name="<argv>",
                                       declared_type=ct.ArrayType(element=ct.CHAR,
                                                                  length=len(data)),
                                       data=data)
            pointers.append(PointerValue(base=obj.base, offset=0, type=ct.CHAR_PTR))
        pointer_size = self.profile.sizeof_pointer
        table_bytes: list[Byte] = []
        for pointer in pointers:
            table_bytes.extend(encode_value(pointer, ct.CHAR_PTR, self.profile))
        table_bytes.extend(ConcreteByte(0) for _ in range(pointer_size))
        table = self.memory.allocate(len(table_bytes), StorageKind.STATIC, name="<argv-table>",
                                     declared_type=ct.ArrayType(element=ct.CHAR_PTR,
                                                                length=len(pointers) + 1),
                                     data=table_bytes)
        argv_value = PointerValue(base=table.base, offset=0,
                                  type=ct.PointerType(pointee=ct.CHAR_PTR))
        return [IntValue(len(argv), ct.INT), argv_value]

    @property
    def stdout(self) -> str:
        return "".join(self._output)

    # ------------------------------------------------------------------
    # Steps, diagnostics, I/O
    # ------------------------------------------------------------------
    def step(self, line: int = 0) -> None:
        if line:
            self.current_line = line
        self._steps += 1
        if self._steps > self.options.max_steps:
            raise ResourceLimitError(
                f"execution exceeded {self.options.max_steps} steps")

    def _annotate(self, error: UndefinedBehaviorError) -> None:
        if error.function is None:
            error.function = self.current_function
        if error.line is None:
            error.line = self.current_line

    def write_output(self, text: str) -> None:
        self._output.append(text)

    def read_input_char(self) -> int:
        if self._stdin_pos >= len(self._stdin):
            return -1
        ch = self._stdin[self._stdin_pos]
        self._stdin_pos += 1
        return ord(ch)

    def read_input_token(self) -> Optional[str]:
        while self._stdin_pos < len(self._stdin) and self._stdin[self._stdin_pos].isspace():
            self._stdin_pos += 1
        if self._stdin_pos >= len(self._stdin):
            return None
        start = self._stdin_pos
        while self._stdin_pos < len(self._stdin) and not self._stdin[self._stdin_pos].isspace():
            self._stdin_pos += 1
        return self._stdin[start:self._stdin_pos]

    def next_random(self) -> int:
        self._rand_state = (self._rand_state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._rand_state

    def seed_random(self, seed: int) -> None:
        self._rand_state = seed & 0x7FFFFFFF or 1

    def encode_scalar(self, value: int, ctype: ct.CType) -> list[Byte]:
        return encode_value(IntValue(value, ctype), ctype, self.profile)

    def attach_probes(self, events: ProbeSet) -> None:
        """Subscribe a probe set to this run's execution events."""
        self.events = events
        self.memory.events = events

    def operand_order(self, count: int, site: object = None):
        if count <= 1:
            return range(count)
        order = self.strategy.order(count, site)
        if self.events is not None:
            order = tuple(order)
            self.events.emit(ChoiceEvent(count, order, self.current_line))
        return order

    # ------------------------------------------------------------------
    # Name lookup and object creation
    # ------------------------------------------------------------------
    def current_frame(self) -> Frame:
        return self.frames[-1]

    def lookup_binding(self, name: str, line: int) -> Union[ObjectBinding, FunctionBinding]:
        if self.frames:
            binding = self.frames[-1].lookup(name)
            if binding is not None:
                return binding
        global_binding = self.global_bindings.get(name)
        if global_binding is not None:
            return global_binding
        function_binding = self.function_bindings.get(name)
        if function_binding is not None:
            return function_binding
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_CALL, f"Use of undeclared identifier '{name}'.", line=line)

    def lookup_global(self, name: str) -> Optional[ObjectBinding]:
        return self.global_bindings.get(name)

    def register_function_declaration(self, name: str, ftype: ct.FunctionType) -> None:
        existing = self.function_bindings.get(name)
        if existing is None or not existing.has_definition:
            self.function_bindings[name] = FunctionBinding(
                name=name, type=ftype, has_definition=name in BUILTIN_FUNCTIONS,
                is_builtin=name in BUILTIN_FUNCTIONS)

    def _object_size(self, ctype: ct.CType, declaration: c_ast.Declaration) -> int:
        if isinstance(ctype, ct.ArrayType) and ctype.length is None:
            completed = self._complete_array_from_initializer(ctype, declaration.initializer)
            if completed is not None:
                declaration.type = completed
                return ct.size_of(completed, self.profile)
        try:
            return ct.size_of(ctype, self.profile)
        except ct.LayoutError as exc:
            raise UndefinedBehaviorError(
                UBKind.INCOMPLETE_TYPE_OBJECT,
                f"Object '{declaration.name}' defined with an incomplete type: {exc}",
                line=declaration.line)

    def _complete_array_from_initializer(
            self, ctype: ct.ArrayType,
            initializer: Optional[c_ast.Expression]) -> Optional[ct.ArrayType]:
        if initializer is None:
            return None
        if isinstance(initializer, c_ast.InitList):
            return ct.ArrayType(element=ctype.element, length=max(len(initializer.items), 1),
                                const=ctype.const, volatile=ctype.volatile)
        if isinstance(initializer, c_ast.StringLiteral) and ct.is_character_type(ctype.element):
            return ct.ArrayType(element=ctype.element, length=len(initializer.value) + 1,
                                const=ctype.const, volatile=ctype.volatile)
        return None

    @staticmethod
    def _is_const_object(ctype: ct.CType) -> bool:
        if ctype.const:
            return True
        if isinstance(ctype, ct.ArrayType):
            return ctype.element.const
        return False

    def define_auto_object(self, declaration: c_ast.Declaration) -> None:
        ctype = declaration.type
        assert ctype is not None
        size = self._object_size(ctype, declaration)
        ctype = declaration.type  # may have been completed from the initializer
        frame = self.current_frame()
        obj = self.memory.allocate(size, StorageKind.AUTO, name=declaration.name,
                                   declared_type=ctype, frame=frame.frame_id,
                                   is_const=False)
        binding = ObjectBinding(name=declaration.name, base=obj.base, type=ctype,
                                is_const=self._is_const_object(ctype))
        frame.declare(binding)
        if declaration.initializer is not None:
            pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ctype))
            if self._initializer_is_constant_zero_fill(ctype, declaration.initializer):
                obj.zero_fill()
            self._initialize_into(pointer, ctype, declaration.initializer, declaration.line)
        if self._is_const_object(ctype):
            self.memory.mark_not_writable(obj.base)

    @staticmethod
    def _initializer_is_constant_zero_fill(ctype: ct.CType,
                                           initializer: c_ast.Expression) -> bool:
        """A brace-enclosed initializer zero-fills the uncovered parts (§6.7.9:21)."""
        return isinstance(initializer, c_ast.InitList) and not ctype.is_scalar

    def define_static_local(self, declaration: c_ast.Declaration) -> None:
        key = id(declaration)
        binding = self._static_locals.get(key)
        if binding is None:
            ctype = declaration.type
            assert ctype is not None
            size = self._object_size(ctype, declaration)
            ctype = declaration.type
            obj = self.memory.allocate(size, StorageKind.STATIC, name=declaration.name,
                                       declared_type=ctype,
                                       is_const=self._is_const_object(ctype))
            obj.zero_fill()
            binding = ObjectBinding(name=declaration.name, base=obj.base, type=ctype,
                                    is_const=self._is_const_object(ctype))
            self._static_locals[key] = binding
            if declaration.initializer is not None:
                pointer = PointerValue(base=obj.base, offset=0,
                                       type=ct.PointerType(pointee=ctype))
                was_const = obj.base in self.memory.not_writable
                self.memory.not_writable.discard(obj.base)
                try:
                    self._initialize_into(pointer, ctype, declaration.initializer,
                                          declaration.line)
                finally:
                    if was_const:
                        self.memory.not_writable.add(obj.base)
        frame = self.current_frame()
        frame.scopes[-1].bindings[declaration.name] = binding

    # ------------------------------------------------------------------
    # Initializers
    # ------------------------------------------------------------------
    def _initialize_into(self, pointer: PointerValue, ctype: ct.CType,
                         initializer: c_ast.Expression, line: int) -> None:
        ctype_resolved = self.resolve_record(ctype, line)
        if isinstance(ctype_resolved, ct.ArrayType):
            self._initialize_array(pointer, ctype_resolved, initializer, line)
            return
        if isinstance(ctype_resolved, (ct.StructType, ct.UnionType)) and isinstance(
                initializer, c_ast.InitList):
            self._initialize_record(pointer, ctype_resolved, initializer, line)
            return
        expr = initializer
        while isinstance(expr, c_ast.InitList):
            if not expr.items:
                self.memory.write_bytes(
                    pointer, [ConcreteByte(0)] * ct.size_of(ctype_resolved, self.profile),
                    line=line, track_sequencing=False)
                return
            expr = expr.items[0]
        value = self.eval_expr(expr)
        if isinstance(value, StructValue) and ctype_resolved.is_record:
            converted: CValue = value
        else:
            converted = convert(value, ctype_resolved, self.options, line=line,
                                pointer_registry=self.pointer_registry)
        data = encode_value(converted, ctype_resolved, self.profile)
        self.memory.write_bytes(pointer, data, line=line,
                                lvalue_type=ctype_resolved, track_sequencing=False)

    def _initialize_array(self, pointer: PointerValue, ctype: ct.ArrayType,
                          initializer: c_ast.Expression, line: int) -> None:
        element_type = ctype.element
        element_size = ct.size_of(element_type, self.profile)
        length = ctype.length or 0
        if isinstance(initializer, c_ast.StringLiteral) and ct.is_character_type(element_type):
            text = initializer.value
            data: list[Byte] = [ConcreteByte(ord(c) & 0xFF) for c in text]
            data.append(ConcreteByte(0))
            if length and len(data) > length:
                data = data[:length]
            if length and len(data) < length:
                data.extend(ConcreteByte(0) for _ in range(length - len(data)))
            self.memory.write_bytes(pointer, data, line=line, track_sequencing=False)
            return
        if not isinstance(initializer, c_ast.InitList):
            value = self.eval_expr(initializer)
            if isinstance(value, StructValue):
                self.memory.write_bytes(pointer, list(value.data), line=line,
                                        track_sequencing=False)
                return
            raise UnsupportedFeatureError("array initialized from a non-initializer expression")
        for index, item in enumerate(initializer.items):
            if length and index >= length:
                break
            element_pointer = pointer.with_offset(pointer.offset + index * element_size)
            element_pointer = element_pointer.with_type(ct.PointerType(pointee=element_type))
            self._initialize_into(element_pointer, element_type, item, line)

    def _initialize_record(self, pointer: PointerValue, ctype: Union[ct.StructType, ct.UnionType],
                           initializer: c_ast.InitList, line: int) -> None:
        layout = ct.struct_layout(ctype, self.profile)
        for index, item in enumerate(initializer.items):
            if index >= len(layout.fields):
                break
            field_layout = layout.fields[index]
            field_pointer = pointer.with_offset(pointer.offset + field_layout.offset)
            field_pointer = field_pointer.with_type(ct.PointerType(pointee=field_layout.type))
            self._initialize_into(field_pointer, field_layout.type, item, line)
            if isinstance(ctype, ct.UnionType):
                break

    def compound_literal_lvalue(self, ctype: ct.CType, initializer: c_ast.InitList,
                                line: int) -> LValue:
        """Materialize a compound literal (§6.5.2.5): an unnamed automatic
        object whose lifetime ends with the enclosing scope."""
        size = ct.size_of(ctype, self.profile)
        frame = self.current_frame()
        obj = self.memory.allocate(size, StorageKind.AUTO, name="<compound-literal>",
                                   declared_type=ctype, frame=frame.frame_id)
        obj.zero_fill()
        frame.scopes[-1].owned_bases.append(obj.base)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.PointerType(pointee=ctype))
        self._initialize_into(pointer, ctype, initializer, line)
        return LValue(pointer=pointer, type=ctype)

    def build_compound_literal(self, ctype: ct.CType, initializer: c_ast.InitList,
                               line: int) -> CValue:
        lvalue = self.compound_literal_lvalue(ctype, initializer, line)
        return self.read_lvalue(lvalue, line)

    # ------------------------------------------------------------------
    # String literals and record resolution
    # ------------------------------------------------------------------
    def string_literal_object(self, text: str) -> tuple[PointerValue, ct.ArrayType]:
        cached = self._string_literals.get(text)
        if cached is not None:
            return cached
        data: list[Byte] = [ConcreteByte(ord(c) & 0xFF) for c in text] + [ConcreteByte(0)]
        array_type = ct.ArrayType(element=ct.CHAR, length=len(data))
        obj = self.memory.allocate(len(data), StorageKind.STRING_LITERAL,
                                   name=f'"{text[:20]}"', declared_type=array_type, data=data)
        pointer = PointerValue(base=obj.base, offset=0, type=ct.CHAR_PTR)
        self._string_literals[text] = (pointer, array_type)
        return pointer, array_type

    def resolve_record(self, ctype: ct.CType, line: int) -> ct.CType:
        """Resolve an incomplete struct/union reference against the parsed tags."""
        if isinstance(ctype, (ct.StructType, ct.UnionType)) and ctype.fields is None:
            # The parser completes tagged records in place, so an incomplete
            # record here genuinely has no definition in the translation unit.
            return ctype
        return ctype

    # ------------------------------------------------------------------
    # Function calls
    # ------------------------------------------------------------------
    def eval_call(self, expr: c_ast.Call) -> CValue:
        line = expr.line
        callee_name: Optional[str] = None
        callee_type: Optional[ct.FunctionType] = None
        function_expr = expr.function
        if isinstance(function_expr, c_ast.Identifier):
            name = function_expr.name
            binding = self.function_bindings.get(name)
            local = self.frames[-1].lookup(name) if self.frames else None
            global_obj = self.global_bindings.get(name)
            if local is not None or (global_obj is not None and binding is None):
                value = self.eval_expr(function_expr)
                callee_name, callee_type = self._function_from_value(value, line)
            elif binding is not None:
                callee_name = name
                callee_type = binding.type
            else:
                # Implicit declaration of a function (§6.5.1:2 in C90 terms);
                # calling an undeclared, undefined function is undefined.
                if name in BUILTIN_FUNCTIONS:
                    callee_name = name
                    callee_type = None
                else:
                    raise UndefinedBehaviorError(
                        UBKind.BAD_FUNCTION_CALL,
                        f"Call to undeclared function '{name}'.", line=line)
        else:
            value = self.eval_expr(function_expr)
            callee_name, callee_type = self._function_from_value(value, line)

        arguments = self._evaluate_arguments(expr.arguments, callee_name, callee_type, line)
        # There is a sequence point after the evaluation of the function
        # designator and the arguments and before the actual call (§6.5.2.2:10).
        self.memory.sequence_point()
        return self.call_function(callee_name, arguments, line, declared_type=callee_type)

    def _function_from_value(self, value: CValue, line: int) -> tuple[str, Optional[ct.FunctionType]]:
        if isinstance(value, PointerValue) and value.function is not None:
            pointee = value.type.pointee if isinstance(value.type, ct.PointerType) else None
            ftype = pointee if isinstance(pointee, ct.FunctionType) else None
            return value.function, ftype
        if isinstance(value, PointerValue) and value.is_null:
            raise UndefinedBehaviorError(
                UBKind.NULL_DEREFERENCE, "Call through a null function pointer.", line=line)
        if isinstance(value, IndeterminateValue):
            raise UndefinedBehaviorError(
                UBKind.UNINITIALIZED_READ,
                "Call through an indeterminate function pointer.", line=line)
        raise UndefinedBehaviorError(
            UBKind.BAD_FUNCTION_TYPE, "Called object is not a function or function pointer.",
            line=line)

    def _evaluate_arguments(self, argument_exprs: list[c_ast.Expression],
                            callee_name: Optional[str],
                            callee_type: Optional[ct.FunctionType],
                            line: int) -> list[CValue]:
        values = self._eval_unsequenced(argument_exprs, line) if argument_exprs else []
        return self._convert_arguments(values, callee_name, callee_type, line)

    def _convert_arguments(self, values: list[CValue],
                           callee_name: Optional[str],
                           callee_type: Optional[ct.FunctionType],
                           line: int) -> list[CValue]:
        """Check and convert already-evaluated argument values (§6.5.2.2).

        Shared by the legacy walker (via :meth:`_evaluate_arguments`) and the
        lowered fast path, which evaluates the argument closures itself.
        """
        if callee_type is None or not callee_type.has_prototype:
            return [self._default_promote(v, line) for v in values]
        params = callee_type.parameters
        if self.options.check_functions:
            if len(values) < len(params) or (len(values) > len(params) and not callee_type.variadic):
                report_undefined(UndefinedBehaviorError(
                    UBKind.BAD_FUNCTION_CALL,
                    f"Function '{callee_name}' called with {len(values)} argument(s) but its "
                    f"prototype has {len(params)}{' or more' if callee_type.variadic else ''}.",
                    line=line), FAMILY_FUNCTIONS)
        converted: list[CValue] = []
        for index, value in enumerate(values):
            if index < len(params):
                param_type = params[index]
                if self.options.check_functions:
                    self._check_argument_compatibility(value, param_type, index, callee_name, line)
                if isinstance(value, StructValue) and param_type.is_record:
                    converted.append(value)
                else:
                    converted.append(convert(value, param_type, self.options, line=line,
                                             pointer_registry=self.pointer_registry))
            else:
                converted.append(self._default_promote(value, line))
        return converted

    def _check_argument_compatibility(self, value: CValue, param_type: ct.CType,
                                      index: int, callee_name: Optional[str], line: int) -> None:
        param = param_type.unqualified()
        if isinstance(param, ct.PointerType):
            if isinstance(value, (PointerValue,)):
                return
            if isinstance(value, IntValue) and value.value == 0:
                return
            report_undefined(UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_CALL,
                f"Argument {index + 1} to '{callee_name}' has a non-pointer value but the "
                f"parameter has pointer type {param}.", line=line), FAMILY_FUNCTIONS)
            return
        if param.is_arithmetic:
            if isinstance(value, (IntValue,)) or isinstance(value, (IndeterminateValue,)):
                return
            if isinstance(value, PointerValue):
                report_undefined(UndefinedBehaviorError(
                    UBKind.BAD_FUNCTION_CALL,
                    f"Argument {index + 1} to '{callee_name}' is a pointer but the parameter "
                    f"has arithmetic type {param}.", line=line), FAMILY_FUNCTIONS)
            return
        if param.is_record:
            if not isinstance(value, StructValue):
                report_undefined(UndefinedBehaviorError(
                    UBKind.BAD_FUNCTION_CALL,
                    f"Argument {index + 1} to '{callee_name}' is not a structure value.",
                    line=line), FAMILY_FUNCTIONS)

    def _default_promote(self, value: CValue, line: int) -> CValue:
        """Default argument promotions for variadic / unprototyped calls."""
        if isinstance(value, IntValue) and value.type.is_integer:
            promoted = ct.promote_integer(value.type, self.profile)
            return convert(value, promoted, self.options, line=line,
                           pointer_registry=self.pointer_registry)
        if isinstance(value, CValue) and isinstance(value, type(value)) and isinstance(
                value, (IndeterminateValue,)):
            return value
        return value

    def call_function(self, name: Optional[str], arguments: list[CValue], line: int, *,
                      declared_type: Optional[ct.FunctionType] = None) -> CValue:
        events = self.events
        if events is None:
            return self._dispatch_call(name, arguments, line, declared_type=declared_type)
        events.emit(CallEvent(name or "<unresolved>", line))
        value = self._dispatch_call(name, arguments, line, declared_type=declared_type)
        events.emit(ReturnEvent(name or "<unresolved>", line))
        return value

    def _dispatch_call(self, name: Optional[str], arguments: list[CValue], line: int, *,
                       declared_type: Optional[ct.FunctionType] = None) -> CValue:
        if name is None:
            raise UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_TYPE, "Call target could not be resolved.", line=line)
        definition = self.functions.get(name)
        if definition is None:
            if name in BUILTIN_FUNCTIONS:
                return self._call_builtin(name, arguments, line)
            raise UnsupportedFeatureError(
                f"call to function '{name}' which has no definition in this program")
        assert isinstance(definition.type, ct.FunctionType)
        if (self.options.check_functions and declared_type is not None
                and declared_type.has_prototype and definition.type.has_prototype
                and not ct.types_compatible(declared_type, definition.type)):
            report_undefined(UndefinedBehaviorError(
                UBKind.BAD_FUNCTION_TYPE,
                f"Function '{name}' called through an incompatible function type.", line=line),
                FAMILY_FUNCTIONS)
        if len(self.frames) >= self.options.max_call_depth:
            raise ResourceLimitError("call depth limit exceeded")
        return self._call_user_function(definition, arguments, line)

    def _call_builtin(self, name: str, arguments: list[CValue], line: int) -> CValue:
        implementation = BUILTIN_IMPLEMENTATIONS.get(name)
        if implementation is None:
            raise UnsupportedFeatureError(f"builtin function '{name}' is not implemented")
        return implementation(self, arguments, line)

    def _call_user_function(self, definition: c_ast.FunctionDef,
                            arguments: list[CValue], line: int) -> CValue:
        assert isinstance(definition.type, ct.FunctionType)
        ftype = definition.type
        params = ftype.parameters
        if self.options.check_functions and ftype.has_prototype:
            if len(arguments) < len(params) or (len(arguments) > len(params) and not ftype.variadic):
                report_undefined(UndefinedBehaviorError(
                    UBKind.BAD_FUNCTION_CALL,
                    f"Function '{definition.name}' called with {len(arguments)} argument(s) "
                    f"but defined with {len(params)}.", line=line), FAMILY_FUNCTIONS)
        frame = Frame(frame_id=self._next_frame_id(), function_name=definition.name,
                      return_type=ftype.return_type, call_line=line)
        frame.push_scope()
        self.frames.append(frame)
        previous_function = self.current_function
        self.current_function = definition.name
        # Function executions are indeterminately sequenced with respect to the
        # caller's expression, not unsequenced: save and clear locsWrittenTo.
        saved_locs = set(self.memory.locs_written)
        self.memory.sequence_point()
        try:
            return self._execute_call_body(definition, arguments, frame, line)
        except UndefinedBehaviorError as error:
            if error.function is None:
                error.function = definition.name
            raise
        finally:
            self.memory.kill_frame(frame.frame_id)
            self.frames.pop()
            self.current_function = previous_function
            self.memory.locs_written = saved_locs

    def _execute_call_body(self, definition: c_ast.FunctionDef, arguments: list[CValue],
                           frame: Frame, line: int) -> CValue:
        """Bind parameters, run the body, and produce the return value."""
        assert isinstance(definition.type, ct.FunctionType)
        ftype = definition.type
        params = ftype.parameters
        for index, param_type in enumerate(params):
            param_name = (definition.parameter_names[index]
                          if index < len(definition.parameter_names) else f"<arg{index}>")
            size = ct.size_of(param_type, self.profile) if not param_type.is_void else 0
            obj = self.memory.allocate(size, StorageKind.AUTO, name=param_name,
                                       declared_type=param_type, frame=frame.frame_id)
            if index < len(arguments):
                data = encode_value(arguments[index], param_type, self.profile)
                obj.data[:] = data
            binding = ObjectBinding(name=param_name, base=obj.base, type=param_type)
            frame.declare(binding)
        compiled_fn = (self.compiled.functions.get(definition.name)
                       if self.compiled is not None else None)
        lowered_body = (self.lowered.functions.get(definition.name)
                        if self.lowered is not None else None)
        try:
            if compiled_fn is not None:
                return_value: Optional[CValue] = run_native(
                    self, self.compiled, compiled_fn)
            elif lowered_body is not None:
                lowered_body.run_body(self)
                return_value = None
            elif definition.body is not None:
                self.exec_compound(definition.body, new_scope=False)
                return_value = None
            else:
                return_value = None
        except ReturnSignal as signal:
            return_value = signal.value
        except GotoSignal as signal:
            raise UndefinedBehaviorError(
                UBKind.DUPLICATE_LABEL,
                f"goto to undefined label '{signal.label}' in '{definition.name}'.",
                line=line)
        if return_value is None:
            if definition.name == "main":
                return IntValue(0, ct.INT)
            if ftype.return_type.is_void:
                return VoidValue()
            # Falling off the end of a non-void function: using the value
            # is undefined; represent it as an indeterminate value.
            return IndeterminateValue(type=ftype.return_type,
                                      data=tuple(unknown_bytes(
                                          ct.size_of(ftype.return_type, self.profile)
                                          if not ftype.return_type.is_void else 0)))
        if ftype.return_type.is_void:
            if self.options.check_functions and not isinstance(return_value, VoidValue):
                return VoidValue()
            return VoidValue()
        if isinstance(return_value, StructValue) and ftype.return_type.is_record:
            return return_value
        return convert(return_value, ftype.return_type, self.options, line=line,
                       pointer_registry=self.pointer_registry)

    def _next_frame_id(self) -> int:
        self._frame_counter += 1
        return self._frame_counter

    # ------------------------------------------------------------------
    # Static expression typing (for sizeof)
    # ------------------------------------------------------------------
    def type_of_expression(self, expr: c_ast.Expression) -> ct.CType:
        """Compute the type of ``expr`` without evaluating it (sizeof operand)."""
        if isinstance(expr, c_ast.IntegerLiteral):
            return expr.type or ct.INT
        if isinstance(expr, c_ast.FloatLiteral):
            return expr.type or ct.DOUBLE
        if isinstance(expr, c_ast.CharLiteral):
            return ct.INT
        if isinstance(expr, c_ast.StringLiteral):
            return ct.ArrayType(element=ct.CHAR, length=len(expr.value) + 1)
        if isinstance(expr, c_ast.Identifier):
            binding = self.lookup_binding(expr.name, expr.line)
            if isinstance(binding, FunctionBinding):
                return binding.type
            return binding.type
        if isinstance(expr, c_ast.UnaryOp):
            if expr.op == "&":
                return ct.PointerType(pointee=self.type_of_expression(expr.operand))
            if expr.op == "*":
                inner = ct.decay(self.type_of_expression(expr.operand))
                if isinstance(inner, ct.PointerType):
                    return inner.pointee
                return ct.INT
            if expr.op in ("!",):
                return ct.INT
            if expr.op == "sizeof":
                return ct.ULONG
            inner = self.type_of_expression(expr.operand)
            return ct.promote_integer(inner, self.profile) if inner.is_integer else inner
        if isinstance(expr, c_ast.SizeofType):
            return ct.ULONG
        if isinstance(expr, c_ast.Cast):
            return expr.target_type or ct.INT
        if isinstance(expr, c_ast.BinaryOp):
            if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
                return ct.INT
            left = ct.decay(self.type_of_expression(expr.left))
            right = ct.decay(self.type_of_expression(expr.right))
            if isinstance(left, ct.PointerType) and isinstance(right, ct.PointerType):
                return ct.LONG
            if isinstance(left, ct.PointerType):
                return left
            if isinstance(right, ct.PointerType):
                return right
            if left.is_arithmetic and right.is_arithmetic:
                return ct.usual_arithmetic_conversions(left, right, self.profile)
            return ct.INT
        if isinstance(expr, c_ast.Assignment):
            return self.type_of_expression(expr.target)
        if isinstance(expr, c_ast.Conditional):
            return self.type_of_expression(expr.then)
        if isinstance(expr, c_ast.Comma):
            return self.type_of_expression(expr.right)
        if isinstance(expr, c_ast.Call):
            function_type = self.type_of_expression(expr.function)
            if isinstance(function_type, ct.PointerType):
                function_type = function_type.pointee
            if isinstance(function_type, ct.FunctionType):
                return function_type.return_type
            return ct.INT
        if isinstance(expr, c_ast.ArraySubscript):
            array_type = ct.decay(self.type_of_expression(expr.array))
            if isinstance(array_type, ct.PointerType):
                return array_type.pointee
            return ct.INT
        if isinstance(expr, c_ast.Member):
            record = self.type_of_expression(expr.object)
            if expr.arrow and isinstance(record, ct.PointerType):
                record = record.pointee
            if isinstance(record, (ct.StructType, ct.UnionType)):
                member = record.field_named(expr.member)
                if member is not None:
                    return member.type
            return ct.INT
        return ct.INT

    # ------------------------------------------------------------------
    # K-style configuration view
    # ------------------------------------------------------------------
    def configuration(self, pending: Optional[list[str]] = None) -> Configuration:
        """Render the current state as a Figure-1-style K configuration."""
        genv = {name: f"sym({binding.base})" for name, binding in self.global_bindings.items()}
        local_env: dict[str, str] = {}
        local_types: dict[str, object] = {}
        if self.frames:
            for scope in self.frames[-1].scopes:
                for name, binding in scope.bindings.items():
                    local_env[name] = f"sym({binding.base})"
                    local_types[name] = binding.type
        for name, binding in self.global_bindings.items():
            local_types.setdefault(name, binding.type)
        mem_summary = {
            f"sym({obj.base})": f"obj({obj.size}, {obj.kind.value}"
                                f"{', dead' if not obj.alive else ''})"
            for obj in self.memory.objects.values()
        }
        call_stack = [frame.function_name for frame in self.frames]
        locs = {f"sym({loc.base})+{loc.offset}" for loc in self.memory.locs_written}
        not_writable = {f"sym({base})" for base in self.memory.not_writable}
        return make_configuration(
            k=list(pending or []), genv=genv, mem_summary=mem_summary,
            locs_written=locs, not_writable=not_writable, call_stack=call_stack,
            local_env=local_env, local_types=local_types, output=self.stdout)
